//! # I Can Has Supercomputer? — parallel LOLCODE in Rust
//!
//! Facade crate for the workspace: re-exports the public surface of the
//! toolchain so the examples and integration tests have a single import
//! root.
//!
//! The core of that surface is the compile-once/run-many API: compile
//! a program to a [`Compiled`](prelude::Compiled) artifact, run it any
//! number of times on an [`Engine`](prelude::Engine), and get a
//! structured [`RunReport`](prelude::RunReport) back from each run:
//!
//! ```
//! use icanhas::prelude::*;
//!
//! let artifact = compile(
//!     "HAI 1.2\nVISIBLE \"OH HAI PE \" ME\nKTHXBYE",
//! ).unwrap();
//! let report = engine_for(Backend::Interp)
//!     .run(&artifact, &RunConfig::new(2))
//!     .unwrap();
//! assert_eq!(report.outputs[0], "OH HAI PE 0\n");
//! assert_eq!(report.stats.len(), 2); // per-PE CommStats
//! ```
//!
//! The one-shot [`run_source`](prelude::run_source) shim remains for
//! scripts that run a program exactly once:
//!
//! ```
//! use icanhas::prelude::*;
//!
//! let outs = run_source(
//!     "HAI 1.2\nVISIBLE \"OH HAI PE \" ME\nKTHXBYE",
//!     RunConfig::new(2),
//! ).unwrap();
//! assert_eq!(outs[0], "OH HAI PE 0\n");
//! ```
//!
//! See `README.md` for the architecture tour, `DESIGN.md` for the
//! paper-to-module mapping and `EXPERIMENTS.md` for the reproduced
//! tables/figures.

pub use lol_ast as ast;
pub use lol_c_codegen as codegen;
pub use lol_interp as interp;
pub use lol_sema as sema;
pub use lol_shmem as shmem;
pub use lol_sim as sim;
pub use lol_vm as vm;
pub use lolcode as driver;

/// The most common imports, bundled.
pub mod prelude {
    pub use lol_shmem::{
        run_spmd, BarrierKind, CommStats, LatencyModel, LockKind, ShmemConfig, SymAddr, WaitCmp,
    };
    pub use lolcode::corpus;
    pub use lolcode::{
        check, compile, compile_to_c, config_key, engine_for, jsonl_record, parse_jsonl_done,
        parse_program, registry, run_source, Backend, CEngine, ClockMode, Compiled, Engine,
        EngineRegistry, EventKind, InterpEngine, LolError, PeTrace, RunConfig, RunReport,
        SimEngine, SweepEntry, SweepReport, SweepSpec, Trace, TraceEvent, TraceSpec, VmEngine,
    };
}
