//! # I Can Has Supercomputer? — parallel LOLCODE in Rust
//!
//! Facade crate for the workspace: re-exports the public surface of the
//! toolchain so the examples and integration tests have a single import
//! root.
//!
//! ```
//! use icanhas::prelude::*;
//!
//! let outs = run_source(
//!     "HAI 1.2\nVISIBLE \"OH HAI PE \" ME\nKTHXBYE",
//!     RunConfig::new(2),
//! ).unwrap();
//! assert_eq!(outs[0], "OH HAI PE 0\n");
//! ```
//!
//! See `README.md` for the architecture tour, `DESIGN.md` for the
//! paper-to-module mapping and `EXPERIMENTS.md` for the reproduced
//! tables/figures.

pub use lol_ast as ast;
pub use lol_sema as sema;
pub use lol_c_codegen as codegen;
pub use lol_interp as interp;
pub use lol_shmem as shmem;
pub use lol_vm as vm;
pub use lolcode as driver;

/// The most common imports, bundled.
pub mod prelude {
    pub use lol_shmem::{
        run_spmd, BarrierKind, LatencyModel, LockKind, ShmemConfig, SymAddr, WaitCmp,
    };
    pub use lolcode::corpus;
    pub use lolcode::{check, compile_to_c, parse_program, run_source, Backend, LolError, RunConfig};
}
