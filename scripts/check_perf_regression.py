#!/usr/bin/env python3
"""Compare two SweepReport JSON files and fail on wall-time regressions.

Usage:
  check_perf_regression.py BASELINE.json CURRENT.json [--max-ratio 1.30]
  check_perf_regression.py --absolute BASELINES.json --program NAME CURRENT.json
  check_perf_regression.py --serve BENCH.json [--absolute BASELINES.json]

Relative mode (two reports): entries are matched by their full config
identity (backend, pes, seed, latency, barrier, lock, clock). A config
regresses when its wall time grows beyond --max-ratio x the baseline
AND by more than an absolute noise floor (tiny walls are scheduling
noise, not signal).

Absolute mode (--absolute): CURRENT.json is gated against pinned
ceilings from BASELINES.json (see scripts/perf_baselines.json), keyed
by program name then "backend|pes". This is how the hot-path speedups
are locked in: the ceilings sit *below* the pre-optimization walls, so
a revert fails CI even with no prior artifact to diff against. Every
baselined config must be present and ok in the current report.

Absolute mode gates on host_wall_ns when the report carries it (real
host time — on the sim backend wall_ns is the *simulated* makespan,
which says nothing about how long the simulator ran), falling back to
wall_ns for the threaded backends where the two are identical. That
makes sim rows gateable even under clock=virtual: the simulated time
is deterministic, the simulator's own speed is what the ceiling pins.

Virtual-time entries (clock == "virtual") are exempt from the wall
check by design: their virtual_wall_ns is deterministic, so relative
mode compares it for *exact* equality instead — any drift there is a
semantics change, not a perf change. Absolute mode skips them only
when they carry no host_wall_ns to gate on.

Serve mode (--serve): BENCH.json is a lold-bench report (see
docs/SERVE.md). It is gated against the "serve" section of the
baselines file (default: perf_baselines.json next to this script):
an absolute p99 latency ceiling, a throughput floor in requests/sec,
and an exact error budget. This is the service-path twin of the
absolute engine gate — a recompile-per-request or a convoy on the
artifact cache blows the p99 ceiling long before it shows up in
single-run walls.

When the bench report carries a "serve" object (the server-side
counter deltas lold-bench scrapes from GET /metrics, see
docs/OBSERVABILITY.md), the server's own books are audited too:
zero error responses, zero 429/503 rejections, and a request count
that agrees with the client's — the server must have counted exactly
the requests the harness sent. Reports from servers without the
/metrics route skip this section silently.

Exit codes: 0 ok, 1 regression found, 2 usage/IO error.
"""

import json
import os
import sys

NOISE_FLOOR_NS = 20_000_000  # ignore regressions below 20ms absolute growth


def key(entry):
    return (
        entry.get("backend"),
        entry.get("pes"),
        entry.get("seed"),
        entry.get("latency"),
        entry.get("barrier"),
        entry.get("lock"),
        entry.get("clock", "wall"),
    )


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {key(e): e for e in report.get("entries", []) if e.get("ok")}


def check_absolute(baselines_path, program, current_path):
    try:
        with open(baselines_path) as f:
            baselines = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {baselines_path}: {e}", file=sys.stderr)
        return 2
    ceilings = baselines.get("programs", {}).get(program)
    if not ceilings:
        print(f"error: no baselines for program {program!r}", file=sys.stderr)
        return 2
    floor = baselines.get("noise_floor_ns", NOISE_FLOOR_NS)
    current = load(current_path)
    walls = {}
    for k, e in current.items():
        host = e.get("host_wall_ns")
        if host is None and k[-1] == "virtual":
            continue  # deterministic rows with no host wall are gated elsewhere
        walls[f"{k[0]}|{k[1]}"] = host if host is not None else e.get("wall_ns", 0)
    failures = []
    for config, max_ns in sorted(ceilings.items()):
        got = walls.get(config)
        if got is None:
            failures.append(f"{program} {config}: baselined config missing from the report")
        elif got > max_ns + floor:
            failures.append(
                f"{program} {config}: wall {got / 1e6:.1f}ms exceeds the pinned "
                f"ceiling {max_ns / 1e6:.1f}ms (+{floor / 1e6:.0f}ms noise floor)"
            )
        else:
            print(f"{program} {config}: {got / 1e6:.1f}ms <= {max_ns / 1e6:.1f}ms ok")
    if failures:
        print("PERF REGRESSION (absolute ceilings):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"{program}: all {len(ceilings)} pinned ceilings hold")
    return 0


def check_serve(baselines_path, bench_path):
    try:
        with open(baselines_path) as f:
            baselines = json.load(f)
        with open(bench_path) as f:
            bench = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read inputs: {e}", file=sys.stderr)
        return 2
    bounds = baselines.get("serve")
    if not bounds:
        print(f"error: no 'serve' section in {baselines_path}", file=sys.stderr)
        return 2
    failures = []

    def gate(name, got, limit, ok, fmt):
        if got is None:
            failures.append(f"serve {name}: missing from the bench report")
        elif not ok(got, limit):
            failures.append(f"serve {name}: {fmt(got)} violates the bound {fmt(limit)}")
        else:
            print(f"serve {name}: {fmt(got)} within {fmt(limit)} ok")

    ms = lambda ns: f"{ns / 1e6:.1f}ms"
    gate("p99", bench.get("p99_ns"), bounds["p99_ceiling_ns"], lambda g, l: g <= l, ms)
    gate("rps", bench.get("rps"), bounds["rps_floor"], lambda g, l: g >= l, lambda v: f"{v:.1f} req/s")
    gate("errors", bench.get("errors"), bounds["errors_max"], lambda g, l: g <= l, str)
    if bench.get("ok", 0) != bench.get("total", -1):
        failures.append(
            f"serve ok-count: {bench.get('ok')} of {bench.get('total')} requests succeeded"
        )
    deltas = bench.get("serve")
    if deltas is not None:
        # The server's own books, scraped from GET /metrics around the
        # run: no errors, no rejections, and both sides agree on how
        # many requests happened.
        for name in ("server_errors", "rejected_429", "rejected_503"):
            got = deltas.get(name)
            if got is None:
                failures.append(f"serve {name}: missing from the serve deltas")
            elif got != 0:
                failures.append(f"serve {name}: server counted {got}, expected 0")
            else:
                print(f"serve {name}: 0 ok")
        sent, counted = bench.get("total"), deltas.get("requests_run")
        if counted != sent:
            failures.append(
                f"serve requests_run: server counted {counted}, client sent {sent}"
            )
        else:
            print(f"serve requests_run: {counted} matches the client ok")
    else:
        print("serve deltas: absent (no /metrics on the target); skipping the audit")
    if failures:
        print("PERF REGRESSION (serve bounds):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("serve: all bench bounds hold")
    return 0


def main(argv):
    args = []
    max_ratio = 1.30
    absolute = None
    program = None
    serve = None

    def value_of(flag, i):
        if "=" in argv[i]:
            return argv[i].split("=", 1)[1], i
        if i + 1 >= len(argv):
            print(f"error: {flag} needs a value", file=sys.stderr)
            sys.exit(2)
        return argv[i + 1], i + 1

    i = 1
    while i < len(argv):
        a = argv[i]
        if a.startswith("--max-ratio"):
            v, i = value_of("--max-ratio", i)
            max_ratio = float(v)
        elif a.startswith("--absolute"):
            absolute, i = value_of("--absolute", i)
        elif a.startswith("--program"):
            program, i = value_of("--program", i)
        elif a.startswith("--serve"):
            serve, i = value_of("--serve", i)
        elif a.startswith("--"):
            print(f"error: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
        i += 1
    if serve is not None:
        if args:
            print(__doc__, file=sys.stderr)
            return 2
        baselines = absolute or os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "perf_baselines.json"
        )
        return check_serve(baselines, serve)
    if absolute is not None:
        if program is None or len(args) != 1:
            print(__doc__, file=sys.stderr)
            return 2
        return check_absolute(absolute, program, args[0])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline, current = load(args[0]), load(args[1])
    shared = sorted(set(baseline) & set(current), key=str)
    if not shared:
        print("warning: no overlapping ok configs; nothing to compare")
        return 0
    failures = []
    for k in shared:
        old, new = baseline[k], current[k]
        label = "|".join(str(p) for p in k)
        if k[-1] == "virtual":
            # Deterministic by contract: exact equality, not a ratio.
            if old.get("virtual_wall_ns") != new.get("virtual_wall_ns"):
                failures.append(
                    f"{label}: virtual wall changed "
                    f"{old.get('virtual_wall_ns')} -> {new.get('virtual_wall_ns')} "
                    "(virtual time must be deterministic)"
                )
            continue
        old_ns, new_ns = old.get("wall_ns", 0), new.get("wall_ns", 0)
        if old_ns <= 0:
            continue
        ratio = new_ns / old_ns
        if ratio > max_ratio and new_ns - old_ns > NOISE_FLOOR_NS:
            failures.append(
                f"{label}: wall {old_ns / 1e6:.1f}ms -> {new_ns / 1e6:.1f}ms "
                f"({ratio:.2f}x > {max_ratio:.2f}x)"
            )
    print(f"compared {len(shared)} configs against the baseline")
    if failures:
        print("PERF REGRESSION:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("no per-config wall-time regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
