#!/usr/bin/env python3
"""Compare two SweepReport JSON files and fail on wall-time regressions.

Usage: check_perf_regression.py BASELINE.json CURRENT.json [--max-ratio 1.30]

Entries are matched by their full config identity (backend, pes, seed,
latency, barrier, lock, clock). A config regresses when its wall time
grows beyond --max-ratio x the baseline AND by more than an absolute
noise floor (tiny walls are scheduling noise, not signal).

Virtual-time entries (clock == "virtual") are exempt from the wall
check by design: their virtual_wall_ns is deterministic, so it is
compared for *exact* equality instead — any drift there is a semantics
change, not a perf change.

Exit codes: 0 ok, 1 regression found, 2 usage/IO error.
"""

import json
import sys

NOISE_FLOOR_NS = 20_000_000  # ignore regressions below 20ms absolute growth


def key(entry):
    return (
        entry.get("backend"),
        entry.get("pes"),
        entry.get("seed"),
        entry.get("latency"),
        entry.get("barrier"),
        entry.get("lock"),
        entry.get("clock", "wall"),
    )


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {key(e): e for e in report.get("entries", []) if e.get("ok")}


def main(argv):
    args = []
    max_ratio = 1.30
    i = 1
    while i < len(argv):
        a = argv[i]
        if a.startswith("--max-ratio"):
            if "=" in a:
                max_ratio = float(a.split("=", 1)[1])
            else:
                i += 1
                if i >= len(argv):
                    print("error: --max-ratio needs a value", file=sys.stderr)
                    return 2
                max_ratio = float(argv[i])
        elif a.startswith("--"):
            print(f"error: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
        i += 1
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline, current = load(args[0]), load(args[1])
    shared = sorted(set(baseline) & set(current), key=str)
    if not shared:
        print("warning: no overlapping ok configs; nothing to compare")
        return 0
    failures = []
    for k in shared:
        old, new = baseline[k], current[k]
        label = "|".join(str(p) for p in k)
        if k[-1] == "virtual":
            # Deterministic by contract: exact equality, not a ratio.
            if old.get("virtual_wall_ns") != new.get("virtual_wall_ns"):
                failures.append(
                    f"{label}: virtual wall changed "
                    f"{old.get('virtual_wall_ns')} -> {new.get('virtual_wall_ns')} "
                    "(virtual time must be deterministic)"
                )
            continue
        old_ns, new_ns = old.get("wall_ns", 0), new.get("wall_ns", 0)
        if old_ns <= 0:
            continue
        ratio = new_ns / old_ns
        if ratio > max_ratio and new_ns - old_ns > NOISE_FLOOR_NS:
            failures.append(
                f"{label}: wall {old_ns / 1e6:.1f}ms -> {new_ns / 1e6:.1f}ms "
                f"({ratio:.2f}x > {max_ratio:.2f}x)"
            )
    print(f"compared {len(shared)} configs against the baseline")
    if failures:
        print("PERF REGRESSION:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("no per-config wall-time regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
