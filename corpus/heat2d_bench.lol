HAI 1.2
BTW 2-D heat: row-block distribution, halo rows, 5-point stencil
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 1152
I HAS A unew ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 1152
I HAS A hup ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 48
I HAS A hdn ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 48
I HAS A here ITZ SRSLY A NUMBAR
I HAS A nn ITZ SRSLY A NUMBAR
I HAS A ss ITZ SRSLY A NUMBAR
I HAS A ww ITZ SRSLY A NUMBAR
I HAS A ee ITZ SRSLY A NUMBAR
I HAS A idx ITZ SRSLY A NUMBR
I HAS A last ITZ A NUMBR AN ITZ DIFF OF MAH FRENZ AN 1

BTW PE 0 injects da heat in da middle of its block
BOTH SAEM ME AN 0, O RLY?
YA RLY
  u'Z 600 R 100.0
OIC
HUGZ

IM IN YR time UPPIN YR t TIL BOTH SAEM t AN 150
  BTW phase 1: halo rows (insulated plate: default to own edge row)
  IM IN YR halo UPPIN YR j TIL BOTH SAEM j AN 48
    hup'Z j R u'Z j
    hdn'Z j R u'Z SUM OF 1104 AN j
  IM OUTTA YR halo
  BIGGER ME AN 0, O RLY?
  YA RLY
    IM IN YR getup UPPIN YR j TIL BOTH SAEM j AN 48
      TXT MAH BFF DIFF OF ME AN 1, hup'Z j R UR u'Z SUM OF 1104 AN j
    IM OUTTA YR getup
  OIC
  SMALLR ME AN last, O RLY?
  YA RLY
    IM IN YR getdn UPPIN YR j TIL BOTH SAEM j AN 48
      TXT MAH BFF SUM OF ME AN 1, hdn'Z j R UR u'Z j
    IM OUTTA YR getdn
  OIC
  HUGZ

  BTW phase 2: insulated 5-point stencil into unew
  IM IN YR rows UPPIN YR r TIL BOTH SAEM r AN 24
    IM IN YR colz UPPIN YR cc TIL BOTH SAEM cc AN 48
      idx R SUM OF PRODUKT OF r AN 48 AN cc
      here R u'Z idx
      BOTH SAEM r AN 0, O RLY?
      YA RLY
        nn R hup'Z cc
      NO WAI
        nn R u'Z DIFF OF idx AN 48
      OIC
      BOTH SAEM r AN 23, O RLY?
      YA RLY
        ss R hdn'Z cc
      NO WAI
        ss R u'Z SUM OF idx AN 48
      OIC
      BOTH SAEM cc AN 0, O RLY?
      YA RLY
        ww R here
      NO WAI
        ww R u'Z DIFF OF idx AN 1
      OIC
      BOTH SAEM cc AN 47, O RLY?
      YA RLY
        ee R here
      NO WAI
        ee R u'Z SUM OF idx AN 1
      OIC
      unew'Z idx R SUM OF here AN PRODUKT OF 0.125 ...
        AN SUM OF SUM OF DIFF OF nn AN here AN DIFF OF ss AN here ...
        AN SUM OF DIFF OF ww AN here AN DIFF OF ee AN here
    IM OUTTA YR colz
  IM OUTTA YR rows

  BTW phase 3: publish unew, den hug
  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN 1152
    u'Z i R unew'Z i
  IM OUTTA YR copy
  HUGZ
IM OUTTA YR time

I HAS A heat ITZ SRSLY A NUMBAR AN ITZ 0.0
IM IN YR tally UPPIN YR i TIL BOTH SAEM i AN 1152
  heat R SUM OF heat AN u'Z i
IM OUTTA YR tally
VISIBLE "PE " ME " HEAT " heat
KTHXBYE
