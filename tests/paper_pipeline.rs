//! Cross-crate integration: the complete paper workflow through the
//! public facade — every Section VI example, end to end, on multiple
//! PE counts, with both execution backends and the C emitter.
//!
//! Each corpus program is compiled **once** to a `Compiled` artifact;
//! every check below (PE sweep, backend comparison, config ablations,
//! C emission) reuses that artifact — the compile-once/run-many
//! workflow an applications-first PDC course needs.

use icanhas::prelude::*;
use std::time::Duration;

const CORPUS: &[&str] = &[
    corpus::HELLO_PARALLEL,
    corpus::RING_EXAMPLE,
    corpus::LOCKS_EXAMPLE,
    corpus::BARRIER_EXAMPLE,
    corpus::TRYLOCK_EXAMPLE,
];

fn cfg(n: usize) -> RunConfig {
    RunConfig::new(n).timeout(Duration::from_secs(60))
}

#[test]
fn every_corpus_program_runs_on_1_2_4_8_pes() {
    for src in CORPUS {
        let artifact = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let sweep: Vec<RunConfig> = [1usize, 2, 4, 8].into_iter().map(cfg).collect();
        for (c, report) in sweep.iter().zip(engine_for(Backend::Interp).run_many(&artifact, &sweep))
        {
            let report = report.unwrap_or_else(|e| {
                panic!("failed at {} PEs: {e}\n{src}", c.n_pes);
            });
            assert_eq!(report.outputs.len(), c.n_pes);
            assert_eq!(report.stats.len(), c.n_pes);
        }
    }
}

#[test]
fn backends_agree_on_every_corpus_program() {
    for src in CORPUS {
        // One artifact, both engines — the comparison can't be polluted
        // by front-end differences because there is only one front end
        // pass.
        let artifact = compile(src).unwrap();
        let a = engine_for(Backend::Interp).run(&artifact, &cfg(4).seed(9)).unwrap();
        let b = engine_for(Backend::Vm).run(&artifact, &cfg(4).seed(9)).unwrap();
        assert_eq!(a.outputs, b.outputs, "interp/vm divergence on:\n{src}");
    }
}

#[test]
fn every_corpus_program_emits_c() {
    for src in CORPUS {
        let c = compile(src).unwrap().emit_c().unwrap();
        assert!(c.contains("int main(void)"));
        assert_eq!(c.matches('{').count(), c.matches('}').count(), "unbalanced C");
    }
}

#[test]
fn one_artifact_serves_execution_and_c_emission() {
    // The same artifact feeds an engine run and the C emitter.
    let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
    let report = engine_for(Backend::Vm).run(&artifact, &cfg(4)).unwrap();
    assert_eq!(report.n_pes(), 4);
    let c = artifact.emit_c().unwrap();
    assert!(c.contains("shmem_barrier_all();"));
}

#[test]
fn nbody_paper_configuration_16_pes() {
    // The Parallella demo: 16 PEs, 32 particles each, 10 steps.
    let artifact = compile(&corpus::nbody_paper()).unwrap();
    let report = engine_for(Backend::Vm).run(&artifact, &cfg(16).seed(2017)).unwrap();
    assert_eq!(report.n_pes(), 16);
    for (pe, out) in report.outputs.iter().enumerate() {
        assert!(out.starts_with(&format!("HAI ITZ {pe} I HAS PARTICLZ 2 MUV\n")));
        // 32 final particle positions, all finite.
        let positions: Vec<&str> = out.lines().skip(2).collect();
        assert_eq!(positions.len(), 32);
        for line in positions {
            for tok in line.split_whitespace() {
                let v: f64 = tok.parse().expect("numeric position");
                assert!(v.is_finite());
            }
        }
    }
    // The all-to-all force phase is remote-get dominated; the report
    // proves it without instrumenting the program.
    assert!(report.stats[0].remote_gets > 0);
}

#[test]
fn nbody_cray_analog_32_pes() {
    // Scaling past the Parallella: 32 PEs (Cray-direction analog),
    // smaller per-PE problem to keep test time sane.
    let artifact = compile(&corpus::nbody_source(4, 2)).unwrap();
    let report = engine_for(Backend::Vm).run(&artifact, &cfg(32)).unwrap();
    assert_eq!(report.n_pes(), 32);
}

#[test]
fn latency_models_do_not_change_results() {
    // Mesh/flat latency shifts time, never values: one artifact, a
    // run_many sweep over the latency models.
    let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
    let sweep = vec![
        cfg(4).seed(5),
        cfg(4).seed(5).latency(LatencyModel::epiphany16()),
        cfg(4).seed(5).latency(LatencyModel::xc40()),
    ];
    let reports = engine_for(Backend::Interp).run_many(&artifact, &sweep);
    let baseline = reports[0].as_ref().unwrap();
    for (c, r) in sweep.iter().zip(&reports).skip(1) {
        assert_eq!(
            baseline.outputs,
            r.as_ref().unwrap().outputs,
            "{:?} changed program semantics",
            c.latency
        );
    }
}

#[test]
fn barrier_algorithms_do_not_change_results() {
    let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
    let engine = engine_for(Backend::Interp);
    let a = engine.run(&artifact, &cfg(8).seed(5)).unwrap();
    let b = engine.run(&artifact, &cfg(8).seed(5).barrier(BarrierKind::Dissemination)).unwrap();
    assert_eq!(a.outputs, b.outputs);
}

#[test]
fn lock_algorithms_do_not_change_results() {
    let artifact = compile(corpus::LOCKS_EXAMPLE).unwrap();
    let engine = engine_for(Backend::Interp);
    let a = engine.run(&artifact, &cfg(8).seed(5)).unwrap();
    let b = engine.run(&artifact, &cfg(8).seed(5).lock(LockKind::Ticket)).unwrap();
    assert_eq!(a.outputs, b.outputs);
}

#[test]
fn run_source_shim_matches_engine_path() {
    // Backward compatibility: the one-shot shim must agree with the
    // artifact API it wraps.
    for backend in [Backend::Interp, Backend::Vm] {
        let shim = run_source(corpus::BARRIER_EXAMPLE, cfg(4).seed(7).backend(backend)).unwrap();
        let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
        let report = engine_for(backend).run(&artifact, &cfg(4).seed(7)).unwrap();
        assert_eq!(shim, report.outputs);
    }
}
