//! Cross-crate integration: the complete paper workflow through the
//! public facade — every Section VI example, end to end, on multiple
//! PE counts, with both execution backends and the C emitter.

use icanhas::prelude::*;
use std::time::Duration;

fn cfg(n: usize) -> RunConfig {
    RunConfig::new(n).timeout(Duration::from_secs(60))
}

#[test]
fn every_corpus_program_runs_on_1_2_4_8_pes() {
    for src in [
        corpus::HELLO_PARALLEL,
        corpus::RING_EXAMPLE,
        corpus::LOCKS_EXAMPLE,
        corpus::BARRIER_EXAMPLE,
        corpus::TRYLOCK_EXAMPLE,
    ] {
        for n in [1usize, 2, 4, 8] {
            let outs = run_source(src, cfg(n)).unwrap_or_else(|e| {
                panic!("failed at {n} PEs: {e}\n{src}");
            });
            assert_eq!(outs.len(), n);
        }
    }
}

#[test]
fn backends_agree_on_every_corpus_program() {
    for src in [
        corpus::HELLO_PARALLEL,
        corpus::RING_EXAMPLE,
        corpus::LOCKS_EXAMPLE,
        corpus::BARRIER_EXAMPLE,
        corpus::TRYLOCK_EXAMPLE,
    ] {
        let a = run_source(src, cfg(4).seed(9)).unwrap();
        let b = run_source(src, cfg(4).seed(9).backend(Backend::Vm)).unwrap();
        assert_eq!(a, b, "interp/vm divergence on:\n{src}");
    }
}

#[test]
fn every_corpus_program_emits_c() {
    for src in [
        corpus::HELLO_PARALLEL,
        corpus::RING_EXAMPLE,
        corpus::LOCKS_EXAMPLE,
        corpus::BARRIER_EXAMPLE,
        corpus::TRYLOCK_EXAMPLE,
    ] {
        let c = compile_to_c(src).unwrap();
        assert!(c.contains("int main(void)"));
        assert_eq!(c.matches('{').count(), c.matches('}').count(), "unbalanced C");
    }
}

#[test]
fn nbody_paper_configuration_16_pes() {
    // The Parallella demo: 16 PEs, 32 particles each, 10 steps.
    let src = corpus::nbody_paper();
    let outs = run_source(&src, cfg(16).backend(Backend::Vm).seed(2017)).unwrap();
    assert_eq!(outs.len(), 16);
    for (pe, out) in outs.iter().enumerate() {
        assert!(out.starts_with(&format!("HAI ITZ {pe} I HAS PARTICLZ 2 MUV\n")));
        // 32 final particle positions, all finite.
        let positions: Vec<&str> = out.lines().skip(2).collect();
        assert_eq!(positions.len(), 32);
        for line in positions {
            for tok in line.split_whitespace() {
                let v: f64 = tok.parse().expect("numeric position");
                assert!(v.is_finite());
            }
        }
    }
}

#[test]
fn nbody_cray_analog_32_pes() {
    // Scaling past the Parallella: 32 PEs (Cray-direction analog),
    // smaller per-PE problem to keep test time sane.
    let src = corpus::nbody_source(4, 2);
    let outs = run_source(&src, cfg(32).backend(Backend::Vm)).unwrap();
    assert_eq!(outs.len(), 32);
}

#[test]
fn latency_models_do_not_change_results() {
    // Mesh/flat latency shifts time, never values.
    let baseline = run_source(corpus::BARRIER_EXAMPLE, cfg(4).seed(5)).unwrap();
    for lat in [LatencyModel::epiphany16(), LatencyModel::xc40()] {
        let with_lat =
            run_source(corpus::BARRIER_EXAMPLE, cfg(4).seed(5).latency(lat)).unwrap();
        assert_eq!(baseline, with_lat, "{lat:?} changed program semantics");
    }
}

#[test]
fn barrier_algorithms_do_not_change_results() {
    let mut cfg_d = cfg(8).seed(5);
    cfg_d.barrier = BarrierKind::Dissemination;
    let a = run_source(corpus::BARRIER_EXAMPLE, cfg(8).seed(5)).unwrap();
    let b = run_source(corpus::BARRIER_EXAMPLE, cfg_d).unwrap();
    assert_eq!(a, b);
}

#[test]
fn lock_algorithms_do_not_change_results() {
    let mut cfg_t = cfg(8).seed(5);
    cfg_t.lock = LockKind::Ticket;
    let a = run_source(corpus::LOCKS_EXAMPLE, cfg(8).seed(5)).unwrap();
    let b = run_source(corpus::LOCKS_EXAMPLE, cfg_t).unwrap();
    assert_eq!(a, b);
}
