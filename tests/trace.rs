//! Acceptance suite for the `lol-trace` subsystem: the same program
//! must emit the same ordered per-PE event sequence (timestamps aside)
//! on all three backends, and `clock=virtual` must produce
//! byte-identical, machine-independent virtual walls that still
//! distinguish interconnect models.

use icanhas::prelude::*;
use std::time::Duration;

fn cfg(n: usize) -> RunConfig {
    RunConfig::new(n).seed(7).timeout(Duration::from_secs(60)).trace(true)
}

/// The deterministic corpus programs every backend can run (no
/// `WHATEVR`, whose stream differs on the C stub — tracing doesn't care
/// about values, but output assertions elsewhere do).
fn traceable_corpus() -> Vec<(&'static str, String)> {
    vec![
        ("hello", corpus::HELLO_PARALLEL.to_string()),
        ("ring", corpus::RING_EXAMPLE.to_string()),
        ("barrier", corpus::BARRIER_EXAMPLE.to_string()),
        // Lock ops trace one event per acquire/release on every
        // backend (never per spin retry), so lock programs diff too.
        ("locks", corpus::LOCKS_EXAMPLE.to_string()),
        ("heat2d", corpus::heat2d_source(2, 4, 3)),
        ("heat2d_ci", corpus::heat2d_source(4, 8, 20)),
    ]
}

/// The tentpole acceptance criterion: identical per-PE event streams —
/// kind, peer, symmetric address and byte count, in order — from the
/// interpreter, the VM, the discrete-event simulator and (when a C
/// compiler exists) the C stub.
#[test]
fn corpus_event_streams_agree_across_all_engines() {
    let c_engine = engine_for(Backend::C);
    for (name, src) in traceable_corpus() {
        let artifact = compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for n_pes in [1usize, 2, 4] {
            let config = cfg(n_pes);
            let interp = InterpEngine.run(&artifact, &config).unwrap();
            let vm = VmEngine.run(&artifact, &config).unwrap();
            let sim = SimEngine.run(&artifact, &config).unwrap();
            let isig = interp.trace.as_ref().expect("interp trace").signature();
            assert_eq!(
                isig,
                vm.trace.as_ref().expect("vm trace").signature(),
                "{name}: interp/vm event streams diverge at {n_pes} PEs"
            );
            assert_eq!(
                isig,
                sim.trace.as_ref().expect("sim trace").signature(),
                "{name}: sim event stream diverges at {n_pes} PEs"
            );
            assert_eq!(isig.len(), n_pes, "{name}: one stream per PE");
            if c_engine.available() {
                let c = c_engine.run(&artifact, &config.clone().backend(Backend::C)).unwrap();
                assert_eq!(
                    isig,
                    c.trace.as_ref().expect("c trace").signature(),
                    "{name}: C event stream diverges at {n_pes} PEs"
                );
            }
        }
    }
}

/// The `trace=<cap>@<stride>` budget: a mega-scale sim run keeps its
/// trace bounded by sampling every stride-th PE under a global event
/// cap, and accounts everything it couldn't keep as `dropped` — so a
/// 1M-PE trace can't OOM the tracer and the loss is visible, never
/// silent.
#[test]
fn trace_budget_bounds_mega_scale_sim_traces() {
    let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
    let spec: TraceSpec = "1k@8".parse().unwrap();
    let n_pes = 256usize;
    let config = RunConfig::new(n_pes)
        .seed(7)
        .clock(ClockMode::Virtual)
        .trace_spec(spec)
        .timeout(Duration::from_secs(120));
    let capped = SimEngine.run(&artifact, &config).unwrap();
    let trace = capped.trace.as_ref().expect("trace_spec implies tracing");
    // Only every 8th PE records; the rest contribute `dropped` counts.
    let sig = trace.signature();
    for (pe, stream) in sig.iter().enumerate() {
        if pe % 8 != 0 {
            assert!(stream.is_empty(), "PE {pe} should be sampled out");
        }
    }
    assert!(sig[0].len() > 1, "sampled PEs still record");
    assert!(trace.total_events() <= 1024, "global cap holds");
    assert!(trace.total_dropped() > 0, "sampled-out events are accounted, not lost");
    // The budget is observation-only: outputs and the virtual wall
    // match an uncapped run exactly.
    let uncapped = RunConfig::new(n_pes)
        .seed(7)
        .clock(ClockMode::Virtual)
        .trace(true)
        .timeout(Duration::from_secs(120));
    let full = SimEngine.run(&artifact, &uncapped).unwrap();
    assert_eq!(capped.outputs, full.outputs);
    assert_eq!(capped.virtual_wall, full.virtual_wall);
}

/// Tracing must never change results: outputs and stats are identical
/// with and without the recorder.
#[test]
fn tracing_is_observation_only() {
    let artifact = compile(&corpus::heat2d_source(2, 4, 3)).unwrap();
    let traced = InterpEngine.run(&artifact, &cfg(4)).unwrap();
    let plain = InterpEngine.run(&artifact, &cfg(4).trace(false)).unwrap();
    assert_eq!(traced.outputs, plain.outputs);
    assert_eq!(traced.stats, plain.stats);
    assert!(traced.trace.is_some() && plain.trace.is_none());
}

/// Virtual-time acceptance: byte-identical virtual walls across
/// repeated runs and across engines, with mesh ≠ flat orderings
/// preserved (the machine-independent interconnect comparison the
/// ROADMAP asked for).
#[test]
fn virtual_walls_are_deterministic_and_distinguish_models() {
    let artifact = compile(&corpus::heat2d_source(4, 8, 20)).unwrap();
    let mesh: LatencyModel = "mesh:2".parse().unwrap();
    let flat: LatencyModel = "flat:1000".parse().unwrap();
    let mut walls = Vec::new();
    for latency in [mesh, flat] {
        let config = RunConfig::new(4)
            .seed(3)
            .timeout(Duration::from_secs(60))
            .clock(ClockMode::Virtual)
            .latency(latency);
        let mut per_engine = Vec::new();
        for backend in Backend::ALL {
            let engine = engine_for(backend);
            if !engine.available() {
                continue;
            }
            let config = config.clone().backend(backend);
            let a = engine.run(&artifact, &config).unwrap();
            let b = engine.run(&artifact, &config).unwrap();
            let (wa, wb) = (a.virtual_wall.expect("virtual wall"), b.virtual_wall.unwrap());
            assert_eq!(wa, wb, "{backend:?} under {latency}: virtual wall must reproduce");
            assert!(wa > Duration::ZERO);
            per_engine.push((backend, wa));
        }
        // Every backend accounts the same virtual time for the same
        // program — the cross-backend half of machine-independence.
        for pair in per_engine.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "{:?} and {:?} disagree on the virtual wall under {latency}",
                pair[0].0, pair[1].0
            );
        }
        walls.push(per_engine[0].1);
    }
    assert_ne!(walls[0], walls[1], "mesh and flat must order differently in virtual time");
}

/// Lock contention must not leak scheduling into virtual time: every
/// lock op costs one fixed charge (the C stub suppresses the AMOs its
/// spin loops retry), so even the lock-contention corpus program has
/// byte-identical virtual walls across runs and backends.
#[test]
fn lock_contention_keeps_virtual_walls_deterministic() {
    let artifact = compile(corpus::LOCKS_EXAMPLE).unwrap();
    let config = RunConfig::new(4)
        .seed(5)
        .timeout(Duration::from_secs(60))
        .clock(ClockMode::Virtual)
        .latency("flat:1000".parse().unwrap());
    let mut walls = Vec::new();
    for backend in Backend::ALL {
        let engine = engine_for(backend);
        if !engine.available() {
            continue;
        }
        let config = config.clone().backend(backend);
        let a = engine.run(&artifact, &config).unwrap().virtual_wall.unwrap();
        let b = engine.run(&artifact, &config).unwrap().virtual_wall.unwrap();
        assert_eq!(a, b, "{backend:?}: lock retries leaked into virtual time");
        walls.push((backend, a));
    }
    for pair in walls.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "{:?} and {:?} disagree on the locks example's virtual wall",
            pair[0].0, pair[1].0
        );
    }
}

/// Replaying a virtual-time trace under the run's own latency model
/// reproduces the virtual wall *exactly*; replaying under a different
/// model predicts the other interconnect without re-running.
#[test]
fn critical_path_replay_reproduces_the_virtual_wall() {
    let artifact = compile(&corpus::heat2d_source(2, 4, 3)).unwrap();
    let mesh: LatencyModel = "mesh:2".parse().unwrap();
    let flat: LatencyModel = "flat:1000".parse().unwrap();
    let run = |latency: LatencyModel| {
        InterpEngine.run(&artifact, &cfg(4).clock(ClockMode::Virtual).latency(latency)).unwrap()
    };
    let under_mesh = run(mesh);
    let trace = under_mesh.trace.as_ref().unwrap();
    let replayed = trace.critical_path(|a, b| mesh.delay_ns(a, b));
    assert_eq!(
        Duration::from_nanos(replayed),
        under_mesh.virtual_wall.unwrap(),
        "replay under the run's own model must match its virtual wall"
    );
    // What-if: the same trace replayed under flat predicts the flat
    // run's virtual wall (same event streams, different cost model).
    let predicted_flat = trace.critical_path(|a, b| flat.delay_ns(a, b));
    let actual_flat = run(flat).virtual_wall.unwrap();
    assert_eq!(Duration::from_nanos(predicted_flat), actual_flat);
}

/// The `clock=` sweep axis: virtual walls ride the byte-stable JSON
/// (they are deterministic), identical at any worker count — the
/// jobs=1 vs jobs=N half of the determinism acceptance criterion.
#[test]
fn sweep_virtual_walls_are_byte_identical_across_worker_counts() {
    let artifact = compile(&corpus::heat2d_source(2, 4, 3)).unwrap();
    let spec = || {
        SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(60)))
            .pes([1, 2, 4])
            .latencies(["mesh:2".parse().unwrap(), "flat:1000".parse().unwrap()])
            .clocks([ClockMode::Virtual])
            .backends([Backend::Interp, Backend::Vm])
    };
    let serial = spec().jobs(1).run(&artifact);
    let racing = spec().jobs(4).run(&artifact);
    assert!(serial.all_ok(), "{}", serial.speedup_table());
    let stable = serial.to_json_stable();
    assert_eq!(stable, racing.to_json_stable(), "virtual walls must not depend on scheduling");
    assert!(stable.contains("\"virtual_wall_ns\""), "stable JSON carries virtual walls");
    assert!(stable.contains("\"clock\": \"virtual\""));
    // Each (backend, latency) group derives speedups from virtual
    // walls; the 1-PE baseline exists, so every entry has the column.
    assert!(serial.entries.iter().all(|e| e.speedup.is_some()));
}

/// Trace renderings are well-formed for a real multi-PE run: one Gantt
/// lane and one SVG lane per PE, a communication matrix that matches
/// the halo-exchange shape, and a flat event log.
#[test]
fn renderings_cover_every_pe_and_the_halo_pattern() {
    let artifact = compile(&corpus::heat2d_source(2, 4, 3)).unwrap();
    let report = InterpEngine.run(&artifact, &cfg(4)).unwrap();
    let trace = report.trace.as_ref().unwrap();
    assert!(trace.total_events() > 0);
    assert_eq!(trace.total_dropped(), 0);
    let gantt = trace.gantt(80);
    let svg = trace.to_svg();
    for pe in 0..4 {
        assert!(gantt.contains(&format!("PE {pe:>3}")), "{gantt}");
        assert!(svg.contains(&format!("PE {pe}")));
    }
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    // Row-block heat2d: every PE only talks to its neighbours.
    let m = trace.comm_matrix();
    for from in 0..4usize {
        for to in 0..4usize {
            let talks = m.ops_at(from, to) > 0;
            let neighbours = from.abs_diff(to) == 1;
            assert_eq!(talks, neighbours, "PE {from} -> PE {to} unexpected traffic");
        }
    }
    let log = trace.event_log();
    assert!(log.contains("Get") && log.contains("BarrierEnter"), "{log}");
}

/// `RunReport::effective_wall` is what sweeps consume: real wall on
/// the wall clock, virtual wall under the virtual clock.
#[test]
fn effective_wall_switches_with_the_clock() {
    let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
    let wall = InterpEngine.run(&artifact, &RunConfig::new(2)).unwrap();
    assert_eq!(wall.effective_wall(), wall.wall);
    assert!(wall.virtual_wall.is_none());
    let virt = InterpEngine.run(&artifact, &RunConfig::new(2).clock(ClockMode::Virtual)).unwrap();
    assert_eq!(virt.effective_wall(), virt.virtual_wall.unwrap());
}
