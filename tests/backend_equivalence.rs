//! Property: for *generated* well-formed programs, the interpreter and
//! the bytecode VM produce byte-identical output.
//!
//! The corpus tests pin known programs; this generates thousands of
//! fresh ones — random arithmetic over a fixed variable pool, nested
//! conditionals, bounded loops, shared scalar/array traffic — and
//! cross-checks the two execution engines against each other. Division
//! is excluded so generated programs cannot fault (fault *equivalence*
//! is tested separately below).

use icanhas::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

/// Arithmetic/boolean expression over declared vars `v0..v4`, the
/// shared scalar `s0`, array reads `a0'Z k`, and NUMBR literals.
fn gen_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|n| n.to_string()),
        (0usize..5).prop_map(|i| format!("v{i}")),
        Just("s0".to_string()),
        (0usize..8).prop_map(|i| format!("a0'Z {i}")),
        Just("ME".to_string()),
        Just("MAH FRENZ".to_string()),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec![
                    "SUM OF",
                    "DIFF OF",
                    "PRODUKT OF",
                    "BIGGR OF",
                    "SMALLR OF"
                ]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| format!("{op} {a} AN {b}")),
            (
                prop::sample::select(vec!["BOTH SAEM", "DIFFRINT", "BIGGER", "SMALLR"]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| format!("{op} {a} AN {b}")),
            (
                prop::sample::select(vec!["BOTH OF", "EITHER OF", "WON OF"]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| format!("{op} {a} AN {b}")),
            inner.clone().prop_map(|a| format!("NOT {a}")),
            inner.clone().prop_map(|a| format!("SQUAR OF {a}")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("SMOOSH {a} AN {b} MKAY")),
        ]
    })
}

/// A statement block; `depth` bounds nesting, `loop_id` keeps loop
/// variables unique.
fn gen_stmts(depth: u32) -> BoxedStrategy<String> {
    let simple = prop_oneof![
        (0usize..5, gen_expr()).prop_map(|(i, e)| format!("v{i} R {e}")),
        gen_expr().prop_map(|e| format!("VISIBLE {e}")),
        gen_expr().prop_map(|e| format!("s0 R {e}")),
        (0usize..8, gen_expr()).prop_map(|(i, e)| format!("a0'Z {i} R {e}")),
        gen_expr().prop_map(|e| e), // bare expression: sets IT
    ];
    if depth == 0 {
        return proptest::collection::vec(simple, 1..4).prop_map(|v| v.join("\n")).boxed();
    }
    let nested = prop_oneof![
        4 => proptest::collection::vec(simple.clone(), 1..4).prop_map(|v| v.join("\n")),
        1 => (gen_expr(), gen_stmts(depth - 1), gen_stmts(depth - 1)).prop_map(
            |(c, t, e)| format!("{c}, O RLY?\nYA RLY\n{t}\nNO WAI\n{e}\nOIC")
        ),
        1 => (1u32..4, gen_stmts(depth - 1), any::<u32>()).prop_map(|(n, body, salt)| {
            let lv = format!("i{}", salt % 1000);
            format!(
                "IM IN YR lp UPPIN YR {lv} TIL BOTH SAEM {lv} AN {n}\n{body}\nIM OUTTA YR lp"
            )
        }),
    ];
    nested.boxed()
}

fn gen_program() -> impl Strategy<Value = String> {
    (proptest::collection::vec(-50i64..50, 5), gen_stmts(2), gen_stmts(2)).prop_map(
        |(inits, body1, body2)| {
            let decls: String =
                inits.iter().enumerate().map(|(i, v)| format!("I HAS A v{i} ITZ {v}\n")).collect();
            format!(
                "HAI 1.2\n\
                 WE HAS A s0 ITZ SRSLY A NUMBR\n\
                 I HAS A a0 ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n\
                 {decls}{body1}\n{body2}\n\
                 VISIBLE v0 \" \" v1 \" \" v2 \" \" v3 \" \" v4 \" \" s0 \" \" IT\n\
                 KTHXBYE\n"
            )
        },
    )
}

fn run_both(src: &str, n_pes: usize) -> (Result<Vec<String>, String>, Result<Vec<String>, String>) {
    let cfg = RunConfig::new(n_pes).timeout(Duration::from_secs(20)).seed(17);
    // One shared artifact: both engines execute the identical program.
    let artifact = match compile(src) {
        Ok(a) => a,
        Err(e) => {
            let e = e.to_string();
            return (Err(e.clone()), Err(e));
        }
    };
    let a = engine_for(Backend::Interp)
        .run(&artifact, &cfg)
        .map(|r| r.outputs)
        .map_err(|e| e.to_string());
    let b =
        engine_for(Backend::Vm).run(&artifact, &cfg).map(|r| r.outputs).map_err(|e| e.to_string());
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-PE equivalence over the generated sequential+shared space.
    #[test]
    fn generated_programs_agree_1_pe(src in gen_program()) {
        let (a, b) = run_both(&src, 1);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "divergence on:\n{}", src),
            (Err(_), Err(_)) => {} // both faulted (e.g. YARN maths): fine
            (a, b) => prop_assert!(false, "one backend faulted: {:?} vs {:?}\n{}", a, b, src),
        }
    }

    /// Multi-PE equivalence: same programs, 4 PEs. Generated programs
    /// contain no barriers inside conditionals, so they are
    /// deadlock-free by construction.
    #[test]
    fn generated_programs_agree_4_pes(src in gen_program()) {
        let (a, b) = run_both(&src, 4);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "divergence on:\n{}", src),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "one backend faulted: {:?} vs {:?}\n{}", a, b, src),
        }
    }

    /// Fault equivalence: division by a generated (possibly zero)
    /// denominator either succeeds identically or fails on both.
    #[test]
    fn division_faults_agree(num in -20i64..20, den in -3i64..3) {
        let src = format!(
            "HAI 1.2\nVISIBLE QUOSHUNT OF {num} AN {den}\nVISIBLE MOD OF {num} AN {den}\nKTHXBYE"
        );
        let (a, b) = run_both(&src, 1);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(ea), Err(eb)) => {
                prop_assert!(ea.contains("RUN0001"), "{}", ea);
                prop_assert!(eb.contains("RUN0001"), "{}", eb);
            }
            (a, b) => prop_assert!(false, "fault divergence: {:?} vs {:?}", a, b),
        }
    }
}

// ---------------------------------------------------------------------
// C engine: generated differentials (cc-gated, so fewer cases)
// ---------------------------------------------------------------------

/// Integer-only expression: the subset whose semantics are defined
/// identically on every backend (no YARN weak-casts, no floats, no
/// division). `depth` bounds nesting.
fn int_expr(rng: &mut proptest::TestRng, depth: u32) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => (rng.below(200) as i64 - 100).to_string(),
            1 => "ME".to_string(),
            2 => "MAH FRENZ".to_string(),
            _ => (rng.below(7) as i64).to_string(),
        };
    }
    let ops = ["SUM OF", "DIFF OF", "PRODUKT OF", "BIGGR OF", "SMALLR OF"];
    let op = ops[rng.below(ops.len() as u64) as usize];
    format!("{op} {} AN {}", int_expr(rng, depth - 1), int_expr(rng, depth - 1))
}

/// ~24 generated integer-arithmetic programs, each run on all three
/// engines at 1 and 3 PEs: the C binary's per-PE output must equal the
/// substrate engines' byte-for-byte. Skips when no C compiler exists
/// (the binary is what's under test).
#[test]
fn generated_int_programs_agree_with_c_engine() {
    let c_engine = engine_for(Backend::C);
    if !c_engine.available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let mut rng = proptest::TestRng::from_seed(0xC0DE_CAFE);
    for case in 0..24 {
        let body: String = (0..3).map(|_| format!("VISIBLE {}\n", int_expr(&mut rng, 3))).collect();
        let src = format!("HAI 1.2\n{body}KTHXBYE\n");
        let artifact = compile(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        for n_pes in [1usize, 3] {
            let cfg = RunConfig::new(n_pes).seed(case as u64).timeout(Duration::from_secs(30));
            let interp = InterpEngine.run(&artifact, &cfg).unwrap().outputs;
            let vm = VmEngine.run(&artifact, &cfg).unwrap().outputs;
            let c = c_engine.run(&artifact, &cfg).unwrap().outputs;
            assert_eq!(interp, vm, "case {case} at {n_pes} PEs:\n{src}");
            assert_eq!(interp, c, "case {case}: C diverges at {n_pes} PEs:\n{src}");
        }
    }
}

/// Division faults must agree across all three engines: either every
/// backend succeeds with identical output, or every backend reports
/// RUN0001.
#[test]
fn division_faults_agree_with_c_engine() {
    let c_engine = engine_for(Backend::C);
    if !c_engine.available() {
        eprintln!("skipping: no C compiler");
        return;
    }
    for den in [-2i64, -1, 0, 1, 3] {
        let src = format!("HAI 1.2\nVISIBLE QUOSHUNT OF 7 AN {den}\nKTHXBYE\n");
        let artifact = compile(&src).unwrap();
        let cfg = RunConfig::new(2).timeout(Duration::from_secs(30));
        let interp = InterpEngine.run(&artifact, &cfg);
        let c = c_engine.run(&artifact, &cfg);
        match (interp, c) {
            (Ok(a), Ok(b)) => assert_eq!(a.outputs, b.outputs, "den={den}"),
            (Err(ea), Err(eb)) => {
                assert!(ea.to_string().contains("RUN0001"), "den={den}: {ea}");
                assert!(eb.to_string().contains("RUN0001"), "den={den}: {eb}");
            }
            (a, b) => panic!(
                "den={den}: fault divergence: interp={:?} c={:?}",
                a.map(|r| r.outputs),
                b.map(|r| r.outputs)
            ),
        }
    }
}
