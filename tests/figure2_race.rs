//! Experiment F2 (negative space) — what `HUGZ` is *for*.
//!
//! The paper warns: "Without synchronization, the program cannot
//! prevent fast PEs from calculating the sum before their b value has
//! been updated by the remote PE." This test pins down exactly that
//! contract:
//!
//! * with the barrier, the result is always the fresh value;
//! * without the barrier, every observed value is either the stale
//!   initial value or the fresh one — never garbage (word-granular
//!   atomicity), and the program never crashes.

use icanhas::prelude::*;
use std::time::Duration;

const WITH_HUGZ: &str = "HAI 1.2
WE HAS A b ITZ SRSLY A NUMBR
I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
TXT MAH BFF k, UR b R SUM OF ME AN 100
HUGZ
VISIBLE b
KTHXBYE
";

const WITHOUT_HUGZ: &str = "HAI 1.2
WE HAS A b ITZ SRSLY A NUMBR
I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
TXT MAH BFF k, UR b R SUM OF ME AN 100
VISIBLE b
KTHXBYE
";

fn cfg(n: usize) -> RunConfig {
    RunConfig::new(n).timeout(Duration::from_secs(30))
}

#[test]
fn with_barrier_always_fresh() {
    // Compile once, run 25 rounds off the artifact.
    let n = 8;
    let artifact = compile(WITH_HUGZ).unwrap();
    let sweep: Vec<RunConfig> = (0..25).map(|_| cfg(n)).collect();
    for (round, report) in
        engine_for(Backend::Interp).run_many(&artifact, &sweep).into_iter().enumerate()
    {
        for (me, o) in report.unwrap().outputs.iter().enumerate() {
            let left = (me + n - 1) % n;
            assert_eq!(
                o,
                &format!("{}\n", left + 100),
                "round {round}: HUGZ failed to order the put"
            );
        }
    }
}

#[test]
fn without_barrier_stale_or_fresh_never_garbage() {
    let n = 8;
    let mut stale_seen = 0usize;
    let artifact = compile(WITHOUT_HUGZ).unwrap();
    let sweep: Vec<RunConfig> = (0..25).map(|_| cfg(n)).collect();
    for report in engine_for(Backend::Interp).run_many(&artifact, &sweep) {
        let outs = report.unwrap().outputs;
        for (me, o) in outs.iter().enumerate() {
            let left = (me + n - 1) % n;
            let v: i64 = o.trim().parse().expect("numeric");
            let fresh = (left + 100) as i64;
            assert!(
                v == fresh || v == 0,
                "PE {me} observed torn/garbage value {v} (expected 0 or {fresh})"
            );
            if v == 0 {
                stale_seen += 1;
            }
        }
    }
    // We cannot *require* the race to fire (that would be flaky), but
    // record it when it does: this println is the teaching artifact.
    println!("stale reads observed without HUGZ: {stale_seen} / {}", 25 * n);
}

#[test]
fn sema_warns_about_conditional_hugz() {
    // The lint that catches the classic deadlock before it runs.
    let (_, _, warnings) =
        check("HAI 1.2\nBOTH SAEM ME AN 0, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE").unwrap();
    assert!(
        warnings.iter().any(|w| w.contains("SEM0012")),
        "expected the conditional-barrier lint: {warnings:?}"
    );
}

#[test]
fn actual_conditional_hugz_deadlock_is_caught_by_watchdog() {
    // And if you run it anyway, the watchdog turns the hang into a
    // diagnosed failure instead of a frozen terminal.
    let src = "HAI 1.2\nBOTH SAEM ME AN 0, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE";
    let err = run_source(src, cfg(2).timeout(Duration::from_millis(300))).unwrap_err();
    match err {
        LolError::Runtime(e) => {
            assert!(e.message.contains("RUN0191") || e.message.contains("RUN0190"), "{e}");
        }
        other => panic!("expected runtime failure, got {other:?}"),
    }
}
