//! Sweep-orchestrator integration tests: determinism across worker
//! counts, stable-JSON byte-identity, and (ignored by default) the
//! wall-clock win from running independent configs concurrently.

use icanhas::prelude::*;
use std::time::{Duration, Instant};

/// A workload whose *duration* varies per config: the seeded `WHATEVR`
/// picks the iteration count, so different seeds/PE counts finish at
/// different times and a racing worker pool completes them out of
/// order — exactly what the config-order result contract must absorb.
const RANDOM_DURATION: &str = "\
HAI 1.2
I HAS A n ITZ SUM OF 2000 AN MOD OF WHATEVR AN 8000
I HAS A acc ITZ SRSLY A NUMBR AN ITZ 0
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN n
  acc R SUM OF acc AN MOD OF PRODUKT OF i AN 7 AN 13
IM OUTTA YR l
VISIBLE \"PE \" ME \" DID \" n \" ITERASHUNS, ACC \" acc
KTHXBYE
";

fn spec() -> SweepSpec {
    SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(60)))
        .pes([1, 2, 3, 4])
        .seeds([11, 12, 13])
        .backends([Backend::Interp, Backend::Vm])
}

#[test]
fn sweep_is_deterministic_across_job_counts() {
    let artifact = compile(RANDOM_DURATION).unwrap();
    let serial = spec().jobs(1).run(&artifact);
    let racing = spec().jobs(4).run(&artifact);
    assert_eq!(serial.entries.len(), 24);
    assert_eq!(racing.entries.len(), 24);
    for (i, (a, b)) in serial.entries.iter().zip(&racing.entries).enumerate() {
        // Same config in the same slot...
        assert_eq!(a.config.n_pes, b.config.n_pes, "slot {i}");
        assert_eq!(a.config.seed, b.config.seed, "slot {i}");
        assert_eq!(a.config.backend, b.config.backend, "slot {i}");
        // ...with identical per-PE outputs and communication shape.
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.outputs, rb.outputs, "slot {i}");
        assert_eq!(ra.stats, rb.stats, "slot {i}");
    }
    // The timing-free JSON renderings are byte-identical.
    assert_eq!(serial.to_json_stable(), racing.to_json_stable());
    // And a re-run of the same sweep reproduces them again.
    let again = spec().jobs(4).run(&artifact);
    assert_eq!(again.to_json_stable(), racing.to_json_stable());
}

#[test]
fn sweep_interleaves_backends_without_cross_talk() {
    // Interp and VM configs race on the same artifact (and trigger the
    // lazy VM lowering concurrently); outputs must still match the
    // engine-equivalence contract pairwise.
    let artifact = compile(RANDOM_DURATION).unwrap();
    let report = spec().jobs(6).run(&artifact);
    let (interp, vm) = report.entries.split_at(12);
    for (a, b) in interp.iter().zip(vm) {
        assert_eq!(a.config.n_pes, b.config.n_pes);
        assert_eq!(a.config.seed, b.config.seed);
        assert_eq!(
            a.result.as_ref().unwrap().outputs,
            b.result.as_ref().unwrap().outputs,
            "engines diverge at {} PEs seed {}",
            a.config.n_pes,
            a.config.seed
        );
    }
}

/// The checked-in program CI's smoke sweep runs (`corpus/heat2d_4x8.lol`)
/// must stay in sync with the corpus generator it was written from, and
/// the exact CI sweep spec must succeed against it.
#[test]
fn checked_in_heat2d_matches_corpus_and_ci_sweep_passes() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/heat2d_4x8.lol");
    let on_disk = std::fs::read_to_string(path).expect("corpus/heat2d_4x8.lol exists");
    assert_eq!(
        on_disk,
        corpus::heat2d_source(4, 8, 20),
        "regenerate corpus/heat2d_4x8.lol from corpus::heat2d_source(4, 8, 20)"
    );
    let artifact = compile(&on_disk).unwrap();
    // Same matrix as .github/workflows/ci.yml: pes=1..4, both backends.
    let report = SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(60)))
        .pes([1, 2, 3, 4])
        .backends([Backend::Interp, Backend::Vm])
        .jobs(2)
        .run(&artifact);
    assert!(report.all_ok(), "{}", report.speedup_table());
    assert_eq!(report.entries.len(), 8);
}

/// The acceptance matrix for the C backend: the CI 3-backend smoke
/// sweep spec (`pes=1,2,4;backend=interp,vm,c`) against the checked-in
/// heat stencil. On a machine with a C compiler every config must run
/// and agree with interp per config; without one the C entries must
/// degrade to UNSUPPORTED and never count as hard failures.
#[test]
fn three_backend_ci_sweep_runs_or_degrades_cleanly() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/heat2d_4x8.lol");
    let on_disk = std::fs::read_to_string(path).unwrap();
    let artifact = compile(&on_disk).unwrap();
    let spec = SweepSpec::parse(
        "pes=1,2,4;backend=interp,vm,c",
        RunConfig::new(1).timeout(Duration::from_secs(120)),
    )
    .unwrap();
    let report = spec.run(&artifact);
    assert_eq!(report.entries.len(), 9);
    assert_eq!(report.hard_failure_count(), 0, "{}", report.speedup_table());
    let c_available = engine_for(Backend::C).available();
    if c_available {
        assert!(report.all_ok(), "{}", report.speedup_table());
        // Per-config agreement across all three backends (heat2d is
        // deterministic, so the C stub's own RNG plays no part).
        for chunk in report.entries.chunks(3) {
            // entries are grouped per backend, 3 PE counts each
            assert_eq!(chunk.len(), 3);
        }
        for i in 0..3 {
            let interp_hash = report.entries[i].output_hash();
            assert_eq!(interp_hash, report.entries[3 + i].output_hash(), "vm pes idx {i}");
            assert_eq!(interp_hash, report.entries[6 + i].output_hash(), "c pes idx {i}");
        }
        // The cross-backend columns exist for every non-interp entry.
        assert!(report.entries[3..].iter().all(|e| e.vs_interp.is_some()));
    } else {
        assert_eq!(report.unsupported_count(), 3, "{}", report.speedup_table());
        assert_eq!(report.ok_count(), 6);
    }
}

/// The full interconnect matrix (the acceptance sweep for the C
/// backend's latency/barrier/lock support): 4 backends × 2 latency
/// models × 2 barrier algorithms × 2 lock algorithms × 3 PE counts on
/// the checked-in heat stencil. With a C compiler present, **zero**
/// UNSUPPORTED rows; without one, exactly the C quarter degrades. In
/// both cases outputs must not depend on latency/barrier/lock — those
/// knobs change timing, never results.
#[test]
fn full_interconnect_matrix_has_no_unsupported_rows() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/heat2d_4x8.lol");
    let on_disk = std::fs::read_to_string(path).unwrap();
    let artifact = compile(&on_disk).unwrap();
    let spec = SweepSpec::parse(
        "backend=all;latency=flat,mesh;barrier=central,dissem;lock=cas,ticket;pes=1,2,4",
        RunConfig::new(1).timeout(Duration::from_secs(120)),
    )
    .unwrap();
    let report = spec.run(&artifact);
    assert_eq!(report.entries.len(), 4 * 2 * 2 * 2 * 3);
    assert_eq!(report.hard_failure_count(), 0, "{}", report.speedup_table());
    if engine_for(Backend::C).available() {
        assert_eq!(report.unsupported_count(), 0, "{}", report.speedup_table());
        assert!(report.all_ok());
    } else {
        assert_eq!(report.unsupported_count(), 24, "only the C quarter may degrade");
    }
    // heat2d is deterministic: every ok entry — any backend, any
    // latency model, any barrier, any lock — at the same PE count must
    // produce identical output.
    for pes in [1usize, 2, 4] {
        let hashes: Vec<_> = report
            .entries
            .iter()
            .filter(|e| e.config.n_pes == pes && e.result.is_ok())
            .filter_map(|e| e.output_hash())
            .collect();
        assert!(!hashes.is_empty());
        assert!(
            hashes.iter().all(|h| h == &hashes[0]),
            "outputs diverge across the ablation matrix at {pes} PEs"
        );
    }
    // The report JSON groups by the new axes: every combination shows
    // up as its own (barrier, lock) label pair.
    let json = report.to_json_stable();
    for needle in [
        "\"barrier\": \"central\"",
        "\"barrier\": \"dissem\"",
        "\"lock\": \"cas\"",
        "\"lock\": \"ticket\"",
    ] {
        assert!(json.contains(needle), "report JSON lacks {needle}");
    }
}

/// Resumable sweeps: a previous `--json-lines` file's ok entries are
/// skipped, failed/missing entries re-run, and the combined picture is
/// a complete matrix.
#[test]
fn resume_skips_finished_configs_and_reruns_the_rest() {
    use std::sync::Mutex;
    let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
    let spec = || {
        SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(60)))
            .pes([1, 2, 3, 4])
            .backends([Backend::Interp, Backend::Vm])
    };
    // First run: pretend the sweep died after the interp half by
    // keeping only those four JSONL records.
    let lines: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let first = spec().run_with(&artifact, |i, cfg, result| {
        lines.lock().unwrap().push(lolcode::jsonl_record(i, cfg, result));
    });
    assert!(first.all_ok());
    let partial: String = {
        let mut lines = lines.into_inner().unwrap();
        lines.sort(); // completion order is racy; index field sorts interp first
        lines.truncate(4);
        lines.join("\n")
    };
    let done = parse_jsonl_done(&partial);
    assert_eq!(done.len(), 4, "{partial}");
    // Second run resumes: 4 skipped, 4 executed, zero hard failures.
    let resumed = spec().run_resumable(&artifact, &done, |_, _, _| {});
    assert_eq!(resumed.skipped_count(), 4);
    assert_eq!(resumed.ok_count(), 4);
    assert_eq!(resumed.hard_failure_count(), 0);
    assert!(!resumed.all_ok(), "skipped entries are not successes");
    let table = resumed.speedup_table();
    assert!(table.contains("SKIPPED") && table.contains("4 skipped via --resume"), "{table}");
    // Skipped entries surface in JSON with the skipped flag, and every
    // executed slot matches what the first run produced.
    assert!(resumed.to_json().contains("\"skipped\": true"));
    for (a, b) in first.entries.iter().zip(&resumed.entries) {
        assert_eq!(lolcode::config_key(&a.config), lolcode::config_key(&b.config));
        if let Ok(rb) = &b.result {
            assert_eq!(a.result.as_ref().unwrap().outputs, rb.outputs);
        }
    }
    // A fully-done file skips everything; an empty file skips nothing.
    let all_done: std::collections::HashSet<String> =
        first.entries.iter().map(|e| lolcode::config_key(&e.config)).collect();
    assert_eq!(spec().run_resumable(&artifact, &all_done, |_, _, _| {}).skipped_count(), 8);
    assert_eq!(spec().run(&artifact).skipped_count(), 0);
}

/// `parse_jsonl_done` only trusts ok records and tolerates junk,
/// summaries and legacy files without a `clock` field.
#[test]
fn jsonl_done_parser_filters_failures_and_junk() {
    let text = r#"{"index": 0, "backend": "interp", "pes": 2, "seed": 7, "latency": "off", "barrier": "central", "lock": "cas", "clock": "wall", "ok": true, "wall_ns": 5}
{"index": 1, "backend": "vm", "pes": 2, "seed": 7, "latency": "off", "barrier": "central", "lock": "cas", "clock": "wall", "ok": false, "error": "O NOES"}
{"index": 2, "backend": "c", "pes": 4, "seed": 9, "latency": "mesh:4:50:11", "barrier": "dissem", "lock": "ticket", "ok": true, "wall_ns": 5}
{"summary": true, "configs": 3, "ok": 2}
not json at all"#;
    let done = parse_jsonl_done(text);
    assert_eq!(done.len(), 2, "{done:?}");
    assert!(done.contains("interp|off|central|cas|wall|7|2"));
    // Legacy record without clock defaults to wall.
    assert!(done.contains("c|mesh:4:50:11|dissem|ticket|wall|9|4"));
}

/// The thread budget keeps `jobs × PEs` inside the core count without
/// changing a single byte of the results.
#[test]
fn thread_budget_does_not_change_results() {
    let artifact = compile(RANDOM_DURATION).unwrap();
    let unbounded = spec().jobs(4).threads(usize::MAX).run(&artifact);
    let tight = spec().jobs(4).threads(1).run(&artifact);
    assert!(unbounded.all_ok() && tight.all_ok());
    assert_eq!(unbounded.to_json_stable(), tight.to_json_stable());
}

/// Streaming callbacks fire once per config with the final result —
/// the JSONL records and the end-of-run report must tell one story.
#[test]
fn streaming_entries_match_the_final_report() {
    use std::sync::Mutex;
    let artifact = compile(RANDOM_DURATION).unwrap();
    let streamed: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let report = spec().jobs(3).run_with(&artifact, |i, cfg, result| {
        streamed.lock().unwrap().push((i, jsonl_record(i, cfg, result)));
    });
    let mut streamed = streamed.into_inner().unwrap();
    streamed.sort_by_key(|(i, _)| *i);
    assert_eq!(streamed.len(), report.entries.len());
    for ((i, line), entry) in streamed.iter().zip(&report.entries) {
        assert!(line.contains(&format!("\"index\": {i}")));
        assert!(line.contains(&format!("\"backend\": \"{}\"", entry.config.backend)));
        let hash = format!("{:016x}", entry.output_hash().unwrap());
        assert!(line.contains(&hash), "record {i} must carry the final output hash");
    }
}

/// Acceptance check for the scheduler's point: ≥8 configs of a
/// non-trivial corpus program complete measurably faster on 4 workers
/// than on 1, with byte-identical stable reports. Timing-sensitive, so
/// ignored by default — run with `cargo test -- --ignored sweep_scales`.
#[test]
#[ignore = "timing-sensitive; run explicitly: cargo test -- --ignored"]
fn sweep_scales_with_worker_count() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        eprintln!("skipping: {cores} core(s) cannot demonstrate worker-pool speedup");
        return;
    }
    let artifact = compile(&corpus::nbody_source(10, 3)).unwrap();
    let spec = SweepSpec::over(RunConfig::new(1).timeout(Duration::from_secs(120)))
        .pes([1, 2])
        .seeds([1, 2])
        .backends([Backend::Interp, Backend::Vm]); // 8 configs
    assert!(spec.configs().len() >= 8);

    let t0 = Instant::now();
    let serial = spec.clone().jobs(1).run(&artifact);
    let serial_wall = t0.elapsed();

    let t1 = Instant::now();
    let parallel = spec.jobs(4).run(&artifact);
    let parallel_wall = t1.elapsed();

    assert!(serial.all_ok() && parallel.all_ok());
    assert_eq!(serial.to_json_stable(), parallel.to_json_stable());
    // Loose: 4 workers must beat 1 worker by a real margin (the jobs
    // are seconds-scale compute, so scheduling noise is small).
    assert!(
        parallel_wall < serial_wall.mul_f64(0.8),
        "no speedup from workers: serial {serial_wall:?} vs parallel {parallel_wall:?}"
    );
}
