//! Property: the discrete-event engine's tie-break order is
//! unobservable. Events at equal `t_ns` may pop from the queue in
//! *any* order without changing a byte of the results — outputs,
//! per-PE `CommStats`, per-PE virtual clocks, the simulated makespan.
//!
//! The canonical engine pins ties by PE id (so the default order is
//! itself deterministic); this suite drives `run_module_with_order`
//! with randomized keys over the deterministic corpus and must not be
//! able to tell the difference. Trylock programs are excluded by
//! design: `IM MESIN WIF ... O RLY?` branches on *whether* the lock
//! was held at that instant, which is exactly the kind of race the
//! tie-break contract does not (and cannot) paper over.
//!
//! The second property is the parallel-scheduler contract: sharding
//! PEs over a worker pool (`run_module_jobs`, `run_module_sharded`)
//! is unobservable too. `jobs=1` and `jobs=N` must agree on every
//! byte of every observable — outputs, per-PE `CommStats`, trace
//! signatures, per-PE virtual clocks, the makespan, and the event
//! count — for every corpus program, latency model, seed, worker
//! count, and (salted) PE→shard assignment.

use icanhas::prelude::*;
use icanhas::shmem::shard::ShardPlan;
use icanhas::sim::{
    run_module, run_module_jobs, run_module_sharded, run_module_with_order, SimReport,
};
use proptest::prelude::*;

/// The corpus programs whose results are independent of scheduling.
fn corpus_choices() -> Vec<(&'static str, String)> {
    vec![
        ("hello", corpus::HELLO_PARALLEL.to_string()),
        ("ring", corpus::RING_EXAMPLE.to_string()),
        ("barrier", corpus::BARRIER_EXAMPLE.to_string()),
        ("locks", corpus::LOCKS_EXAMPLE.to_string()),
        ("heat2d", corpus::heat2d_source(2, 4, 3)),
    ]
}

fn latency_choices() -> Vec<LatencyModel> {
    vec![
        LatencyModel::Off,
        LatencyModel::epiphany16(),
        "flat:1000".parse().unwrap(),
        "torus:4x2".parse().unwrap(),
    ]
}

/// Canonical byte rendering of everything a [`SimReport`] promises to
/// keep deterministic. Two runs are "byte-identical" iff these
/// strings are equal — the comparison deliberately goes through one
/// flat rendering rather than field-by-field asserts so a scheduler
/// bug can't slip through an overlooked field.
fn stable_string(r: &SimReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (pe, out) in r.outputs.iter().enumerate() {
        writeln!(s, "out[{pe}]={out:?}").unwrap();
    }
    for (pe, st) in r.stats.iter().enumerate() {
        writeln!(s, "stats[{pe}]={st}").unwrap();
    }
    for (pe, t) in r.traces.iter().enumerate() {
        writeln!(s, "trace[{pe}]={:?}", t.as_ref().map(|t| t.signature())).unwrap();
    }
    writeln!(s, "virtual_ns={:?}", r.virtual_ns).unwrap();
    writeln!(s, "makespan_ns={}", r.makespan_ns).unwrap();
    writeln!(s, "events={}", r.events).unwrap();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any salted tie-break key produces the canonical results.
    #[test]
    fn any_tie_break_order_matches_the_canonical_run(
        program in prop::sample::select(corpus_choices()),
        latency in prop::sample::select(latency_choices()),
        n_pes in 1usize..9,
        seed in 0u64..1000,
        salt in any::<u64>(),
    ) {
        let (name, src) = program;
        let artifact = compile(&src).unwrap();
        let module = artifact.vm_module().unwrap();
        let cfg = RunConfig::new(n_pes).seed(seed).latency(latency).shmem();
        let canonical = run_module(module, &cfg, &[]).unwrap();
        // A salted multiplicative hash scrambles which PE wins each
        // equal-time pop (collisions fall through to the PE id, which
        // is fine — that's just another order).
        let salted = run_module_with_order(module, &cfg, &[], &|pe| {
            (pe as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        })
        .unwrap();
        // And the pathological orders: everyone ties (pure PE-id
        // fallback) and exact reversal.
        let constant = run_module_with_order(module, &cfg, &[], &|_| 0).unwrap();
        let reversed =
            run_module_with_order(module, &cfg, &[], &|pe| u64::MAX - pe as u64).unwrap();
        for (which, other) in
            [("salted", &salted), ("constant", &constant), ("reversed", &reversed)]
        {
            prop_assert_eq!(
                &canonical.outputs, &other.outputs,
                "{}: {} order changed outputs at {} PEs seed {}",
                name, which, n_pes, seed
            );
            prop_assert_eq!(
                &canonical.stats, &other.stats,
                "{}: {} order changed CommStats", name, which
            );
            prop_assert_eq!(
                &canonical.virtual_ns, &other.virtual_ns,
                "{}: {} order changed per-PE virtual clocks", name, which
            );
            prop_assert_eq!(
                canonical.makespan_ns, other.makespan_ns,
                "{}: {} order changed the simulated makespan", name, which
            );
        }
    }

    /// The jobs=1 vs jobs=N battery: sharding over any worker count
    /// is byte-identical to the sequential scheduler on the whole
    /// corpus × latency × seed matrix, tracing on. Lock programs ride
    /// along — they take the sequential fallback and must *still*
    /// match trivially.
    #[test]
    fn sharded_scheduler_is_byte_identical_to_sequential(
        program in prop::sample::select(corpus_choices()),
        latency in prop::sample::select(latency_choices()),
        n_pes in 1usize..33,
        seed in 0u64..1000,
        jobs in 2usize..7,
    ) {
        let (name, src) = program;
        let artifact = compile(&src).unwrap();
        let module = artifact.vm_module().unwrap();
        let cfg =
            RunConfig::new(n_pes).seed(seed).latency(latency).trace(true).shmem();
        let seq = run_module_jobs(module, &cfg, &[], 1).unwrap();
        let par = run_module_jobs(module, &cfg, &[], jobs).unwrap();
        prop_assert_eq!(
            stable_string(&seq), stable_string(&par),
            "{}: jobs={} diverged from jobs=1 at {} PEs seed {}",
            name, jobs, n_pes, seed
        );
    }

    /// The PE→shard assignment is unobservable too: a salted modular
    /// plan (which scatters neighboring PEs across different workers)
    /// matches the sequential run byte-for-byte.
    #[test]
    fn any_salted_shard_assignment_is_unobservable(
        program in prop::sample::select(corpus_choices()),
        latency in prop::sample::select(latency_choices()),
        n_pes in 2usize..33,
        seed in 0u64..1000,
        jobs in 2usize..7,
        salt in any::<usize>(),
    ) {
        let (name, src) = program;
        let artifact = compile(&src).unwrap();
        let module = artifact.vm_module().unwrap();
        let cfg =
            RunConfig::new(n_pes).seed(seed).latency(latency).trace(true).shmem();
        let seq = run_module_jobs(module, &cfg, &[], 1).unwrap();
        let plan = ShardPlan::salted(n_pes, jobs, salt);
        let salted = run_module_sharded(module, &cfg, &[], &plan).unwrap();
        prop_assert_eq!(
            stable_string(&seq), stable_string(&salted),
            "{}: salted plan (jobs={} salt={}) diverged at {} PEs seed {}",
            name, jobs, salt, n_pes, seed
        );
    }
}

/// One fixed larger-scale anchor outside the proptest loop: a
/// 1,024-PE heat stencil on 4 workers, byte-identical to sequential,
/// with the episode-based event formula holding on both.
#[test]
fn heat2d_1024_pes_is_byte_identical_on_4_workers() {
    let artifact = compile(&corpus::heat2d_source(32, 32, 4)).unwrap();
    let module = artifact.vm_module().unwrap();
    let cfg = RunConfig::new(1024).latency(LatencyModel::epiphany16()).shmem();
    let seq = run_module_jobs(module, &cfg, &[], 1).unwrap();
    let par = run_module_jobs(module, &cfg, &[], 4).unwrap();
    assert_eq!(stable_string(&seq), stable_string(&par));
    // events = n_pes × (episodes + 1): each PE runs one segment per
    // barrier episode it passes plus the final segment to KTHXBYE.
    assert_eq!(seq.events % 1024, 0);
}
