//! Property: the discrete-event engine's tie-break order is
//! unobservable. Events at equal `t_ns` may pop from the queue in
//! *any* order without changing a byte of the results — outputs,
//! per-PE `CommStats`, per-PE virtual clocks, the simulated makespan.
//!
//! The canonical engine pins ties by PE id (so the default order is
//! itself deterministic); this suite drives `run_module_with_order`
//! with randomized keys over the deterministic corpus and must not be
//! able to tell the difference. Trylock programs are excluded by
//! design: `IM MESIN WIF ... O RLY?` branches on *whether* the lock
//! was held at that instant, which is exactly the kind of race the
//! tie-break contract does not (and cannot) paper over.

use icanhas::prelude::*;
use icanhas::sim::{run_module, run_module_with_order};
use proptest::prelude::*;

/// The corpus programs whose results are independent of scheduling.
fn corpus_choices() -> Vec<(&'static str, String)> {
    vec![
        ("hello", corpus::HELLO_PARALLEL.to_string()),
        ("ring", corpus::RING_EXAMPLE.to_string()),
        ("barrier", corpus::BARRIER_EXAMPLE.to_string()),
        ("locks", corpus::LOCKS_EXAMPLE.to_string()),
        ("heat2d", corpus::heat2d_source(2, 4, 3)),
    ]
}

fn latency_choices() -> Vec<LatencyModel> {
    vec![
        LatencyModel::Off,
        LatencyModel::epiphany16(),
        "flat:1000".parse().unwrap(),
        "torus:4x2".parse().unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any salted tie-break key produces the canonical results.
    #[test]
    fn any_tie_break_order_matches_the_canonical_run(
        program in prop::sample::select(corpus_choices()),
        latency in prop::sample::select(latency_choices()),
        n_pes in 1usize..9,
        seed in 0u64..1000,
        salt in any::<u64>(),
    ) {
        let (name, src) = program;
        let artifact = compile(&src).unwrap();
        let module = artifact.vm_module().unwrap();
        let cfg = RunConfig::new(n_pes).seed(seed).latency(latency).shmem();
        let canonical = run_module(module, &cfg, &[]).unwrap();
        // A salted multiplicative hash scrambles which PE wins each
        // equal-time pop (collisions fall through to the PE id, which
        // is fine — that's just another order).
        let salted = run_module_with_order(module, &cfg, &[], &|pe| {
            (pe as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        })
        .unwrap();
        // And the pathological orders: everyone ties (pure PE-id
        // fallback) and exact reversal.
        let constant = run_module_with_order(module, &cfg, &[], &|_| 0).unwrap();
        let reversed =
            run_module_with_order(module, &cfg, &[], &|pe| u64::MAX - pe as u64).unwrap();
        for (which, other) in
            [("salted", &salted), ("constant", &constant), ("reversed", &reversed)]
        {
            prop_assert_eq!(
                &canonical.outputs, &other.outputs,
                "{}: {} order changed outputs at {} PEs seed {}",
                name, which, n_pes, seed
            );
            prop_assert_eq!(
                &canonical.stats, &other.stats,
                "{}: {} order changed CommStats", name, which
            );
            prop_assert_eq!(
                &canonical.virtual_ns, &other.virtual_ns,
                "{}: {} order changed per-PE virtual clocks", name, which
            );
            prop_assert_eq!(
                canonical.makespan_ns, other.makespan_ns,
                "{}: {} order changed the simulated makespan", name, which
            );
        }
    }
}
