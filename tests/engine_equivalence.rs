//! Backend-equivalence suite over the paper corpus: every program in
//! `lolcode::corpus` is compiled **once** to a shared `Compiled`
//! artifact and driven through *both* `Engine` implementations across
//! seeds and PE counts; the per-PE outputs must match byte-for-byte.
//!
//! This is the corpus-pinned complement to the generated-program
//! equivalence in `backend_equivalence.rs`, and doubles as the
//! demonstration that `Engine::run_many` re-executes one artifact
//! across a config sweep without re-running the front end.

use icanhas::prelude::*;
use std::time::Duration;

/// Every corpus program (name, source, max PE count to sweep).
fn corpus_programs() -> Vec<(&'static str, String, usize)> {
    vec![
        ("hello", corpus::HELLO_PARALLEL.to_string(), 8),
        ("ring", corpus::RING_EXAMPLE.to_string(), 8),
        ("locks", corpus::LOCKS_EXAMPLE.to_string(), 8),
        ("barrier", corpus::BARRIER_EXAMPLE.to_string(), 8),
        ("trylock", corpus::TRYLOCK_EXAMPLE.to_string(), 8),
        ("nbody", corpus::nbody_source(4, 2), 4),
    ]
}

fn sweep(max_pes: usize) -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for n in [1usize, 2, 4, 8] {
        if n > max_pes {
            break;
        }
        for seed in [0u64, 17, 0xC47_F00D] {
            configs.push(RunConfig::new(n).seed(seed).timeout(Duration::from_secs(60)));
        }
    }
    configs
}

#[test]
fn every_corpus_program_agrees_across_engines_and_seeds() {
    for (name, src, max_pes) in corpus_programs() {
        // ONE artifact per program; both engines and every config in
        // the sweep reuse it.
        let artifact = compile(&src).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        let configs = sweep(max_pes);
        let interp = InterpEngine.run_many(&artifact, &configs);
        let vm = VmEngine.run_many(&artifact, &configs);
        for ((cfg, a), b) in configs.iter().zip(interp).zip(vm) {
            let a = a.unwrap_or_else(|e| {
                panic!("{name}: interp failed at {} PEs seed {}: {e}", cfg.n_pes, cfg.seed)
            });
            let b = b.unwrap_or_else(|e| {
                panic!("{name}: vm failed at {} PEs seed {}: {e}", cfg.n_pes, cfg.seed)
            });
            assert_eq!(
                a.outputs, b.outputs,
                "{name}: engine divergence at {} PEs seed {}",
                cfg.n_pes, cfg.seed
            );
            assert_eq!(a.outputs.len(), cfg.n_pes);
            // Both engines run the same algorithm on the same
            // substrate: their communication *shape* must agree too.
            assert_eq!(
                a.stats.iter().map(|s| s.barriers).collect::<Vec<_>>(),
                b.stats.iter().map(|s| s.barriers).collect::<Vec<_>>(),
                "{name}: barrier-count divergence at {} PEs seed {}",
                cfg.n_pes,
                cfg.seed
            );
        }
    }
}

#[test]
fn same_seed_same_engine_is_deterministic_from_shared_artifact() {
    for (name, src, max_pes) in corpus_programs() {
        let artifact = compile(&src).unwrap();
        let n = max_pes.min(4);
        let cfg = RunConfig::new(n).seed(99).timeout(Duration::from_secs(60));
        for engine in [engine_for(Backend::Interp), engine_for(Backend::Vm)] {
            let one = engine.run(&artifact, &cfg).unwrap();
            let two = engine.run(&artifact, &cfg).unwrap();
            assert_eq!(
                one.outputs,
                two.outputs,
                "{name}: {:?} engine not deterministic under a fixed seed",
                engine.backend()
            );
        }
    }
}
