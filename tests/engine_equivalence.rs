//! Backend-equivalence suite over the paper corpus: every program in
//! `lolcode::corpus` is compiled **once** to a shared `Compiled`
//! artifact and driven through *both* `Engine` implementations across
//! seeds and PE counts; the per-PE outputs must match byte-for-byte.
//!
//! This is the corpus-pinned complement to the generated-program
//! equivalence in `backend_equivalence.rs`, and doubles as the
//! demonstration that `Engine::run_many` re-executes one artifact
//! across a config sweep without re-running the front end.

use icanhas::prelude::*;
use proptest::TestRng;
use std::time::Duration;

/// Every corpus program (name, source, max PE count to sweep).
fn corpus_programs() -> Vec<(&'static str, String, usize)> {
    vec![
        ("hello", corpus::HELLO_PARALLEL.to_string(), 8),
        ("ring", corpus::RING_EXAMPLE.to_string(), 8),
        ("locks", corpus::LOCKS_EXAMPLE.to_string(), 8),
        ("barrier", corpus::BARRIER_EXAMPLE.to_string(), 8),
        ("trylock", corpus::TRYLOCK_EXAMPLE.to_string(), 8),
        ("heat2d", corpus::heat2d_source(2, 4, 3), 8),
        ("histogram", corpus::histogram_source(4, 12), 8),
        ("nbody", corpus::nbody_source(4, 2), 4),
    ]
}

fn sweep(max_pes: usize) -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for n in [1usize, 2, 4, 8] {
        if n > max_pes {
            break;
        }
        for seed in [0u64, 17, 0xC47_F00D] {
            configs.push(RunConfig::new(n).seed(seed).timeout(Duration::from_secs(60)));
        }
    }
    configs
}

#[test]
fn every_corpus_program_agrees_across_engines_and_seeds() {
    for (name, src, max_pes) in corpus_programs() {
        // ONE artifact per program; both engines and every config in
        // the sweep reuse it.
        let artifact = compile(&src).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        let configs = sweep(max_pes);
        let interp = InterpEngine.run_many(&artifact, &configs);
        let vm = VmEngine.run_many(&artifact, &configs);
        let sim = SimEngine.run_many(&artifact, &configs);
        for (((cfg, a), b), s) in configs.iter().zip(interp).zip(vm).zip(sim) {
            let a = a.unwrap_or_else(|e| {
                panic!("{name}: interp failed at {} PEs seed {}: {e}", cfg.n_pes, cfg.seed)
            });
            let b = b.unwrap_or_else(|e| {
                panic!("{name}: vm failed at {} PEs seed {}: {e}", cfg.n_pes, cfg.seed)
            });
            let s = s.unwrap_or_else(|e| {
                panic!("{name}: sim failed at {} PEs seed {}: {e}", cfg.n_pes, cfg.seed)
            });
            assert_eq!(
                a.outputs, b.outputs,
                "{name}: engine divergence at {} PEs seed {}",
                cfg.n_pes, cfg.seed
            );
            assert_eq!(
                a.outputs, s.outputs,
                "{name}: the discrete-event sim diverges at {} PEs seed {}",
                cfg.n_pes, cfg.seed
            );
            assert_eq!(a.outputs.len(), cfg.n_pes);
            // All engines run the same algorithm on the same
            // substrate: their communication *shape* must agree too.
            for (other, which) in [(&b, "vm"), (&s, "sim")] {
                assert_eq!(
                    a.stats.iter().map(|st| st.barriers).collect::<Vec<_>>(),
                    other.stats.iter().map(|st| st.barriers).collect::<Vec<_>>(),
                    "{name}: barrier-count divergence vs {which} at {} PEs seed {}",
                    cfg.n_pes,
                    cfg.seed
                );
            }
        }
    }
}

/// The discrete-event engine's reason to exist: PE counts no thread
/// pool could host. 1,024 PEs of the barrier corpus program run on one
/// OS thread in debug mode; the sim crate's own release tests push the
/// same loop to 65,536 and (ignored) 1,000,000 PEs.
#[test]
fn sim_engine_runs_1024_pes_in_debug() {
    let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
    let cfg = RunConfig::new(1024)
        .seed(11)
        .clock(ClockMode::Virtual)
        .latency(LatencyModel::epiphany16())
        .timeout(Duration::from_secs(120));
    let r = SimEngine.run(&artifact, &cfg).unwrap();
    assert_eq!(r.outputs.len(), 1024);
    assert!(r.outputs.iter().enumerate().all(|(pe, o)| o.contains(&format!("PE {pe}"))));
    // The simulated makespan doubles as the deterministic wall.
    assert_eq!(Some(r.wall), r.virtual_wall);
    let again = SimEngine.run(&artifact, &cfg).unwrap();
    assert_eq!(r.virtual_wall, again.virtual_wall, "virtual wall must reproduce at 1k PEs");
}

// ---------------------------------------------------------------------
// Grammar-based differential testing
// ---------------------------------------------------------------------

/// A small seeded LOLCODE generator (no `SRS`) covering constructs the
/// `backend_equivalence.rs` proptest generator doesn't reach: `MAEK`
/// casts, `IS NOW A`, `WTF?` switches, `NERFIN`/`WILE` loops, seeded
/// `WHATEVR`, and a barrier-fenced remote-read phase (`TXT MAH BFF` /
/// `UR`). Generation is plain weighted recursion over one [`TestRng`],
/// so the whole 200-program battery reproduces from its seed.
struct ProgramGen {
    rng: TestRng,
    next_loop: u32,
    bucket: GenBucket,
}

/// Generation bias. The default `Mixed` is the original balanced
/// grammar; the other buckets overweight the value-representation
/// corners this PR's interp/VM hot-path rework touches most.
#[derive(Clone, Copy, PartialEq)]
enum GenBucket {
    Mixed,
    /// SMOOSH pyramids, YARN casts and interpolation — stresses the
    /// string paths of the split scalar/heap value representation.
    YarnHeavy,
    /// i64-magnitude constants under SUM/DIFF/PRODUKT chains — every
    /// backend must wrap identically (wrapping, like C's eventual
    /// two's-complement behaviour, is the pinned semantics).
    OverflowHeavy,
}

impl ProgramGen {
    fn new(seed: u64) -> Self {
        Self::bucketed(seed, GenBucket::Mixed)
    }

    fn bucketed(seed: u64, bucket: GenBucket) -> Self {
        ProgramGen { rng: TestRng::from_seed(seed), next_loop: 0, bucket }
    }

    /// A YARN-flavoured expression: concat trees over (mostly numeric,
    /// so casts keep flowing) string leaves, YARN round-trips, and
    /// `:{...}` interpolation.
    fn yarn_expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.below(4) == 0 {
            return format!("\"{}\"", self.pick(&["42", "-7", "0", "31", "3", "O HAI"]));
        }
        match self.rng.below(4) {
            0 => format!("SMOOSH {} AN {} MKAY", self.yarn_expr(depth - 1), self.expr(depth - 1)),
            1 => format!("MAEK {} A YARN", self.expr(depth - 1)),
            2 => format!("MAEK \"{}\" A NUMBR", self.pick(&["42", "-7", "0"])),
            _ => "\"IT SEZ :{v0} AN :{s0}\"".to_string(),
        }
    }

    /// An overflow-flavoured expression: constants near the i64 rim
    /// under wrapping arithmetic.
    fn overflow_expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.below(3) == 0 {
            return self
                .pick(&[
                    "9223372036854775807",  // i64::MAX
                    "-9223372036854775807", // i64::MIN + 1
                    "4611686018427387904",  // 2^62
                    "3037000499",           // ~sqrt(i64::MAX)
                ])
                .to_string();
        }
        let op = self.pick(&["PRODUKT OF", "SUM OF", "DIFF OF"]);
        format!("{op} {} AN {}", self.overflow_expr(depth - 1), self.expr(depth - 1))
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.rng.below(options.len() as u64) as usize]
    }

    /// An expression of bounded depth over vars `v0..v4`, the local
    /// shared instance `s0`, the gathered remote value `g0`, and the
    /// array `a0`.
    fn expr(&mut self, depth: u32) -> String {
        match self.bucket {
            GenBucket::YarnHeavy if self.rng.below(2) == 0 => return self.yarn_expr(depth),
            GenBucket::OverflowHeavy if self.rng.below(2) == 0 => return self.overflow_expr(depth),
            _ => {}
        }
        if depth == 0 || self.rng.below(3) == 0 {
            return match self.rng.below(9) {
                0 => (self.rng.below(200) as i64 - 100).to_string(),
                1 => format!("v{}", self.rng.below(5)),
                2 => "s0".to_string(),
                3 => "g0".to_string(),
                4 => format!("a0'Z {}", self.rng.below(8)),
                5 => "ME".to_string(),
                6 => "MAH FRENZ".to_string(),
                7 => self.pick(&["WIN", "FAIL"]).to_string(),
                // Numeric YARNs: LOLCODE's weak casts let them flow
                // through arithmetic instead of faulting everything.
                _ => format!("\"{}\"", self.pick(&["42", "7", "0", "31"])),
            };
        }
        match self.rng.below(8) {
            0 | 1 => {
                let op = self.pick(&["SUM OF", "DIFF OF", "PRODUKT OF", "BIGGR OF", "SMALLR OF"]);
                format!("{op} {} AN {}", self.expr(depth - 1), self.expr(depth - 1))
            }
            2 => {
                let op = self.pick(&["BOTH SAEM", "DIFFRINT"]);
                format!("{op} {} AN {}", self.expr(depth - 1), self.expr(depth - 1))
            }
            3 => {
                let op = self.pick(&["BOTH OF", "EITHER OF", "WON OF"]);
                format!("{op} {} AN {}", self.expr(depth - 1), self.expr(depth - 1))
            }
            4 => format!("NOT {}", self.expr(depth - 1)),
            5 => {
                let ty = self.pick(&["NUMBR", "YARN", "TROOF"]);
                format!("MAEK {} A {ty}", self.expr(depth - 1))
            }
            6 => format!("SMOOSH {} AN {} MKAY", self.expr(depth - 1), self.expr(depth - 1)),
            // Seeded per-PE stream: same seed => same values on both
            // engines. Keep it bounded so arithmetic stays tame.
            _ => "MOD OF WHATEVR AN 97".to_string(),
        }
    }

    /// One statement; `depth` bounds nesting.
    fn stmt(&mut self, depth: u32) -> String {
        let simple_kinds = 6u64;
        let kinds = if depth == 0 { simple_kinds } else { simple_kinds + 3 };
        match self.rng.below(kinds) {
            0 => format!("v{} R {}", self.rng.below(5), self.expr(2)),
            1 => format!("VISIBLE {}", self.expr(2)),
            2 => format!("s0 R {}", self.expr(2)),
            3 => format!("a0'Z {} R {}", self.rng.below(8), self.expr(2)),
            4 => self.expr(2), // bare expression: sets IT
            5 => {
                let ty = self.pick(&["NUMBR", "YARN", "TROOF"]);
                format!("v{} IS NOW A {ty}", self.rng.below(5))
            }
            6 => {
                // O RLY? with optional MEBBE arm.
                let cond = self.expr(2);
                let yes = self.block(depth - 1);
                let no = self.block(depth - 1);
                if self.rng.below(2) == 0 {
                    let mebbe_cond = self.expr(1);
                    let mebbe = self.block(depth - 1);
                    format!(
                        "{cond}, O RLY?\nYA RLY\n{yes}\nMEBBE {mebbe_cond}\n{mebbe}\nNO WAI\n{no}\nOIC"
                    )
                } else {
                    format!("{cond}, O RLY?\nYA RLY\n{yes}\nNO WAI\n{no}\nOIC")
                }
            }
            7 => {
                // Bounded counted loop, UPPIN/NERFIN x TIL/WILE.
                let id = self.next_loop;
                self.next_loop += 1;
                let body = self.block(depth - 1);
                let n = 1 + self.rng.below(3);
                if self.rng.below(2) == 0 {
                    format!(
                        "IM IN YR lp{id} UPPIN YR x{id} TIL BOTH SAEM x{id} AN {n}\n{body}\nIM OUTTA YR lp{id}"
                    )
                } else {
                    format!(
                        "IM IN YR lp{id} NERFIN YR x{id} WILE DIFFRINT x{id} AN -{n}\n{body}\nIM OUTTA YR lp{id}"
                    )
                }
            }
            _ => {
                // WTF? switch on IT with literal arms.
                let scrutinee = self.expr(2);
                let a = self.block(depth - 1);
                let b = self.block(depth - 1);
                let d = self.block(depth - 1);
                format!(
                    "MOD OF MAEK {scrutinee} A NUMBR AN 3\nWTF?\nOMG 0\n{a}\nGTFO\nOMG 1\n{b}\nGTFO\nOMGWTF\n{d}\nOIC"
                )
            }
        }
    }

    fn block(&mut self, depth: u32) -> String {
        let n = 1 + self.rng.below(3);
        (0..n).map(|_| self.stmt(depth)).collect::<Vec<_>>().join("\n")
    }

    /// A whole program: local phase, barrier, deterministic remote-read
    /// phase (reads a neighbour's `s0` *after* a HUGZ with no
    /// subsequent writes), barrier, second local phase, then print
    /// every variable so divergence anywhere becomes visible output.
    fn program(&mut self) -> String {
        let decls: String = (0..5)
            .map(|i| format!("I HAS A v{i} ITZ {}\n", self.rng.below(100) as i64 - 50))
            .collect();
        let phase1 = self.block(2);
        let phase2 = self.block(2);
        format!(
            "HAI 1.2\n\
             WE HAS A s0 ITZ SRSLY A NUMBR\n\
             I HAS A a0 ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n\
             I HAS A g0 ITZ 0\n\
             {decls}{phase1}\n\
             s0 R SUM OF PRODUKT OF ME AN 10 AN v0\n\
             HUGZ\n\
             TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, g0 R UR s0\n\
             HUGZ\n\
             {phase2}\n\
             SUM OF v0 AN 1\n\
             VISIBLE v0 \" \" v1 \" \" v2 \" \" v3 \" \" v4 \" \" s0 \" \" g0 \" \" IT\n\
             KTHXBYE\n"
        )
    }
}

/// ~200 generated programs, each compiled once and driven through both
/// engines at 1 and 3 PEs: per-PE outputs must match byte-for-byte, or
/// both engines must fault. Extends the corpus-pinned coverage above
/// with grammar-directed coverage of casts, switches and loop forms.
#[test]
fn generated_grammar_programs_agree_across_engines() {
    let mut gen = ProgramGen::new(0x1CA4_BEEF);
    let mut compiled = 0usize;
    let mut faulted = 0usize;
    for case in 0..200 {
        let src = gen.program();
        // The generator can produce semantically invalid programs
        // (e.g. YARN maths at analysis time); both engines share the
        // front end, so those reject identically by construction.
        let Ok(artifact) = compile(&src) else { continue };
        compiled += 1;
        for n_pes in [1usize, 3] {
            let cfg = RunConfig::new(n_pes).seed(case as u64).timeout(Duration::from_secs(20));
            let a = InterpEngine.run(&artifact, &cfg);
            let b = VmEngine.run(&artifact, &cfg);
            let s = SimEngine.run(&artifact, &cfg);
            match (a, b, s) {
                (Ok(x), Ok(y), Ok(z)) => {
                    assert_eq!(
                        x.outputs, y.outputs,
                        "case {case}: engine divergence at {n_pes} PEs on:\n{src}"
                    );
                    assert_eq!(
                        x.outputs, z.outputs,
                        "case {case}: sim divergence at {n_pes} PEs on:\n{src}"
                    );
                }
                (Err(_), Err(_), Err(_)) => faulted += 1, // all faulted: fine
                (a, b, s) => panic!(
                    "case {case}: backends disagree about faulting at {n_pes} PEs: \
                     {:?} vs {:?} vs {:?}\n{src}",
                    a.map(|r| r.outputs),
                    b.map(|r| r.outputs),
                    s.map(|r| r.outputs)
                ),
            }
        }
    }
    // The battery must mostly exercise the *run* path, not die in the
    // front end or at runtime.
    assert!(compiled >= 150, "only {compiled}/200 programs compiled — generator drifted");
    assert!(faulted <= compiled / 2, "{faulted} runtime faults in {compiled} programs");
}

/// The value-representation stress buckets: YARN-heavy and
/// NUMBR-overflow-heavy programs through interp, vm and sim with full
/// observability on — per-PE outputs, per-PE [`CommStats`], trace
/// signatures and virtual walls must all be byte-identical. This is the
/// oracle that the hot-path rework (split scalar/heap values, dense
/// dispatch, superinstructions) changed *nothing* observable.
#[test]
fn yarn_and_overflow_buckets_agree_with_full_observability() {
    for (label, bucket, seed) in [
        ("yarn-heavy", GenBucket::YarnHeavy, 0xCA7_5EED_u64),
        ("overflow-heavy", GenBucket::OverflowHeavy, 0x00F1_015E_u64),
    ] {
        let mut gen = ProgramGen::bucketed(seed, bucket);
        let mut compiled = 0usize;
        let mut ran = 0usize;
        for case in 0..40u64 {
            let src = gen.program();
            let Ok(artifact) = compile(&src) else { continue };
            compiled += 1;
            let cfg = RunConfig::new(3)
                .seed(case)
                .timeout(Duration::from_secs(20))
                .trace(true)
                .clock(ClockMode::Virtual)
                .latency(LatencyModel::epiphany16());
            let a = InterpEngine.run(&artifact, &cfg);
            let b = VmEngine.run(&artifact, &cfg);
            let s = SimEngine.run(&artifact, &cfg);
            match (a, b, s) {
                (Ok(x), Ok(y), Ok(z)) => {
                    ran += 1;
                    for (other, which) in [(&y, "vm"), (&z, "sim")] {
                        assert_eq!(
                            x.outputs, other.outputs,
                            "{label} case {case}: output divergence vs {which} on:\n{src}"
                        );
                        assert_eq!(
                            x.stats, other.stats,
                            "{label} case {case}: CommStats divergence vs {which} on:\n{src}"
                        );
                        assert_eq!(
                            x.trace.as_ref().expect("interp trace").signature(),
                            other.trace.as_ref().expect("other trace").signature(),
                            "{label} case {case}: trace divergence vs {which} on:\n{src}"
                        );
                        assert_eq!(
                            x.virtual_wall, other.virtual_wall,
                            "{label} case {case}: virtual-wall divergence vs {which} on:\n{src}"
                        );
                    }
                }
                (Err(_), Err(_), Err(_)) => {} // all faulted identically: fine
                (a, b, s) => panic!(
                    "{label} case {case}: backends disagree about faulting: \
                     {:?} vs {:?} vs {:?}\n{src}",
                    a.map(|r| r.outputs),
                    b.map(|r| r.outputs),
                    s.map(|r| r.outputs)
                ),
            }
        }
        assert!(compiled >= 25, "{label}: only {compiled}/40 compiled — generator drifted");
        assert!(ran >= 12, "{label}: only {ran}/{compiled} ran clean — too fault-happy");
    }
}

/// Non-finite NUMBARs must render identically everywhere — the
/// cross-backend bug this PR fixes: interp/vm used Rust's `NaN`/`inf`
/// spellings while the C runtime (and platform printf quirks) said
/// `nan`/`-nan`. The pinned spelling is C's lowercase `nan`, `inf`,
/// `-inf` on every backend, in VISIBLE, MAEK ... A YARN and SMOOSH.
#[test]
fn non_finite_numbars_render_identically_on_every_backend() {
    let src = "\
HAI 1.2
I HAS A nan ITZ QUOSHUNT OF 0.0 AN 0.0
I HAS A pinf ITZ QUOSHUNT OF 1.0 AN 0.0
I HAS A ninf ITZ QUOSHUNT OF -1.0 AN 0.0
I HAS A modnan ITZ MOD OF 1.0 AN 0.0
VISIBLE nan
VISIBLE pinf
VISIBLE ninf
VISIBLE modnan
VISIBLE MAEK pinf A YARN
VISIBLE SMOOSH \"N=\" AN nan AN \" P=\" AN pinf AN \" M=\" AN ninf MKAY
KTHXBYE
";
    let artifact = compile(src).unwrap();
    let cfg = RunConfig::new(2).timeout(Duration::from_secs(60));
    let reference = InterpEngine.run(&artifact, &cfg).unwrap();
    assert_eq!(
        reference.outputs[0].lines().collect::<Vec<_>>(),
        ["nan", "inf", "-inf", "nan", "inf", "N=nan P=inf M=-inf"],
        "the pinned C spelling of non-finite NUMBARs"
    );
    for backend in Backend::ALL {
        let engine = engine_for(backend);
        if !engine.available() {
            eprintln!("skipping {backend:?}: unavailable here");
            continue;
        }
        let r = engine.run(&artifact, &cfg.clone().backend(backend)).unwrap();
        assert_eq!(
            r.outputs, reference.outputs,
            "{backend:?} renders non-finite NUMBARs differently"
        );
    }
}

// ---------------------------------------------------------------------
// C engine: the third execution path against the corpus
// ---------------------------------------------------------------------

/// The corpus subset the C engine must agree with interp on, swept
/// across PE counts from one shared artifact per program. Excludes the
/// `WHATEVR`-based programs (nbody, histogram): the C stub's RNG is a
/// deliberately different stream, so only deterministic programs pin
/// output equality. Skips (rather than fails) when the machine has no
/// C compiler — mirroring the engine's own `Unsupported` degradation.
#[test]
fn c_engine_agrees_with_interp_on_corpus_subset() {
    let c_engine = engine_for(Backend::C);
    if !c_engine.available() {
        eprintln!("skipping: no C compiler — C engine unsupported here");
        // The engine must *say* so, not crash.
        let artifact = compile(corpus::HELLO_PARALLEL).unwrap();
        assert!(matches!(
            c_engine.run(&artifact, &RunConfig::new(1)),
            Err(LolError::Unsupported(_))
        ));
        return;
    }
    let programs: Vec<(&str, String)> = vec![
        ("hello", corpus::HELLO_PARALLEL.to_string()),
        ("ring", corpus::RING_EXAMPLE.to_string()),
        ("locks", corpus::LOCKS_EXAMPLE.to_string()),
        ("barrier", corpus::BARRIER_EXAMPLE.to_string()),
        ("trylock", corpus::TRYLOCK_EXAMPLE.to_string()),
        ("heat2d", corpus::heat2d_source(2, 4, 3)),
    ];
    for (name, src) in programs {
        let artifact = compile(&src).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        let configs: Vec<RunConfig> = [1usize, 2, 4]
            .into_iter()
            .map(|n| RunConfig::new(n).seed(3).timeout(Duration::from_secs(60)))
            .collect();
        let interp = InterpEngine.run_many(&artifact, &configs);
        let c = c_engine.run_many(&artifact, &configs);
        for ((cfg, a), b) in configs.iter().zip(interp).zip(c) {
            let a = a.unwrap_or_else(|e| panic!("{name}: interp failed at {} PEs: {e}", cfg.n_pes));
            let b = b.unwrap_or_else(|e| panic!("{name}: c failed at {} PEs: {e}", cfg.n_pes));
            assert_eq!(
                a.outputs, b.outputs,
                "{name}: C engine diverges from interp at {} PEs",
                cfg.n_pes
            );
            assert_eq!(b.backend, Backend::C);
            assert_eq!(b.stats.len(), cfg.n_pes, "{name}: per-PE stats from the C run");
        }
    }
}

/// The C runtime's YARNs are heap-allocated now (the 256-byte cap is
/// gone), so long-string programs are part of the differential
/// surface: a 2 KiB SMOOSH-doubled yarn and a >600-char GIMMEH line
/// must round-trip identically on interp, vm and c.
#[test]
fn long_yarns_agree_across_engines() {
    let src = "\
HAI 1.2
I HAS A s ITZ \"0123456789abcdef\"
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 7
s R SMOOSH s AN s MKAY
IM OUTTA YR l
I HAS A line
GIMMEH line
VISIBLE s
VISIBLE SMOOSH \"GOT \" AN line MKAY
KTHXBYE
";
    let long_line = "x".repeat(650);
    let artifact = compile(src).unwrap();
    let cfg = RunConfig::new(2).timeout(Duration::from_secs(60)).input(&[&long_line]);
    let interp = InterpEngine.run(&artifact, &cfg).unwrap();
    // 16 chars doubled 7 times = 2048; plus the echoed GIMMEH line.
    assert_eq!(interp.outputs[0].lines().next().unwrap().len(), 2048);
    assert!(interp.outputs[0].contains(&format!("GOT {long_line}")));
    let vm = VmEngine.run(&artifact, &cfg).unwrap();
    assert_eq!(interp.outputs, vm.outputs);
    match engine_for(Backend::C).run(&artifact, &cfg) {
        Ok(c) => assert_eq!(interp.outputs, c.outputs, "C yarns must not truncate"),
        Err(LolError::Unsupported(_)) => eprintln!("skipping C: no compiler"),
        Err(e) => panic!("C engine failed on long yarns: {e}"),
    }
}

/// All three engines under the interconnect models: mesh vs flat
/// latency changes *timing*, never *outputs* — the fidelity contract
/// the latency knob is built on, pinned on every backend at once.
#[test]
fn latency_models_change_timing_but_not_outputs_on_all_engines() {
    // ~40 remote puts per PE through the halo pattern, so a 3ms flat
    // model adds a wall-clock margin far beyond scheduling noise.
    let src = "\
HAI 1.2
WE HAS A b ITZ SRSLY A NUMBR
I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 40
TXT MAH BFF k, UR b R MAH i
IM OUTTA YR l
HUGZ
VISIBLE \"PE \" ME \" B = \" b
KTHXBYE
";
    let artifact = compile(src).unwrap();
    let base = RunConfig::new(2).seed(4).timeout(Duration::from_secs(60));
    let heavy = LatencyModel::Uniform { remote_ns: 3_000_000 };
    for backend in Backend::ALL {
        let engine = engine_for(backend);
        if !engine.available() {
            eprintln!("skipping {backend:?}: unavailable here");
            continue;
        }
        let run = |latency: LatencyModel| {
            engine
                .run(&artifact, &base.clone().backend(backend).latency(latency))
                .unwrap_or_else(|e| panic!("{backend:?} under {latency}: {e}"))
        };
        let off = run(LatencyModel::Off);
        let mesh = run(LatencyModel::epiphany16());
        let flat = run(heavy);
        assert_eq!(off.outputs, mesh.outputs, "{backend:?}: mesh changed outputs");
        assert_eq!(off.outputs, flat.outputs, "{backend:?}: flat changed outputs");
        // 40 remote puts × 3ms each per PE ≥ 120ms of modelled delay.
        assert!(
            flat.wall > off.wall + Duration::from_millis(60),
            "{backend:?}: flat:3ms should slow the run (off {:?} vs flat {:?})",
            off.wall,
            flat.wall
        );
    }
}

/// The barrier/lock ablation axes on all three engines: every
/// algorithm combination must agree byte-for-byte with the default on
/// the lock-contention corpus program.
#[test]
fn barrier_and_lock_ablations_agree_on_all_engines() {
    use lolcode::{BarrierKind, LockKind};
    let artifact = compile(corpus::LOCKS_EXAMPLE).unwrap();
    let base = RunConfig::new(4).seed(7).timeout(Duration::from_secs(60));
    for backend in Backend::ALL {
        let engine = engine_for(backend);
        if !engine.available() {
            eprintln!("skipping {backend:?}: unavailable here");
            continue;
        }
        let baseline = engine.run(&artifact, &base.clone().backend(backend)).unwrap();
        for barrier in BarrierKind::ALL {
            for lock in LockKind::ALL {
                let cfg = base.clone().backend(backend).barrier(barrier).lock(lock);
                let r = engine
                    .run(&artifact, &cfg)
                    .unwrap_or_else(|e| panic!("{backend:?} barrier={barrier} lock={lock}: {e}"));
                assert_eq!(
                    r.outputs, baseline.outputs,
                    "{backend:?}: barrier={barrier} lock={lock} changed outputs"
                );
            }
        }
    }
}

/// One artifact, all three engines: the paper's "same program, three
/// substrates" demonstration in a single assertion.
#[test]
fn one_artifact_runs_on_every_registered_backend() {
    let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
    let cfg = RunConfig::new(4).seed(11).timeout(Duration::from_secs(60));
    let mut outputs: Vec<(Backend, Vec<String>)> = Vec::new();
    for backend in Backend::ALL {
        let engine = engine_for(backend);
        match engine.run(&artifact, &cfg.clone().backend(backend)) {
            Ok(r) => outputs.push((backend, r.outputs)),
            Err(LolError::Unsupported(msg)) => {
                assert!(!engine.available(), "only an unavailable engine may bail: {msg}")
            }
            Err(e) => panic!("{backend:?}: {e}"),
        }
    }
    assert!(outputs.len() >= 2, "interp and vm always run");
    for pair in outputs.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "{:?} and {:?} disagree on the barrier example",
            pair[0].0, pair[1].0
        );
    }
}

#[test]
fn same_seed_same_engine_is_deterministic_from_shared_artifact() {
    for (name, src, max_pes) in corpus_programs() {
        let artifact = compile(&src).unwrap();
        let n = max_pes.min(4);
        let cfg = RunConfig::new(n).seed(99).timeout(Duration::from_secs(60));
        for engine in [engine_for(Backend::Interp), engine_for(Backend::Vm)] {
            let one = engine.run(&artifact, &cfg).unwrap();
            let two = engine.run(&artifact, &cfg).unwrap();
            assert_eq!(
                one.outputs,
                two.outputs,
                "{name}: {:?} engine not deterministic under a fixed seed",
                engine.backend()
            );
        }
    }
}
