//! The `lold` playground-service contract battery:
//!
//! (a) `POST /run` bodies are byte-identical to the toolchain's stable
//!     run-report JSON (`lolcode::service::run_report_json`, the exact
//!     form `lolrun --json` prints) across interp/vm/sim;
//! (b) 32 concurrent identical `/run` requests produce 32
//!     byte-identical bodies and at most ONE cache-miss compile;
//! (c) a full accept queue answers `429` + `Retry-After` and never
//!     drops a request it already accepted;
//! (d) quota violations degrade to structured `SRV0xxx` error JSON
//!     with the connection left reusable;
//! (e) `GET /metrics` is valid Prometheus exposition whose counters
//!     agree exactly with a concurrent `lold-bench` run;
//! (f) `POST /trace` with `"format": "perfetto"` returns a render that
//!     is itself valid JSON under the server's own strict parser.

use std::time::Duration;

use lol_obs::{parse_exposition, sample_value};
use lol_serve::bench::{run as bench_run, BenchSpec};
use lol_serve::{client, json, ServeConfig, Server};
use lolcode::service::{run_report_json, Quotas};
use lolcode::{compile, corpus, engine_for, Backend, ClockMode, LatencyModel, RunConfig};

fn body_for(source: &str, backend: &str, pes: usize) -> String {
    format!(
        "{{\"source\": \"{}\", \"backend\": \"{backend}\", \"pes\": {pes}, \"clock\": \"virtual\"}}",
        json::escape(source)
    )
}

/// (a) The server's `/run` body vs the stable report rendered straight
/// from the engine — byte for byte, per backend. (`lolrun --json`
/// prints this same rendering; `crates/cli/tests/lold_bin.rs` closes
/// that side of the triangle.)
#[test]
fn run_bodies_match_stable_report_json_across_backends() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let artifact = compile(corpus::RING_EXAMPLE).unwrap();
    for backend in [Backend::Interp, Backend::Vm, Backend::Sim] {
        let cfg = RunConfig::new(4).backend(backend).clock(ClockMode::Virtual);
        let expected = run_report_json(&engine_for(backend).run(&artifact, &cfg).unwrap(), false);

        let wire = body_for(corpus::RING_EXAMPLE, &backend.to_string(), 4);
        let resp = client::post(&addr, "/run", &wire).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(resp.text(), expected, "backend {backend}: body must be byte-identical");
    }
    server.shutdown();
}

/// (b) 32 concurrent identical requests: 32 identical bodies, exactly
/// one compile (single-flight `OnceLock` behind the cache), 31 hits.
#[test]
fn concurrent_identical_runs_compile_once() {
    let server =
        Server::start(ServeConfig { workers: 32, queue_cap: 64, ..ServeConfig::default() })
            .unwrap();
    let addr = server.addr().to_string();
    let wire = body_for(corpus::HELLO_PARALLEL, "interp", 2);
    let mut bodies: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let addr = &addr;
                let wire = &wire;
                scope.spawn(move || {
                    let resp = client::post(addr, "/run", wire).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    resp.text()
                })
            })
            .collect();
        for h in handles {
            bodies.push(h.join().unwrap());
        }
    });
    assert_eq!(bodies.len(), 32);
    assert!(bodies.iter().all(|b| b == &bodies[0]), "all 32 bodies must be byte-identical");

    let health = json::parse(&client::get(&addr, "/healthz").unwrap().text()).unwrap();
    let cache = health.get("cache").unwrap();
    assert_eq!(cache.get("misses").and_then(json::Json::as_u64), Some(1), "exactly one compile");
    assert_eq!(cache.get("hits").and_then(json::Json::as_u64), Some(31));
    server.shutdown();
}

/// (c) Backpressure: worker pinned, queue full → `429` with
/// `Retry-After`; the request already sitting in the queue is still
/// answered once the worker frees up. Nothing accepted is ever
/// dropped.
#[test]
fn queue_full_answers_429_and_never_drops_accepted_work() {
    use std::io::{Read, Write};

    let server =
        Server::start(ServeConfig { workers: 1, queue_cap: 1, ..ServeConfig::default() }).unwrap();
    let addr = server.addr().to_string();

    // Pin the single worker to conn1 (a served request guarantees the
    // worker has claimed it).
    let mut conn1 = client::Conn::connect(&addr).unwrap();
    assert_eq!(conn1.request("GET", "/healthz", b"").unwrap().status, 200);

    // conn2: accepted into the queue (no worker free), request bytes
    // already on the wire.
    let wire = body_for(corpus::HELLO_PARALLEL, "interp", 2);
    let mut conn2 = std::net::TcpStream::connect(addr.as_str()).unwrap();
    conn2
        .write_all(
            format!(
                "POST /run HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{wire}",
                wire.len()
            )
            .as_bytes(),
        )
        .unwrap();
    conn2.flush().unwrap();
    // Give the accept thread a moment to enqueue conn2.
    std::thread::sleep(Duration::from_millis(300));

    // conn3: queue is full — immediate 429 with Retry-After.
    let resp = client::post(&addr, "/run", &wire).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert!(resp.text().contains("SRV0301"), "{}", resp.text());
    assert_eq!(resp.header("retry-after"), Some("1"), "429 must say when to come back");

    // Free the worker: conn2's queued request must now be served in
    // full — it was accepted, so it cannot be dropped.
    drop(conn1);
    let mut response = String::new();
    conn2.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "queued request must complete, got: {}",
        &response[..response.len().min(200)]
    );
    assert!(response.contains("\"ok\": true"));
    server.shutdown();
}

/// (d) Every quota violation is a structured `SRV0xxx` JSON error and
/// leaves the connection reusable — all checks ride ONE keep-alive
/// connection, ending with a successful run on that same connection.
#[test]
fn quota_violations_are_structured_and_keep_the_connection() {
    let server = Server::start(ServeConfig {
        quotas: Quotas {
            max_pes: 8,
            max_body_bytes: 2048,
            max_virtual_ns: 1_000,
            max_configs: 4,
            ..Quotas::default()
        },
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let mut conn = client::Conn::connect(&addr).unwrap();
    let expect = |resp: client::Response, status: u16, code: &str| {
        assert_eq!(resp.status, status, "{}", resp.text());
        let parsed = json::parse(&resp.text())
            .unwrap_or_else(|e| panic!("error body must be valid JSON ({e}): {}", resp.text()));
        assert_eq!(parsed.get("ok").and_then(json::Json::as_bool), Some(false));
        assert_eq!(parsed.get("code").and_then(json::Json::as_str), Some(code));
        assert!(parsed.get("error").is_some(), "needs a human-readable error field");
    };

    // SRV0201: PE cap.
    let resp = conn
        .request("POST", "/run", body_for(corpus::HELLO_PARALLEL, "interp", 100).as_bytes())
        .unwrap();
    expect(resp, 422, "SRV0201");

    // SRV0204: body cap — the server drains the oversized body and the
    // connection stays usable.
    let fat_source = format!("HAI 1.2\nBTW {}\nKTHXBYE\n", "A".repeat(4000));
    let resp = conn.request("POST", "/run", body_for(&fat_source, "interp", 2).as_bytes()).unwrap();
    expect(resp, 413, "SRV0204");

    // SRV0202: sweep config-count cap.
    let sweep = format!(
        "{{\"source\": \"{}\", \"spec\": \"pes=1..8\"}}",
        json::escape(corpus::HELLO_PARALLEL)
    );
    let resp = conn.request("POST", "/sweep", sweep.as_bytes()).unwrap();
    expect(resp, 422, "SRV0202");

    // SRV0203: virtual-wall cap, caught after the run.
    let slow = format!(
        "{{\"source\": \"{}\", \"pes\": 4, \"latency\": \"flat:1000000\", \"clock\": \"virtual\"}}",
        json::escape(corpus::RING_EXAMPLE)
    );
    let resp = conn.request("POST", "/run", slow.as_bytes()).unwrap();
    expect(resp, 422, "SRV0203");

    // Compile errors are structured toolchain passthroughs (SRV041x).
    let resp = conn.request("POST", "/run", b"{\"source\": \"IM NOT EVEN LOLCODE\"}").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("SRV041"), "{}", resp.text());

    // The same connection still serves a clean run.
    let resp = conn
        .request("POST", "/run", body_for(corpus::HELLO_PARALLEL, "interp", 2).as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(resp.text().contains("\"ok\": true"));
    server.shutdown();
}

/// (e) The observability contract: drive the server with the real
/// bench harness, then audit `GET /metrics`. The exposition must parse
/// under the strict `lol-obs` parser, the pinned metric names must
/// exist, and the server's request count must agree exactly with the
/// client's — both via the bench's own before/after scrape deltas and
/// via a direct scrape (this server saw no other `/run` traffic).
#[test]
fn metrics_exposition_agrees_with_a_concurrent_bench() {
    let server =
        Server::start(ServeConfig { workers: 10, queue_cap: 32, ..ServeConfig::default() })
            .unwrap();
    let addr = server.addr().to_string();

    let spec = BenchSpec {
        addr: addr.clone(),
        clients: 8,
        requests: 5,
        path: "/run".to_string(),
        body: body_for(corpus::HELLO_PARALLEL, "interp", 2),
    };
    let report = bench_run(&spec);
    assert_eq!(report.errors, 0, "bench must run clean: {}", report.summary());
    let deltas = report.serve.expect("the bench must manage both /metrics scrapes");
    assert_eq!(deltas.requests_run, 40, "server-side delta must match 8 clients x 5 requests");
    assert_eq!(deltas.server_errors, 0);
    assert_eq!(deltas.rejected_429, 0);
    assert_eq!(deltas.rejected_503, 0);

    let resp = client::get(&addr, "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "Prometheus scrapers key on this content type"
    );
    let samples = parse_exposition(&resp.text())
        .unwrap_or_else(|e| panic!("/metrics must be valid exposition ({e}):\n{}", resp.text()));

    // The pinned surface: names CI and dashboards depend on.
    let run_total = sample_value(&samples, "lold_requests_total", &[("route", "run")]);
    assert_eq!(run_total, Some(40.0), "all 40 bench requests and nothing else");
    for name in [
        "lold_cache_hits_total",
        "lold_cache_misses_total",
        "lold_cache_evictions_total",
        "lold_queue_depth",
        "lold_busy_workers",
        "lold_errors_total",
        "lold_workers",
    ] {
        assert!(
            sample_value(&samples, name, &[]).is_some(),
            "pinned metric {name} missing from the exposition"
        );
    }
    // One cached artifact: exactly one compile across the whole bench.
    assert_eq!(sample_value(&samples, "lold_cache_misses_total", &[]), Some(1.0));
    assert_eq!(sample_value(&samples, "lold_cache_hits_total", &[]), Some(39.0));
    // The latency histogram observed every /run exactly once.
    assert_eq!(
        sample_value(&samples, "lold_request_latency_us_count", &[("route", "run")]),
        Some(40.0),
        "histogram count must equal the request count"
    );
    // /healthz and /metrics agree: same counters, two renderings.
    let health = json::parse(&client::get(&addr, "/healthz").unwrap().text()).unwrap();
    let reqs = health.get("requests").unwrap();
    assert_eq!(reqs.get("run").and_then(json::Json::as_u64), Some(40));
    server.shutdown();
}

/// (f) `POST /trace` with `"format": "perfetto"`: the render field must
/// round-trip through the server's own strict JSON parser and look like
/// a Chrome trace — a `traceEvents` array with complete events.
#[test]
fn perfetto_trace_render_round_trips_through_the_strict_parser() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let body = format!(
        "{{\"source\": \"{}\", \"pes\": 4, \"clock\": \"virtual\", \"format\": \"perfetto\"}}",
        json::escape(corpus::RING_EXAMPLE)
    );
    let resp = client::post(&addr, "/trace", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let parsed = json::parse(&resp.text()).unwrap();
    assert_eq!(parsed.get("format").and_then(json::Json::as_str), Some("perfetto"));
    let render = parsed.get("render").and_then(json::Json::as_str).unwrap();

    let trace =
        json::parse(render).unwrap_or_else(|e| panic!("perfetto render must be valid JSON ({e})"));
    assert_eq!(trace.get("displayTimeUnit").and_then(json::Json::as_str), Some("ns"));
    let events = trace
        .get("traceEvents")
        .and_then(json::Json::as_arr)
        .expect("traceEvents must be an array");
    assert!(!events.is_empty(), "a 4-PE ring must trace events");
    // Metadata names every PE thread; remote ops are complete events.
    let metas =
        events.iter().filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("M")).count();
    assert!(metas >= 4, "expected thread_name metadata for 4 PEs, got {metas}");
    assert!(
        events.iter().any(
            |e| e.get("ph").and_then(json::Json::as_str) == Some("X") && e.get("dur").is_some()
        ),
        "remote ops must render as complete (ph=X) events with durations"
    );
    server.shutdown();
}

/// Sanity for the latency quota fixture: the flat model really does
/// push the ring's virtual wall past the 1µs cap used above.
#[test]
fn ring_under_flat_latency_exceeds_a_microsecond() {
    let artifact = compile(corpus::RING_EXAMPLE).unwrap();
    let cfg = RunConfig::new(4)
        .latency("flat:1000000".parse::<LatencyModel>().unwrap())
        .clock(ClockMode::Virtual);
    let report = engine_for(Backend::Interp).run(&artifact, &cfg).unwrap();
    assert!(report.virtual_wall.unwrap() > Duration::from_micros(1));
}
