//! Cross-crate integration at the substrate level: the raw PGAS API
//! driven the way the generated code drives it, plus property-based
//! checks of the collective operations.

use icanhas::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

fn cfg(n: usize) -> ShmemConfig {
    ShmemConfig::new(n).timeout(Duration::from_secs(30))
}

#[test]
fn shmem_api_matches_language_semantics() {
    // The Figure 2 example, hand-written against the raw API (this is
    // what the emitted C does through shmem_*).
    let n = 6;
    let raw = run_spmd(cfg(n), |pe| {
        let a = pe.shmalloc(1);
        let b = pe.shmalloc(1);
        pe.put_i64(a, pe.id(), pe.id() as i64 + 1);
        pe.barrier_all();
        let k = (pe.id() + 1) % pe.n_pes();
        let mine = pe.get_i64(a, pe.id());
        pe.put_i64(b, k, mine);
        pe.barrier_all();
        pe.get_i64(a, pe.id()) + pe.get_i64(b, pe.id())
    })
    .unwrap();

    let artifact = compile(corpus::BARRIER_EXAMPLE).unwrap();
    let lang = engine_for(Backend::Interp).run(&artifact, &lolcode::RunConfig::new(n)).unwrap();
    for (pe, (r, l)) in raw.iter().zip(lang.outputs.iter()).enumerate() {
        let printed: i64 = l.trim().rsplit(' ').next().unwrap().parse().expect("numeric");
        assert_eq!(*r, printed, "substrate and language disagree on PE {pe}");
    }
}

#[test]
fn reductions_against_language_gather() {
    // reduce_i64(Sum) must equal the language-level TXT gather loop.
    let n = 8;
    let raw = run_spmd(cfg(n), |pe| {
        pe.reduce_i64((pe.id() as i64 + 1) * 3, lol_shmem::world::ReduceOp::Sum)
    })
    .unwrap();
    let want: i64 = (1..=n as i64).map(|v| v * 3).sum();
    for v in raw {
        assert_eq!(v, want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Broadcast delivers the root's word to every PE, whatever the
    /// root and payload.
    #[test]
    fn broadcast_any_root(root in 0usize..4, payload in any::<u64>()) {
        let got = run_spmd(cfg(4), |pe| pe.broadcast_u64(root, payload)).unwrap();
        for v in got {
            prop_assert_eq!(v, payload);
        }
    }

    /// Put-then-barrier-then-get returns exactly what was put, for any
    /// word pattern (no tearing, no truncation).
    #[test]
    fn put_get_roundtrip(words in proptest::collection::vec(any::<u64>(), 1..32)) {
        let words2 = words.clone();
        let got = run_spmd(cfg(2), move |pe| {
            let a = pe.shmalloc(words2.len());
            if pe.id() == 0 {
                pe.put_block(a, 1, &words2);
            }
            pe.barrier_all();
            let mut out = vec![0u64; words2.len()];
            if pe.id() == 1 {
                pe.get_block(a, 1, &mut out);
            }
            out
        }).unwrap();
        prop_assert_eq!(&got[1], &words);
    }

    /// The AMO counter is exact for any per-PE iteration count.
    #[test]
    fn fetch_add_is_exact(iters in 1usize..200) {
        let n = 4;
        let got = run_spmd(cfg(n), move |pe| {
            let a = pe.shmalloc(1);
            for _ in 0..iters {
                pe.fetch_add_i64(a, 0, 1);
            }
            pe.barrier_all();
            pe.get_i64(a, 0)
        }).unwrap();
        prop_assert_eq!(got[0], (n * iters) as i64);
    }
}
