//! Section VI.C / Figure 2 — barriers and symmetric data movement.
//!
//! Each PE copies its local `a` into the *next* PE's `b`
//! (`TXT MAH BFF k, UR b R MAH a`), everyone hugs, and only then is
//! `c R SUM OF a AN b` computed — the synchronization the paper calls
//! "typical for distributed memory applications found on HPC systems".
//!
//! ```text
//! cargo run --release --example barrier_sum [n_pes]
//! ```

use icanhas::prelude::*;

fn main() {
    let n_pes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);

    println!("Figure 2 on {n_pes} PEs:\n");
    let artifact = compile(corpus::BARRIER_EXAMPLE).expect("compile failed");
    let engine = engine_for(Backend::Interp);
    let first = engine.run(&artifact, &RunConfig::new(n_pes)).expect("run failed");
    for out in &first.outputs {
        print!("{out}");
    }

    // c on PE p must be (p+1) + (left neighbour + 1), deterministically.
    for (pe, out) in first.outputs.iter().enumerate() {
        let left = (pe + n_pes - 1) % n_pes;
        let want = format!("PE {pe}: C = {}\n", pe + 1 + left + 1);
        assert_eq!(out, &want);
    }

    // Five more rounds off the same artifact — one run_many sweep.
    println!("\ndeterministic across runs:");
    let sweep: Vec<RunConfig> = (0..5).map(|_| RunConfig::new(n_pes)).collect();
    for (round, report) in engine.run_many(&artifact, &sweep).into_iter().enumerate() {
        let report = report.expect("run failed");
        assert_eq!(report.outputs, first.outputs, "HUGZ failed to order the data movement");
        println!("  round {}: identical ({:?})", round + 1, report.wall);
    }
    println!("\nwithout HUGZ dis would be a race — dats why we hug. KTHXBYE");
}
