//! Section VI.C / Figure 2 — barriers and symmetric data movement.
//!
//! Each PE copies its local `a` into the *next* PE's `b`
//! (`TXT MAH BFF k, UR b R MAH a`), everyone hugs, and only then is
//! `c R SUM OF a AN b` computed — the synchronization the paper calls
//! "typical for distributed memory applications found on HPC systems".
//!
//! ```text
//! cargo run --release --example barrier_sum [n_pes]
//! ```

use icanhas::prelude::*;

fn main() {
    let n_pes: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);

    println!("Figure 2 on {n_pes} PEs:\n");
    let outputs =
        run_source(corpus::BARRIER_EXAMPLE, RunConfig::new(n_pes)).expect("run failed");
    for out in &outputs {
        print!("{out}");
    }

    // c on PE p must be (p+1) + (left neighbour + 1), deterministically.
    for (pe, out) in outputs.iter().enumerate() {
        let left = (pe + n_pes - 1) % n_pes;
        let want = format!("PE {pe}: C = {}\n", pe + 1 + left + 1);
        assert_eq!(out, &want);
    }
    println!("\ndeterministic across runs:");
    for round in 1..=5 {
        let again =
            run_source(corpus::BARRIER_EXAMPLE, RunConfig::new(n_pes)).expect("run failed");
        assert_eq!(again, outputs, "HUGZ failed to order the data movement");
        println!("  round {round}: identical");
    }
    println!("\nwithout HUGZ dis would be a race — dats why we hug. KTHXBYE");
}
