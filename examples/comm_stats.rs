//! Communication statistics — make the invisible visible.
//!
//! Runs the paper's examples and prints each algorithm's communication
//! profile straight off the `RunReport`: how many local vs remote
//! accesses, barriers and lock operations it performs. This is the
//! teaching payoff of a simulator over real hardware: students *see*
//! that n-body's remote-force phase dominates traffic.
//!
//! ```text
//! cargo run --release --example comm_stats
//! ```

use icanhas::prelude::*;

/// Run a LOLCODE program and return the full report (outputs + stats).
fn profile(src: &str, n_pes: usize) -> RunReport {
    let artifact = compile(src).expect("compile");
    engine_for(Backend::Interp).run(&artifact, &RunConfig::new(n_pes)).expect("job failed")
}

fn report(name: &str, r: &RunReport) {
    let total = r.total_stats();
    let total_remote = total.remote_gets + total.remote_puts;
    let total_local = total.local_gets + total.local_puts;
    let locks = total.lock_acquires + total.lock_tries;
    println!("== {name} ({} PEs, wall {:?}) ==", r.n_pes(), r.wall);
    println!("  PE 0: {}", r.stats[0]);
    println!(
        "  job totals: {total_local} local + {total_remote} remote scalar ops, \
         {} barrier(s)/PE, {locks} lock ops",
        r.stats[0].barriers
    );
    println!("  remote fraction: {:.1}%\n", 100.0 * total.remote_fraction());
}

fn main() {
    let n = 4;

    let ring = profile(corpus::RING_EXAMPLE, n);
    report("VI.A ring transfer", &ring);

    let locks = profile(corpus::LOCKS_EXAMPLE, n);
    report("VI.B locks", &locks);

    let barrier = profile(corpus::BARRIER_EXAMPLE, n);
    report("VI.C barrier example", &barrier);

    let nbody = profile(&corpus::nbody_source(8, 2), n);
    report("VI.D n-body (8 particles/PE, 2 steps)", &nbody);

    // The headline teaching fact: n-body's remote traffic per PE is
    // O(steps * n * (P-1) * n) — verify the count exactly.
    let steps = 2u64;
    let particles = 8u64;
    let expected_remote_gets = steps * particles * (n as u64 - 1) * particles * 2; // x and y
    assert_eq!(
        nbody.stats[0].remote_gets, expected_remote_gets,
        "n-body remote-get count should be steps*n*(P-1)*n*2"
    );
    println!(
        "n-body remote gets/PE = {} = steps({steps}) x n({particles}) x \
         neighbours({}) x n({particles}) x 2 coords — O(P*n^2) confirmed. KTHXBYE",
        nbody.stats[0].remote_gets,
        n - 1
    );
}
