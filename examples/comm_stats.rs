//! Communication statistics — make the invisible visible.
//!
//! Runs the paper's examples on an instrumented substrate and prints
//! each algorithm's communication profile: how many local vs remote
//! accesses, barriers and lock operations it performs. This is the
//! teaching payoff of a simulator over real hardware: students *see*
//! that n-body's remote-force phase dominates traffic.
//!
//! ```text
//! cargo run --release --example comm_stats
//! ```

use icanhas::prelude::*;
use icanhas::shmem::CommStats;
use lol_sema::analyze;

/// Run a LOLCODE program and collect per-PE comm stats.
fn profile(src: &str, n_pes: usize) -> Vec<CommStats> {
    let program = parse_program(src).expect("parse");
    let analysis = analyze(&program);
    assert!(analysis.is_ok());
    run_spmd(ShmemConfig::new(n_pes), |pe| {
        lol_interp::run_on_pe(&program, &analysis, pe, &[]).expect("run");
        pe.stats()
    })
    .expect("job failed")
}

fn report(name: &str, stats: &[CommStats]) {
    let total_remote: u64 = stats.iter().map(|s| s.remote_gets + s.remote_puts).sum();
    let total_local: u64 = stats.iter().map(|s| s.local_gets + s.local_puts).sum();
    let barriers = stats[0].barriers;
    let locks: u64 = stats.iter().map(|s| s.lock_acquires + s.lock_tries).sum();
    println!("== {name} ({} PEs) ==", stats.len());
    println!("  PE 0: {}", stats[0]);
    println!(
        "  job totals: {total_local} local + {total_remote} remote scalar ops, \
         {barriers} barrier(s)/PE, {locks} lock ops"
    );
    println!(
        "  remote fraction: {:.1}%\n",
        100.0 * total_remote as f64 / (total_remote + total_local).max(1) as f64
    );
}

fn main() {
    let n = 4;

    let ring = profile(corpus::RING_EXAMPLE, n);
    report("VI.A ring transfer", &ring);

    let locks = profile(corpus::LOCKS_EXAMPLE, n);
    report("VI.B locks", &locks);

    let barrier = profile(corpus::BARRIER_EXAMPLE, n);
    report("VI.C barrier example", &barrier);

    let nbody = profile(&corpus::nbody_source(8, 2), n);
    report("VI.D n-body (8 particles/PE, 2 steps)", &nbody);

    // The headline teaching fact: n-body's remote traffic per PE is
    // O(steps * n * (P-1) * n) — verify the count exactly.
    let steps = 2u64;
    let particles = 8u64;
    let expected_remote_gets = steps * particles * (n as u64 - 1) * particles * 2; // x and y
    assert_eq!(
        nbody[0].remote_gets, expected_remote_gets,
        "n-body remote-get count should be steps*n*(P-1)*n*2"
    );
    println!(
        "n-body remote gets/PE = {} = steps({steps}) x n({particles}) x \
         neighbours({}) x n({particles}) x 2 coords — O(P*n^2) confirmed. KTHXBYE",
        nbody[0].remote_gets,
        n - 1
    );
}
