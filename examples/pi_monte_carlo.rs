//! Monte-Carlo π — the classic first parallel workload, written in
//! parallel LOLCODE using `WHATEVAR` (Table III) for sampling, a shared
//! hit counter per PE, and a `TXT MAH BFF` gather on PE 0.
//!
//! ```text
//! cargo run --release --example pi_monte_carlo [n_pes] [samples_per_pe]
//! ```

use icanhas::prelude::*;

fn program(samples: usize) -> String {
    format!(
        r#"HAI 1.2
BTW each PE samples da unit square, counts hits in da quarter circle
WE HAS A hits ITZ SRSLY A NUMBR
I HAS A px ITZ SRSLY A NUMBAR
I HAS A py ITZ SRSLY A NUMBAR
IM IN YR sampling UPPIN YR t TIL BOTH SAEM t AN {samples}
  px R WHATEVAR
  py R WHATEVAR
  SMALLR SUM OF SQUAR OF px AN SQUAR OF py AN 1.0, O RLY?
  YA RLY
    hits R SUM OF hits AN 1
  OIC
IM OUTTA YR sampling
HUGZ
BTW PE 0 gathers all counters an reports
BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A total ITZ 0
  IM IN YR gather UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    TXT MAH BFF k, total R SUM OF total AN UR hits
  IM OUTTA YR gather
  I HAS A pi ITZ SRSLY A NUMBAR
  pi R QUOSHUNT OF PRODUKT OF 4.0 AN total AN PRODUKT OF {samples} AN MAH FRENZ
  VISIBLE "PI IZ LIEK " pi " (" total " HITS)"
OIC
KTHXBYE
"#
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);

    println!("Monte-Carlo pi: {n_pes} PEs x {samples} samples\n");
    let src = program(samples);
    let outputs =
        run_source(&src, RunConfig::new(n_pes).seed(0xCA7)).expect("sampling failed");
    print!("{}", outputs[0]);

    // Parse the estimate back out and sanity-check it.
    let line = outputs[0].lines().next().unwrap();
    let pi: f64 = line
        .strip_prefix("PI IZ LIEK ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|t| t.parse().ok())
        .expect("output shape");
    let err = (pi - std::f64::consts::PI).abs();
    println!("|estimate - pi| = {err:.4}");
    assert!(err < 0.05, "estimate too far off: {pi}");

    // Statistical scaling: more PEs, same seed base, tighter estimate
    // is *likely* but not guaranteed — so just demonstrate reruns.
    println!("\nsame seed reproduces:");
    let again = run_source(&src, RunConfig::new(n_pes).seed(0xCA7)).expect("rerun failed");
    assert_eq!(again, outputs);
    println!("  identical output — KTHXBYE");
}
