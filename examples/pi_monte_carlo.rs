//! Monte-Carlo π — the classic first parallel workload, written in
//! parallel LOLCODE using `WHATEVAR` (Table III) for sampling, a shared
//! hit counter per PE, and a `TXT MAH BFF` gather on PE 0.
//!
//! The seed sweep at the end is the compile-once/run-many API doing
//! what it is for: one `Compiled` artifact, many statistically
//! independent runs via `Engine::run_many`.
//!
//! ```text
//! cargo run --release --example pi_monte_carlo [n_pes] [samples_per_pe]
//! ```

use icanhas::prelude::*;

fn program(samples: usize) -> String {
    format!(
        r#"HAI 1.2
BTW each PE samples da unit square, counts hits in da quarter circle
WE HAS A hits ITZ SRSLY A NUMBR
I HAS A px ITZ SRSLY A NUMBAR
I HAS A py ITZ SRSLY A NUMBAR
IM IN YR sampling UPPIN YR t TIL BOTH SAEM t AN {samples}
  px R WHATEVAR
  py R WHATEVAR
  SMALLR SUM OF SQUAR OF px AN SQUAR OF py AN 1.0, O RLY?
  YA RLY
    hits R SUM OF hits AN 1
  OIC
IM OUTTA YR sampling
HUGZ
BTW PE 0 gathers all counters an reports
BOTH SAEM ME AN 0, O RLY?
YA RLY
  I HAS A total ITZ 0
  IM IN YR gather UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
    TXT MAH BFF k, total R SUM OF total AN UR hits
  IM OUTTA YR gather
  I HAS A pi ITZ SRSLY A NUMBAR
  pi R QUOSHUNT OF PRODUKT OF 4.0 AN total AN PRODUKT OF {samples} AN MAH FRENZ
  VISIBLE "PI IZ LIEK " pi " (" total " HITS)"
OIC
KTHXBYE
"#
    )
}

/// Parse the estimate back out of PE 0's output line.
fn estimate(outputs: &[String]) -> f64 {
    outputs[0]
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("PI IZ LIEK "))
        .and_then(|r| r.split_whitespace().next())
        .and_then(|t| t.parse().ok())
        .expect("output shape")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let samples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);

    println!("Monte-Carlo pi: {n_pes} PEs x {samples} samples\n");
    let artifact = compile(&program(samples)).expect("compile failed");
    let engine = engine_for(Backend::Interp);
    let base = RunConfig::new(n_pes).seed(0xCA7);

    let report = engine.run(&artifact, &base).expect("sampling failed");
    print!("{}", report.outputs[0]);

    let pi = estimate(&report.outputs);
    let err = (pi - std::f64::consts::PI).abs();
    println!("|estimate - pi| = {err:.4}");
    assert!(err < 0.05, "estimate too far off: {pi}");

    // Same seed reproduces bit-for-bit.
    let again = engine.run(&artifact, &base).expect("rerun failed");
    assert_eq!(again.outputs, report.outputs);
    println!("same seed reproduces: identical output");

    // Seed sweep over the same artifact: independent estimates whose
    // mean should tighten on pi (law of large numbers, visibly).
    let sweep: Vec<RunConfig> = (1..=8u64).map(|s| base.clone().seed(s)).collect();
    let estimates: Vec<f64> = engine
        .run_many(&artifact, &sweep)
        .into_iter()
        .map(|r| estimate(&r.expect("sweep run failed").outputs))
        .collect();
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    println!("\nseed sweep over one artifact ({} runs):", estimates.len());
    for (cfg, est) in sweep.iter().zip(&estimates) {
        println!("  seed {:>2}: {est:.4}", cfg.seed);
    }
    println!("  mean = {mean:.4} (|mean - pi| = {:.4})", (mean - std::f64::consts::PI).abs());
    assert!((mean - std::f64::consts::PI).abs() < 0.05, "sweep mean too far off: {mean}");
    println!("KTHXBYE");
}
