//! Section VI.B — parallel synchronization with the implicit locks of
//! `AN IM SHARIN IT`: every PE increments PE 0's shared counter under
//! the lock, so no update is ever lost. Also demonstrates the Section V
//! trylock-then-lock pattern.
//!
//! ```text
//! cargo run --release --example locks [n_pes]
//! ```

use icanhas::prelude::*;

fn main() {
    let n_pes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let engine = engine_for(Backend::Interp);

    println!("== Section VI.B: remote increments under da lock ==");
    let artifact = compile(corpus::LOCKS_EXAMPLE).expect("compile failed");
    let report = engine.run(&artifact, &RunConfig::new(n_pes)).expect("run failed");
    for out in &report.outputs {
        print!("{out}");
    }
    assert_eq!(
        report.outputs[0],
        format!("PE 0 SEES X = {n_pes}\n"),
        "a lost update — the lock failed!"
    );
    // The report's lock counters account for every acquire/release.
    let total = report.total_stats();
    assert_eq!(total.lock_acquires, total.lock_releases);
    println!(
        "--> all {n_pes} increments accounted for ({} lock acquires/releases)\n",
        total.lock_acquires
    );

    println!("== Section V: trylock, den fall back to blocking lock ==");
    let artifact = compile(corpus::TRYLOCK_EXAMPLE).expect("compile failed");
    let report = engine.run(&artifact, &RunConfig::new(n_pes)).expect("run failed");
    for out in &report.outputs {
        print!("{out}");
    }

    // A heavier contention torture: 100 increments per PE, checked.
    println!("\n== contention torture: 100 increments x {n_pes} PEs ==");
    let torture = String::from(
        "HAI 1.2\n\
         WE HAS A c ITZ A NUMBR AN IM SHARIN IT\nHUGZ\n\
         IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n\
         TXT MAH BFF 0 AN STUFF\n\
         IM SRSLY MESIN WIF UR c\n\
         UR c R SUM OF UR c AN 1\n\
         DUN MESIN WIF UR c\n\
         TTYL\n\
         IM OUTTA YR l\nHUGZ\n\
         BOTH SAEM ME AN 0, O RLY?\nYA RLY\nVISIBLE \"TOTAL = \" c\nOIC\n\
         KTHXBYE",
    );
    let artifact = compile(&torture).expect("compile failed");
    let report = engine.run(&artifact, &RunConfig::new(n_pes)).expect("torture failed");
    print!("{}", report.outputs[0]);
    assert_eq!(report.outputs[0], format!("TOTAL = {}\n", n_pes * 100));
    println!(
        "--> mutual exclusion holds under contention \
         ({} acquires in {:?}) — KTHXBYE",
        report.total_stats().lock_acquires,
        report.wall
    );
}
