//! Section VI.B — parallel synchronization with the implicit locks of
//! `AN IM SHARIN IT`: every PE increments PE 0's shared counter under
//! the lock, so no update is ever lost. Also demonstrates the Section V
//! trylock-then-lock pattern.
//!
//! ```text
//! cargo run --release --example locks [n_pes]
//! ```

use icanhas::prelude::*;

fn main() {
    let n_pes: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("== Section VI.B: remote increments under da lock ==");
    let outputs = run_source(corpus::LOCKS_EXAMPLE, RunConfig::new(n_pes)).expect("run failed");
    for out in &outputs {
        print!("{out}");
    }
    assert_eq!(
        outputs[0],
        format!("PE 0 SEES X = {n_pes}\n"),
        "a lost update — the lock failed!"
    );
    println!("--> all {n_pes} increments accounted for\n");

    println!("== Section V: trylock, den fall back to blocking lock ==");
    let outputs =
        run_source(corpus::TRYLOCK_EXAMPLE, RunConfig::new(n_pes)).expect("run failed");
    for out in &outputs {
        print!("{out}");
    }

    // A heavier contention torture: 100 increments per PE, checked.
    println!("\n== contention torture: 100 increments x {n_pes} PEs ==");
    let torture = String::from(
        "HAI 1.2\n\
         WE HAS A c ITZ A NUMBR AN IM SHARIN IT\nHUGZ\n\
         IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n\
         TXT MAH BFF 0 AN STUFF\n\
         IM SRSLY MESIN WIF UR c\n\
         UR c R SUM OF UR c AN 1\n\
         DUN MESIN WIF UR c\n\
         TTYL\n\
         IM OUTTA YR l\nHUGZ\n\
         BOTH SAEM ME AN 0, O RLY?\nYA RLY\nVISIBLE \"TOTAL = \" c\nOIC\n\
         KTHXBYE"
    );
    let outputs = run_source(&torture, RunConfig::new(n_pes)).expect("torture failed");
    print!("{}", outputs[0]);
    assert_eq!(outputs[0], format!("TOTAL = {}\n", n_pes * 100));
    println!("--> mutual exclusion holds under contention — KTHXBYE");
}
