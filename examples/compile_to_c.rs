//! The `lcc` pipeline as a library call: translate the paper's
//! Figure 2 example (and the full n-body) to C + OpenSHMEM and show the
//! interesting parts of the output.
//!
//! ```text
//! cargo run --release --example compile_to_c
//! ```

use icanhas::prelude::*;

fn main() {
    println!("== Section VI.C barrier example, compiled to C ==\n");
    // The artifact API: one front-end pass feeds the C emitter (and
    // could feed the interpreter/VM engines too, without re-parsing).
    let artifact = compile(corpus::BARRIER_EXAMPLE).expect("front end failed");
    let c = artifact.emit_c().expect("codegen failed");

    // Show everything after the embedded runtime (the interesting part).
    let tail = c.split("/* ---- end runtime ---- */").nth(1).unwrap_or(&c);
    println!("{}", tail.trim_start());

    // The paper's key lowering decisions, verified:
    assert!(c.contains("static long long g_a;"), "symmetric scalar");
    assert!(c.contains("shmem_longlong_p(&g_b,"), "UR b R MAH a -> remote put");
    assert!(c.contains("shmem_barrier_all();"), "HUGZ -> barrier");
    assert!(c.contains("shmem_init();"), "transparent initialization (VI.A)");

    println!("\n== n-body (Section VI.D) C statistics ==");
    let nbody_c = compile_to_c(&corpus::nbody_paper()).expect("codegen failed");
    println!("  total lines: {}", nbody_c.lines().count());
    println!("  remote gets: {}", nbody_c.matches("shmem_double_g(").count());
    println!("  barriers:    {}", nbody_c.matches("shmem_barrier_all();").count());
    println!("  symmetric arrays: {}", nbody_c.matches("static double g_").count());
    println!("\nwrite it out wif: cargo run -p lol-cli --bin lcc -- code.lol -o code.c --stub");
}
