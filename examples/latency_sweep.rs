//! Latency-model sweep over the locality-sensitive corpus workloads:
//! the 2-D heat stencil (nearest-neighbour halo traffic) and the
//! parallel histogram (all-to-all gather) under `off`, flat (Cray
//! analog), mesh (Epiphany eMesh analog) and torus interconnects.
//!
//! The point the paper makes with two real machines, reproduced with
//! one [`SweepSpec`] axis: nearest-neighbour algorithms barely feel a
//! mesh, all-to-all algorithms pay the full diameter — and a torus's
//! wraparound links claw part of that back.
//!
//! ```text
//! cargo run --release --example latency_sweep [n_pes]
//! ```

use icanhas::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let workloads = [
        ("heat2d (nearest-neighbour)", corpus::heat2d_source(3, 8, 30)),
        ("histogram (all-to-all)", corpus::histogram_source(16, 200)),
    ];
    let models = [
        LatencyModel::Off,
        LatencyModel::xc40(),
        LatencyModel::Mesh2D { width: 4, base_ns: 200, hop_ns: 400 },
        LatencyModel::Torus2D { width: 4, height: 4, base_ns: 200, hop_ns: 400 },
    ];

    for (name, src) in workloads {
        println!("== {name}: {n_pes} PEs ==");
        let artifact = compile(&src).expect("compile failed");
        let report = SweepSpec::over(RunConfig::new(n_pes).backend(Backend::Vm))
            .latencies(models)
            .run(&artifact);
        assert!(report.all_ok(), "{}", report.speedup_table());
        for e in &report.entries {
            let r = e.result.as_ref().unwrap();
            let t = r.total_stats();
            println!(
                "  {:<16} wall {:>10.1?}  remote ops {:>6}  remote fraction {:>5.1}%",
                e.config.latency.to_string(),
                r.wall,
                t.remote_gets + t.remote_puts,
                100.0 * t.remote_fraction(),
            );
        }
        // Same program, same answers, whatever the interconnect costs.
        let outs: Vec<_> =
            report.entries.iter().map(|e| &e.result.as_ref().unwrap().outputs).collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "latency must not change results");
        println!();
    }
    println!("KTHXBYE");
}
