//! Section VI.D — the paper's full 2D n-body program, in its original
//! configuration: 32 particles per PE, 10 timesteps, 16 PEs (the
//! Parallella's Epiphany-III core count, simulated as threads).
//!
//! ```text
//! cargo run --release --example nbody [n_pes] [particles] [steps]
//! ```

use icanhas::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let particles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    let src = corpus::nbody_source(particles, steps);
    println!(
        "2D n-body: {n_pes} PEs x {particles} particles, {steps} steps \
         (paper config: 16 x 32, 10)"
    );

    // Interpreted run (the lci-like path).
    let t0 = Instant::now();
    let interp_out =
        run_source(&src, RunConfig::new(n_pes).seed(2017)).expect("interpreter run failed");
    let interp_time = t0.elapsed();
    println!("interpreter: {interp_time:?}");

    // Compiled (bytecode VM) run — the paper's "compiler is more
    // efficient than an interpreter" path.
    let t0 = Instant::now();
    let vm_out = run_source(&src, RunConfig::new(n_pes).seed(2017).backend(Backend::Vm))
        .expect("vm run failed");
    let vm_time = t0.elapsed();
    println!("compiled VM: {vm_time:?}");
    println!(
        "speedup (compiled over interpreted): {:.2}x",
        interp_time.as_secs_f64() / vm_time.as_secs_f64()
    );

    assert_eq!(interp_out, vm_out, "backends must agree bit-for-bit");

    // Show PE 0's output (greeting + final particle positions).
    println!("\n--- PE 0 output (first 6 lines) ---");
    for line in interp_out[0].lines().take(6) {
        println!("{line}");
    }
    println!("...");

    // Physics sanity: all final positions finite.
    let mut n_positions = 0;
    for out in &interp_out {
        for line in out.lines().skip(2) {
            for tok in line.split_whitespace() {
                let v: f64 = tok.parse().expect("position should be numeric");
                assert!(v.is_finite(), "particle escaped to infinity");
                n_positions += 1;
            }
        }
    }
    println!(
        "\n{} finite coordinates across {} PEs — KTHXBYE",
        n_positions, n_pes
    );
}
