//! Section VI.D — the paper's full 2D n-body program, in its original
//! configuration: 32 particles per PE, 10 timesteps, 16 PEs (the
//! Parallella's Epiphany-III core count, simulated as threads).
//!
//! This is the sweep-subsystem showcase: one `Compiled` artifact, a
//! [`SweepSpec`] over backends × PE counts, and the aggregated
//! [`SweepReport`] speedup table — the paper's scaling-figure workflow
//! as a single builder chain instead of hand-rolled loops.
//!
//! ```text
//! cargo run --release --example nbody [n_pes] [particles] [steps]
//! ```

use icanhas::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let particles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    let src = corpus::nbody_source(particles, steps);
    println!(
        "2D n-body: up to {n_pes} PEs x {particles} particles, {steps} steps \
         (paper config: 16 x 32, 10)"
    );

    // One artifact; the sweep runs it on both backends across a PE
    // scaling curve (1, 2, 4, ... up to n_pes).
    let artifact = compile(&src).expect("compile failed");
    let mut pes = Vec::new();
    let mut p = 1;
    while p < n_pes {
        pes.push(p);
        p *= 2;
    }
    pes.push(n_pes);
    let report = SweepSpec::over(RunConfig::new(1).seed(2017))
        .backends([Backend::Interp, Backend::Vm])
        .pes(pes)
        .run(&artifact);

    println!("\n{}", report.speedup_table());

    // The paper's headline: the compiled path wins at every size.
    let half = report.entries.len() / 2;
    let (interp, vm) = report.entries.split_at(half);
    for (a, b) in interp.iter().zip(vm) {
        let (ra, rb) = (a.result.as_ref().expect("interp run"), b.result.as_ref().expect("vm run"));
        assert_eq!(ra.outputs, rb.outputs, "backends must agree bit-for-bit");
        println!(
            "{:>3} PEs: interp {:>10.1?}  vm {:>10.1?}  compiled speedup {:.2}x",
            a.config.n_pes,
            ra.wall,
            rb.wall,
            ra.wall.as_secs_f64() / rb.wall.as_secs_f64()
        );
    }

    // The remote-force phase dominates communication: O(steps·n²·(P-1))
    // remote gets per PE, visible directly in the report.
    let last = interp.last().unwrap().result.as_ref().unwrap();
    println!(
        "\nremote gets/PE at {} PEs: {} (O(steps*n^2*(P-1)) all-to-all force phase)",
        last.n_pes(),
        last.stats[0].remote_gets
    );

    // Physics sanity: all final positions finite.
    let mut n_positions = 0;
    for out in &last.outputs {
        for line in out.lines().skip(2) {
            for tok in line.split_whitespace() {
                let v: f64 = tok.parse().expect("position should be numeric");
                assert!(v.is_finite(), "particle escaped to infinity");
                n_positions += 1;
            }
        }
    }
    println!("{} finite coordinates across {} PEs — KTHXBYE", n_positions, last.n_pes());
}
