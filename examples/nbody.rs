//! Section VI.D — the paper's full 2D n-body program, in its original
//! configuration: 32 particles per PE, 10 timesteps, 16 PEs (the
//! Parallella's Epiphany-III core count, simulated as threads).
//!
//! ```text
//! cargo run --release --example nbody [n_pes] [particles] [steps]
//! ```

use icanhas::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let particles: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    let src = corpus::nbody_source(particles, steps);
    println!(
        "2D n-body: {n_pes} PEs x {particles} particles, {steps} steps \
         (paper config: 16 x 32, 10)"
    );

    // One artifact for both backends; the report's wall clock covers
    // the SPMD job only, so the comparison is pure execution cost.
    let artifact = compile(&src).expect("compile failed");
    let cfg = RunConfig::new(n_pes).seed(2017);

    // Interpreted run (the lci-like path).
    let interp = engine_for(Backend::Interp).run(&artifact, &cfg).expect("interpreter run failed");
    println!("interpreter: {:?}", interp.wall);

    // Compiled (bytecode VM) run — the paper's "compiler is more
    // efficient than an interpreter" path.
    let vm = engine_for(Backend::Vm).run(&artifact, &cfg).expect("vm run failed");
    println!("compiled VM: {:?}", vm.wall);
    println!(
        "speedup (compiled over interpreted): {:.2}x",
        interp.wall.as_secs_f64() / vm.wall.as_secs_f64()
    );

    assert_eq!(interp.outputs, vm.outputs, "backends must agree bit-for-bit");

    // The remote-force phase dominates communication: O(steps·n²·(P-1))
    // remote gets per PE, visible directly in the report.
    println!(
        "remote gets/PE: {} (O(steps*n^2*(P-1)) all-to-all force phase)",
        interp.stats[0].remote_gets
    );

    // Show PE 0's output (greeting + final particle positions).
    println!("\n--- PE 0 output (first 6 lines) ---");
    for line in interp.outputs[0].lines().take(6) {
        println!("{line}");
    }
    println!("...");

    // Physics sanity: all final positions finite.
    let mut n_positions = 0;
    for out in &interp.outputs {
        for line in out.lines().skip(2) {
            for tok in line.split_whitespace() {
                let v: f64 = tok.parse().expect("position should be numeric");
                assert!(v.is_finite(), "particle escaped to infinity");
                n_positions += 1;
            }
        }
    }
    println!("\n{} finite coordinates across {} PEs — KTHXBYE", n_positions, n_pes);
}
