//! 1D heat diffusion with halo exchange — the canonical distributed
//! stencil, in parallel LOLCODE. Each PE owns a 16-cell segment of the
//! rod; every step it reads its neighbours' edge cells with predicated
//! remote reads (`TXT MAH BFF`), hugs, and updates its segment.
//!
//! Demonstrates the read-barrier-compute-write-barrier discipline that
//! Figure 2 of the paper motivates, and drives the PE scaling curve
//! through [`SweepSpec`] so the run prints a speedup table for free.
//!
//! ```text
//! cargo run --release --example heat_1d [n_pes] [steps]
//! ```

use icanhas::prelude::*;

const CELLS: usize = 16;

fn program(steps: usize) -> String {
    format!(
        r#"HAI 1.2
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {cells}
I HAS A unew ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {cells}
I HAS A lv ITZ SRSLY A NUMBAR
I HAS A rv ITZ SRSLY A NUMBAR
I HAS A here ITZ SRSLY A NUMBAR
I HAS A left ITZ SRSLY A NUMBAR
I HAS A rite ITZ SRSLY A NUMBAR
I HAS A last ITZ A NUMBR AN ITZ DIFF OF MAH FRENZ AN 1

BTW PE 0's first cell starts hot, everything else cold
BOTH SAEM ME AN 0, O RLY?
YA RLY
  u'Z 0 R 100.0
OIC
HUGZ

IM IN YR time UPPIN YR t TIL BOTH SAEM t AN {steps}
  BTW phase 1: read neighbour halos while u iz stable
  lv R u'Z 0
  rv R u'Z {last_cell}
  BIGGER ME AN 0, O RLY?
  YA RLY
    TXT MAH BFF DIFF OF ME AN 1, lv R UR u'Z {last_cell}
  OIC
  SMALLR ME AN last, O RLY?
  YA RLY
    TXT MAH BFF SUM OF ME AN 1, rv R UR u'Z 0
  OIC
  HUGZ

  BTW phase 2: stencil into unew (insulated global ends)
  IM IN YR cells UPPIN YR i TIL BOTH SAEM i AN {cells}
    here R u'Z i
    BOTH SAEM i AN 0, O RLY?
    YA RLY
      left R lv
    NO WAI
      left R u'Z DIFF OF i AN 1
    OIC
    BOTH SAEM i AN {last_cell}, O RLY?
    YA RLY
      rite R rv
    NO WAI
      rite R u'Z SUM OF i AN 1
    OIC
    unew'Z i R SUM OF here AN PRODUKT OF 0.25 ...
      AN SUM OF DIFF OF left AN here AN DIFF OF rite AN here
  IM OUTTA YR cells

  BTW phase 3: publish unew into u, den hug
  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN {cells}
    u'Z i R unew'Z i
  IM OUTTA YR copy
  HUGZ
IM OUTTA YR time

BTW report da heat dis PE holds
I HAS A heat ITZ SRSLY A NUMBAR AN ITZ 0.0
IM IN YR tally UPPIN YR i TIL BOTH SAEM i AN {cells}
  heat R SUM OF heat AN u'Z i
IM OUTTA YR tally
VISIBLE "PE " ME " HEAT " heat
KTHXBYE
"#,
        cells = CELLS,
        last_cell = CELLS - 1,
        steps = steps,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);

    println!("1D heat: {n_pes} PEs x {CELLS} cells, {steps} steps\n");
    let src = program(steps);
    let artifact = compile(&src).expect("compile failed");

    // Sweep the PE scaling curve up to n_pes on one artifact; the
    // physics checks below run on the sweep's final (largest) config.
    let report = SweepSpec::over(RunConfig::new(1))
        .pes((1..=n_pes).filter(|p| *p == n_pes || n_pes.is_multiple_of(*p)))
        .run(&artifact);
    println!("{}", report.speedup_table());
    let last = report.entries.last().expect("sweep is nonempty");
    let outputs = &last.result.as_ref().expect("diffusion failed").outputs;
    let mut total = 0.0f64;
    for out in outputs {
        print!("{out}");
        let heat: f64 =
            out.trim().rsplit(' ').next().and_then(|t| t.parse().ok()).expect("output shape");
        total += heat;
    }

    // Insulated rod: total heat is conserved. Each PE prints with
    // LOLCODE's 2-decimal YARN cast, so allow ±0.005 per PE of rounding.
    println!("\ntotal heat = {total:.4} (injected 100.0)");
    assert!(
        (total - 100.0).abs() < 0.005 * n_pes as f64 + 1e-9,
        "heat leaked beyond print rounding!"
    );

    // Diffusion reality check: after enough steps, heat has spread off
    // PE 0 (unless it is the whole rod).
    if n_pes > 1 && steps >= 100 {
        let pe0: f64 = outputs[0].trim().rsplit(' ').next().unwrap().parse().unwrap();
        assert!(pe0 < 100.0, "no diffusion happened");
        println!("heat spread beyond PE 0 (PE 0 holds {pe0:.2}) — KTHXBYE");
    }
}
