//! Section VI.A — initialization, symmetric memory allocation and the
//! circular (ring) whole-array transfer: every PE copies its right
//! neighbour's symmetric array with a single predicated assignment,
//! `TXT MAH BFF next_pe, MAH mine R UR array`.
//!
//! ```text
//! cargo run --release --example ring [n_pes]
//! ```

use icanhas::prelude::*;

fn main() {
    let n_pes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("ring transfer on {n_pes} PEs (paper Section VI.A)\n");
    let artifact = compile(corpus::RING_EXAMPLE).expect("compile failed");
    let report =
        engine_for(Backend::Interp).run(&artifact, &RunConfig::new(n_pes)).expect("run failed");
    for out in &report.outputs {
        print!("{out}");
    }

    // Verify the ring: PE p must have received PE (p+1)%n's data.
    for (pe, out) in report.outputs.iter().enumerate() {
        let next = (pe + 1) % n_pes;
        let want = format!("PE {pe} GOT {} .. {}\n", next * 1000, next * 1000 + 31);
        assert_eq!(out, &want, "ring broken at PE {pe}");
    }

    // The report counts the copy's traffic: each PE pulls its
    // neighbour's 32 words.
    let total = report.total_stats();
    println!(
        "\nremote words copied: {} ({} per PE)",
        total.remote_gets + total.block_get_words,
        (total.remote_gets + total.block_get_words) / n_pes as u64
    );
    println!("ring verified: each PE holds its neighbour's 32 NUMBRs — KTHXBYE");
}
