//! Quickstart: run your first parallel LOLCODE program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the three core concepts of the paper in ~20 lines of
//! LOLCODE — SPMD identity (`ME` / `MAH FRENZ`), symmetric shared
//! memory (`WE HAS A`), barrier synchronization (`HUGZ`) — and the
//! toolchain's compile-once/run-many shape: one `Compiled` artifact,
//! two engines, structured `RunReport`s.

use icanhas::prelude::*;

const PROGRAM: &str = r#"HAI 1.2
BTW every PE runs dis same program (SPMD!)
VISIBLE "OH HAI, I IZ PE " ME " OF " MAH FRENZ

BTW a symmetric shared variable: one instance per PE
WE HAS A x ITZ SRSLY A NUMBR
x R SQUAR OF ME

BTW all PEs must hug before reading each other's data
HUGZ

BTW gather: sum every PE's x via remote reads
I HAS A total ITZ 0
IM IN YR gather UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
  TXT MAH BFF k, total R SUM OF total AN UR x
IM OUTTA YR gather
VISIBLE "SUM OF ALL SQUARZ IZ " total
KTHXBYE
"#;

fn main() {
    let n_pes = 4;

    // The front end runs exactly once...
    let artifact = compile(PROGRAM).expect("program failed to compile");

    // ...and the artifact runs as many times as you like.
    println!("== running on {n_pes} PEs (interpreter) ==");
    let report =
        engine_for(Backend::Interp).run(&artifact, &RunConfig::new(n_pes)).expect("program failed");
    for (pe, out) in report.outputs.iter().enumerate() {
        for line in out.lines() {
            println!("[PE {pe}] {line}");
        }
    }
    println!("(wall time: {:?})", report.wall);

    // The same artifact through the compiled (bytecode VM) path.
    println!("\n== same artifact, compiled backend ==");
    let vm_report =
        engine_for(Backend::Vm).run(&artifact, &RunConfig::new(n_pes)).expect("vm run failed");
    assert_eq!(report.outputs, vm_report.outputs, "backends must agree");
    println!("VM output identical to interpreter — OK");

    // The report also carries the substrate's communication counters:
    // the gather loop does one remote get per (PE, neighbour) pair.
    let total = report.total_stats();
    println!(
        "\ncommunication: {} remote gets, {} barriers/PE",
        total.remote_gets, report.stats[0].barriers
    );

    // Expected total: 0 + 1 + 4 + 9 = 14 on every PE.
    for out in &report.outputs {
        assert!(out.contains("SUM OF ALL SQUARZ IZ 14"), "unexpected: {out}");
    }
    println!("\nKTHXBYE (all checks passed)");
}
