//! Quickstart: run your first parallel LOLCODE program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the three core concepts of the paper in ~20 lines of
//! LOLCODE: SPMD identity (`ME` / `MAH FRENZ`), symmetric shared memory
//! (`WE HAS A`), and barrier synchronization (`HUGZ`).

use icanhas::prelude::*;

const PROGRAM: &str = r#"HAI 1.2
BTW every PE runs dis same program (SPMD!)
VISIBLE "OH HAI, I IZ PE " ME " OF " MAH FRENZ

BTW a symmetric shared variable: one instance per PE
WE HAS A x ITZ SRSLY A NUMBR
x R SQUAR OF ME

BTW all PEs must hug before reading each other's data
HUGZ

BTW gather: sum every PE's x via remote reads
I HAS A total ITZ 0
IM IN YR gather UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
  TXT MAH BFF k, total R SUM OF total AN UR x
IM OUTTA YR gather
VISIBLE "SUM OF ALL SQUARZ IZ " total
KTHXBYE
"#;

fn main() {
    let n_pes = 4;
    println!("== running on {n_pes} PEs (interpreter) ==");
    let outputs = run_source(PROGRAM, RunConfig::new(n_pes)).expect("program failed");
    for (pe, out) in outputs.iter().enumerate() {
        for line in out.lines() {
            println!("[PE {pe}] {line}");
        }
    }

    // The same program through the compiled (bytecode VM) path.
    println!("\n== same program, compiled backend ==");
    let vm_out = run_source(PROGRAM, RunConfig::new(n_pes).backend(Backend::Vm))
        .expect("vm run failed");
    assert_eq!(outputs, vm_out, "backends must agree");
    println!("VM output identical to interpreter — OK");

    // Expected total: 0 + 1 + 4 + 9 = 14 on every PE.
    for out in &outputs {
        assert!(out.contains("SUM OF ALL SQUARZ IZ 14"), "unexpected: {out}");
    }
    println!("\nKTHXBYE (all checks passed)");
}
