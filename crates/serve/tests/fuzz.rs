//! Property/fuzz battery for the hand-rolled HTTP and JSON parsers.
//!
//! Both parsers sit on the service's hostile edge: anything a socket
//! can deliver must come back as a structured error — never a panic,
//! never an unbounded loop, never an over-allocation. The generators
//! mix pure byte soup, *almost*-valid requests (valid prefixes +
//! mutations), and pathological-by-construction shapes (huge
//! Content-Length claims, deep JSON nesting, duplicate keys).

use std::io::BufReader;

use lol_serve::http::{read_request, HttpError};
use lol_serve::json::{self, Json};
use proptest::prelude::*;

fn parse_http(
    bytes: &[u8],
    max_body: usize,
) -> Result<Option<lol_serve::http::Request>, HttpError> {
    read_request(&mut BufReader::new(bytes), max_body)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw byte soup: the HTTP reader returns, with *some* verdict,
    /// on any input.
    #[test]
    fn http_never_panics_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_http(&bytes, 1024);
    }

    /// Truncating a valid request at any byte must yield either a
    /// clean parse (cut fell after a whole request), `Closed`, or a
    /// clean EOF — never a panic or a bogus success.
    #[test]
    fn http_truncations_fail_clean(cut in 0usize..100) {
        let full: &[u8] = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"a\": true}";
        let body = &full[..cut.min(full.len())];
        match parse_http(body, 1024) {
            Ok(Some(req)) => prop_assert_eq!(req.body.len(), 11),
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only before any byte"),
            Err(e) => prop_assert!(
                matches!(e, HttpError::Closed),
                "truncation at {} must be Closed, got {:?}", cut, e
            ),
        }
    }

    /// Pathological Content-Length claims never allocate the claimed
    /// size: either a `BadLength`, or a `BodyTooLarge` whose handling
    /// reads at most cap + slack bytes.
    #[test]
    fn http_content_length_claims_are_bounded(claim in any::<u64>()) {
        let raw = format!("POST /run HTTP/1.1\r\nContent-Length: {claim}\r\n\r\n");
        match parse_http(raw.as_bytes(), 64) {
            Ok(Some(req)) => prop_assert!(req.body.len() <= 64),
            Ok(None) => prop_assert!(false, "nonempty input cannot be clean EOF"),
            Err(HttpError::BodyTooLarge { declared, .. }) => prop_assert_eq!(declared, claim),
            Err(HttpError::Closed) => prop_assert!(claim <= 64, "small claim, truncated body"),
            Err(e) => prop_assert!(false, "unexpected verdict: {:?}", e),
        }
    }

    /// JSON text soup (printable + multi-byte chars): parse returns a
    /// verdict on anything.
    #[test]
    fn json_never_panics_on_soup(s in ".{0,200}") {
        let _ = json::parse(&s);
    }

    /// Escaping is total and always reparses to the same string —
    /// including control characters, quotes, and astral-plane chars.
    #[test]
    fn json_escape_round_trips(chars in proptest::collection::vec(any::<char>(), 0..64)) {
        let s: String = chars.into_iter().collect();
        let quoted = format!("\"{}\"", json::escape(&s));
        let parsed = json::parse(&quoted).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// Arbitrarily deep nesting is rejected at the depth bound — by
    /// error, not by stack overflow.
    #[test]
    fn json_depth_is_bounded(depth in 1usize..600) {
        let doc = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let result = json::parse(&doc);
        if depth <= 60 {
            prop_assert!(result.is_ok(), "depth {} should parse", depth);
        } else if depth > 64 {
            prop_assert!(result.is_err(), "depth {} must hit the bound", depth);
        }
    }
}

/// The malformed-request corpus: every case is one handcrafted wire
/// image with its required verdict. Grows whenever a fuzz run or a
/// production log turns up a new way to be wrong.
#[test]
fn malformed_request_corpus() {
    #[rustfmt::skip]
    let corpus: &[(&[u8], &str)] = &[
        (b"\r\n", "empty request line"),
        (b"\x00\x01\x02\x03\r\n\r\n", "binary garbage"),
        (b"POST\r\n\r\n", "method only"),
        (b"POST /run\r\n\r\n", "missing version"),
        (b"POST /run HTTP/2\r\n\r\n", "unsupported version"),
        (b"post /run HTTP/1.1\r\n\r\n", "lowercase method"),
        (b"POST  /run HTTP/1.1\r\n\r\n", "double space"),
        (b"POST /run HTTP/1.1\r\nColon missing\r\n\r\n", "header without colon"),
        (b"POST /run HTTP/1.1\r\nbad header: x\r\n\r\n", "space in header name"),
        (b"POST /run HTTP/1.1\r\n: empty-name\r\n\r\n", "empty header name"),
        (b"POST /run HTTP/1.1\r\nContent-Length: -1\r\n\r\n", "negative length"),
        (b"POST /run HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n", "scientific length"),
        (b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nxx", "duplicate length"),
        (b"POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", "chunked"),
        (b"GET /healthz HTTP/1.1\r\nH\xc3\xa9ader: x\r\n\r\n", "non-ascii header name ok as bytes but parsed"),
    ];
    for (raw, what) in corpus {
        match parse_http(raw, 1024) {
            Err(e) => {
                assert!(!matches!(e, HttpError::Idle), "{what}: Idle is not a parse verdict");
            }
            Ok(opt) => {
                // A handful of corpus entries are *survivable* (header
                // names are only checked for structure, not charset) —
                // what matters is the parser stayed bounded and total.
                assert!(opt.is_some(), "{what}: cannot be clean EOF");
            }
        }
    }
}

/// Duplicate keys are a parse error at every depth, not a
/// last-writer-wins footgun.
#[test]
fn json_duplicate_keys_rejected_everywhere() {
    for doc in
        [r#"{"a": 1, "a": 2}"#, r#"{"outer": {"a": 1, "a": 2}}"#, r#"[{"x": true, "x": false}]"#]
    {
        assert!(json::parse(doc).is_err(), "{doc}");
    }
}

/// The JSON subset the service needs, positively: request-shaped
/// documents parse into the expected tree.
#[test]
fn json_request_shapes_parse() {
    let doc = r#"{"source": "HAI\n", "pes": 8, "timing": false,
                  "input": ["a", "b"], "nested": {"k": [1, 2.5, -3e2, null]}}"#;
    let v = json::parse(doc).unwrap();
    assert_eq!(v.get("pes").and_then(Json::as_u64), Some(8));
    assert_eq!(v.get("timing").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("input").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
}
