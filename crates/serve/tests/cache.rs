//! Artifact-cache behaviour under adversarial schedules: LRU thrash
//! at capacity 1, hash collisions by construction (the cache hashes
//! source text only, so same-source-different-dialect MUST collide and
//! be split by the identity guard), and a barrier-forced race between
//! in-flight runs and graceful shutdown.

use std::sync::Barrier;

use lol_serve::{client, json, ServeConfig, Server};
use lolcode::corpus;

fn run_body(source: &str, extra: &str) -> String {
    format!("{{\"source\": \"{}\"{extra}}}", json::escape(source))
}

fn cache_counter(addr: &str, key: &str) -> u64 {
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    json::parse(&health.text())
        .unwrap()
        .get("cache")
        .and_then(|c| c.get(key))
        .and_then(json::Json::as_u64)
        .unwrap_or_else(|| panic!("healthz missing cache.{key}"))
}

/// Capacity-1 cache, two programs, parallel clients alternating
/// between them: every request must still answer 200 with the right
/// outputs (eviction may discard artifacts, never corrupt them), and
/// the eviction counter must move.
#[test]
fn lru_capacity_one_thrash_under_parallel_clients() {
    let server =
        Server::start(ServeConfig { cache_capacity: 1, workers: 8, ..ServeConfig::default() })
            .unwrap();
    let addr = server.addr().to_string();
    let programs = [corpus::HELLO_PARALLEL, corpus::BARRIER_EXAMPLE];
    std::thread::scope(|scope| {
        for t in 0..4 {
            let addr = &addr;
            let programs = &programs;
            scope.spawn(move || {
                let mut conn = client::Conn::connect(addr).unwrap();
                for i in 0..10 {
                    let source = programs[(t + i) % 2];
                    let body = run_body(source, ", \"pes\": 2, \"clock\": \"virtual\"");
                    let resp = conn.request("POST", "/run", body.as_bytes()).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    assert!(resp.text().contains("\"ok\": true"));
                }
            });
        }
    });
    assert!(
        cache_counter(&addr, "evictions") > 0,
        "two programs through a capacity-1 cache must evict"
    );
    assert_eq!(cache_counter(&addr, "len"), 1, "capacity bound held");
    server.shutdown();
}

/// Same source, two dialects: the FNV bucket hash (source-only) is
/// identical, so this is a hash collision by construction — the
/// full-identity equality guard must keep the artifacts distinct,
/// visible as two cache misses and zero sharing.
#[test]
fn same_source_different_dialect_is_a_real_collision() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    for dialect in ["1.2", "1.3"] {
        let body =
            run_body(corpus::HELLO_PARALLEL, &format!(", \"pes\": 2, \"dialect\": \"{dialect}\""));
        let resp = client::post(&addr, "/run", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    assert_eq!(cache_counter(&addr, "misses"), 2, "each dialect pays its own compile");
    assert_eq!(cache_counter(&addr, "len"), 2, "distinct artifacts live side by side");
    // Re-running either dialect now hits.
    let body = run_body(corpus::HELLO_PARALLEL, ", \"pes\": 2, \"dialect\": \"1.3\"");
    assert_eq!(client::post(&addr, "/run", &body).unwrap().status, 200);
    assert_eq!(cache_counter(&addr, "hits"), 1);
    server.shutdown();
}

/// Barrier-forced race on the run/shutdown path: every runner's
/// request bytes are on the wire *before* the barrier releases the
/// shutdowner, so each request is genuinely in flight when `/shutdown`
/// lands — and every one must still complete with 200 (graceful
/// drain), after which the server must come down. No hang, no dropped
/// in-flight work.
#[test]
fn shutdown_races_in_flight_runs_gracefully() {
    use std::io::{Read, Write};

    let server = Server::start(ServeConfig { workers: 6, ..ServeConfig::default() }).unwrap();
    let addr = server.addr().to_string();
    let barrier = Barrier::new(4); // 3 runners + 1 shutdowner
    std::thread::scope(|scope| {
        for pe_count in [2usize, 4, 8] {
            let addr = &addr;
            let barrier = &barrier;
            scope.spawn(move || {
                let body = run_body(
                    corpus::BARRIER_EXAMPLE,
                    &format!(", \"pes\": {pe_count}, \"backend\": \"sim\", \"clock\": \"virtual\""),
                );
                let mut stream = std::net::TcpStream::connect(addr.as_str()).unwrap();
                let wire = format!(
                    "POST /run HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(wire.as_bytes()).unwrap();
                stream.flush().unwrap();
                barrier.wait();
                // The request is already in the server's socket buffer;
                // /shutdown is landing concurrently. `Connection: close`
                // makes the response EOF-delimited.
                let mut response = String::new();
                stream.read_to_string(&mut response).unwrap();
                assert!(
                    response.starts_with("HTTP/1.1 200"),
                    "in-flight run must drain, got: {}",
                    &response[..response.len().min(200)]
                );
            });
        }
        let addr = &addr;
        let barrier = &barrier;
        scope.spawn(move || {
            barrier.wait();
            let resp = client::post(addr, "/shutdown", "").unwrap();
            assert_eq!(resp.status, 200);
            assert!(resp.text().contains("\"draining\": true"));
        });
    });
    // After the drain completes the socket must be dead: either
    // connection refused or an immediate 503.
    server.wait();
    match client::post(&addr, "/run", &run_body(corpus::HELLO_PARALLEL, "")) {
        Err(_) => {}
        Ok(resp) => assert_eq!(resp.status, 503, "post-shutdown accept must refuse"),
    }
}
