//! Request-body → toolchain-config translation for the `lold` routes,
//! plus the structured error envelope every failure path renders.
//!
//! The shape is strict: every field is typed, unknown fields are a
//! `400` (clients discover typos instead of silently running with
//! defaults), and all parse failures carry a registry code from
//! `docs/SERVE.md`.

use std::time::Duration;

use lolcode::service::{error_code, http_status, QuotaViolation};
use lolcode::{
    Backend, BarrierKind, ClockMode, LatencyModel, LockKind, LolError, RunConfig, TraceSpec,
};

use crate::http::HttpError;
use crate::json::{self, Json};

/// A structured service error: status + registry code + message.
/// Renders as `{"ok": false, "code": "SRVxxxx", "error": "..."}`.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable `SRVxxxx` registry code.
    pub code: &'static str,
    /// Human-readable (LOLCODE-flavoured) description.
    pub message: String,
}

impl ApiError {
    /// Malformed JSON body (`SRV0110`, 400).
    pub fn bad_json(message: impl Into<String>) -> Self {
        ApiError { status: 400, code: "SRV0110", message: message.into() }
    }

    /// Well-formed JSON, wrong shape: unknown/missing/mistyped field
    /// (`SRV0111`, 400).
    pub fn bad_shape(message: impl Into<String>) -> Self {
        ApiError { status: 400, code: "SRV0111", message: message.into() }
    }

    /// Unknown route (`SRV0112`, 404).
    pub fn not_found(path: &str) -> Self {
        ApiError { status: 404, code: "SRV0112", message: format!("I DUNNO DIS ROUTE: {path}") }
    }

    /// Known route, wrong method (`SRV0113`, 405).
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        ApiError {
            status: 405,
            code: "SRV0113",
            message: format!("{path} DOEZ NOT SPEAK {method}"),
        }
    }

    /// Admission queue full (`SRV0301`, 429).
    pub fn queue_full() -> Self {
        ApiError {
            status: 429, code: "SRV0301", message: "2 MANY REQUESTS — TRY AGIN SOON".into()
        }
    }

    /// Server is draining for shutdown (`SRV0302`, 503).
    pub fn shutting_down() -> Self {
        ApiError { status: 503, code: "SRV0302", message: "SERVER IZ GOIN 2 SLEEP".into() }
    }

    /// Wrap a toolchain error using the exhaustive core mapping
    /// (`SRV041x`; `Unsupported` → 501, `Skipped` → 409, …).
    pub fn from_lol(err: &LolError) -> Self {
        ApiError { status: http_status(err), code: error_code(err), message: err.to_string() }
    }

    /// Wrap a quota violation (`SRV020x`).
    pub fn from_quota(v: &QuotaViolation) -> Self {
        ApiError { status: v.status(), code: v.code(), message: v.to_string() }
    }

    /// Wrap a transport-level error.
    pub fn from_http(err: &HttpError) -> Self {
        ApiError { status: err.status(), code: err.code(), message: err.to_string() }
    }

    /// The JSON error envelope.
    pub fn body(&self) -> String {
        format!(
            "{{\"ok\": false, \"code\": \"{}\", \"error\": \"{}\"}}",
            self.code,
            json::escape(&self.message)
        )
    }
}

/// A parsed `POST /run` request.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// The program text.
    pub source: String,
    /// Dialect/option string — part of the artifact-cache identity
    /// (same source under a different dialect is a distinct artifact).
    pub dialect: String,
    /// The launch configuration (before quota admission).
    pub cfg: RunConfig,
    /// Include host timing fields in the response (makes the body
    /// non-deterministic; off by default so `/run` is byte-stable).
    pub timing: bool,
}

/// A parsed `POST /sweep` request: a base run plus the sweep axes.
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// The base run (source/dialect/config shared by every cell).
    pub run: RunRequest,
    /// The axis spec, `SweepSpec::parse` syntax
    /// (e.g. `"pes=1..8;backend=both"`).
    pub spec: String,
}

/// A parsed `POST /trace` request: a run plus a rendering.
#[derive(Clone, Debug)]
pub struct TraceRequest {
    /// The traced run (tracing is forced on).
    pub run: RunRequest,
    /// Which rendering to return.
    pub format: TraceFormat,
    /// Column width for the Gantt rendering.
    pub width: usize,
}

/// The trace renderings `POST /trace` can return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Per-PE timeline bars (`Trace::gantt`).
    Gantt,
    /// Flat event log (`Trace::event_log`).
    Events,
    /// PE×PE communication matrix (`CommMatrix::render`).
    Matrix,
    /// SVG timeline (`Trace::to_svg`).
    Svg,
    /// Chrome `trace_event` JSON (`Trace::to_perfetto`) — load the
    /// rendering into Perfetto / `chrome://tracing`.
    Perfetto,
}

impl TraceFormat {
    /// The wire name, as accepted in the `format` field.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Gantt => "gantt",
            TraceFormat::Events => "events",
            TraceFormat::Matrix => "matrix",
            TraceFormat::Svg => "svg",
            TraceFormat::Perfetto => "perfetto",
        }
    }
}

fn want_str(key: &str, value: &Json) -> Result<String, ApiError> {
    value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ApiError::bad_shape(format!("{key} WANTS A STRING")))
}

fn want_usize(key: &str, value: &Json) -> Result<usize, ApiError> {
    value.as_usize().ok_or_else(|| ApiError::bad_shape(format!("{key} WANTS A NUMBR")))
}

fn want_u64(key: &str, value: &Json) -> Result<u64, ApiError> {
    value.as_u64().ok_or_else(|| ApiError::bad_shape(format!("{key} WANTS A NUMBR")))
}

fn want_bool(key: &str, value: &Json) -> Result<bool, ApiError> {
    value.as_bool().ok_or_else(|| ApiError::bad_shape(format!("{key} WANTS TROOF (true/false)")))
}

fn want_parsed<T: std::str::FromStr>(key: &str, value: &Json) -> Result<T, ApiError>
where
    T::Err: std::fmt::Display,
{
    let raw = want_str(key, value)?;
    raw.parse::<T>().map_err(|e| ApiError::bad_shape(format!("{key}: {e}")))
}

/// Interpret one `/run`-shaped field into the request under
/// construction; `Ok(false)` means the key is not a run field (so a
/// caller with extra fields, like `/sweep`, can try its own).
fn apply_run_field(req: &mut RunRequest, key: &str, value: &Json) -> Result<bool, ApiError> {
    match key {
        "source" => req.source = want_str(key, value)?,
        "dialect" => req.dialect = want_str(key, value)?,
        "backend" => req.cfg.backend = want_parsed::<Backend>(key, value)?,
        "pes" => req.cfg.n_pes = want_usize(key, value)?,
        "seed" => req.cfg.seed = want_u64(key, value)?,
        "latency" => req.cfg.latency = want_parsed::<LatencyModel>(key, value)?,
        "barrier" => req.cfg.barrier = want_parsed::<BarrierKind>(key, value)?,
        "lock" => req.cfg.lock = want_parsed::<LockKind>(key, value)?,
        "clock" => req.cfg.clock = want_parsed::<ClockMode>(key, value)?,
        "heap_words" => req.cfg.heap_words = want_usize(key, value)?,
        "sim_jobs" => req.cfg.sim_jobs = want_usize(key, value)?,
        "timeout_ms" => req.cfg.timeout = Duration::from_millis(want_u64(key, value)?),
        "timing" => req.timing = want_bool(key, value)?,
        "trace" => {
            let on = want_bool(key, value)?;
            req.cfg.trace = on;
        }
        "trace_spec" => {
            let spec = want_parsed::<TraceSpec>(key, value)?;
            req.cfg = req.cfg.clone().trace_spec(spec);
        }
        "input" => {
            let items = value
                .as_arr()
                .ok_or_else(|| ApiError::bad_shape("input WANTS AN ARRAY OF STRINGS"))?;
            req.cfg.input = items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ApiError::bad_shape("input WANTS AN ARRAY OF STRINGS"))
                })
                .collect::<Result<_, _>>()?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn base_request() -> RunRequest {
    RunRequest {
        source: String::new(),
        dialect: "1.2".to_string(),
        cfg: RunConfig::new(1),
        timing: false,
    }
}

fn finish(req: RunRequest) -> Result<RunRequest, ApiError> {
    if req.source.is_empty() {
        return Err(ApiError::bad_shape("source IZ REQUIRED"));
    }
    Ok(req)
}

/// Parse a `POST /run` body.
pub fn parse_run(body: &Json) -> Result<RunRequest, ApiError> {
    let fields = body.as_obj().ok_or_else(|| ApiError::bad_shape("BODY MUST BE A JSON OBJECT"))?;
    let mut req = base_request();
    for (key, value) in fields {
        if !apply_run_field(&mut req, key, value)? {
            return Err(ApiError::bad_shape(format!("I DUNNO DIS FIELD: {key}")));
        }
    }
    finish(req)
}

/// Parse a `POST /sweep` body: run fields plus a required `spec`.
pub fn parse_sweep(body: &Json) -> Result<SweepRequest, ApiError> {
    let fields = body.as_obj().ok_or_else(|| ApiError::bad_shape("BODY MUST BE A JSON OBJECT"))?;
    let mut req = base_request();
    let mut spec: Option<String> = None;
    for (key, value) in fields {
        if apply_run_field(&mut req, key, value)? {
            continue;
        }
        match key.as_str() {
            "spec" => spec = Some(want_str(key, value)?),
            _ => return Err(ApiError::bad_shape(format!("I DUNNO DIS FIELD: {key}"))),
        }
    }
    let spec = spec.ok_or_else(|| ApiError::bad_shape("spec IZ REQUIRED (e.g. \"pes=1..8\")"))?;
    Ok(SweepRequest { run: finish(req)?, spec })
}

/// Parse a `POST /trace` body: run fields plus `format` and `width`.
pub fn parse_trace(body: &Json) -> Result<TraceRequest, ApiError> {
    let fields = body.as_obj().ok_or_else(|| ApiError::bad_shape("BODY MUST BE A JSON OBJECT"))?;
    let mut req = base_request();
    let mut format = TraceFormat::Gantt;
    let mut width = 80usize;
    for (key, value) in fields {
        if apply_run_field(&mut req, key, value)? {
            continue;
        }
        match key.as_str() {
            "format" => {
                let raw = want_str(key, value)?;
                format = match raw.as_str() {
                    "gantt" => TraceFormat::Gantt,
                    "events" => TraceFormat::Events,
                    "matrix" => TraceFormat::Matrix,
                    "svg" => TraceFormat::Svg,
                    "perfetto" => TraceFormat::Perfetto,
                    other => {
                        return Err(ApiError::bad_shape(format!(
                            "format IZ gantt, events, matrix, svg OR perfetto, NOT {other}"
                        )))
                    }
                };
            }
            "width" => width = want_usize(key, value)?.clamp(20, 1000),
            _ => return Err(ApiError::bad_shape(format!("I DUNNO DIS FIELD: {key}"))),
        }
    }
    let mut req = finish(req)?;
    req.cfg.trace = true;
    Ok(TraceRequest { run: req, format, width })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn run_request_full_shape() {
        let body = parse(
            r#"{"source": "HAI 1.2\nKTHXBYE", "backend": "sim", "pes": 64,
                "seed": 7, "latency": "mesh:4", "barrier": "dissem",
                "lock": "ticket", "clock": "virtual", "input": ["a", "b"],
                "heap_words": 4096, "sim_jobs": 2, "timing": true,
                "timeout_ms": 500, "dialect": "1.3"}"#,
        )
        .unwrap();
        let req = parse_run(&body).unwrap();
        assert_eq!(req.cfg.backend, Backend::Sim);
        assert_eq!(req.cfg.n_pes, 64);
        assert_eq!(req.cfg.seed, 7);
        assert_eq!(req.cfg.clock, ClockMode::Virtual);
        assert_eq!(req.cfg.input, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(req.cfg.timeout, Duration::from_millis(500));
        assert_eq!(req.dialect, "1.3");
        assert!(req.timing);
    }

    #[test]
    fn unknown_and_mistyped_fields_are_srv0111() {
        for body in [
            r#"{"source": "HAI", "sauce": 1}"#,
            r#"{"source": 42}"#,
            r#"{"source": "HAI", "pes": "many"}"#,
            r#"{"source": "HAI", "timing": "yes"}"#,
            r#"{"source": "HAI", "input": "not-an-array"}"#,
            r#"{"source": "HAI", "backend": "quantum"}"#,
            r#"[1, 2]"#,
            r#"{}"#,
        ] {
            let e = parse_run(&parse(body).unwrap()).unwrap_err();
            assert_eq!((e.status, e.code), (400, "SRV0111"), "{body}");
        }
    }

    #[test]
    fn sweep_needs_a_spec() {
        let no_spec = parse(r#"{"source": "HAI"}"#).unwrap();
        assert_eq!(parse_sweep(&no_spec).unwrap_err().code, "SRV0111");
        let ok = parse(r#"{"source": "HAI", "spec": "pes=1..4"}"#).unwrap();
        assert_eq!(parse_sweep(&ok).unwrap().spec, "pes=1..4");
    }

    #[test]
    fn trace_formats_parse_and_trace_is_forced() {
        let body = parse(r#"{"source": "HAI", "format": "svg", "width": 5}"#).unwrap();
        let req = parse_trace(&body).unwrap();
        assert_eq!(req.format, TraceFormat::Svg);
        assert_eq!(req.width, 20, "width clamps to a sane floor");
        assert!(req.run.cfg.trace);
        let bad = parse(r#"{"source": "HAI", "format": "interpretive-dance"}"#).unwrap();
        assert_eq!(parse_trace(&bad).unwrap_err().code, "SRV0111");
    }

    #[test]
    fn error_envelope_is_json() {
        let e = ApiError::bad_shape("quote \" and newline \n");
        let body = e.body();
        assert!(crate::json::parse(&body).is_ok(), "envelope must be valid JSON: {body}");
        assert!(body.contains("\"SRV0111\""));
    }
}
