//! A tiny blocking HTTP/1.1 client — just enough to exercise `lold`
//! from tests and from `lold-bench` without external dependencies.
//!
//! Speaks keep-alive by default and parses the same bounded subset the
//! server emits. Not a general-purpose client: no TLS, no redirects,
//! no chunked bodies.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to a `lold` server.
pub struct Conn {
    reader: BufReader<TcpStream>,
    addr: String,
}

impl Conn {
    /// Connect to `addr` (e.g. `127.0.0.1:4040`).
    pub fn connect(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(60)))?;
        Ok(Conn { reader: BufReader::new(stream), addr: addr.to_string() })
    }

    /// The address this connection targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Send one request and read one response. The connection stays
    /// open unless the server answered `Connection: close`.
    ///
    /// A write failure falls through to reading: a server rejecting
    /// early (e.g. a `429` from the accept thread) may respond and
    /// close before we finish sending, which surfaces here as a broken
    /// pipe — the response is still in our receive buffer.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        if method == "POST" || !body.is_empty() {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        let sent = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush());
        match self.read_response() {
            Ok(resp) => Ok(resp),
            // If the read also fails, the write error (if any) is the
            // more truthful diagnosis.
            Err(read_err) => Err(sent.err().unwrap_or(read_err)),
        }
    }

    /// Send raw bytes verbatim (for malformed-request tests) and read
    /// one response.
    pub fn send_raw(&mut self, raw: &[u8]) -> std::io::Result<Response> {
        let stream = self.reader.get_mut();
        stream.write_all(raw)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            let n = self.reader.read(&mut byte)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            if byte[0] == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(String::from_utf8_lossy(&line).into_owned());
            }
            line.push(byte[0]);
            if line.len() > 64 * 1024 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "response header line too long",
                ));
            }
        }
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 =
            status_line.split(' ').nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, headers, body })
    }
}

/// One-shot `GET` on a fresh connection.
pub fn get(addr: &str, path: &str) -> std::io::Result<Response> {
    Conn::connect(addr)?.request("GET", path, b"")
}

/// One-shot `POST` on a fresh connection.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<Response> {
    Conn::connect(addr)?.request("POST", path, body.as_bytes())
}
