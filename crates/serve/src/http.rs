//! A deliberately small HTTP/1.1 server-side reader/writer on std
//! streams — exactly the subset `lold` speaks, hardened against
//! hostile input.
//!
//! Every limit is explicit: request-line and header lines are
//! length-capped, header count is capped, `Content-Length` is parsed
//! as pure digits into a `u64` (no signs, no whitespace tricks, no
//! duplicates), and bodies beyond the service's quota are drained up
//! to a bounded slack so the connection stays reusable, then
//! rejected. Anything outside the subset is a structured 4xx/5xx,
//! never a panic and never an unbounded read.

use std::io::{BufRead, Read, Write};

/// Longest accepted request line or single header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// How much of an over-quota body the server is willing to read and
/// discard to keep the connection reusable (beyond this it closes).
pub const DRAIN_SLACK_BYTES: u64 = 4 * 1024 * 1024;

/// One parsed request: method, path, lowercased headers, raw body.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercase as sent).
    pub method: String,
    /// The request target, e.g. `/run` (query strings are kept as-is).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this request?
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. [`HttpError::status`] maps each
/// reason to the response status; [`HttpError::reusable`] says whether
/// the connection is still in a known state (body fully consumed) and
/// may serve another request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line / header syntax, or a line over
    /// [`MAX_LINE_BYTES`], or too many headers.
    Malformed(String),
    /// POST without a parseable `Content-Length` (or a duplicate one).
    BadLength(String),
    /// Body over the quota. `drained` says whether the connection was
    /// left in a reusable state.
    BodyTooLarge {
        /// Declared body size.
        declared: u64,
        /// Configured cap.
        cap: usize,
        /// Whether the whole body was read off the socket.
        drained: bool,
    },
    /// `Transfer-Encoding` and other unimplemented HTTP features.
    Unsupported(String),
    /// The peer closed or the socket failed mid-request.
    Closed,
    /// The socket read timed out *between* requests (no byte of the
    /// next request seen yet) — the connection is still in a clean
    /// state, so the caller may keep polling or close it idle.
    Idle,
}

impl HttpError {
    /// The HTTP status to answer with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::BadLength(_) => 411,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::Unsupported(_) => 501,
            HttpError::Closed => 400, // no response will be written anyway
            HttpError::Idle => 408,
        }
    }

    /// May the connection serve another request after this error?
    pub fn reusable(&self) -> bool {
        matches!(self, HttpError::BodyTooLarge { drained: true, .. })
    }

    /// The stable error-registry code (see `docs/SERVE.md`). An
    /// over-quota body reports the *quota* registry code `SRV0204`
    /// (same violation as `QuotaViolation::BodyCap`), not a transport
    /// code — the transport is merely where the quota is enforced.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Malformed(_) => "SRV0101",
            HttpError::BadLength(_) => "SRV0102",
            HttpError::BodyTooLarge { .. } => "SRV0204",
            HttpError::Unsupported(_) => "SRV0104",
            HttpError::Closed => "SRV0105",
            HttpError::Idle => "SRV0106",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "BAD REQUEST: {m}"),
            HttpError::BadLength(m) => write!(f, "BAD CONTENT-LENGTH: {m}"),
            HttpError::BodyTooLarge { declared, cap, .. } => {
                write!(f, "REQUEST BODY HAZ {declared} BYTES — QUOTA IZ {cap}")
            }
            HttpError::Unsupported(m) => write!(f, "NOT IMPLEMENTED: {m}"),
            HttpError::Closed => write!(f, "CONNECTION CLOSED"),
            HttpError::Idle => write!(f, "CONNECTION IDLE"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Read one CRLF- (or bare-LF-) terminated line, capped at
/// [`MAX_LINE_BYTES`]. `Ok(None)` is clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::with_capacity(64);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Closed);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("NON-UTF8 HEADER LINE".into()));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(HttpError::Malformed("HEADER LINE 2 LONG".into()));
                }
            }
            Err(e)
                if line.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // Read timeout before any byte of this line: the
                // stream is still aligned on a line boundary.
                return Err(HttpError::Idle);
            }
            Err(_) => return Err(HttpError::Closed),
        }
    }
}

/// Read one full request off `reader`. `Ok(None)` is a clean
/// connection close between requests (keep-alive ended).
/// `max_body` is the service's body-size quota.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    // `Idle` may only escape from here — before the first byte of the
    // request — where the connection is still cleanly reusable. A
    // timeout anywhere later leaves the stream mid-request and is
    // reported as `Closed`.
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::Malformed(format!("BAD REQUEST LINE: {request_line:?}"))),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed(format!("BAD METHOD: {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("BAD HTTP VERSION: {version:?}")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader)
            .map_err(|e| if e == HttpError::Idle { HttpError::Closed } else { e })?
            .ok_or(HttpError::Closed)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("2 MANY HEADERS".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("BAD HEADER LINE: {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("BAD HEADER NAME: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Unsupported("TRANSFER-ENCODING".into()));
    }

    // Content-Length: at most one, digits only, fits u64.
    let lengths: Vec<&str> =
        headers.iter().filter(|(k, _)| k == "content-length").map(|(_, v)| v.as_str()).collect();
    let declared: u64 = match lengths.as_slice() {
        [] => 0,
        [one] => {
            if one.is_empty() || !one.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadLength(format!("NOT A LENGTH: {one:?}")));
            }
            one.parse().map_err(|_| HttpError::BadLength(format!("LENGTH 2 BIG: {one:?}")))?
        }
        _ => return Err(HttpError::BadLength("DUPLICATE CONTENT-LENGTH".into())),
    };
    // No Content-Length (and no Transfer-Encoding, rejected above)
    // means an empty body — `curl -X POST /shutdown` is legal.

    if declared as u128 > max_body as u128 {
        // Keep the connection reusable when the oversize is modest:
        // drain the declared body, then report the quota violation.
        let drained = if declared <= max_body as u64 + DRAIN_SLACK_BYTES {
            let mut sink = std::io::sink();
            std::io::copy(&mut reader.take(declared), &mut sink)
                .map(|n| n == declared)
                .unwrap_or(false)
        } else {
            false
        };
        return Err(HttpError::BodyTooLarge { declared, cap: max_body, drained });
    }

    let mut body = vec![0u8; declared as usize];
    let mut read = 0;
    while read < body.len() {
        match reader.read(&mut body[read..]) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(n) => read += n,
            Err(_) => return Err(HttpError::Closed),
        }
    }

    Ok(Some(Request { method: method.to_string(), path: path.to_string(), headers, body }))
}

/// The reason phrase for the handful of statuses `lold` emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "OK HAI",
    }
}

/// Write one response. `extra_headers` ride between the standard
/// headers and the blank line (e.g. `Retry-After`).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, String)],
    close: bool,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str(if close { "Connection: close\r\n" } else { "Connection: keep-alive\r\n" });
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_bytes(bytes: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nHAI!";
        let req = parse_bytes(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"HAI!");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_none_truncated_is_closed() {
        assert!(parse_bytes(b"", 1024).unwrap().is_none());
        assert_eq!(parse_bytes(b"POST /run HT", 1024).unwrap_err(), HttpError::Closed);
        assert_eq!(
            parse_bytes(b"POST /run HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 1024)
                .unwrap_err(),
            HttpError::Closed
        );
    }

    #[test]
    fn pathological_content_lengths_are_rejected() {
        // (` 5` / `5 ` are NOT here: optional whitespace around a
        // header value is legal HTTP and is trimmed before parsing.)
        for cl in ["-1", "+5", "0x10", "99999999999999999999999999", "", "4,4"] {
            let raw = format!("POST /run HTTP/1.1\r\nContent-Length:{cl}\r\n\r\n");
            let e = parse_bytes(raw.as_bytes(), 1024).unwrap_err();
            assert!(
                matches!(e, HttpError::BadLength(_)),
                "Content-Length {cl:?} must be BadLength, got {e:?}"
            );
        }
        let dup = b"POST /run HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 1\r\n\r\nx";
        assert!(matches!(parse_bytes(dup, 1024).unwrap_err(), HttpError::BadLength(_)));
        // Absent Content-Length is NOT pathological: it means an empty
        // body (`curl -X POST /shutdown` sends exactly this).
        let missing = b"POST /shutdown HTTP/1.1\r\n\r\n";
        assert!(parse_bytes(missing, 1024).unwrap().unwrap().body.is_empty());
    }

    #[test]
    fn oversized_bodies_are_drained_and_flagged() {
        let body = "x".repeat(64);
        let raw = format!("POST /run HTTP/1.1\r\nContent-Length: 64\r\n\r\n{body}rest");
        match parse_bytes(raw.as_bytes(), 16).unwrap_err() {
            HttpError::BodyTooLarge { declared: 64, cap: 16, drained } => {
                assert!(drained, "modest oversize must drain for reuse")
            }
            other => panic!("{other:?}"),
        }
        // Declared size beyond the drain slack: not reusable.
        let raw = format!("POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        match parse_bytes(raw.as_bytes(), 16).unwrap_err() {
            e @ HttpError::BodyTooLarge { drained, .. } => {
                assert!(!drained);
                assert!(!e.reusable());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/9.9\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
        ] {
            let e = parse_bytes(raw.as_bytes(), 1024).unwrap_err();
            assert!(matches!(e, HttpError::Malformed(_)), "{raw:?} -> {e:?}");
            assert_eq!(e.status(), 400);
        }
    }

    #[test]
    fn line_and_header_count_limits_hold() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 10));
        assert!(matches!(parse_bytes(long.as_bytes(), 1024).unwrap_err(), HttpError::Malformed(_)));
        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + 2 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(parse_bytes(many.as_bytes(), 1024).unwrap_err(), HttpError::Malformed(_)));
    }

    #[test]
    fn transfer_encoding_is_501() {
        let raw = b"POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let e = parse_bytes(raw, 1024).unwrap_err();
        assert!(matches!(e, HttpError::Unsupported(_)));
        assert_eq!(e.status(), 501);
    }

    #[test]
    fn write_response_is_parseable() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            "{}",
            &[("Retry-After", "1".into())],
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
