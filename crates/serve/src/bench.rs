//! The self-driving load-test harness behind `lold-bench`.
//!
//! N client threads × M requests each, over real localhost sockets
//! (keep-alive — one connection per client, like a well-behaved SDK),
//! against a `lold` server that is usually in the same process. The
//! report carries throughput and latency percentiles in the JSON shape
//! `scripts/check_perf_regression.py --serve` gates on.
//!
//! The harness also scrapes `GET /metrics` before and after the run
//! and embeds the server-side counter deltas ([`ServeDeltas`]) in the
//! report — so the client's view ("I sent 400 requests") is checked
//! against the server's ("I counted 400 and zero errors") in the same
//! document.

use std::time::Instant;

use lol_obs::{parse_exposition, sample_value, Sample};

/// What to throw at the server.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Server address, e.g. `127.0.0.1:4040`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Request path (e.g. `/run`).
    pub path: String,
    /// Request body (sent verbatim on every request).
    pub body: String,
}

/// Aggregated results of one bench run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Client threads that ran.
    pub clients: usize,
    /// Total requests attempted (`clients × requests`).
    pub total: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Non-200 responses plus transport failures.
    pub errors: usize,
    /// Whole-bench wall time in nanoseconds.
    pub wall_ns: u64,
    /// Completed requests per second (ok + non-200, not transport
    /// failures), derived from `wall_ns`.
    pub rps: f64,
    /// Median request latency in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Worst observed latency in nanoseconds.
    pub max_ns: u64,
    /// Server-side counter deltas over the run, from the `/metrics`
    /// scrape pair. `None` when either scrape failed (e.g. an old
    /// server without the route).
    pub serve: Option<ServeDeltas>,
}

/// What the server counted between the two `/metrics` scrapes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeDeltas {
    /// `lold_requests_total{route="run"}` growth.
    pub requests_run: u64,
    /// Artifact-cache hits.
    pub cache_hits: u64,
    /// Artifact-cache misses (compiles paid).
    pub cache_misses: u64,
    /// Artifact-cache evictions.
    pub cache_evictions: u64,
    /// Queue-full refusals (HTTP 429).
    pub rejected_429: u64,
    /// Drain refusals (HTTP 503).
    pub rejected_503: u64,
    /// Error responses the server produced (`lold_errors_total`).
    pub server_errors: u64,
}

/// One scrape of the counters [`ServeDeltas`] is computed from.
fn scrape(addr: &str) -> Option<Vec<Sample>> {
    let resp = crate::client::get(addr, "/metrics").ok()?;
    if resp.status != 200 {
        return None;
    }
    parse_exposition(&resp.text()).ok()
}

fn delta(before: &[Sample], after: &[Sample], name: &str, labels: &[(&str, &str)]) -> u64 {
    let b = sample_value(before, name, labels).unwrap_or(0.0);
    let a = sample_value(after, name, labels).unwrap_or(0.0);
    (a - b).max(0.0) as u64
}

impl ServeDeltas {
    fn between(before: &[Sample], after: &[Sample]) -> ServeDeltas {
        ServeDeltas {
            requests_run: delta(before, after, "lold_requests_total", &[("route", "run")]),
            cache_hits: delta(before, after, "lold_cache_hits_total", &[]),
            cache_misses: delta(before, after, "lold_cache_misses_total", &[]),
            cache_evictions: delta(before, after, "lold_cache_evictions_total", &[]),
            rejected_429: delta(before, after, "lold_rejected_total", &[("status", "429")]),
            rejected_503: delta(before, after, "lold_rejected_total", &[("status", "503")]),
            server_errors: delta(before, after, "lold_errors_total", &[]),
        }
    }

    /// The `"serve"` object embedded in [`BenchReport::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests_run\": {}, \"cache_hits\": {}, \"cache_misses\": {}, ",
                "\"cache_evictions\": {}, \"rejected_429\": {}, \"rejected_503\": {}, ",
                "\"server_errors\": {}}}"
            ),
            self.requests_run,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.rejected_429,
            self.rejected_503,
            self.server_errors,
        )
    }
}

fn percentile(sorted: &[u64], num: usize, den: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() - 1) * num / den;
    sorted[idx]
}

impl BenchReport {
    /// The JSON document `serve-bench.json` holds; keys are consumed
    /// by `scripts/check_perf_regression.py --serve`.
    pub fn to_json(&self) -> String {
        let serve = match &self.serve {
            Some(s) => format!(", \"serve\": {}", s.to_json()),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"clients\": {}, \"total\": {}, \"ok\": {}, \"errors\": {}, ",
                "\"wall_ns\": {}, \"rps\": {:.2}, ",
                "\"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}{}}}"
            ),
            self.clients,
            self.total,
            self.ok,
            self.errors,
            self.wall_ns,
            self.rps,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.max_ns,
            serve,
        )
    }

    /// One human line for terminals and CI logs.
    pub fn summary(&self) -> String {
        format!(
            "{} clients × {} reqs: {} ok, {} errors, {:.1} req/s, p50 {:.2}ms p99 {:.2}ms",
            self.clients,
            self.total / self.clients.max(1),
            self.ok,
            self.errors,
            self.rps,
            self.p50_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
        )
    }
}

/// Run the bench. Each client keeps one connection for all its
/// requests; a transport failure mid-stream reconnects once per
/// request so one dropped socket doesn't zero a whole client's column.
pub fn run(spec: &BenchSpec) -> BenchReport {
    let before = scrape(&spec.addr);
    let started = Instant::now();
    let mut per_client: Vec<(Vec<u64>, usize, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut latencies = Vec::with_capacity(spec.requests);
                    let mut ok = 0usize;
                    let mut errors = 0usize;
                    let mut conn = crate::client::Conn::connect(&spec.addr).ok();
                    for _ in 0..spec.requests {
                        if conn.is_none() {
                            conn = crate::client::Conn::connect(&spec.addr).ok();
                        }
                        let Some(c) = conn.as_mut() else {
                            errors += 1;
                            continue;
                        };
                        let t0 = Instant::now();
                        match c.request("POST", &spec.path, spec.body.as_bytes()) {
                            Ok(resp) => {
                                latencies.push(t0.elapsed().as_nanos() as u64);
                                if resp.status == 200 {
                                    ok += 1;
                                } else {
                                    errors += 1;
                                }
                                if resp.header("connection") == Some("close") {
                                    conn = None;
                                }
                            }
                            Err(_) => {
                                errors += 1;
                                conn = None;
                            }
                        }
                    }
                    (latencies, ok, errors)
                })
            })
            .collect();
        for h in handles {
            if let Ok(cell) = h.join() {
                per_client.push(cell);
            }
        }
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    let serve = match (before, scrape(&spec.addr)) {
        (Some(b), Some(a)) => Some(ServeDeltas::between(&b, &a)),
        _ => None,
    };
    let mut latencies: Vec<u64> = Vec::new();
    let mut ok = 0;
    let mut errors = 0;
    for (lat, o, e) in per_client {
        latencies.extend(lat);
        ok += o;
        errors += e;
    }
    latencies.sort_unstable();
    let completed = latencies.len();
    BenchReport {
        clients: spec.clients.max(1),
        total: spec.clients.max(1) * spec.requests,
        ok,
        errors,
        wall_ns,
        rps: completed as f64 / (wall_ns.max(1) as f64 / 1e9),
        p50_ns: percentile(&latencies, 50, 100),
        p90_ns: percentile(&latencies, 90, 100),
        p99_ns: percentile(&latencies, 99, 100),
        max_ns: latencies.last().copied().unwrap_or(0),
        serve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let data: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&data, 50, 100), 50);
        assert_eq!(percentile(&data, 99, 100), 99);
        assert_eq!(percentile(&data, 100, 100), 100);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn report_json_is_parseable() {
        let r = BenchReport {
            clients: 2,
            total: 10,
            ok: 9,
            errors: 1,
            wall_ns: 1_000_000,
            rps: 9000.0,
            p50_ns: 10,
            p90_ns: 20,
            p99_ns: 30,
            max_ns: 40,
            serve: None,
        };
        let json = crate::json::parse(&r.to_json()).unwrap();
        assert_eq!(json.get("ok").unwrap().as_u64(), Some(9));
        assert_eq!(json.get("p99_ns").unwrap().as_u64(), Some(30));
        assert!(json.get("serve").is_none(), "no scrape, no serve object");
        assert!(r.summary().contains("9 ok"));

        let with = BenchReport {
            serve: Some(ServeDeltas { requests_run: 10, server_errors: 0, ..Default::default() }),
            ..r
        };
        let json = crate::json::parse(&with.to_json()).unwrap();
        let serve = json.get("serve").unwrap();
        assert_eq!(serve.get("requests_run").unwrap().as_u64(), Some(10));
        assert_eq!(serve.get("server_errors").unwrap().as_u64(), Some(0));
    }
}
