//! The self-driving load-test harness behind `lold-bench`.
//!
//! N client threads × M requests each, over real localhost sockets
//! (keep-alive — one connection per client, like a well-behaved SDK),
//! against a `lold` server that is usually in the same process. The
//! report carries throughput and latency percentiles in the JSON shape
//! `scripts/check_perf_regression.py --serve` gates on.

use std::time::Instant;

/// What to throw at the server.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Server address, e.g. `127.0.0.1:4040`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Request path (e.g. `/run`).
    pub path: String,
    /// Request body (sent verbatim on every request).
    pub body: String,
}

/// Aggregated results of one bench run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Client threads that ran.
    pub clients: usize,
    /// Total requests attempted (`clients × requests`).
    pub total: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Non-200 responses plus transport failures.
    pub errors: usize,
    /// Whole-bench wall time in nanoseconds.
    pub wall_ns: u64,
    /// Completed requests per second (ok + non-200, not transport
    /// failures), derived from `wall_ns`.
    pub rps: f64,
    /// Median request latency in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Worst observed latency in nanoseconds.
    pub max_ns: u64,
}

fn percentile(sorted: &[u64], num: usize, den: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() - 1) * num / den;
    sorted[idx]
}

impl BenchReport {
    /// The JSON document `serve-bench.json` holds; keys are consumed
    /// by `scripts/check_perf_regression.py --serve`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"clients\": {}, \"total\": {}, \"ok\": {}, \"errors\": {}, ",
                "\"wall_ns\": {}, \"rps\": {:.2}, ",
                "\"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}"
            ),
            self.clients,
            self.total,
            self.ok,
            self.errors,
            self.wall_ns,
            self.rps,
            self.p50_ns,
            self.p90_ns,
            self.p99_ns,
            self.max_ns,
        )
    }

    /// One human line for terminals and CI logs.
    pub fn summary(&self) -> String {
        format!(
            "{} clients × {} reqs: {} ok, {} errors, {:.1} req/s, p50 {:.2}ms p99 {:.2}ms",
            self.clients,
            self.total / self.clients.max(1),
            self.ok,
            self.errors,
            self.rps,
            self.p50_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
        )
    }
}

/// Run the bench. Each client keeps one connection for all its
/// requests; a transport failure mid-stream reconnects once per
/// request so one dropped socket doesn't zero a whole client's column.
pub fn run(spec: &BenchSpec) -> BenchReport {
    let started = Instant::now();
    let mut per_client: Vec<(Vec<u64>, usize, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients.max(1))
            .map(|_| {
                scope.spawn(|| {
                    let mut latencies = Vec::with_capacity(spec.requests);
                    let mut ok = 0usize;
                    let mut errors = 0usize;
                    let mut conn = crate::client::Conn::connect(&spec.addr).ok();
                    for _ in 0..spec.requests {
                        if conn.is_none() {
                            conn = crate::client::Conn::connect(&spec.addr).ok();
                        }
                        let Some(c) = conn.as_mut() else {
                            errors += 1;
                            continue;
                        };
                        let t0 = Instant::now();
                        match c.request("POST", &spec.path, spec.body.as_bytes()) {
                            Ok(resp) => {
                                latencies.push(t0.elapsed().as_nanos() as u64);
                                if resp.status == 200 {
                                    ok += 1;
                                } else {
                                    errors += 1;
                                }
                                if resp.header("connection") == Some("close") {
                                    conn = None;
                                }
                            }
                            Err(_) => {
                                errors += 1;
                                conn = None;
                            }
                        }
                    }
                    (latencies, ok, errors)
                })
            })
            .collect();
        for h in handles {
            if let Ok(cell) = h.join() {
                per_client.push(cell);
            }
        }
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut ok = 0;
    let mut errors = 0;
    for (lat, o, e) in per_client {
        latencies.extend(lat);
        ok += o;
        errors += e;
    }
    latencies.sort_unstable();
    let completed = latencies.len();
    BenchReport {
        clients: spec.clients.max(1),
        total: spec.clients.max(1) * spec.requests,
        ok,
        errors,
        wall_ns,
        rps: completed as f64 / (wall_ns.max(1) as f64 / 1e9),
        p50_ns: percentile(&latencies, 50, 100),
        p90_ns: percentile(&latencies, 90, 100),
        p99_ns: percentile(&latencies, 99, 100),
        max_ns: latencies.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let data: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&data, 50, 100), 50);
        assert_eq!(percentile(&data, 99, 100), 99);
        assert_eq!(percentile(&data, 100, 100), 100);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn report_json_is_parseable() {
        let r = BenchReport {
            clients: 2,
            total: 10,
            ok: 9,
            errors: 1,
            wall_ns: 1_000_000,
            rps: 9000.0,
            p50_ns: 10,
            p90_ns: 20,
            p99_ns: 30,
            max_ns: 40,
        };
        let json = crate::json::parse(&r.to_json()).unwrap();
        assert_eq!(json.get("ok").unwrap().as_u64(), Some(9));
        assert_eq!(json.get("p99_ns").unwrap().as_u64(), Some(30));
        assert!(r.summary().contains("9 ok"));
    }
}
