//! Content-addressed LRU cache of [`Compiled`] artifacts.
//!
//! The key insight for correctness testing: the bucket hash covers the
//! **source text only** (FNV-1a, same polynomial as the sweep output
//! hash), while entry *identity* is the full `(source, opts)` pair.
//! Two requests with identical source but different dialect options
//! therefore collide by construction and must be disambiguated by the
//! equality guard — `tests/cache.rs` leans on this deliberately.
//!
//! Concurrency: the map lock is only held to find-or-insert an entry
//! stub; the compile itself runs inside `OnceLock::get_or_init`
//! *outside* the map lock, so N concurrent identical requests perform
//! exactly one compile (std's `OnceLock` blocks the other N-1
//! initializers until the winner finishes).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use lolcode::{Compiled, LolError};

/// FNV-1a over the source bytes — deliberately weak (64-bit, no
/// per-process seed) so collision behaviour is reproducible in tests.
pub fn source_hash(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

type Slot = Arc<OnceLock<Result<Arc<Compiled>, LolError>>>;

struct Entry {
    hash: u64,
    source: String,
    opts: String,
    last_used: u64,
    slot: Slot,
}

/// Monotonic counters exposed through `GET /healthz`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Configured capacity (entries).
    pub capacity: usize,
    /// Live entries.
    pub len: usize,
    /// Lookups that found an existing artifact (compiled or in
    /// flight — a request that piggybacks on a concurrent compile
    /// counts as a hit).
    pub hits: u64,
    /// Lookups that created a new entry and paid for a compile.
    pub misses: u64,
    /// Entries discarded to make room.
    pub evictions: u64,
}

/// The cache proper. Cheap to share: `Clone` clones the `Arc`.
#[derive(Clone)]
pub struct ArtifactCache {
    inner: Arc<CacheInner>,
}

struct CacheInner {
    capacity: usize,
    entries: Mutex<(Vec<Entry>, u64)>, // (entries, clock)
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts (min 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            inner: Arc::new(CacheInner {
                capacity: capacity.max(1),
                entries: Mutex::new((Vec::new(), 0)),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// Compile-or-fetch. `opts` is the dialect/option string that,
    /// together with the source, forms the artifact identity.
    pub fn get(&self, source: &str, opts: &str) -> Result<Arc<Compiled>, LolError> {
        let hash = source_hash(source);
        let (slot, fresh) = {
            let mut guard = self.inner.entries.lock().unwrap();
            let (entries, clock) = &mut *guard;
            *clock += 1;
            let now = *clock;
            if let Some(e) =
                entries.iter_mut().find(|e| e.hash == hash && e.source == source && e.opts == opts)
            {
                e.last_used = now;
                (e.slot.clone(), false)
            } else {
                if entries.len() >= self.inner.capacity {
                    let oldest = entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("non-empty at capacity");
                    entries.swap_remove(oldest);
                    self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                }
                let slot: Slot = Arc::new(OnceLock::new());
                entries.push(Entry {
                    hash,
                    source: source.to_string(),
                    opts: opts.to_string(),
                    last_used: now,
                    slot: slot.clone(),
                });
                (slot, true)
            }
        };
        if fresh {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        }
        // The compile runs outside the map lock; concurrent callers on
        // the same slot block here instead of compiling twice.
        slot.get_or_init(|| Compiled::new(source).map(Arc::new)).clone()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            capacity: self.inner.capacity,
            len: self.inner.entries.lock().unwrap().0.len(),
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lolcode::corpus;

    #[test]
    fn hit_miss_and_artifact_reuse() {
        let cache = ArtifactCache::new(4);
        let a = cache.get(corpus::HELLO_PARALLEL, "1.2").unwrap();
        let b = cache.get(corpus::HELLO_PARALLEL, "1.2").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the artifact");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn same_source_different_opts_do_not_share() {
        let cache = ArtifactCache::new(4);
        let a = cache.get(corpus::HELLO_PARALLEL, "1.2").unwrap();
        let b = cache.get(corpus::HELLO_PARALLEL, "1.3").unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "same hash, different opts: distinct artifacts");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 2, 2));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ArtifactCache::new(2);
        cache.get(corpus::HELLO_PARALLEL, "1.2").unwrap();
        cache.get(corpus::RING_EXAMPLE, "1.2").unwrap();
        cache.get(corpus::HELLO_PARALLEL, "1.2").unwrap(); // refresh
        cache.get(corpus::BARRIER_EXAMPLE, "1.2").unwrap(); // evicts RING
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        cache.get(corpus::HELLO_PARALLEL, "1.2").unwrap();
        assert_eq!(cache.stats().hits, 2, "HELLO must have survived the eviction");
    }

    #[test]
    fn compile_errors_are_cached_too() {
        let cache = ArtifactCache::new(2);
        assert!(cache.get("NOT LOLCODE AT ALL", "1.2").is_err());
        assert!(cache.get("NOT LOLCODE AT ALL", "1.2").is_err());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1), "the failed compile is only paid once");
    }
}
