//! A small, strict, dependency-free JSON parser for request bodies.
//!
//! The service never trusts a client: inputs are bounded before they
//! reach this module (the HTTP layer enforces the body-size quota),
//! and the parser itself is **total** — any byte sequence produces
//! either a [`Json`] value or a [`JsonError`], never a panic, never
//! unbounded work (nesting is capped at [`MAX_DEPTH`]). Strictness
//! choices that matter for a service:
//!
//! * **Duplicate keys are an error.** `{"pes": 1, "pes": 64000}`
//!   is a smuggling vector (which one did the quota check see?), so
//!   it is rejected outright instead of last-one-wins.
//! * **Numbers keep their raw text.** A `u64` seed round-trips
//!   exactly; nothing is forced through `f64`.
//! * **Exactly one value per body.** Trailing non-whitespace is an
//!   error.

/// Nesting cap: arrays/objects deeper than this are rejected (a
/// 10 kB body of `[[[[…` must not recurse 5 000 frames).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object fields keep their textual order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw text (see [`Json::as_u64`] etc.).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in field order. Keys are unique (duplicates are a
    /// parse error).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for missing fields or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse the raw number as `u64` (exact; no float round-trip).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Parse the raw number as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened
/// at. Always a client error (HTTP 400).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BAD JSON AT BYTE {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse exactly one JSON value from `input` (leading/trailing
/// whitespace allowed, anything else after the value is an error).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("TRAILING GARBAGE AFTER DA VALUE"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { message: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("NESTED 2 DEEP"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("EXPECTED A JSON VALUE")),
            None => Err(self.err("UNEXPECTED END OF INPUT")),
        }
    }

    fn literal(&mut self, text: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("EXPECTED A JSON VALUE"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "EXPECTED {")?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|mut e| {
                e.message = format!("OBJECT KEY: {}", e.message);
                e
            })?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("DUPLICATE OBJECT KEY {key:?}")));
            }
            self.skip_ws();
            self.eat(b':', "EXPECTED : AFTER OBJECT KEY")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("EXPECTED , OR } IN OBJECT")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "EXPECTED [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("EXPECTED , OR ] IN ARRAY")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "EXPECTED A STRING")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("UNTERMINATED STRING")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low; lone surrogates
                            // are an error (never a panic).
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("LONE HIGH SURROGATE"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("BAD LOW SURROGATE"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("BAD SURROGATE PAIR"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("LONE SURROGATE"))?
                            };
                            out.push(ch);
                            // hex4 leaves pos past the 4 digits; the
                            // shared advance below is for 1-byte
                            // escapes, so compensate.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("BAD ESCAPE IN STRING")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("RAW CONTROL CHAR IN STRING")),
                Some(_) => {
                    // Multi-byte UTF-8 is already valid (input is &str);
                    // copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let ch = s.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("TRUNCATED \\u ESCAPE"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("BAD \\u ESCAPE"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("BAD \\u ESCAPE"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("EXPECTED DIGITS IN NUMBER"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("EXPECTED DIGITS AFTER ."));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("EXPECTED DIGITS IN EXPONENT"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }
}

/// Escape `s` for embedding in a JSON string literal (mirror of the
/// sweep report's escaper; kept here so the serve crate needs no
/// private access).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let v =
            parse(r#"{"source": "HAI", "pes": 4, "input": ["a", "b"], "timing": true}"#).unwrap();
        assert_eq!(v.get("source").unwrap().as_str(), Some("HAI"));
        assert_eq!(v.get("pes").unwrap().as_usize(), Some(4));
        assert_eq!(v.get("timing").unwrap().as_bool(), Some(true));
        let input = v.get("input").unwrap().as_arr().unwrap();
        assert_eq!(input.len(), 2);
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn numbers_round_trip_u64_exactly() {
        let v = parse("{\"seed\": 18446744073709551615}").unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = parse(r#"{"pes": 1, "pes": 64000}"#).unwrap_err();
        assert!(e.message.contains("DUPLICATE"), "{e}");
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("2 DEEP"), "{e}");
        // And a depth inside the cap parses fine.
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        parse(&ok).unwrap();
    }

    #[test]
    fn escapes_and_surrogates() {
        let v = parse(r#""a\n\t\"\\A😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A😀b"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn trailing_garbage_and_truncation_fail() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01").is_err() || parse("01").is_ok()); // lenient leading zero, but total
        assert!(parse("").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let embedded = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&embedded).unwrap().as_str(), Some(nasty));
    }
}
