//! The `lold` metric surface: every counter, gauge and histogram the
//! daemon exports through `GET /metrics`, pre-registered at startup so
//! the request hot path only bumps cached handles (one relaxed atomic
//! add per counter, two per histogram observation).
//!
//! `GET /healthz` reads the same handles — the two endpoints can never
//! disagree about a count. The cache and queue numbers are owned by
//! their subsystems and mirrored into the exposition at scrape time
//! ([`Metrics::mirror`]); everything else is bumped at the event site.

use std::sync::Arc;
use std::time::Duration;

use lol_obs::{Counter, Gauge, Histogram, Registry};

use crate::cache::CacheStats;

/// The routes that get a request counter and a latency histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `POST /run`.
    Run,
    /// `POST /sweep`.
    Sweep,
    /// `POST /trace`.
    Trace,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
}

impl Route {
    /// The `route` label value.
    pub fn label(self) -> &'static str {
        match self {
            Route::Run => "run",
            Route::Sweep => "sweep",
            Route::Trace => "trace",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
        }
    }
}

/// All of `lold`'s metric handles, plus the [`Registry`] that renders
/// them.
pub struct Metrics {
    /// The registry behind `GET /metrics`.
    pub registry: Registry,
    /// `lold_requests_total{route=…}` per [`Route`], in enum order.
    requests: [Arc<Counter>; 5],
    /// `lold_request_latency_us{route=…}` for the three POST routes,
    /// in [`Route`] enum order.
    latency: [Arc<Histogram>; 3],
    /// `lold_rejected_total{status="429"}` — queue-full refusals.
    pub rejected_429: Arc<Counter>,
    /// `lold_rejected_total{status="503"}` — drain refusals.
    pub rejected_503: Arc<Counter>,
    /// `lold_errors_total` — every error response (status ≥ 400),
    /// including transport-level parse failures.
    pub errors: Arc<Counter>,
    /// `lold_queue_depth` — accepted-but-unclaimed connections.
    pub queue_depth: Arc<Gauge>,
    /// `lold_busy_workers` — workers currently inside a handler.
    pub busy_workers: Arc<Gauge>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_len: Arc<Gauge>,
    cache_capacity: Arc<Gauge>,
}

impl Metrics {
    /// Build the full surface on a fresh registry and record the
    /// static facts (`workers`, `thread_budget`) as gauges.
    pub fn new(workers: usize, thread_budget: usize) -> Metrics {
        let registry = Registry::new();
        let req = |route: Route| {
            registry.counter(
                "lold_requests_total",
                "Requests handled, by route.",
                &[("route", route.label())],
            )
        };
        let lat = |route: Route| {
            registry.histogram(
                "lold_request_latency_us",
                "Handler latency in microseconds, by route.",
                &[("route", route.label())],
            )
        };
        let requests = [
            req(Route::Run),
            req(Route::Sweep),
            req(Route::Trace),
            req(Route::Healthz),
            req(Route::Metrics),
        ];
        let latency = [lat(Route::Run), lat(Route::Sweep), lat(Route::Trace)];
        let rej = |status: &str| {
            registry.counter(
                "lold_rejected_total",
                "Connections refused before admission, by HTTP status.",
                &[("status", status)],
            )
        };
        let m = Metrics {
            requests,
            latency,
            rejected_429: rej("429"),
            rejected_503: rej("503"),
            errors: registry.counter(
                "lold_errors_total",
                "Error responses (status >= 400), transport errors included.",
                &[],
            ),
            queue_depth: registry.gauge(
                "lold_queue_depth",
                "Accepted connections waiting for a worker.",
                &[],
            ),
            busy_workers: registry.gauge(
                "lold_busy_workers",
                "Workers currently executing a handler.",
                &[],
            ),
            cache_hits: registry.counter(
                "lold_cache_hits_total",
                "Artifact-cache lookups that reused a compile.",
                &[],
            ),
            cache_misses: registry.counter(
                "lold_cache_misses_total",
                "Artifact-cache lookups that paid for a compile.",
                &[],
            ),
            cache_evictions: registry.counter(
                "lold_cache_evictions_total",
                "Artifacts discarded to make room.",
                &[],
            ),
            cache_len: registry.gauge("lold_cache_len", "Live artifact-cache entries.", &[]),
            cache_capacity: registry.gauge(
                "lold_cache_capacity",
                "Configured artifact-cache capacity.",
                &[],
            ),
            registry,
        };
        m.registry.gauge("lold_workers", "Configured worker threads.", &[]).set(workers as i64);
        m.registry
            .gauge("lold_thread_budget", "Run-admission thread budget.", &[])
            .set(thread_budget as i64);
        m
    }

    /// The request counter for `route`.
    pub fn requests(&self, route: Route) -> &Counter {
        &self.requests[route as usize]
    }

    /// Record a handler latency for one of the POST routes
    /// (no-op for `Healthz`/`Metrics`, which are too cheap to bucket).
    pub fn observe_latency(&self, route: Route, dur: Duration) {
        if (route as usize) < self.latency.len() {
            self.latency[route as usize].observe(dur.as_micros() as u64);
        }
    }

    /// Bump the per-registry-code error counter
    /// (`lold_error_codes_total{code="SRV…"}`). Lazily creates the
    /// series — error paths are off the hot path by definition.
    pub fn error_code(&self, code: &str) {
        self.registry
            .counter(
                "lold_error_codes_total",
                "Error responses, by SRV registry code.",
                &[("code", code)],
            )
            .inc();
    }

    /// Mirror the externally-owned numbers (artifact cache, connection
    /// queue) into the exposition. Called at scrape time.
    pub fn mirror(&self, cache: &CacheStats, queue_depth: usize) {
        self.cache_hits.store(cache.hits);
        self.cache_misses.store(cache.misses);
        self.cache_evictions.store(cache.evictions);
        self.cache_len.set(cache.len as i64);
        self.cache_capacity.set(cache.capacity as i64);
        self.queue_depth.set(queue_depth as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_obs::{parse_exposition, sample_value};

    #[test]
    fn surface_renders_and_round_trips() {
        let m = Metrics::new(8, 4);
        m.requests(Route::Run).inc();
        m.requests(Route::Run).inc();
        m.observe_latency(Route::Run, Duration::from_micros(1500));
        m.error_code("SRV0111");
        m.mirror(&CacheStats { capacity: 32, len: 3, hits: 10, misses: 4, evictions: 1 }, 2);
        let body = m.registry.render();
        let samples = parse_exposition(&body).expect("exposition must parse");
        assert_eq!(sample_value(&samples, "lold_requests_total", &[("route", "run")]), Some(2.0));
        assert_eq!(
            sample_value(&samples, "lold_error_codes_total", &[("code", "SRV0111")]),
            Some(1.0)
        );
        assert_eq!(sample_value(&samples, "lold_cache_hits_total", &[]), Some(10.0));
        assert_eq!(sample_value(&samples, "lold_queue_depth", &[]), Some(2.0));
        assert_eq!(sample_value(&samples, "lold_workers", &[]), Some(8.0));
        assert_eq!(
            sample_value(&samples, "lold_request_latency_us_count", &[("route", "run")]),
            Some(1.0)
        );
    }

    #[test]
    fn latency_is_observed_only_for_post_routes() {
        let m = Metrics::new(1, 1);
        m.observe_latency(Route::Healthz, Duration::from_micros(10));
        m.observe_latency(Route::Metrics, Duration::from_micros(10));
        let body = m.registry.render();
        let samples = parse_exposition(&body).unwrap();
        assert_eq!(
            sample_value(&samples, "lold_request_latency_us_count", &[("route", "healthz")]),
            None
        );
    }
}
