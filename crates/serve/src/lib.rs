//! `lol-serve` — the `lold` playground service.
//!
//! A dependency-free JSON-over-HTTP daemon that exposes the whole
//! toolchain — every backend in the engine registry — behind four
//! routes:
//!
//! * `POST /run` — compile (or fetch from the artifact cache) and run
//!   one config; the response body is the same stable JSON
//!   `lolrun --json` prints, byte for byte.
//! * `POST /sweep` — a full [`lolcode::SweepSpec`] product over one
//!   program,
//!   rendered as the sweep report JSON.
//! * `POST /trace` — run with tracing forced on and return a rendering
//!   (Gantt, event log, comm matrix, SVG, or Perfetto/Chrome trace
//!   JSON).
//! * `GET /healthz` — liveness plus the counters the load-test harness
//!   and the cache tests assert on.
//! * `GET /metrics` — the same counters (and more: latency histograms,
//!   per-code error counts, cache and queue gauges) as a Prometheus
//!   text exposition, backed by a `lol-obs` [`metrics::Metrics`]
//!   registry. `/healthz` reads the identical handles, so the two
//!   endpoints cannot drift.
//!
//! Design points:
//!
//! * **std only.** The HTTP server is [`http`], the JSON parser is
//!   [`json`] — both bounded, total, and fuzzed in `tests/fuzz.rs`.
//! * **Bounded worker pool.** A fixed set of worker threads serves
//!   connections from a capped queue ([`ServeConfig::queue_cap`]);
//!   when the queue is full the accept loop answers `429` with
//!   `Retry-After` instead of accepting unbounded work, and once a
//!   connection is accepted into the queue its requests are never
//!   dropped.
//! * **Anti-starvation.** Every run acquires thread-budget weight via
//!   [`lolcode::config_weight`] — the same weighting the sweep
//!   scheduler uses — so a 64k-PE sim request charges its scheduler's
//!   worker count, not 64k, and wide requests queue instead of
//!   oversubscribing the host.
//! * **Artifact cache.** A content-hash LRU ([`cache::ArtifactCache`])
//!   with single-flight compiles: N concurrent identical requests pay
//!   for exactly one front-end pass.
//! * **Quotas.** [`Quotas`] caps PE count, host wall, virtual wall and
//!   body size per request; violations degrade to structured
//!   `SRV0xxx` error JSON (`docs/SERVE.md` has the registry).
//!
//! ```no_run
//! use lol_serve::{client, Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let addr = server.addr().to_string();
//! let resp = client::post(
//!     &addr,
//!     "/run",
//!     r#"{"source": "HAI 1.2\nVISIBLE ME\nKTHXBYE", "pes": 4}"#,
//! )
//! .unwrap();
//! assert_eq!(resp.status, 200);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bench;
pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lol_obs::{EventLog, Field};
use lolcode::service::{run_report_json, Quotas};
use lolcode::{config_weight, engine_for, SweepSpec};

use api::{ApiError, RunRequest, TraceFormat};
use cache::ArtifactCache;
use http::{read_request, write_response, HttpError, Request};
use metrics::{Metrics, Route};

/// One socket-read slice: how often a pinned worker re-checks the
/// shutdown flag while its connection is idle.
const READ_POLL: Duration = Duration::from_millis(200);

/// Everything tunable about a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (the default,
    /// `127.0.0.1:0`, is what tests want).
    pub addr: String,
    /// Worker threads. A worker is pinned to its connection while the
    /// connection is open, so size this at or above the expected
    /// concurrent client count.
    pub workers: usize,
    /// Accepted-but-unclaimed connection cap; beyond it the accept
    /// loop answers `429`.
    pub queue_cap: usize,
    /// Artifact-cache capacity, in compiled programs.
    pub cache_capacity: usize,
    /// Per-request quotas.
    pub quotas: Quotas,
    /// Global thread budget for run admission (`0` = available
    /// cores). Shares semantics with [`SweepSpec::threads`].
    pub thread_budget: usize,
    /// Per-read socket timeout: an idle or wedged connection releases
    /// its worker after this long.
    pub read_timeout: Duration,
    /// Opt-in JSONL access log: one line per handled request
    /// (timestamp, method, path, status, latency, body size). `None`
    /// (the default) writes nothing and costs nothing.
    pub access_log: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_cap: 32,
            cache_capacity: 32,
            quotas: Quotas::default(),
            thread_budget: 0,
            read_timeout: Duration::from_secs(30),
            access_log: None,
        }
    }
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    cache: ArtifactCache,
    metrics: Metrics,
    access: Option<EventLog>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    budget: usize,
    weight: Mutex<usize>,
    weight_cv: Condvar,
}

/// Releases its thread-budget weight on drop.
struct BudgetGuard<'a> {
    shared: &'a Shared,
    weight: usize,
}

impl Drop for BudgetGuard<'_> {
    fn drop(&mut self) {
        let mut used = self.shared.weight.lock().unwrap();
        *used -= self.weight;
        drop(used);
        self.shared.weight_cv.notify_all();
    }
}

impl Shared {
    /// Block until `weight` threads fit inside the budget. The weight
    /// comes from [`config_weight`], which caps at the budget, so a
    /// single over-wide request still runs — alone.
    fn acquire_weight(&self, weight: usize) -> BudgetGuard<'_> {
        let mut used = self.shared_weight_wait(weight);
        *used += weight;
        drop(used);
        BudgetGuard { shared: self, weight }
    }

    fn shared_weight_wait(&self, weight: usize) -> std::sync::MutexGuard<'_, usize> {
        let mut used = self.weight.lock().unwrap();
        while *used + weight > self.budget {
            used = self.weight_cv.wait(used).unwrap();
        }
        used
    }
}

/// A running `lold` server: accept loop + worker pool on background
/// threads. Drop does *not* stop it — call [`Server::shutdown`] (or
/// `POST /shutdown` and [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Returns once the socket is listening.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let budget = if config.thread_budget > 0 {
            config.thread_budget
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        };
        let access = match &config.access_log {
            Some(path) => Some(EventLog::create(std::path::Path::new(path))?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(config.cache_capacity),
            addr,
            metrics: Metrics::new(config.workers, budget),
            access,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            budget,
            weight: Mutex::new(0),
            weight_cv: Condvar::new(),
            config,
        });
        let mut threads = Vec::new();
        for worker in 0..shared.config.workers.max(1) {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("lold-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("lold-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(Server { shared, threads })
    }

    /// The bound address (real port, even when configured as `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Has a shutdown been requested (flag set, draining)?
    pub fn draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server shuts down (via [`Server::shutdown`]
    /// from another thread or `POST /shutdown` from a client) and all
    /// in-flight requests drain.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Request shutdown and block until every accepted request has
    /// been answered.
    pub fn shutdown(self) {
        trigger_shutdown(&self.shared);
        self.wait()
    }
}

/// Flip the shutdown flag, wake the workers, and poke the accept loop
/// (which is blocked in `accept`) with a throwaway connection.
fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        // Short read slices so a worker pinned on an idle keep-alive
        // connection re-checks the shutdown flag a few times a second
        // (the full idle allowance is `ServeConfig::read_timeout`,
        // enforced in `serve_connection`).
        let _ = stream.set_read_timeout(Some(READ_POLL));
        if shared.shutdown.load(Ordering::SeqCst) {
            // Accepted during drain (possibly the shutdown poke
            // itself): refuse politely, don't enqueue.
            shared.metrics.rejected_503.inc();
            let e = ApiError::shutting_down();
            shared.metrics.error_code(e.code);
            let _ = write_response(
                &mut stream,
                e.status,
                "application/json",
                &e.body(),
                &[("Retry-After", "1".to_string())],
                true,
            );
            break;
        }
        let mut queue = shared.queue.lock().unwrap();
        if queue.len() >= shared.config.queue_cap {
            drop(queue);
            // Backpressure: the queue is full, so this connection was
            // never admitted — tell the client when to come back.
            shared.metrics.rejected_429.inc();
            let e = ApiError::queue_full();
            shared.metrics.error_code(e.code);
            let _ = write_response(
                &mut stream,
                e.status,
                "application/json",
                &e.body(),
                &[("Retry-After", "1".to_string())],
                true,
            );
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.queue_cv.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
        };
        serve_connection(shared, stream);
    }
}

/// Serve every request on one connection. An accepted connection's
/// requests are always answered — during a drain the current request
/// completes and the response carries `Connection: close`.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    let mut idle_since = std::time::Instant::now();
    loop {
        let max_body = shared.config.quotas.max_body_bytes;
        let request = match read_request(&mut reader, max_body) {
            Ok(Some(req)) => req,
            Ok(None) | Err(HttpError::Closed) => return,
            Err(HttpError::Idle) => {
                // Nothing arrived within one read slice: drop the
                // connection if we're draining or the client has been
                // quiet past the idle allowance; otherwise keep
                // listening.
                if shared.shutdown.load(Ordering::SeqCst)
                    || idle_since.elapsed() >= shared.config.read_timeout
                {
                    return;
                }
                continue;
            }
            Err(err) => {
                shared.metrics.errors.inc();
                let e = ApiError::from_http(&err);
                shared.metrics.error_code(e.code);
                let close = !err.reusable() || shared.shutdown.load(Ordering::SeqCst);
                let _ = write_response(
                    &mut write_half,
                    e.status,
                    "application/json",
                    &e.body(),
                    &[],
                    close,
                );
                if close {
                    return;
                }
                continue;
            }
        };
        let client_close = request.wants_close();
        shared.metrics.busy_workers.inc();
        let t0 = Instant::now();
        let reply = handle(shared, &request);
        let dur = t0.elapsed();
        shared.metrics.busy_workers.dec();
        if reply.status >= 400 {
            shared.metrics.errors.inc();
        }
        if let Some(log) = &shared.access {
            let _ = log.log(&[
                ("method", Field::Str(&request.method)),
                ("path", Field::Str(&request.path)),
                ("status", Field::U64(reply.status as u64)),
                ("dur_us", Field::U64(dur.as_micros() as u64)),
                ("body_bytes", Field::U64(reply.body.len() as u64)),
            ]);
        }
        let draining = shared.shutdown.load(Ordering::SeqCst);
        let close = client_close || draining;
        let extra: Vec<(&str, String)> =
            if reply.retry_after { vec![("Retry-After", "1".to_string())] } else { Vec::new() };
        if write_response(
            &mut write_half,
            reply.status,
            reply.content_type,
            &reply.body,
            &extra,
            close,
        )
        .is_err()
            || close
        {
            return;
        }
        idle_since = std::time::Instant::now();
    }
}

/// One routed response, ready to write.
struct Reply {
    status: u16,
    body: String,
    retry_after: bool,
    content_type: &'static str,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply { status, body, retry_after: false, content_type: "application/json" }
    }

    fn from_api(e: &ApiError) -> Reply {
        Reply::json(e.status, e.body())
    }
}

/// Route one request.
fn handle(shared: &Shared, req: &Request) -> Reply {
    let m = &shared.metrics;
    // The three POST routes get a latency histogram; the two GETs are
    // counted but not bucketed.
    let timed = |route: Route, run: &dyn Fn() -> Result<String, ApiError>| {
        m.requests(route).inc();
        let t0 = Instant::now();
        let result = run();
        m.observe_latency(route, t0.elapsed());
        match result {
            Ok(body) => Reply::json(200, body),
            Err(e) => {
                m.error_code(e.code);
                Reply::from_api(&e)
            }
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            m.requests(Route::Healthz).inc();
            Reply::json(200, healthz_body(shared))
        }
        ("GET", "/metrics") => {
            m.requests(Route::Metrics).inc();
            Reply {
                status: 200,
                body: metrics_body(shared),
                retry_after: false,
                content_type: "text/plain; version=0.0.4",
            }
        }
        ("POST", "/run") => timed(Route::Run, &|| handle_run(shared, &req.body)),
        ("POST", "/sweep") => timed(Route::Sweep, &|| handle_sweep(shared, &req.body)),
        ("POST", "/trace") => timed(Route::Trace, &|| handle_trace(shared, &req.body)),
        ("POST", "/shutdown") => {
            trigger_shutdown(shared);
            Reply::json(200, "{\"ok\": true, \"draining\": true}".to_string())
        }
        (_, "/healthz" | "/metrics" | "/run" | "/sweep" | "/trace" | "/shutdown") => {
            let e = ApiError::method_not_allowed(&req.method, &req.path);
            m.error_code(e.code);
            Reply::from_api(&e)
        }
        (_, path) => {
            let e = ApiError::not_found(path);
            m.error_code(e.code);
            Reply::from_api(&e)
        }
    }
}

fn parse_body(body: &[u8]) -> Result<json::Json, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad_json("BODY IZ NOT UTF-8"))?;
    json::parse(text).map_err(|e| ApiError::bad_json(format!("{e}")))
}

/// Compile-or-fetch plus quota admission — the shared front half of
/// `/run` and `/trace`.
fn admit(
    shared: &Shared,
    req: &RunRequest,
) -> Result<(std::sync::Arc<lolcode::Compiled>, lolcode::RunConfig), ApiError> {
    let cfg = shared.config.quotas.admit(&req.cfg).map_err(|v| ApiError::from_quota(&v))?;
    let artifact =
        shared.cache.get(&req.source, &req.dialect).map_err(|e| ApiError::from_lol(&e))?;
    Ok((artifact, cfg))
}

fn handle_run(shared: &Shared, body: &[u8]) -> Result<String, ApiError> {
    let req = api::parse_run(&parse_body(body)?)?;
    let (artifact, cfg) = admit(shared, &req)?;
    let report = {
        let _guard = shared.acquire_weight(config_weight(&cfg, shared.budget));
        engine_for(cfg.backend).run(&artifact, &cfg).map_err(|e| ApiError::from_lol(&e))?
    };
    shared.config.quotas.check_report(&report).map_err(|v| ApiError::from_quota(&v))?;
    Ok(run_report_json(&report, req.timing))
}

fn handle_sweep(shared: &Shared, body: &[u8]) -> Result<String, ApiError> {
    let req = api::parse_sweep(&parse_body(body)?)?;
    let base = shared.config.quotas.admit(&req.run.cfg).map_err(|v| ApiError::from_quota(&v))?;
    let mut spec = SweepSpec::parse(&req.spec, base).map_err(ApiError::bad_shape)?;
    let configs = spec.configs();
    shared.config.quotas.admit_many(&configs).map_err(|v| ApiError::from_quota(&v))?;
    // The sweep's internal thread budget nests inside the server's:
    // never wider than ours, narrower if the spec asked for less.
    let sweep_budget = match spec.threads_requested() {
        0 => shared.budget,
        n => n.min(shared.budget),
    };
    spec = spec.threads(sweep_budget);
    let artifact =
        shared.cache.get(&req.run.source, &req.run.dialect).map_err(|e| ApiError::from_lol(&e))?;
    // Charge the widest single cell — the sweep scheduler keeps its
    // own cells inside the same budget from there.
    let weight = configs.iter().map(|c| config_weight(c, shared.budget)).max().unwrap_or(1);
    let report = {
        let _guard = shared.acquire_weight(weight);
        spec.run(&artifact)
    };
    Ok(if req.run.timing { report.to_json() } else { report.to_json_stable() })
}

fn handle_trace(shared: &Shared, body: &[u8]) -> Result<String, ApiError> {
    let req = api::parse_trace(&parse_body(body)?)?;
    let (artifact, cfg) = admit(shared, &req.run)?;
    let report = {
        let _guard = shared.acquire_weight(config_weight(&cfg, shared.budget));
        engine_for(cfg.backend).run(&artifact, &cfg).map_err(|e| ApiError::from_lol(&e))?
    };
    shared.config.quotas.check_report(&report).map_err(|v| ApiError::from_quota(&v))?;
    let trace = report.trace.as_ref().ok_or_else(|| ApiError {
        status: 500,
        code: "SRV0500",
        message: "TRACE WENT MISSIN".to_string(),
    })?;
    let rendered = match req.format {
        TraceFormat::Gantt => trace.gantt(req.width),
        TraceFormat::Events => trace.event_log(),
        TraceFormat::Matrix => trace.comm_matrix().render(),
        TraceFormat::Svg => trace.to_svg(),
        TraceFormat::Perfetto => trace.to_perfetto(),
    };
    Ok(format!(
        "{{\"ok\": true, \"format\": \"{}\", \"pes\": {}, \"render\": \"{}\"}}",
        req.format.name(),
        report.n_pes(),
        json::escape(&rendered)
    ))
}

fn healthz_body(shared: &Shared) -> String {
    let m = &shared.metrics;
    let cache = shared.cache.stats();
    let queue_depth = shared.queue.lock().unwrap().len();
    format!(
        concat!(
            "{{\"ok\": true, \"workers\": {}, \"queue_cap\": {}, \"queue_depth\": {}, ",
            "\"thread_budget\": {}, ",
            "\"requests\": {{\"run\": {}, \"sweep\": {}, \"trace\": {}, \"healthz\": {}, ",
            "\"rejected_429\": {}, \"rejected_503\": {}, \"errors\": {}}}, ",
            "\"cache\": {{\"capacity\": {}, \"len\": {}, \"hits\": {}, \"misses\": {}, ",
            "\"evictions\": {}}}}}"
        ),
        shared.config.workers,
        shared.config.queue_cap,
        queue_depth,
        shared.budget,
        m.requests(Route::Run).get(),
        m.requests(Route::Sweep).get(),
        m.requests(Route::Trace).get(),
        m.requests(Route::Healthz).get(),
        m.rejected_429.get(),
        m.rejected_503.get(),
        m.errors.get(),
        cache.capacity,
        cache.len,
        cache.hits,
        cache.misses,
        cache.evictions,
    )
}

/// The Prometheus exposition behind `GET /metrics`: mirror the
/// externally-owned numbers (cache, queue) into the registry, then
/// render it.
fn metrics_body(shared: &Shared) -> String {
    let queue_depth = shared.queue.lock().unwrap().len();
    shared.metrics.mirror(&shared.cache.stats(), queue_depth);
    shared.metrics.registry.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lolcode::corpus;

    fn test_server() -> Server {
        Server::start(ServeConfig { workers: 4, ..ServeConfig::default() }).unwrap()
    }

    fn run_body(source: &str) -> String {
        format!("{{\"source\": \"{}\", \"pes\": 2}}", json::escape(source))
    }

    #[test]
    fn run_healthz_shutdown_roundtrip() {
        let server = test_server();
        let addr = server.addr().to_string();
        let resp = client::post(&addr, "/run", &run_body(corpus::HELLO_PARALLEL)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let body = resp.text();
        assert!(body.contains("\"ok\": true"), "{body}");
        assert!(body.contains("\"pes\": 2"), "{body}");

        let health = client::get(&addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        let health_json = json::parse(&health.text()).unwrap();
        let requests = health_json.get("requests").unwrap();
        assert_eq!(requests.get("run").unwrap().as_u64(), Some(1));

        let bye = client::post(&addr, "/shutdown", "").unwrap();
        assert_eq!(bye.status, 200);
        server.wait();
    }

    #[test]
    fn unknown_route_and_method_are_structured() {
        let server = test_server();
        let addr = server.addr().to_string();
        let resp = client::post(&addr, "/nope", "{}").unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.text().contains("SRV0112"));
        let resp = client::get(&addr, "/run").unwrap();
        assert_eq!(resp.status, 405);
        assert!(resp.text().contains("SRV0113"));
        server.shutdown();
    }

    #[test]
    fn keep_alive_survives_a_client_error() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut conn = client::Conn::connect(&addr).unwrap();
        let bad = conn.request("POST", "/run", b"{\"source\": 42}").unwrap();
        assert_eq!(bad.status, 400);
        assert!(bad.text().contains("SRV0111"));
        let good =
            conn.request("POST", "/run", run_body(corpus::HELLO_PARALLEL).as_bytes()).unwrap();
        assert_eq!(good.status, 200);
        server.shutdown();
    }
}
