//! Cache-line padding (offline stand-in for `crossbeam_utils::CachePadded`).
//!
//! Aligning each hot atomic to its own cache line keeps one PE's
//! spinning from invalidating its neighbours' lines (false sharing) —
//! the same trick real barrier/lock implementations use. 128 bytes
//! covers the two-line prefetcher granularity on modern x86 and the
//! 128-byte lines on some ARM parts.

/// Pads and aligns `T` to 128 bytes.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_access() {
        let vals: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(**v, i as u64);
            assert_eq!(v as *const _ as usize % 128, 0, "entry {i} misaligned");
        }
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
    }
}
