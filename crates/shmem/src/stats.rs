//! Per-PE communication statistics.
//!
//! Every PGAS operation a PE performs is counted (local vs remote
//! separately). For a teaching tool this is half the point: students
//! can *see* the communication volume of their algorithm — e.g. that
//! the paper's n-body does O(P·n²) remote gets per step while the ring
//! example does one block transfer.
//!
//! Counters live in plain `Cell`s on the [`crate::Pe`] handle (one
//! writer each, zero synchronization cost) and are snapshotted with
//! [`crate::Pe::stats`].

use std::cell::Cell;
use std::fmt;

/// Snapshot of one PE's operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Scalar gets from the PE's own partition.
    pub local_gets: u64,
    /// Scalar gets from another PE's partition.
    pub remote_gets: u64,
    /// Scalar puts to the PE's own partition.
    pub local_puts: u64,
    /// Scalar puts to another PE's partition.
    pub remote_puts: u64,
    /// Words moved by block gets (any target).
    pub block_get_words: u64,
    /// Words moved by block puts (any target).
    pub block_put_words: u64,
    /// Atomic memory operations (fetch-add / cswap / swap).
    pub amos: u64,
    /// Barrier episodes entered.
    pub barriers: u64,
    /// Blocking lock acquisitions.
    pub lock_acquires: u64,
    /// Trylock attempts (successful or not).
    pub lock_tries: u64,
    /// Lock releases.
    pub lock_releases: u64,
}

impl CommStats {
    /// Total one-sided scalar operations.
    pub fn scalar_ops(&self) -> u64 {
        self.local_gets + self.remote_gets + self.local_puts + self.remote_puts
    }

    /// Fraction of scalar traffic that crossed a partition boundary.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.scalar_ops();
        if total == 0 {
            0.0
        } else {
            (self.remote_gets + self.remote_puts) as f64 / total as f64
        }
    }

    /// Fold another PE's counts into this one (job-wide totals).
    pub fn absorb(&mut self, other: &CommStats) {
        self.local_gets += other.local_gets;
        self.remote_gets += other.remote_gets;
        self.local_puts += other.local_puts;
        self.remote_puts += other.remote_puts;
        self.block_get_words += other.block_get_words;
        self.block_put_words += other.block_put_words;
        self.amos += other.amos;
        self.barriers += other.barriers;
        self.lock_acquires += other.lock_acquires;
        self.lock_tries += other.lock_tries;
        self.lock_releases += other.lock_releases;
    }
}

impl std::ops::Add for CommStats {
    type Output = CommStats;
    fn add(mut self, rhs: CommStats) -> CommStats {
        self.absorb(&rhs);
        self
    }
}

impl std::iter::Sum for CommStats {
    fn sum<I: Iterator<Item = CommStats>>(iter: I) -> CommStats {
        iter.fold(CommStats::default(), |acc, s| acc + s)
    }
}

impl<'a> std::iter::Sum<&'a CommStats> for CommStats {
    fn sum<I: Iterator<Item = &'a CommStats>>(iter: I) -> CommStats {
        iter.fold(CommStats::default(), |mut acc, s| {
            acc.absorb(s);
            acc
        })
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gets {}/{} (local/remote), puts {}/{}, block words {}/{} (get/put), \
             amos {}, barriers {}, locks {}+{}t/{}r",
            self.local_gets,
            self.remote_gets,
            self.local_puts,
            self.remote_puts,
            self.block_get_words,
            self.block_put_words,
            self.amos,
            self.barriers,
            self.lock_acquires,
            self.lock_tries,
            self.lock_releases,
        )
    }
}

/// The live counters on a `Pe` (single-threaded cells).
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub local_gets: Cell<u64>,
    pub remote_gets: Cell<u64>,
    pub local_puts: Cell<u64>,
    pub remote_puts: Cell<u64>,
    pub block_get_words: Cell<u64>,
    pub block_put_words: Cell<u64>,
    pub amos: Cell<u64>,
    pub barriers: Cell<u64>,
    pub lock_acquires: Cell<u64>,
    pub lock_tries: Cell<u64>,
    pub lock_releases: Cell<u64>,
}

impl StatCells {
    #[inline]
    pub(crate) fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    #[inline]
    pub(crate) fn add(cell: &Cell<u64>, n: u64) {
        cell.set(cell.get() + n);
    }

    pub(crate) fn snapshot(&self) -> CommStats {
        CommStats {
            local_gets: self.local_gets.get(),
            remote_gets: self.remote_gets.get(),
            local_puts: self.local_puts.get(),
            remote_puts: self.remote_puts.get(),
            block_get_words: self.block_get_words.get(),
            block_put_words: self.block_put_words.get(),
            amos: self.amos.get(),
            barriers: self.barriers.get(),
            lock_acquires: self.lock_acquires.get(),
            lock_tries: self.lock_tries.get(),
            lock_releases: self.lock_releases.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_helpers() {
        let cells = StatCells::default();
        StatCells::bump(&cells.local_gets);
        StatCells::bump(&cells.remote_gets);
        StatCells::bump(&cells.remote_gets);
        StatCells::bump(&cells.local_puts);
        StatCells::add(&cells.block_put_words, 32);
        let s = cells.snapshot();
        assert_eq!(s.local_gets, 1);
        assert_eq!(s.remote_gets, 2);
        assert_eq!(s.scalar_ops(), 4);
        assert!((s.remote_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.block_put_words, 32);
    }

    #[test]
    fn empty_stats_fraction_is_zero() {
        assert_eq!(CommStats::default().remote_fraction(), 0.0);
    }

    #[test]
    fn sum_aggregates_per_pe_counts() {
        let a = CommStats { local_gets: 2, remote_puts: 3, barriers: 1, ..Default::default() };
        let b = CommStats { local_gets: 5, amos: 7, barriers: 1, ..Default::default() };
        let total: CommStats = [a, b].iter().sum();
        assert_eq!(total.local_gets, 7);
        assert_eq!(total.remote_puts, 3);
        assert_eq!(total.amos, 7);
        assert_eq!(total.barriers, 2);
        assert_eq!(a + b, total);
    }

    #[test]
    fn display_is_compact_single_line() {
        let s = CommStats { local_gets: 5, barriers: 2, ..Default::default() };
        let txt = s.to_string();
        assert!(txt.contains("gets 5/0"));
        assert!(txt.contains("barriers 2"));
        assert!(!txt.contains('\n'));
    }
}
