//! A non-blocking view of the PGAS substrate.
//!
//! The threaded world ([`crate::Pe`]) implements every synchronizing
//! operation by *waiting*: barriers spin, lock acquisition spins, and
//! the caller's OS thread is the continuation. That is faithful to how
//! SPMD jobs run on real machines, but it caps `n_pes` at whatever the
//! host can schedule. A discrete-event engine wants the opposite
//! contract: an operation either completes immediately or reports
//! [`Progress::Pending`], and the *engine* decides when to try again.
//!
//! [`Substrate`] is that contract — the exact set of primitives the
//! bytecode VM needs, with every potentially-blocking call returning a
//! [`Progress`]. The threaded [`crate::Pe`] implements it trivially
//! (it blocks inside the call and always returns
//! [`Progress::Ready`]), so the same resumable VM drives both the
//! thread-per-PE backends and the mega-scale simulator in `lol-sim`.
//!
//! Only three operations can ever report [`Progress::Pending`]:
//!
//! 1. [`Substrate::shmalloc`] — collective, contains an allocation
//!    fence;
//! 2. [`Substrate::barrier`] — the explicit `HUGZ` barrier;
//! 3. [`Substrate::lock`] — blocking lock acquisition.
//!
//! Everything else (one-sided puts/gets, trylock, unlock, randomness)
//! completes in one call on every substrate.

use crate::heap::{f64_to_word, i64_to_word, word_to_f64, word_to_i64, SymAddr};
use crate::world::Pe;

/// Outcome of a possibly-blocking substrate operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress<T> {
    /// The operation completed with this result.
    Ready(T),
    /// The operation cannot complete yet; re-issue the *same* call
    /// when the substrate wakes the PE.
    Pending,
}

impl<T> Progress<T> {
    /// The completed value, if any.
    pub fn ready(self) -> Option<T> {
        match self {
            Progress::Ready(v) => Some(v),
            Progress::Pending => None,
        }
    }

    /// Did the operation complete?
    pub fn is_ready(&self) -> bool {
        matches!(self, Progress::Ready(_))
    }

    /// Did the operation park the caller? Sharded engines use this to
    /// hand the PE to the next window merge.
    pub fn is_pending(&self) -> bool {
        matches!(self, Progress::Pending)
    }
}

/// The substrate operations the resumable VM executes, in
/// completion-or-[`Progress::Pending`] form.
///
/// A `Pending` return parks the calling PE; the substrate is
/// responsible for remembering why, and the engine re-issues the same
/// call after the wake-up. Implementations must make the re-issued
/// call idempotent (stats and latency are charged on the *first*
/// attempt only).
pub trait Substrate {
    /// This PE's id (`ME`).
    fn id(&self) -> usize;

    /// Total number of PEs (`MAH FRENZ`).
    fn n_pes(&self) -> usize;

    /// Collectively allocate `words` symmetric words (contains an
    /// allocation fence, like `shmem_malloc`).
    fn shmalloc(&self, words: usize) -> Progress<SymAddr>;

    /// Store a raw word into `target`'s instance of `addr`.
    fn put_u64(&self, addr: SymAddr, target: usize, value: u64);

    /// Load a raw word from `target`'s instance of `addr`.
    fn get_u64(&self, addr: SymAddr, target: usize) -> u64;

    /// Typed put: `i64`.
    fn put_i64(&self, addr: SymAddr, target: usize, value: i64) {
        self.put_u64(addr, target, i64_to_word(value));
    }

    /// Typed get: `i64`.
    fn get_i64(&self, addr: SymAddr, target: usize) -> i64 {
        word_to_i64(self.get_u64(addr, target))
    }

    /// Typed put: `f64` (bit pattern).
    fn put_f64(&self, addr: SymAddr, target: usize, value: f64) {
        self.put_u64(addr, target, f64_to_word(value));
    }

    /// Typed get: `f64`.
    fn get_f64(&self, addr: SymAddr, target: usize) -> f64 {
        word_to_f64(self.get_u64(addr, target))
    }

    /// Collective barrier (`HUGZ`).
    fn barrier(&self) -> Progress<()>;

    /// Blocking acquire of the lock at `target`'s instance of `addr`.
    fn lock(&self, addr: SymAddr, target: usize) -> Progress<()>;

    /// Non-blocking acquire; true on success. Never pends.
    fn try_lock(&self, addr: SymAddr, target: usize) -> bool;

    /// Release; diagnosed error if this PE does not hold the lock.
    fn unlock(&self, addr: SymAddr, target: usize);

    /// `WHATEVR`: uniform integer in `[0, 2^31)`.
    fn rand_i64(&self) -> i64;

    /// `WHATEVAR`: uniform float in `[0, 1)`.
    fn rand_f64(&self) -> f64;

    /// Shard-aware delivery hook: which worker shard owns `pe`'s
    /// partition. Unsharded substrates (the threaded world, the
    /// sequential simulator) keep everything in shard 0; sharded
    /// engines override this with their [`crate::shard::ShardPlan`]
    /// so callers can tell same-shard delivery (applied inline by the
    /// owning worker) from cross-shard delivery (exchanged through
    /// the shared heap and merged at window boundaries in canonical
    /// `(t_ns, tie, pe)` order).
    fn shard_of(&self, _pe: usize) -> usize {
        0
    }
}

/// The threaded world blocks inside each call, so every operation is
/// `Ready` by the time it returns.
impl Substrate for Pe<'_> {
    fn id(&self) -> usize {
        Pe::id(self)
    }

    fn n_pes(&self) -> usize {
        Pe::n_pes(self)
    }

    fn shmalloc(&self, words: usize) -> Progress<SymAddr> {
        Progress::Ready(Pe::shmalloc(self, words))
    }

    fn put_u64(&self, addr: SymAddr, target: usize, value: u64) {
        Pe::put_u64(self, addr, target, value);
    }

    fn get_u64(&self, addr: SymAddr, target: usize) -> u64 {
        Pe::get_u64(self, addr, target)
    }

    fn barrier(&self) -> Progress<()> {
        Pe::barrier_all(self);
        Progress::Ready(())
    }

    fn lock(&self, addr: SymAddr, target: usize) -> Progress<()> {
        Pe::lock(self, addr, target);
        Progress::Ready(())
    }

    fn try_lock(&self, addr: SymAddr, target: usize) -> bool {
        Pe::try_lock(self, addr, target)
    }

    fn unlock(&self, addr: SymAddr, target: usize) {
        Pe::unlock(self, addr, target);
    }

    fn rand_i64(&self) -> i64 {
        Pe::rand_i64(self)
    }

    fn rand_f64(&self) -> f64 {
        Pe::rand_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{run_spmd, ShmemConfig};

    /// Drive a ring exchange entirely through the trait, on the
    /// threaded substrate: everything must complete in one call.
    #[test]
    fn threaded_substrate_is_always_ready() {
        fn ring<S: Substrate>(sub: &S) -> i64 {
            let a = sub.shmalloc(1).ready().expect("threaded shmalloc is immediate");
            let next = (sub.id() + 1) % sub.n_pes();
            sub.put_i64(a, next, sub.id() as i64 * 10);
            assert!(sub.barrier().is_ready());
            sub.get_i64(a, sub.id())
        }
        let r = run_spmd(ShmemConfig::new(4), |pe| ring(pe)).unwrap();
        assert_eq!(r, vec![30, 0, 10, 20]);
    }

    #[test]
    fn progress_accessors() {
        assert_eq!(Progress::Ready(7).ready(), Some(7));
        assert_eq!(Progress::<i32>::Pending.ready(), None);
        assert!(Progress::Ready(()).is_ready());
        assert!(!Progress::<()>::Pending.is_ready());
        assert!(Progress::<()>::Pending.is_pending());
        assert!(!Progress::Ready(0).is_pending());
    }

    /// The threaded world is unsharded: every PE lives in shard 0.
    #[test]
    fn threaded_substrate_is_unsharded() {
        run_spmd(ShmemConfig::new(3), |pe| {
            for p in 0..3 {
                assert_eq!(Substrate::shard_of(pe, p), 0);
            }
        })
        .unwrap();
    }

    /// Locks through the trait: try, blocking acquire, release.
    #[test]
    fn threaded_substrate_locks() {
        let r = run_spmd(ShmemConfig::new(2), |pe| {
            let lk = pe.shmalloc(crate::lock::LOCK_WORDS);
            let x = Substrate::shmalloc(pe, 1).ready().unwrap();
            for _ in 0..50 {
                assert!(Substrate::lock(pe, lk, 0).is_ready());
                let v = Substrate::get_i64(pe, x, 0);
                Substrate::put_i64(pe, x, 0, v + 1);
                Substrate::unlock(pe, lk, 0);
            }
            Substrate::barrier(pe).ready().unwrap();
            Substrate::get_i64(pe, x, 0)
        })
        .unwrap();
        assert_eq!(r, vec![100, 100]);
    }
}
