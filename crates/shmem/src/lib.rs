//! # lol-shmem — an OpenSHMEM-style PGAS substrate on threads
//!
//! The paper runs parallel LOLCODE on OpenSHMEM over two machines: a
//! 16-core Adapteva Epiphany-III (Parallella board) and a Cray XC40.
//! Neither is available here, so this crate is the substitution
//! (DESIGN.md §2): processing elements (PEs) are OS threads, and the
//! partitioned global address space is a per-PE **symmetric heap** of
//! `AtomicU64` words.
//!
//! The API mirrors the minimal OpenSHMEM subset the paper says it uses:
//!
//! * PE enumeration — [`Pe::id`], [`Pe::n_pes`] (`ME`, `MAH FRENZ`),
//! * symmetric allocation — [`Pe::shmalloc`] (collective, like
//!   `shmem_malloc`),
//! * one-sided remote access — [`Pe::put_i64`]/[`Pe::get_i64`] and
//!   friends (`shmem_p`/`shmem_g`), plus block transfers,
//! * atomics — [`Pe::fetch_add_i64`], [`Pe::cswap_u64`], [`Pe::swap_u64`]
//!   (`shmem_atomic_*`),
//! * synchronization — [`Pe::barrier_all`] (`HUGZ`), global locks
//!   ([`Pe::lock`]/[`Pe::try_lock`]/[`Pe::unlock`] — `IM (SRSLY) MESIN
//!   WIF` / `DUN MESIN WIF`), [`Pe::wait_until`], [`Pe::quiet`],
//! * collectives used implicitly by the backend — [`Pe::broadcast_u64`],
//!   [`Pe::reduce_i64`], [`Pe::reduce_f64`].
//!
//! ## Memory model
//!
//! All symmetric memory is word-granular atomic. Plain `put`/`get` use
//! `Relaxed` ordering — concurrent conflicting puts yield unspecified
//! *values*, exactly like unsynchronized OpenSHMEM puts, but never tear
//! and never produce undefined behaviour (the whole crate is
//! `#![forbid(unsafe_code)]`). Ordering is established only by the
//! synchronization operations: barriers and lock acquire/release edges,
//! mirroring how `shmem_barrier_all`/`shmem_set_lock` order memory.
//!
//! ## Fidelity knobs
//!
//! [`LatencyModel`] optionally charges every remote access a delay —
//! `Mesh2D` models the Epiphany eMesh (Manhattan-distance hops),
//! `Uniform` models a flat interconnect (Cray Aries analog). Barriers
//! and locks each come in two algorithms (see [`BarrierKind`],
//! [`LockKind`]) so the benches can ablate the design choices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod heap;
pub mod latency;
pub mod lock;
pub mod pad;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod substrate;
pub mod world;

pub use barrier::BarrierKind;
pub use heap::SymAddr;
pub use latency::LatencyModel;
pub use lock::LockKind;
// Tracing/virtual-time vocabulary (defined in the leaf `lol-trace`
// crate; re-exported because `ShmemConfig` and `Pe` speak it).
pub use lol_trace::{ClockMode, EventKind, PeTrace, Trace, TraceBuffer, TraceEvent};
pub use stats::CommStats;
pub use substrate::{Progress, Substrate};
pub use world::{run_spmd, Pe, ShmemConfig, SpmdError, World};

/// Comparison operators for [`Pe::wait_until`] (mirrors
/// `SHMEM_CMP_*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitCmp {
    /// Wait until the word equals the operand (`SHMEM_CMP_EQ`).
    Eq,
    /// Wait until the word differs from the operand (`SHMEM_CMP_NE`).
    Ne,
    /// Wait until the word exceeds the operand (`SHMEM_CMP_GT`).
    Gt,
    /// Wait until the word is at least the operand (`SHMEM_CMP_GE`).
    Ge,
    /// Wait until the word is below the operand (`SHMEM_CMP_LT`).
    Lt,
    /// Wait until the word is at most the operand (`SHMEM_CMP_LE`).
    Le,
}

impl WaitCmp {
    /// Apply the comparison.
    #[inline]
    pub fn test(self, lhs: i64, rhs: i64) -> bool {
        match self {
            WaitCmp::Eq => lhs == rhs,
            WaitCmp::Ne => lhs != rhs,
            WaitCmp::Gt => lhs > rhs,
            WaitCmp::Ge => lhs >= rhs,
            WaitCmp::Lt => lhs < rhs,
            WaitCmp::Le => lhs <= rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_cmp_truth_table() {
        assert!(WaitCmp::Eq.test(3, 3) && !WaitCmp::Eq.test(3, 4));
        assert!(WaitCmp::Ne.test(3, 4) && !WaitCmp::Ne.test(3, 3));
        assert!(WaitCmp::Gt.test(4, 3) && !WaitCmp::Gt.test(3, 3));
        assert!(WaitCmp::Ge.test(3, 3) && !WaitCmp::Ge.test(2, 3));
        assert!(WaitCmp::Lt.test(2, 3) && !WaitCmp::Lt.test(3, 3));
        assert!(WaitCmp::Le.test(3, 3) && !WaitCmp::Le.test(4, 3));
    }
}
