//! Barrier algorithms for `HUGZ`.
//!
//! Two classic algorithms are provided so the benches can ablate the
//! choice (DESIGN.md, ablation A1):
//!
//! * **Centralized sense-reversing** — one shared counter + sense flag.
//!   O(P) contention on one cache line, trivial to understand: the
//!   teaching-friendly default.
//! * **Dissemination** — ⌈log₂ P⌉ rounds of pairwise signalling with
//!   per-PE flags. O(log P) critical path, the scalable choice on real
//!   machines.
//!
//! Both establish full happens-before edges between every pair of PEs
//! (all memory written before the barrier is visible to every PE after
//! it), which is exactly the guarantee `shmem_barrier_all` gives the
//! paper's Figure 2 example.
//!
//! All spinning is *supervised*: a `SpinGuard` yields the CPU
//! periodically, aborts promptly when another PE has failed, and panics
//! with a diagnostic if the barrier is never completed (deadlock
//! watchdog) — that is what turns the classic "some PE skipped the
//! barrier" teaching bug into an actionable error instead of a hang.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which barrier algorithm `HUGZ` uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BarrierKind {
    /// Centralized sense-reversing barrier (default).
    #[default]
    Centralized,
    /// Dissemination barrier (log-rounds pairwise signalling).
    Dissemination,
}

impl BarrierKind {
    /// Every algorithm, in ablation-sweep order.
    pub const ALL: [BarrierKind; 2] = [BarrierKind::Centralized, BarrierKind::Dissemination];
}

/// Compact, round-trippable label (`central` / `dissem`) — the token
/// the sweep grammar (`barrier=central,dissem`) and the C driver's
/// `LOL_STUB_BARRIER` env protocol both use.
impl std::fmt::Display for BarrierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BarrierKind::Centralized => "central",
            BarrierKind::Dissemination => "dissem",
        })
    }
}

/// Parse a barrier-algorithm token: `central` (or `centralized`) /
/// `dissem` (or `dissemination`).
impl std::str::FromStr for BarrierKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim() {
            "central" | "centralized" => Ok(BarrierKind::Centralized),
            "dissem" | "dissemination" => Ok(BarrierKind::Dissemination),
            other => Err(format!("O NOES! barrier IZ central OR dissem, NOT {other}")),
        }
    }
}

/// Supervised spin loop: spins, periodically yields, watches the
/// job-abort flag and enforces a deadlock timeout.
pub(crate) struct SpinGuard<'a> {
    abort: &'a AtomicBool,
    deadline: Instant,
    pe: usize,
    what: &'static str,
    spins: u32,
}

impl<'a> SpinGuard<'a> {
    pub(crate) fn new(
        abort: &'a AtomicBool,
        timeout: Duration,
        pe: usize,
        what: &'static str,
    ) -> Self {
        SpinGuard { abort, deadline: Instant::now() + timeout, pe, what, spins: 0 }
    }

    /// One wait iteration. Panics on job abort or timeout.
    #[inline]
    pub(crate) fn tick(&mut self) {
        self.spins += 1;
        if self.spins & 0x3F == 0 {
            // Every 64 spins: check for job failure / deadline, then
            // yield so oversubscribed PE counts (128 PEs on 8 cores)
            // still make progress.
            if self.abort.load(Ordering::Relaxed) {
                panic!(
                    "O NOES! [RUN0190] PE {} IZ GIVIN UP WAITIN ({}) — ANOTHER PE ALREADY FAILED",
                    self.pe, self.what
                );
            }
            if Instant::now() > self.deadline {
                self.abort.store(true, Ordering::Relaxed);
                panic!(
                    "O NOES! [RUN0191] PE {} WAITED 2 LONG AT {} — SUM PE NEVER SHOWED UP (DEADLOCK?)",
                    self.pe, self.what
                );
            }
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Centralized sense-reversing barrier.
pub(crate) struct CentralBarrier {
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    n: usize,
}

impl CentralBarrier {
    pub(crate) fn new(n: usize) -> Self {
        CentralBarrier {
            count: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
            n,
        }
    }

    /// Enter the barrier. `local_sense` is this PE's private sense bit
    /// (flips every episode).
    pub(crate) fn wait(&self, local_sense: &mut bool, mut guard: SpinGuard<'_>) {
        let want = !*local_sense;
        *local_sense = want;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset and release everyone.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(want, Ordering::Release);
        } else {
            while self.sense.load(Ordering::Acquire) != want {
                guard.tick();
            }
        }
    }
}

/// Dissemination barrier with generation-counting flags.
pub(crate) struct DisseminationBarrier {
    /// `flags[round][pe]` counts how many times `pe` has been signalled
    /// in `round`; at generation `g` a PE waits for its flag ≥ `g`.
    flags: Vec<Vec<CachePadded<AtomicU64>>>,
    rounds: usize,
    n: usize,
}

impl DisseminationBarrier {
    pub(crate) fn new(n: usize) -> Self {
        let rounds =
            if n <= 1 { 0 } else { usize::BITS as usize - (n - 1).leading_zeros() as usize };
        let flags = (0..rounds)
            .map(|_| (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect())
            .collect();
        DisseminationBarrier { flags, rounds, n }
    }

    /// Enter the barrier. `generation` is this PE's private episode
    /// counter (starts at 0, incremented by this call).
    pub(crate) fn wait(&self, me: usize, generation: &mut u64, guard: &mut SpinGuard<'_>) {
        *generation += 1;
        let g = *generation;
        for r in 0..self.rounds {
            let partner = (me + (1 << r)) % self.n;
            self.flags[r][partner].fetch_add(1, Ordering::AcqRel);
            let mine = &self.flags[r][me];
            while mine.load(Ordering::Acquire) < g {
                guard.tick();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;
    use std::time::Duration;

    const TIMEOUT: Duration = Duration::from_secs(10);

    /// Drive `iters` barrier episodes from `n` threads and assert the
    /// classic phase invariant: no thread enters episode `e+1` before
    /// every thread has entered episode `e`.
    fn exercise_central(n: usize, iters: u64) {
        let bar = Arc::new(CentralBarrier::new(n));
        let abort = Arc::new(AtomicBool::new(false));
        let entered = Arc::new(Counter::new(0));
        std::thread::scope(|s| {
            for pe in 0..n {
                let bar = Arc::clone(&bar);
                let abort = Arc::clone(&abort);
                let entered = Arc::clone(&entered);
                s.spawn(move || {
                    let mut sense = false;
                    for e in 0..iters {
                        entered.fetch_add(1, Ordering::SeqCst);
                        bar.wait(&mut sense, SpinGuard::new(&abort, TIMEOUT, pe, "test"));
                        // After episode e, everyone must have entered
                        // at least (e+1)*... in total across threads:
                        let seen = entered.load(Ordering::SeqCst);
                        assert!(
                            seen >= (e + 1) * n as u64,
                            "PE {pe} passed episode {e} after only {seen} entries"
                        );
                    }
                });
            }
        });
        assert_eq!(entered.load(Ordering::SeqCst), iters * n as u64);
    }

    fn exercise_dissemination(n: usize, iters: u64) {
        let bar = Arc::new(DisseminationBarrier::new(n));
        let abort = Arc::new(AtomicBool::new(false));
        let entered = Arc::new(Counter::new(0));
        std::thread::scope(|s| {
            for pe in 0..n {
                let bar = Arc::clone(&bar);
                let abort = Arc::clone(&abort);
                let entered = Arc::clone(&entered);
                s.spawn(move || {
                    let mut gen = 0u64;
                    for e in 0..iters {
                        entered.fetch_add(1, Ordering::SeqCst);
                        let mut g = SpinGuard::new(&abort, TIMEOUT, pe, "test");
                        bar.wait(pe, &mut gen, &mut g);
                        let seen = entered.load(Ordering::SeqCst);
                        assert!(seen >= (e + 1) * n as u64);
                    }
                });
            }
        });
        assert_eq!(entered.load(Ordering::SeqCst), iters * n as u64);
    }

    #[test]
    fn central_barrier_2_pes() {
        exercise_central(2, 200);
    }

    #[test]
    fn central_barrier_16_pes() {
        exercise_central(16, 50);
    }

    #[test]
    fn central_barrier_single_pe_is_noop() {
        exercise_central(1, 10);
    }

    #[test]
    fn dissemination_barrier_2_pes() {
        exercise_dissemination(2, 200);
    }

    #[test]
    fn dissemination_barrier_16_pes() {
        exercise_dissemination(16, 50);
    }

    #[test]
    fn dissemination_barrier_non_power_of_two() {
        exercise_dissemination(7, 100);
        exercise_dissemination(13, 50);
    }

    #[test]
    fn dissemination_single_pe_is_noop() {
        exercise_dissemination(1, 10);
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in BarrierKind::ALL {
            assert_eq!(kind.to_string().parse::<BarrierKind>().unwrap(), kind);
        }
        assert_eq!("centralized".parse::<BarrierKind>().unwrap(), BarrierKind::Centralized);
        assert_eq!("dissemination".parse::<BarrierKind>().unwrap(), BarrierKind::Dissemination);
        assert!("tree".parse::<BarrierKind>().is_err());
    }

    #[test]
    fn dissemination_round_count() {
        assert_eq!(DisseminationBarrier::new(1).rounds, 0);
        assert_eq!(DisseminationBarrier::new(2).rounds, 1);
        assert_eq!(DisseminationBarrier::new(3).rounds, 2);
        assert_eq!(DisseminationBarrier::new(16).rounds, 4);
        assert_eq!(DisseminationBarrier::new(17).rounds, 5);
    }

    #[test]
    #[should_panic(expected = "RUN0191")]
    fn watchdog_fires_on_missing_pe() {
        // One PE enters a 2-PE barrier; the other never shows up.
        let bar = CentralBarrier::new(2);
        let abort = AtomicBool::new(false);
        let mut sense = false;
        bar.wait(&mut sense, SpinGuard::new(&abort, Duration::from_millis(50), 0, "HUGZ"));
    }

    #[test]
    #[should_panic(expected = "RUN0190")]
    fn spinners_abort_when_job_fails() {
        let bar = CentralBarrier::new(2);
        let abort = AtomicBool::new(true); // job already failed
        let mut sense = false;
        bar.wait(&mut sense, SpinGuard::new(&abort, TIMEOUT, 0, "HUGZ"));
    }

    /// The barrier orders memory: writes before it are visible after.
    #[test]
    fn barrier_publishes_writes() {
        let n = 4;
        let bar = Arc::new(CentralBarrier::new(n));
        let abort = Arc::new(AtomicBool::new(false));
        let slots: Arc<Vec<Counter>> = Arc::new((0..n).map(|_| Counter::new(0)).collect());
        std::thread::scope(|s| {
            for pe in 0..n {
                let bar = Arc::clone(&bar);
                let abort = Arc::clone(&abort);
                let slots = Arc::clone(&slots);
                s.spawn(move || {
                    let mut sense = false;
                    for round in 1..=100u64 {
                        slots[pe].store(round, Ordering::Relaxed);
                        bar.wait(&mut sense, SpinGuard::new(&abort, TIMEOUT, pe, "t"));
                        for other in 0..n {
                            assert!(slots[other].load(Ordering::Relaxed) >= round);
                        }
                        bar.wait(&mut sense, SpinGuard::new(&abort, TIMEOUT, pe, "t"));
                    }
                });
            }
        });
    }
}
