//! Interconnect latency models.
//!
//! The paper demonstrates the same programs on a 16-core Epiphany-III
//! (a 2D mesh network-on-chip) and a Cray XC40 (Aries, essentially flat
//! latency at these scales). On a shared-memory host every "remote"
//! access costs the same, so to reproduce the *shape* of locality
//! effects the runtime can charge a configurable delay per remote
//! access. `Off` (the default) adds zero overhead.

use std::time::{Duration, Instant};

/// Largest accepted mesh/torus dimension. The sim backend tops out at
/// ~1M PEs, so a 2^24-wide grid is already absurd; the cap turns a
/// fat-fingered (or u64-overflowing) spec into a clear error on every
/// platform instead of a silently truncated grid on 32-bit targets.
pub const MAX_DIM: usize = 1 << 24;

/// How much a remote access costs, as a function of source/target PE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// No artificial delay (pure shared-memory speed). Default.
    #[default]
    Off,
    /// Every remote access costs `remote_ns` (flat network — Cray
    /// Aries analog).
    Uniform {
        /// Cost of every remote access, in nanoseconds.
        remote_ns: u64,
    },
    /// 2D mesh NoC (Epiphany eMesh analog): PEs are laid out
    /// row-major on a `width`-wide grid; an access costs
    /// `base_ns + hops * hop_ns` where `hops` is Manhattan distance.
    ///
    /// `width` must be ≥ 1 — enforced by [`LatencyModel::validate`],
    /// which every config-construction path calls before a job runs.
    Mesh2D {
        /// Grid width (PEs per row, row-major layout).
        width: usize,
        /// Fixed cost of any remote access, in nanoseconds.
        base_ns: u64,
        /// Additional cost per mesh hop, in nanoseconds.
        hop_ns: u64,
    },
    /// 2D torus: like [`LatencyModel::Mesh2D`] but with wraparound
    /// links in both dimensions, so the worst-case hop count halves.
    /// PEs are laid out row-major on a `width × height` grid (PE ids
    /// beyond `width * height` wrap around in the vertical dimension).
    ///
    /// `width` and `height` must be ≥ 1 — enforced by
    /// [`LatencyModel::validate`].
    Torus2D {
        /// Grid width (PEs per row, row-major layout).
        width: usize,
        /// Grid height (rows before the vertical wraparound).
        height: usize,
        /// Fixed cost of any remote access, in nanoseconds.
        base_ns: u64,
        /// Additional cost per torus hop, in nanoseconds.
        hop_ns: u64,
    },
}

impl LatencyModel {
    /// Check the model's parameters. Config-construction paths
    /// ([`crate::ShmemConfig`] consumers, CLI/spec parsers) call this
    /// so a zero-width mesh is rejected up front with a proper error
    /// instead of being silently clamped per-access.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            LatencyModel::Off | LatencyModel::Uniform { .. } => Ok(()),
            LatencyModel::Mesh2D { width, .. } => {
                if width == 0 {
                    Err("O NOES! [RUN0120] MESH WIDTH MUST BE AT LEAST 1, NOT 0".to_string())
                } else if width > MAX_DIM {
                    Err(format!("O NOES! [RUN0120] MESH WIDTH {width} IZ 2 BIG (MAX {MAX_DIM})"))
                } else {
                    Ok(())
                }
            }
            LatencyModel::Torus2D { width, height, .. } => {
                if width == 0 || height == 0 {
                    Err(format!(
                        "O NOES! [RUN0120] TORUS DIMENSHUNS MUST BE AT LEAST 1x1, NOT {width}x{height}"
                    ))
                } else if width > MAX_DIM || height > MAX_DIM {
                    Err(format!(
                        "O NOES! [RUN0120] TORUS DIMENSHUNS {width}x{height} R 2 BIG (MAX {MAX_DIM})"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Delay in nanoseconds for an access from `from` to `to`.
    ///
    /// Requires a valid model (see [`LatencyModel::validate`]); a
    /// zero-width grid panics here rather than silently degrading.
    #[inline]
    pub fn delay_ns(&self, from: usize, to: usize) -> u64 {
        if from == to {
            return 0;
        }
        match *self {
            LatencyModel::Off => 0,
            LatencyModel::Uniform { remote_ns } => remote_ns,
            LatencyModel::Mesh2D { width, base_ns, hop_ns } => {
                let (fx, fy) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                let hops = fx.abs_diff(tx) + fy.abs_diff(ty);
                base_ns + hops as u64 * hop_ns
            }
            LatencyModel::Torus2D { width, height, base_ns, hop_ns } => {
                let (fx, fy) = (from % width, (from / width) % height);
                let (tx, ty) = (to % width, (to / width) % height);
                let dx = fx.abs_diff(tx);
                let dy = fy.abs_diff(ty);
                let hops = dx.min(width - dx) + dy.min(height - dy);
                base_ns + hops as u64 * hop_ns
            }
        }
    }

    /// Busy-wait for the modelled delay (no syscalls; sub-microsecond
    /// delays need spinning, not sleeping).
    #[inline]
    pub fn charge(&self, from: usize, to: usize) {
        let ns = self.delay_ns(from, to);
        if ns == 0 {
            return;
        }
        let dur = Duration::from_nanos(ns);
        let t0 = Instant::now();
        while t0.elapsed() < dur {
            std::hint::spin_loop();
        }
    }

    /// The Epiphany-III configuration used by the paper's Parallella
    /// demos: 16 cores on a 4×4 mesh, ~11ns per hop relative to a
    /// cheap local access.
    pub fn epiphany16() -> Self {
        LatencyModel::Mesh2D { width: 4, base_ns: 50, hop_ns: 11 }
    }

    /// A flat "big machine" network (Cray XC40 analog): every remote
    /// access costs about a microsecond.
    pub fn xc40() -> Self {
        LatencyModel::Uniform { remote_ns: 1_000 }
    }

    /// A 4×4 torus with Epiphany-like per-hop costs — the "what if the
    /// eMesh had wraparound links" counterfactual for the benches.
    pub fn torus16() -> Self {
        LatencyModel::Torus2D { width: 4, height: 4, base_ns: 50, hop_ns: 11 }
    }
}

/// Compact, round-trippable label: `off`, `flat:1000`, `mesh:4:50:11`,
/// `torus:4x4:50:11`; the `FromStr` impl parses the same forms.
impl std::fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LatencyModel::Off => write!(f, "off"),
            LatencyModel::Uniform { remote_ns } => write!(f, "flat:{remote_ns}"),
            LatencyModel::Mesh2D { width, base_ns, hop_ns } => {
                write!(f, "mesh:{width}:{base_ns}:{hop_ns}")
            }
            LatencyModel::Torus2D { width, height, base_ns, hop_ns } => {
                write!(f, "torus:{width}x{height}:{base_ns}:{hop_ns}")
            }
        }
    }
}

/// Parse a latency-model token (as used by `lolrun --latency` and
/// `--sweep "latency=..."`):
///
/// * `off`
/// * `flat` (Cray XC40 analog) or `flat:<remote_ns>`
/// * `mesh` (Epiphany-III 4×4) or `mesh:<width>[:<base_ns>:<hop_ns>]`
/// * `torus` (4×4) or `torus:<w>[x<h>][:<base_ns>:<hop_ns>]`
impl std::str::FromStr for LatencyModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let bad = |what: &str| format!("O NOES! I DUNNO DIS LATENCY MODEL: {what}");
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let parse_u64 =
            |tok: &str| tok.parse::<u64>().map_err(|_| bad(&format!("{s} ({tok} NOT A NUMBR)")));
        // Grid dimensions become `usize` indices: convert checked, so a
        // value that doesn't fit the platform word is an error instead
        // of a silent `as` truncation to some small bogus grid.
        let parse_dim = |tok: &str| -> Result<usize, String> {
            let n = parse_u64(tok)?;
            usize::try_from(n).map_err(|_| bad(&format!("{s} ({tok} 2 BIG 4 DIS MACHINE)")))
        };
        let model = match head {
            "off" if rest.is_empty() => LatencyModel::Off,
            "flat" => match rest.as_slice() {
                [] => LatencyModel::xc40(),
                [ns] => LatencyModel::Uniform { remote_ns: parse_u64(ns)? },
                _ => return Err(bad(s)),
            },
            "mesh" => match rest.as_slice() {
                [] => LatencyModel::epiphany16(),
                [w] => LatencyModel::Mesh2D { width: parse_dim(w)?, base_ns: 50, hop_ns: 11 },
                [w, base, hop] => LatencyModel::Mesh2D {
                    width: parse_dim(w)?,
                    base_ns: parse_u64(base)?,
                    hop_ns: parse_u64(hop)?,
                },
                _ => return Err(bad(s)),
            },
            "torus" => {
                let dims = |tok: &str| -> Result<(usize, usize), String> {
                    match tok.split_once('x') {
                        Some((w, h)) => Ok((parse_dim(w)?, parse_dim(h)?)),
                        None => {
                            let w = parse_dim(tok)?;
                            Ok((w, w))
                        }
                    }
                };
                match rest.as_slice() {
                    [] => LatencyModel::torus16(),
                    [d] => {
                        let (width, height) = dims(d)?;
                        LatencyModel::Torus2D { width, height, base_ns: 50, hop_ns: 11 }
                    }
                    [d, base, hop] => {
                        let (width, height) = dims(d)?;
                        LatencyModel::Torus2D {
                            width,
                            height,
                            base_ns: parse_u64(base)?,
                            hop_ns: parse_u64(hop)?,
                        }
                    }
                    _ => return Err(bad(s)),
                }
            }
            _ => return Err(bad(s)),
        };
        model.validate()?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_access_is_free_in_every_model() {
        for m in [
            LatencyModel::Off,
            LatencyModel::Uniform { remote_ns: 500 },
            LatencyModel::epiphany16(),
            LatencyModel::torus16(),
        ] {
            assert_eq!(m.delay_ns(3, 3), 0);
        }
    }

    #[test]
    fn uniform_is_distance_independent() {
        let m = LatencyModel::Uniform { remote_ns: 700 };
        assert_eq!(m.delay_ns(0, 1), 700);
        assert_eq!(m.delay_ns(0, 15), 700);
    }

    #[test]
    fn mesh_charges_manhattan_distance() {
        let m = LatencyModel::Mesh2D { width: 4, base_ns: 50, hop_ns: 10 };
        // PE 0 = (0,0); PE 5 = (1,1): 2 hops.
        assert_eq!(m.delay_ns(0, 5), 50 + 2 * 10);
        // PE 0 -> PE 15 = (3,3): 6 hops.
        assert_eq!(m.delay_ns(0, 15), 50 + 6 * 10);
        // Neighbours: 1 hop.
        assert_eq!(m.delay_ns(0, 1), 50 + 10);
        // Symmetry.
        assert_eq!(m.delay_ns(15, 0), m.delay_ns(0, 15));
    }

    #[test]
    fn mesh_monotone_in_distance() {
        let m = LatencyModel::epiphany16();
        let d1 = m.delay_ns(0, 1);
        let d2 = m.delay_ns(0, 5);
        let d3 = m.delay_ns(0, 15);
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        let m = LatencyModel::Torus2D { width: 4, height: 4, base_ns: 50, hop_ns: 10 };
        // PE 0 = (0,0) -> PE 3 = (3,0): 1 hop via the wraparound link.
        assert_eq!(m.delay_ns(0, 3), 50 + 10);
        // PE 0 -> PE 12 = (0,3): 1 hop vertically.
        assert_eq!(m.delay_ns(0, 12), 50 + 10);
        // PE 0 -> PE 15 = (3,3): corner is 2 wrap hops.
        assert_eq!(m.delay_ns(0, 15), 50 + 2 * 10);
        // PE 0 -> PE 10 = (2,2): true middle, no shortcut (2+2 hops).
        assert_eq!(m.delay_ns(0, 10), 50 + 4 * 10);
        // Symmetry.
        assert_eq!(m.delay_ns(15, 0), m.delay_ns(0, 15));
    }

    #[test]
    fn torus_never_costs_more_than_mesh() {
        let mesh = LatencyModel::Mesh2D { width: 4, base_ns: 50, hop_ns: 11 };
        let torus = LatencyModel::Torus2D { width: 4, height: 4, base_ns: 50, hop_ns: 11 };
        for from in 0..16 {
            for to in 0..16 {
                assert!(
                    torus.delay_ns(from, to) <= mesh.delay_ns(from, to),
                    "torus beat by mesh for {from}->{to}"
                );
            }
        }
    }

    #[test]
    fn charge_actually_waits() {
        let m = LatencyModel::Uniform { remote_ns: 200_000 }; // 200µs
        let t0 = Instant::now();
        m.charge(0, 1);
        assert!(t0.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn off_charge_is_instant_path() {
        let m = LatencyModel::Off;
        m.charge(0, 1); // must not hang
        assert_eq!(m.delay_ns(0, 1), 0);
    }

    #[test]
    fn zero_width_is_rejected_not_clamped() {
        let m = LatencyModel::Mesh2D { width: 0, base_ns: 1, hop_ns: 1 };
        let err = m.validate().unwrap_err();
        assert!(err.contains("RUN0120"), "{err}");
        for m in [
            LatencyModel::Torus2D { width: 0, height: 4, base_ns: 1, hop_ns: 1 },
            LatencyModel::Torus2D { width: 4, height: 0, base_ns: 1, hop_ns: 1 },
        ] {
            assert!(m.validate().unwrap_err().contains("RUN0120"));
        }
        // Valid models pass.
        for m in [
            LatencyModel::Off,
            LatencyModel::xc40(),
            LatencyModel::epiphany16(),
            LatencyModel::torus16(),
        ] {
            m.validate().unwrap();
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for m in [
            LatencyModel::Off,
            LatencyModel::Uniform { remote_ns: 1234 },
            LatencyModel::Mesh2D { width: 7, base_ns: 5, hop_ns: 3 },
            LatencyModel::Torus2D { width: 3, height: 5, base_ns: 9, hop_ns: 2 },
        ] {
            let label = m.to_string();
            assert_eq!(label.parse::<LatencyModel>().unwrap(), m, "{label}");
        }
    }

    #[test]
    fn from_str_accepts_shorthand_and_rejects_junk() {
        assert_eq!("off".parse::<LatencyModel>().unwrap(), LatencyModel::Off);
        assert_eq!("flat".parse::<LatencyModel>().unwrap(), LatencyModel::xc40());
        assert_eq!("mesh".parse::<LatencyModel>().unwrap(), LatencyModel::epiphany16());
        assert_eq!(
            "mesh:8".parse::<LatencyModel>().unwrap(),
            LatencyModel::Mesh2D { width: 8, base_ns: 50, hop_ns: 11 }
        );
        assert_eq!("torus".parse::<LatencyModel>().unwrap(), LatencyModel::torus16());
        assert_eq!(
            "torus:2x3:7:1".parse::<LatencyModel>().unwrap(),
            LatencyModel::Torus2D { width: 2, height: 3, base_ns: 7, hop_ns: 1 }
        );
        for junk in ["", "wat", "mesh:0", "torus:0x3", "flat:abc", "mesh:1:2", "off:1"] {
            assert!(junk.parse::<LatencyModel>().is_err(), "{junk} should be rejected");
        }
    }

    #[test]
    fn from_str_rejects_oversized_dimensions_instead_of_truncating() {
        // A u64 that wraps to a tiny width under `as usize` on 32-bit
        // targets (2^32 + 2 = 4294967298) and values past MAX_DIM must
        // all be hard errors — never a silently shrunken grid.
        for spec in [
            "mesh:4294967298",
            "mesh:18446744073709551615:1:1",
            "mesh:99999999999999999999999", // > u64::MAX: not a NUMBR at all
            "torus:4294967298x4",
            "torus:4x4294967298:1:1",
            "torus:16777217", // MAX_DIM + 1
        ] {
            let err = spec.parse::<LatencyModel>().unwrap_err();
            assert!(err.starts_with("O NOES!"), "{spec}: {err}");
        }
        // The cap itself is fine.
        let m = format!("mesh:{MAX_DIM}").parse::<LatencyModel>().unwrap();
        assert_eq!(m, LatencyModel::Mesh2D { width: MAX_DIM, base_ns: 50, hop_ns: 11 });
    }

    #[test]
    fn validate_rejects_oversized_grids() {
        assert!(LatencyModel::Mesh2D { width: MAX_DIM + 1, base_ns: 1, hop_ns: 1 }
            .validate()
            .is_err());
        assert!(LatencyModel::Torus2D { width: 2, height: MAX_DIM + 1, base_ns: 1, hop_ns: 1 }
            .validate()
            .is_err());
    }
}
