//! Interconnect latency models.
//!
//! The paper demonstrates the same programs on a 16-core Epiphany-III
//! (a 2D mesh network-on-chip) and a Cray XC40 (Aries, essentially flat
//! latency at these scales). On a shared-memory host every "remote"
//! access costs the same, so to reproduce the *shape* of locality
//! effects the runtime can charge a configurable delay per remote
//! access. `Off` (the default) adds zero overhead.

use std::time::{Duration, Instant};

/// How much a remote access costs, as a function of source/target PE.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// No artificial delay (pure shared-memory speed). Default.
    #[default]
    Off,
    /// Every remote access costs `remote_ns` (flat network — Cray
    /// Aries analog).
    Uniform { remote_ns: u64 },
    /// 2D mesh NoC (Epiphany eMesh analog): PEs are laid out
    /// row-major on a `width`-wide grid; an access costs
    /// `base_ns + hops * hop_ns` where `hops` is Manhattan distance.
    Mesh2D { width: usize, base_ns: u64, hop_ns: u64 },
}

impl LatencyModel {
    /// Delay in nanoseconds for an access from `from` to `to`.
    #[inline]
    pub fn delay_ns(&self, from: usize, to: usize) -> u64 {
        if from == to {
            return 0;
        }
        match *self {
            LatencyModel::Off => 0,
            LatencyModel::Uniform { remote_ns } => remote_ns,
            LatencyModel::Mesh2D { width, base_ns, hop_ns } => {
                let w = width.max(1);
                let (fx, fy) = (from % w, from / w);
                let (tx, ty) = (to % w, to / w);
                let hops = fx.abs_diff(tx) + fy.abs_diff(ty);
                base_ns + hops as u64 * hop_ns
            }
        }
    }

    /// Busy-wait for the modelled delay (no syscalls; sub-microsecond
    /// delays need spinning, not sleeping).
    #[inline]
    pub fn charge(&self, from: usize, to: usize) {
        let ns = self.delay_ns(from, to);
        if ns == 0 {
            return;
        }
        let dur = Duration::from_nanos(ns);
        let t0 = Instant::now();
        while t0.elapsed() < dur {
            std::hint::spin_loop();
        }
    }

    /// The Epiphany-III configuration used by the paper's Parallella
    /// demos: 16 cores on a 4×4 mesh, ~11ns per hop relative to a
    /// cheap local access.
    pub fn epiphany16() -> Self {
        LatencyModel::Mesh2D { width: 4, base_ns: 50, hop_ns: 11 }
    }

    /// A flat "big machine" network (Cray XC40 analog): every remote
    /// access costs about a microsecond.
    pub fn xc40() -> Self {
        LatencyModel::Uniform { remote_ns: 1_000 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_access_is_free_in_every_model() {
        for m in [
            LatencyModel::Off,
            LatencyModel::Uniform { remote_ns: 500 },
            LatencyModel::epiphany16(),
        ] {
            assert_eq!(m.delay_ns(3, 3), 0);
        }
    }

    #[test]
    fn uniform_is_distance_independent() {
        let m = LatencyModel::Uniform { remote_ns: 700 };
        assert_eq!(m.delay_ns(0, 1), 700);
        assert_eq!(m.delay_ns(0, 15), 700);
    }

    #[test]
    fn mesh_charges_manhattan_distance() {
        let m = LatencyModel::Mesh2D { width: 4, base_ns: 50, hop_ns: 10 };
        // PE 0 = (0,0); PE 5 = (1,1): 2 hops.
        assert_eq!(m.delay_ns(0, 5), 50 + 2 * 10);
        // PE 0 -> PE 15 = (3,3): 6 hops.
        assert_eq!(m.delay_ns(0, 15), 50 + 6 * 10);
        // Neighbours: 1 hop.
        assert_eq!(m.delay_ns(0, 1), 50 + 10);
        // Symmetry.
        assert_eq!(m.delay_ns(15, 0), m.delay_ns(0, 15));
    }

    #[test]
    fn mesh_monotone_in_distance() {
        let m = LatencyModel::epiphany16();
        let d1 = m.delay_ns(0, 1);
        let d2 = m.delay_ns(0, 5);
        let d3 = m.delay_ns(0, 15);
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    fn charge_actually_waits() {
        let m = LatencyModel::Uniform { remote_ns: 200_000 }; // 200µs
        let t0 = Instant::now();
        m.charge(0, 1);
        assert!(t0.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn off_charge_is_instant_path() {
        let m = LatencyModel::Off;
        m.charge(0, 1); // must not hang
        assert_eq!(m.delay_ns(0, 1), 0);
    }

    #[test]
    fn degenerate_width_is_safe() {
        let m = LatencyModel::Mesh2D { width: 0, base_ns: 1, hop_ns: 1 };
        // width clamps to 1: a column topology.
        assert_eq!(m.delay_ns(0, 3), 1 + 3);
    }
}
