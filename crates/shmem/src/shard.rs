//! Deterministic PE→shard assignment for sharded substrates.
//!
//! `lol-sim`'s parallel scheduler executes PEs on a bounded pool of
//! shard workers. The assignment of PEs to shards is a pure function
//! of `(n_pes, jobs)` (plus an optional salt, used by the property
//! tests to prove observables are invariant under *any* assignment),
//! so two runs of the same job always shard identically.
//!
//! The plan is also where the worker-count policy lives:
//! [`effective_jobs`] turns a user request (`--sim-jobs`, `0` = auto)
//! into the number of workers actually worth spawning for a given PE
//! count, which the sweep scheduler reuses to weigh sim configs
//! against the global thread budget.

/// Below this PE count the auto policy never shards: per-phase worker
/// dispatch costs more than it saves on jobs this small.
pub const AUTO_MIN_PES: usize = 4096;

/// The auto policy aims for at least this many PEs per shard so each
/// phase does real work between synchronizations.
pub const AUTO_PES_PER_SHARD: usize = 1024;

/// Resolve a requested sim worker count against a PE count.
///
/// * `requested > 0` is honored exactly (clamped to `n_pes` — more
///   workers than PEs would idle), letting tests force small sharded
///   runs.
/// * `requested == 0` (auto) uses `available` (the host's
///   parallelism) but refuses to shard tiny jobs: below
///   [`AUTO_MIN_PES`] it stays at 1, and above it allots at least
///   [`AUTO_PES_PER_SHARD`] PEs to each worker.
pub fn effective_jobs(requested: usize, n_pes: usize, available: usize) -> usize {
    if requested > 0 {
        return requested.min(n_pes.max(1));
    }
    if n_pes < AUTO_MIN_PES {
        return 1;
    }
    available.clamp(1, (n_pes / AUTO_PES_PER_SHARD).max(1))
}

/// A concrete PE→shard assignment: which worker owns which PEs.
///
/// Shard membership lists are kept in ascending PE order so each
/// worker processes its PEs in the canonical tie-break order.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shard_of: Vec<u32>,
    members: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// The default plan: contiguous blocks of `ceil(n_pes / jobs)`
    /// PEs per shard (good locality, trivially balanced).
    pub fn contiguous(n_pes: usize, jobs: usize) -> ShardPlan {
        Self::from_fn(n_pes, jobs, |pe, per| pe / per)
    }

    /// A salted round-robin plan: PE `p` lands in shard
    /// `(p + salt) % jobs`. Exists for the determinism property
    /// tests — observables must be byte-identical under any plan.
    pub fn salted(n_pes: usize, jobs: usize, salt: usize) -> ShardPlan {
        Self::from_fn(n_pes, jobs.max(1), |pe, _| (pe.wrapping_add(salt)) % jobs.max(1))
    }

    fn from_fn(n_pes: usize, jobs: usize, f: impl Fn(usize, usize) -> usize) -> ShardPlan {
        let jobs = jobs.clamp(1, n_pes.max(1));
        let per = n_pes.div_ceil(jobs);
        let mut shard_of = Vec::with_capacity(n_pes);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); jobs];
        for pe in 0..n_pes {
            let s = f(pe, per).min(jobs - 1);
            shard_of.push(s as u32);
            members[s].push(pe);
        }
        ShardPlan { shard_of, members }
    }

    /// Number of shards (workers) in the plan.
    pub fn jobs(&self) -> usize {
        self.members.len()
    }

    /// Which shard owns `pe`'s partition.
    pub fn shard_of(&self, pe: usize) -> usize {
        self.shard_of[pe] as usize
    }

    /// The PEs shard `s` owns, in ascending order.
    pub fn members(&self, s: usize) -> &[usize] {
        &self.members[s]
    }

    /// Total PEs covered by the plan.
    pub fn n_pes(&self) -> usize {
        self.shard_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partitions_cover_everything_in_order() {
        let plan = ShardPlan::contiguous(10, 3);
        assert_eq!(plan.jobs(), 3);
        let mut seen = Vec::new();
        for s in 0..plan.jobs() {
            let m = plan.members(s);
            assert!(m.windows(2).all(|w| w[0] < w[1]), "ascending within shard");
            for &pe in m {
                assert_eq!(plan.shard_of(pe), s);
            }
            seen.extend_from_slice(m);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn salted_plans_cover_everything_too() {
        for salt in [0usize, 1, 7, 12345] {
            let plan = ShardPlan::salted(9, 4, salt);
            let total: usize = (0..plan.jobs()).map(|s| plan.members(s).len()).sum();
            assert_eq!(total, 9, "salt {salt}");
            for pe in 0..9 {
                assert!(plan.members(plan.shard_of(pe)).contains(&pe), "salt {salt} pe {pe}");
            }
        }
    }

    #[test]
    fn more_jobs_than_pes_clamps() {
        let plan = ShardPlan::contiguous(2, 8);
        assert_eq!(plan.jobs(), 2);
        assert_eq!(ShardPlan::contiguous(1, 1).jobs(), 1);
    }

    #[test]
    fn effective_jobs_policy() {
        // Explicit requests are honored exactly (clamped to n_pes).
        assert_eq!(effective_jobs(4, 8, 1), 4);
        assert_eq!(effective_jobs(16, 8, 1), 8);
        assert_eq!(effective_jobs(1, 1 << 20, 64), 1);
        // Auto: small jobs never shard.
        assert_eq!(effective_jobs(0, 1024, 8), 1);
        assert_eq!(effective_jobs(0, AUTO_MIN_PES - 1, 8), 1);
        // Auto: big jobs use the host, bounded by PEs-per-shard.
        assert_eq!(effective_jobs(0, 65536, 4), 4);
        assert_eq!(effective_jobs(0, 65536, 128), 64);
        assert_eq!(effective_jobs(0, 1 << 20, 8), 8);
    }
}
