//! The SPMD world and per-PE handles.
//!
//! [`run_spmd`] is the `coprsh -np N` / `aprun -n N` analog: it builds a
//! [`World`] (the job), launches one OS thread per PE, hands each a
//! [`Pe`] handle (its window onto the partitioned global address
//! space), and joins the results. A panic on any PE aborts the whole
//! job — waiters notice promptly via the shared abort flag instead of
//! hanging, and the failure is reported as a [`SpmdError`] naming the
//! first PE that died.

use crate::barrier::{BarrierKind, CentralBarrier, DisseminationBarrier, SpinGuard};
use crate::heap::{f64_to_word, i64_to_word, word_to_f64, word_to_i64, Heap, SymAddr};
use crate::latency::LatencyModel;
use crate::lock::{LockKind, LockWords, LOCK_WORDS};
use crate::pad::CachePadded;
use crate::rng::PeRng;
use crate::stats::{CommStats, StatCells};
use crate::WaitCmp;
use lol_trace::{ClockMode, EventKind, PeTrace, TraceBuffer, VIRT_BARRIER_NS, VIRT_OP_NS};
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Job configuration (the "machine" we simulate).
#[derive(Clone, Debug)]
pub struct ShmemConfig {
    /// Number of processing elements (`MAH FRENZ`).
    pub n_pes: usize,
    /// Words of symmetric heap per PE.
    pub heap_words: usize,
    /// Remote-access latency model.
    pub latency: LatencyModel,
    /// Barrier algorithm for `HUGZ`.
    pub barrier: BarrierKind,
    /// Lock algorithm for `IM MESIN WIF`.
    pub lock: LockKind,
    /// Deadlock watchdog: how long a PE may wait before the job is
    /// declared wedged.
    pub timeout: Duration,
    /// Base seed for per-PE RNG (`WHATEVR` / `WHATEVAR`).
    pub seed: u64,
    /// Which clock latency models charge against: busy-wait real time
    /// ([`ClockMode::Wall`]) or advance a deterministic per-PE logical
    /// clock ([`ClockMode::Virtual`]).
    pub clock: ClockMode,
    /// Record communication events into per-PE trace buffers.
    pub trace: bool,
    /// Per-PE trace buffer bound (events beyond it are counted, not
    /// stored).
    pub trace_capacity: usize,
    /// Trace-sampling stride: only PEs with `id % trace_stride == 0`
    /// get real buffers; the rest record nothing but still count every
    /// event as dropped, so the accounting stays truthful. Mega-scale
    /// jobs set this so tracing a million PEs doesn't OOM.
    pub trace_stride: usize,
    /// Worker shards for the discrete-event simulator (`lol-sim`):
    /// `0` = auto (use the host's parallelism on jobs big enough to
    /// shard, see `crate::shard::effective_jobs`), `1` = the exact
    /// sequential scheduler, `N` = force `N` shard workers. The
    /// threaded world ignores it (its parallelism is thread-per-PE).
    pub sim_jobs: usize,
}

impl ShmemConfig {
    /// A sensible default job with `n_pes` PEs.
    pub fn new(n_pes: usize) -> Self {
        ShmemConfig {
            n_pes,
            heap_words: 1 << 16,
            latency: LatencyModel::Off,
            barrier: BarrierKind::Centralized,
            lock: LockKind::SpinCas,
            timeout: Duration::from_secs(30),
            seed: 0xC47_F00D,
            clock: ClockMode::Wall,
            trace: false,
            trace_capacity: 1 << 16,
            trace_stride: 1,
            sim_jobs: 0,
        }
    }

    /// Set the symmetric heap size (in 8-byte words).
    pub fn heap_words(mut self, words: usize) -> Self {
        self.heap_words = words;
        self
    }

    /// Set the latency model.
    pub fn latency(mut self, m: LatencyModel) -> Self {
        self.latency = m;
        self
    }

    /// Set the barrier algorithm.
    pub fn barrier(mut self, b: BarrierKind) -> Self {
        self.barrier = b;
        self
    }

    /// Set the lock algorithm.
    pub fn lock(mut self, l: LockKind) -> Self {
        self.lock = l;
        self
    }

    /// Set the deadlock watchdog timeout.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Set the RNG base seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Select the clock latency models charge against (wall busy-wait
    /// vs. deterministic virtual time).
    pub fn clock(mut self, c: ClockMode) -> Self {
        self.clock = c;
        self
    }

    /// Enable (or disable) communication-event tracing.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Bound each PE's trace buffer at `cap` events.
    pub fn trace_capacity(mut self, cap: usize) -> Self {
        self.trace_capacity = cap;
        self
    }

    /// Sample traces: give real buffers only to every `stride`-th PE
    /// (the rest count their events as dropped). A stride of 0 is
    /// treated as 1 (trace everyone).
    pub fn trace_stride(mut self, stride: usize) -> Self {
        self.trace_stride = stride.max(1);
        self
    }

    /// Set the simulator's worker-shard count (`0` = auto).
    pub fn sim_jobs(mut self, jobs: usize) -> Self {
        self.sim_jobs = jobs;
        self
    }

    /// Does `pe` get a real trace buffer under the sampling stride?
    pub fn traces_pe(&self, pe: usize) -> bool {
        pe.is_multiple_of(self.trace_stride.max(1))
    }

    /// Check the whole configuration before a job is built: PE count,
    /// heap size and latency-model parameters. [`World::new`] enforces
    /// this, and driver layers call it to surface the error without
    /// panicking.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_pes == 0 {
            return Err("O NOES! [RUN0121] A JOB NEEDS AT LEAST ONE PE".to_string());
        }
        if self.heap_words == 0 {
            return Err("O NOES! [RUN0122] DA SYMMETRIC HEAP CANNOT BE EMPTY".to_string());
        }
        self.latency.validate()
    }
}

/// Reduction operators for [`Pe::reduce_i64`] / [`Pe::reduce_f64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum (`shmem_sum_reduce`).
    Sum,
    /// Wrapping product (`shmem_prod_reduce`).
    Prod,
    /// Minimum (`shmem_min_reduce`).
    Min,
    /// Maximum (`shmem_max_reduce`).
    Max,
}

/// The shared state of one SPMD job.
pub struct World {
    cfg: ShmemConfig,
    heaps: Box<[Heap]>,
    central: CentralBarrier,
    dissem: DisseminationBarrier,
    /// One scratch slot per PE for collectives.
    coll: Box<[CachePadded<AtomicU64>]>,
    /// Set when any PE fails; spinners notice and bail out.
    abort: AtomicBool,
    /// Collective-allocation validation: words requested per call index.
    alloc_log: Mutex<Vec<u32>>,
    /// Virtual-clock publication slots, double-buffered by barrier
    /// parity: at barrier episode `k`, every PE publishes its logical
    /// clock to `vclock_pub[k % 2][pe]`, waits, then adopts the
    /// maximum. The parity buffer stops episode `k+1`'s stores from
    /// racing episode `k`'s reads.
    vclock_pub: [Box<[CachePadded<AtomicU64>]>; 2],
    /// Job start (wall-clock trace timestamps are offsets from this).
    t0: Instant,
}

impl World {
    /// Build the job state. (Usually called through [`run_spmd`].)
    pub fn new(cfg: ShmemConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let heaps = (0..cfg.n_pes).map(|_| Heap::new(cfg.heap_words)).collect();
        let slots = || (0..cfg.n_pes).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        World {
            central: CentralBarrier::new(cfg.n_pes),
            dissem: DisseminationBarrier::new(cfg.n_pes),
            coll: (0..cfg.n_pes).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            abort: AtomicBool::new(false),
            alloc_log: Mutex::new(Vec::new()),
            vclock_pub: [slots(), slots()],
            t0: Instant::now(),
            heaps,
            cfg,
        }
    }

    /// The job configuration.
    pub fn config(&self) -> &ShmemConfig {
        &self.cfg
    }

    /// Create the handle for one PE. Each PE id must be used by exactly
    /// one thread.
    pub fn pe(&self, id: usize) -> Pe<'_> {
        assert!(id < self.cfg.n_pes, "PE id {id} out of range");
        Pe {
            id,
            world: self,
            sense: Cell::new(false),
            generation: Cell::new(0),
            heap_cursor: Cell::new(0),
            alloc_seq: Cell::new(0),
            rng: RefCell::new(PeRng::seed_from_u64(
                self.cfg.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )),
            stats: StatCells::default(),
            vclock: Cell::new(0),
            bar_parity: Cell::new(false),
            tracer: RefCell::new(if self.cfg.trace {
                // Sampled-out PEs get a zero-capacity buffer: they
                // record nothing but count every event as dropped.
                let cap = if self.cfg.traces_pe(id) { self.cfg.trace_capacity } else { 0 };
                Some(TraceBuffer::new(id, cap))
            } else {
                None
            }),
        }
    }

    /// Mark the job failed (spinning PEs will bail out promptly).
    pub fn abort_job(&self) {
        self.abort.store(true, Ordering::SeqCst);
    }

    /// Has the job been aborted?
    pub fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }
}

/// Error from a failed SPMD job: the first PE that panicked and its
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmdError {
    /// The first PE that panicked.
    pub pe: usize,
    /// The panic message (usually an `O NOES! [RUNxxxx]` diagnostic).
    pub message: String,
}

impl std::fmt::Display for SpmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE {} FAILED: {}", self.pe, self.message)
    }
}

impl std::error::Error for SpmdError {}

/// Launch `cfg.n_pes` threads running `body` SPMD-style and collect
/// their results in PE order.
///
/// ```
/// use lol_shmem::{run_spmd, ShmemConfig};
///
/// let squares = run_spmd(ShmemConfig::new(4), |pe| pe.id() * pe.id()).unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub fn run_spmd<R, F>(cfg: ShmemConfig, body: F) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&Pe<'_>) -> R + Sync,
{
    let world = World::new(cfg);
    let n = world.cfg.n_pes;
    let body = &body;
    let world_ref = &world;
    let mut outcomes: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|id| {
                std::thread::Builder::new()
                    .name(format!("PE{id}"))
                    .stack_size(16 << 20)
                    .spawn_scoped(s, move || {
                        let pe = world_ref.pe(id);
                        let r = catch_unwind(AssertUnwindSafe(|| body(&pe)));
                        r.map_err(|payload| {
                            world_ref.abort_job();
                            panic_message(payload)
                        })
                    })
                    .expect("failed to spawn PE thread")
            })
            .collect();
        for (id, h) in handles.into_iter().enumerate() {
            outcomes[id] = Some(h.join().expect("PE thread panicked outside catch_unwind"));
        }
    });

    let mut results = Vec::with_capacity(n);
    let mut root_cause: Option<SpmdError> = None;
    let mut bystander: Option<SpmdError> = None;
    for (id, o) in outcomes.into_iter().enumerate() {
        match o.expect("missing PE outcome") {
            Ok(r) => results.push(r),
            Err(message) => {
                // RUN0190 is the "another PE already failed" secondary
                // panic: report the PE that actually caused the abort.
                let slot =
                    if message.contains("[RUN0190]") { &mut bystander } else { &mut root_cause };
                if slot.is_none() {
                    *slot = Some(SpmdError { pe: id, message });
                }
            }
        }
    }
    match root_cause.or(bystander) {
        Some(e) => Err(e),
        None => Ok(results),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "PE panicked with a non-string payload".to_string()
    }
}

/// One processing element's handle onto the job: its identity, its RNG,
/// and its window onto the partitioned global address space.
///
/// `Pe` is intentionally `!Sync` (interior `Cell`s): exactly one thread
/// drives each PE, as in SPMD.
pub struct Pe<'w> {
    id: usize,
    world: &'w World,
    sense: Cell<bool>,
    generation: Cell<u64>,
    heap_cursor: Cell<usize>,
    alloc_seq: Cell<usize>,
    rng: RefCell<PeRng>,
    stats: StatCells,
    /// Per-PE logical clock (ns), advanced only under
    /// [`ClockMode::Virtual`].
    vclock: Cell<u64>,
    /// Barrier-episode parity for the double-buffered virtual-clock
    /// publication slots.
    bar_parity: Cell<bool>,
    /// Event recorder, present only when the config enables tracing
    /// (taken by [`Pe::take_trace`]).
    tracer: RefCell<Option<TraceBuffer>>,
}

impl<'w> Pe<'w> {
    // ------------------------------------------------------------------
    // Identity (ME / MAH FRENZ)
    // ------------------------------------------------------------------

    /// This PE's id (`ME`).
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total number of PEs (`MAH FRENZ`).
    #[inline]
    pub fn n_pes(&self) -> usize {
        self.world.cfg.n_pes
    }

    /// The world this PE belongs to.
    #[inline]
    pub fn world(&self) -> &'w World {
        self.world
    }

    fn guard(&self, what: &'static str) -> SpinGuard<'w> {
        SpinGuard::new(&self.world.abort, self.world.cfg.timeout, self.id, what)
    }

    // ------------------------------------------------------------------
    // Clock + trace plumbing
    // ------------------------------------------------------------------

    /// This PE's current timestamp on the job's clock: ns since launch
    /// ([`ClockMode::Wall`]) or the logical clock ([`ClockMode::Virtual`]).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self.world.cfg.clock {
            ClockMode::Wall => self.world.t0.elapsed().as_nanos() as u64,
            ClockMode::Virtual => self.vclock.get(),
        }
    }

    /// This PE's virtual clock (0 unless the job runs under
    /// [`ClockMode::Virtual`]).
    #[inline]
    pub fn virtual_ns(&self) -> u64 {
        self.vclock.get()
    }

    /// Pay the interconnect cost of touching `target`: busy-wait the
    /// latency model's delay on the wall clock, or account it
    /// (deterministically) on the virtual clock. Local accesses are
    /// free on both clocks.
    #[inline]
    fn charge(&self, target: usize) {
        match self.world.cfg.clock {
            ClockMode::Wall => self.world.cfg.latency.charge(self.id, target),
            ClockMode::Virtual => {
                if target != self.id {
                    let delay = self.world.cfg.latency.delay_ns(self.id, target);
                    self.vclock.set(self.vclock.get() + delay + VIRT_OP_NS);
                }
            }
        }
    }

    /// Record one event (no-op unless the config enables tracing).
    #[inline]
    fn trace(&self, kind: EventKind, peer: usize, addr: SymAddr, bytes: u32) {
        if self.world.cfg.trace {
            let now = self.now_ns();
            if let Some(buf) = self.tracer.borrow_mut().as_mut() {
                buf.record(kind, peer, addr.0, bytes, now);
            }
        }
    }

    /// Take this PE's completed event stream (once; `None` when the
    /// job doesn't trace or the stream was already taken). Call at the
    /// end of the SPMD body — the stream is stamped with the PE's
    /// final clock value.
    pub fn take_trace(&self) -> Option<PeTrace> {
        let end = self.now_ns();
        self.tracer.borrow_mut().take().map(|buf| buf.finish(end))
    }

    /// Abort the whole job and panic with `msg` (runtime-error path).
    pub fn fail(&self, msg: String) -> ! {
        self.world.abort_job();
        panic!("{msg}");
    }

    // ------------------------------------------------------------------
    // Symmetric allocation (shmem_malloc analog; collective)
    // ------------------------------------------------------------------

    /// Collectively allocate `words` symmetric words. Every PE must
    /// call `shmalloc` with the same sizes in the same order; debug
    /// validation catches divergence. Includes a barrier, like
    /// `shmem_malloc`.
    pub fn shmalloc(&self, words: usize) -> SymAddr {
        let seq = self.alloc_seq.get();
        {
            // `unwrap_or_else(into_inner)`: a PE that fails validation
            // panics while holding the lock; later PEs must still read
            // the (consistent) log rather than propagate the poison.
            let mut log = self.world.alloc_log.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&prev) = log.get(seq) {
                if prev as usize != words {
                    self.world.abort_job();
                    panic!(
                        "O NOES! [RUN0110] COLLECTIVE ALLOCASHUN MISMATCH AT CALL #{seq}: \
                         PE {} WANTS {words} WORDS BUT DA JOB ALREADY AGREED ON {prev}",
                        self.id
                    );
                }
            } else {
                log.push(words as u32);
            }
        }
        self.alloc_seq.set(seq + 1);
        let offset = self.heap_cursor.get();
        let end = offset + words;
        if end > self.world.cfg.heap_words {
            self.world.abort_job();
            panic!(
                "O NOES! [RUN0111] NOT ENUF SYMMETRIC HEAP: PE {} NEEDS {end} WORDS \
                 BUT ONLY HAS {} (GROW heap_words)",
                self.id, self.world.cfg.heap_words
            );
        }
        self.heap_cursor.set(end);
        // Internal fence: counted in the stats (it *is* a barrier), but
        // untraced and free in virtual time — the C backend's one
        // registration barrier behaves identically, so event streams
        // and virtual walls stay backend-equivalent.
        self.barrier_episode(false);
        SymAddr(offset as u32)
    }

    /// Allocate a lock's worth of symmetric words (collective).
    pub fn shmalloc_lock(&self) -> SymAddr {
        self.shmalloc(LOCK_WORDS)
    }

    // ------------------------------------------------------------------
    // One-sided remote access (shmem_p / shmem_g analogs)
    // ------------------------------------------------------------------

    #[inline]
    fn word(&self, target: usize, addr: SymAddr) -> &'w AtomicU64 {
        debug_assert!(target < self.n_pes(), "PE {target} out of range");
        self.world.heaps[target].word(addr)
    }

    /// Store a raw word into `target`'s instance of `addr`.
    #[inline]
    pub fn put_u64(&self, addr: SymAddr, target: usize, value: u64) {
        StatCells::bump(if target == self.id {
            &self.stats.local_puts
        } else {
            &self.stats.remote_puts
        });
        self.charge(target);
        self.word(target, addr).store(value, Ordering::Relaxed);
        if target != self.id {
            self.trace(EventKind::Put, target, addr, 8);
        }
    }

    /// Load a raw word from `target`'s instance of `addr`.
    #[inline]
    pub fn get_u64(&self, addr: SymAddr, target: usize) -> u64 {
        StatCells::bump(if target == self.id {
            &self.stats.local_gets
        } else {
            &self.stats.remote_gets
        });
        self.charge(target);
        let v = self.word(target, addr).load(Ordering::Relaxed);
        if target != self.id {
            self.trace(EventKind::Get, target, addr, 8);
        }
        v
    }

    /// Typed put: `i64`.
    #[inline]
    pub fn put_i64(&self, addr: SymAddr, target: usize, value: i64) {
        self.put_u64(addr, target, i64_to_word(value));
    }

    /// Typed get: `i64`.
    #[inline]
    pub fn get_i64(&self, addr: SymAddr, target: usize) -> i64 {
        word_to_i64(self.get_u64(addr, target))
    }

    /// Typed put: `f64` (bit pattern).
    #[inline]
    pub fn put_f64(&self, addr: SymAddr, target: usize, value: f64) {
        self.put_u64(addr, target, f64_to_word(value));
    }

    /// Typed get: `f64`.
    #[inline]
    pub fn get_f64(&self, addr: SymAddr, target: usize) -> f64 {
        word_to_f64(self.get_u64(addr, target))
    }

    /// Block put: contiguous words (one latency charge per call — block
    /// transfers pipeline on real interconnects).
    pub fn put_block(&self, addr: SymAddr, target: usize, values: &[u64]) {
        StatCells::add(&self.stats.block_put_words, values.len() as u64);
        self.charge(target);
        for (i, &v) in values.iter().enumerate() {
            self.word(target, addr.offset(i)).store(v, Ordering::Relaxed);
        }
        if target != self.id {
            self.trace(EventKind::BlockPut, target, addr, (values.len() * 8) as u32);
        }
    }

    /// Block get: contiguous words into `out`.
    pub fn get_block(&self, addr: SymAddr, target: usize, out: &mut [u64]) {
        StatCells::add(&self.stats.block_get_words, out.len() as u64);
        self.charge(target);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.word(target, addr.offset(i)).load(Ordering::Relaxed);
        }
        if target != self.id {
            self.trace(EventKind::BlockGet, target, addr, (out.len() * 8) as u32);
        }
    }

    // ------------------------------------------------------------------
    // Atomic memory operations (shmem_atomic_* analogs; SeqCst like
    // SHMEM AMOs, which are strongly ordered among themselves)
    // ------------------------------------------------------------------

    /// Atomic fetch-add on `target`'s word, returning the old value.
    #[inline]
    pub fn fetch_add_i64(&self, addr: SymAddr, target: usize, delta: i64) -> i64 {
        StatCells::bump(&self.stats.amos);
        self.charge(target);
        let old =
            word_to_i64(self.word(target, addr).fetch_add(i64_to_word(delta), Ordering::SeqCst));
        if target != self.id {
            self.trace(EventKind::Amo, target, addr, 8);
        }
        old
    }

    /// Atomic compare-and-swap; returns the previous value.
    #[inline]
    pub fn cswap_u64(&self, addr: SymAddr, target: usize, expected: u64, desired: u64) -> u64 {
        StatCells::bump(&self.stats.amos);
        self.charge(target);
        let old = match self.word(target, addr).compare_exchange(
            expected,
            desired,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(old) | Err(old) => old,
        };
        if target != self.id {
            self.trace(EventKind::Amo, target, addr, 8);
        }
        old
    }

    /// Atomic unconditional swap; returns the previous value.
    #[inline]
    pub fn swap_u64(&self, addr: SymAddr, target: usize, value: u64) -> u64 {
        StatCells::bump(&self.stats.amos);
        self.charge(target);
        let old = self.word(target, addr).swap(value, Ordering::SeqCst);
        if target != self.id {
            self.trace(EventKind::Amo, target, addr, 8);
        }
        old
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Collective barrier (`HUGZ` / `shmem_barrier_all`). Traced as a
    /// [`EventKind::BarrierEnter`]/[`EventKind::BarrierExit`] pair —
    /// the gap between the two timestamps is this PE's wait.
    pub fn barrier_all(&self) {
        self.trace(EventKind::BarrierEnter, self.id, SymAddr(0), 0);
        self.barrier_episode(true);
        self.trace(EventKind::BarrierExit, self.id, SymAddr(0), 0);
    }

    /// One barrier episode. `explicit` distinguishes user-visible
    /// `HUGZ` barriers (which cost [`VIRT_BARRIER_NS`] in virtual
    /// time) from internal fences like the collective-allocation
    /// barrier (which synchronize the virtual clocks but add nothing,
    /// so a replayed trace reproduces the virtual wall exactly).
    fn barrier_episode(&self, explicit: bool) {
        StatCells::bump(&self.stats.barriers);
        let virt = self.world.cfg.clock == ClockMode::Virtual;
        let parity = self.bar_parity.get() as usize;
        if virt {
            self.world.vclock_pub[parity][self.id].store(self.vclock.get(), Ordering::Release);
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        match self.world.cfg.barrier {
            BarrierKind::Centralized => {
                let mut sense = self.sense.get();
                self.world.central.wait(&mut sense, self.guard("HUGZ (barrier)"));
                self.sense.set(sense);
            }
            BarrierKind::Dissemination => {
                let mut gen = self.generation.get();
                let mut guard = self.guard("HUGZ (barrier)");
                self.world.dissem.wait(self.id, &mut gen, &mut guard);
                self.generation.set(gen);
            }
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        if virt {
            let mut sync = 0u64;
            for pe in 0..self.n_pes() {
                sync = sync.max(self.world.vclock_pub[parity][pe].load(Ordering::Acquire));
            }
            self.vclock.set(sync + if explicit { VIRT_BARRIER_NS } else { 0 });
            self.bar_parity.set(!self.bar_parity.get());
        }
    }

    /// Complete outstanding puts (`shmem_quiet`). With atomic words
    /// this is a fence.
    #[inline]
    pub fn quiet(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Spin until **this PE's** instance of `addr` satisfies
    /// `cmp value` (`shmem_wait_until` — point-to-point sync).
    pub fn wait_until(&self, addr: SymAddr, cmp: WaitCmp, value: i64) -> i64 {
        let mut guard = self.guard("WAIT UNTIL");
        loop {
            let cur = word_to_i64(self.word(self.id, addr).load(Ordering::Acquire));
            if cmp.test(cur, value) {
                self.trace(EventKind::Wait, self.id, addr, 0);
                return cur;
            }
            guard.tick();
        }
    }

    // ------------------------------------------------------------------
    // Global locks (shmem_set_lock / test / clear analogs)
    // ------------------------------------------------------------------

    fn lock_words(&self, addr: SymAddr, target: usize) -> LockWords<'w> {
        LockWords {
            owner: self.word(target, addr),
            next: self.word(target, addr.offset(1)),
            serving: self.word(target, addr.offset(2)),
        }
    }

    /// Blocking acquire of the lock at `target`'s instance of `addr`.
    pub fn lock(&self, addr: SymAddr, target: usize) {
        StatCells::bump(&self.stats.lock_acquires);
        self.charge(target);
        self.lock_words(addr, target).acquire(
            self.world.cfg.lock,
            self.id,
            self.guard("IM SRSLY MESIN WIF (lock)"),
        );
        self.trace(EventKind::LockAcquire, target, addr, 0);
    }

    /// Non-blocking acquire; true on success.
    pub fn try_lock(&self, addr: SymAddr, target: usize) -> bool {
        StatCells::bump(&self.stats.lock_tries);
        self.charge(target);
        let got = self.lock_words(addr, target).try_acquire(self.world.cfg.lock, self.id);
        self.trace(EventKind::LockTry, target, addr, got as u32);
        got
    }

    /// Release; panics if this PE does not hold the lock.
    pub fn unlock(&self, addr: SymAddr, target: usize) {
        StatCells::bump(&self.stats.lock_releases);
        self.charge(target);
        self.lock_words(addr, target).release(self.world.cfg.lock, self.id);
        self.trace(EventKind::LockRelease, target, addr, 0);
    }

    /// Is the lock held right now (diagnostic snapshot)?
    pub fn lock_is_held(&self, addr: SymAddr, target: usize) -> bool {
        self.lock_words(addr, target).is_held()
    }

    // ------------------------------------------------------------------
    // Collectives (used implicitly by the language backend)
    // ------------------------------------------------------------------

    /// Broadcast a word from `root` to every PE. Collective.
    pub fn broadcast_u64(&self, root: usize, value: u64) -> u64 {
        if self.id == root {
            self.world.coll[root].store(value, Ordering::Release);
        }
        self.barrier_all();
        let out = self.world.coll[root].load(Ordering::Acquire);
        self.barrier_all();
        out
    }

    /// All-reduce over one `i64` per PE. Collective.
    pub fn reduce_i64(&self, value: i64, op: ReduceOp) -> i64 {
        self.world.coll[self.id].store(i64_to_word(value), Ordering::Release);
        self.barrier_all();
        let mut acc = word_to_i64(self.world.coll[0].load(Ordering::Acquire));
        for pe in 1..self.n_pes() {
            let v = word_to_i64(self.world.coll[pe].load(Ordering::Acquire));
            acc = match op {
                ReduceOp::Sum => acc.wrapping_add(v),
                ReduceOp::Prod => acc.wrapping_mul(v),
                ReduceOp::Min => acc.min(v),
                ReduceOp::Max => acc.max(v),
            };
        }
        self.barrier_all();
        acc
    }

    /// All-reduce over one `f64` per PE. Collective.
    pub fn reduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        self.world.coll[self.id].store(f64_to_word(value), Ordering::Release);
        self.barrier_all();
        let mut acc = word_to_f64(self.world.coll[0].load(Ordering::Acquire));
        for pe in 1..self.n_pes() {
            let v = word_to_f64(self.world.coll[pe].load(Ordering::Acquire));
            acc = match op {
                ReduceOp::Sum => acc + v,
                ReduceOp::Prod => acc * v,
                ReduceOp::Min => acc.min(v),
                ReduceOp::Max => acc.max(v),
            };
        }
        self.barrier_all();
        acc
    }

    // ------------------------------------------------------------------
    // Randomness (WHATEVR / WHATEVAR; per-PE deterministic streams)
    // ------------------------------------------------------------------

    /// `WHATEVR`: uniform integer in `[0, 2^31)` (libc `rand()` analog).
    pub fn rand_i64(&self) -> i64 {
        self.rng.borrow_mut().gen_i64_below(1i64 << 31)
    }

    /// `WHATEVAR`: uniform float in `[0, 1)` (`randf()` analog).
    pub fn rand_f64(&self) -> f64 {
        self.rng.borrow_mut().gen_unit_f64()
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Snapshot of this PE's communication statistics (counts since
    /// the PE handle was created). Great for showing students the
    /// communication volume of their algorithm.
    pub fn stats(&self) -> CommStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> ShmemConfig {
        ShmemConfig::new(n).timeout(Duration::from_secs(10))
    }

    #[test]
    fn identities() {
        let r = run_spmd(cfg(4), |pe| (pe.id(), pe.n_pes())).unwrap();
        assert_eq!(r, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_pe_job() {
        let r = run_spmd(cfg(1), |pe| {
            let a = pe.shmalloc(4);
            pe.put_i64(a, 0, 7);
            pe.barrier_all();
            pe.get_i64(a, 0)
        })
        .unwrap();
        assert_eq!(r, vec![7]);
    }

    #[test]
    fn symmetric_alloc_agrees_across_pes() {
        let r = run_spmd(cfg(4), |pe| {
            let a = pe.shmalloc(10);
            let b = pe.shmalloc(3);
            (a, b)
        })
        .unwrap();
        for (a, b) in r {
            assert_eq!(a, SymAddr(0));
            assert_eq!(b, SymAddr(10));
        }
    }

    #[test]
    fn put_get_ring() {
        // Section VI.A shape: everyone puts to the right neighbour.
        let n = 8;
        let r = run_spmd(cfg(n), |pe| {
            let a = pe.shmalloc(1);
            let next = (pe.id() + 1) % pe.n_pes();
            pe.put_i64(a, next, pe.id() as i64 * 100);
            pe.barrier_all();
            pe.get_i64(a, pe.id())
        })
        .unwrap();
        for (me, got) in r.into_iter().enumerate() {
            let left = (me + n - 1) % n;
            assert_eq!(got, left as i64 * 100);
        }
    }

    #[test]
    fn figure2_symmetric_data_movement() {
        // Figure 2: UR b R MAH a; HUGZ; c R SUM OF a AN b.
        let n = 6;
        let r = run_spmd(cfg(n), |pe| {
            let a = pe.shmalloc(1);
            let b = pe.shmalloc(1);
            pe.put_i64(a, pe.id(), pe.id() as i64 + 1); // a = me+1
            pe.barrier_all();
            let k = (pe.id() + 1) % pe.n_pes();
            let my_a = pe.get_i64(a, pe.id());
            pe.put_i64(b, k, my_a); // UR b R MAH a
            pe.barrier_all(); // HUGZ
            pe.get_i64(a, pe.id()) + pe.get_i64(b, pe.id())
        })
        .unwrap();
        for (me, c) in r.into_iter().enumerate() {
            let left = (me + n - 1) % n;
            assert_eq!(c, (me as i64 + 1) + (left as i64 + 1));
        }
    }

    #[test]
    fn block_transfers() {
        let r = run_spmd(cfg(4), |pe| {
            let a = pe.shmalloc(32);
            let vals: Vec<u64> = (0..32).map(|i| (pe.id() as u64) << 32 | i).collect();
            pe.put_block(a, pe.id(), &vals);
            pe.barrier_all();
            let next = (pe.id() + 1) % pe.n_pes();
            let mut out = vec![0u64; 32];
            pe.get_block(a, next, &mut out);
            out
        })
        .unwrap();
        for (me, out) in r.into_iter().enumerate() {
            let next = (me + 1) % 4;
            for (i, w) in out.into_iter().enumerate() {
                assert_eq!(w, (next as u64) << 32 | i as u64);
            }
        }
    }

    #[test]
    fn amo_fetch_add_counts_correctly() {
        let n = 8;
        let iters = 1000;
        let r = run_spmd(cfg(n), |pe| {
            let a = pe.shmalloc(1);
            for _ in 0..iters {
                pe.fetch_add_i64(a, 0, 1);
            }
            pe.barrier_all();
            pe.get_i64(a, 0)
        })
        .unwrap();
        for v in r {
            assert_eq!(v, (n * iters) as i64);
        }
    }

    #[test]
    fn cswap_and_swap() {
        let r = run_spmd(cfg(2), |pe| {
            let a = pe.shmalloc(1);
            pe.barrier_all();
            if pe.id() == 0 {
                let old = pe.cswap_u64(a, 1, 0, 42);
                assert_eq!(old, 0);
                let old2 = pe.cswap_u64(a, 1, 0, 99); // fails: now 42
                assert_eq!(old2, 42);
            }
            pe.barrier_all();
            pe.get_u64(a, pe.id())
        })
        .unwrap();
        assert_eq!(r[1], 42);
        let r2 = run_spmd(cfg(2), |pe| {
            let a = pe.shmalloc(1);
            pe.put_u64(a, pe.id(), 5);
            pe.barrier_all();
            if pe.id() == 1 {
                assert_eq!(pe.swap_u64(a, 0, 7), 5);
            }
            pe.barrier_all();
            pe.get_u64(a, pe.id())
        })
        .unwrap();
        assert_eq!(r2[0], 7);
    }

    #[test]
    fn wait_until_point_to_point() {
        let r = run_spmd(cfg(2), |pe| {
            let flag = pe.shmalloc(1);
            if pe.id() == 0 {
                // Give PE 1 a moment to start waiting, then signal.
                std::thread::sleep(Duration::from_millis(10));
                pe.put_i64(flag, 1, 99);
                0
            } else {
                pe.wait_until(flag, WaitCmp::Eq, 99)
            }
        })
        .unwrap();
        assert_eq!(r[1], 99);
    }

    #[test]
    fn locks_protect_read_modify_write() {
        for kind in [LockKind::SpinCas, LockKind::Ticket] {
            let n = 8;
            let iters = 200;
            let r = run_spmd(cfg(n).lock(kind), |pe| {
                let lk = pe.shmalloc_lock();
                let x = pe.shmalloc(1);
                for _ in 0..iters {
                    pe.lock(lk, 0);
                    // Unprotected read-modify-write, safe only under
                    // the lock.
                    let v = pe.get_i64(x, 0);
                    pe.put_i64(x, 0, v + 1);
                    pe.unlock(lk, 0);
                }
                pe.barrier_all();
                pe.get_i64(x, 0)
            })
            .unwrap();
            for v in r {
                assert_eq!(v, (n * iters) as i64, "{kind:?} lost updates");
            }
        }
    }

    #[test]
    fn trylock_then_lock_pattern() {
        // The Section V pattern: trylock, fall back to blocking lock.
        let r = run_spmd(cfg(4), |pe| {
            let lk = pe.shmalloc_lock();
            let x = pe.shmalloc(1);
            for _ in 0..100 {
                if !pe.try_lock(lk, 0) {
                    pe.lock(lk, 0);
                }
                let v = pe.get_i64(x, 0);
                pe.put_i64(x, 0, v + 1);
                pe.unlock(lk, 0);
            }
            pe.barrier_all();
            pe.get_i64(x, 0)
        })
        .unwrap();
        assert_eq!(r[0], 400);
    }

    #[test]
    fn per_instance_locks_are_independent() {
        // Locking PE 0's instance does not block PE 1's instance.
        run_spmd(cfg(2), |pe| {
            let lk = pe.shmalloc_lock();
            pe.lock(lk, pe.id()); // everyone locks their own instance
            pe.barrier_all(); // both hold simultaneously: no deadlock
            pe.unlock(lk, pe.id());
        })
        .unwrap();
    }

    #[test]
    fn broadcast_from_each_root() {
        let r = run_spmd(cfg(4), |pe| {
            let mut got = Vec::new();
            for root in 0..pe.n_pes() {
                let v = pe.broadcast_u64(root, (root as u64 + 1) * 11);
                got.push(v);
            }
            got
        })
        .unwrap();
        for row in r {
            assert_eq!(row, vec![11, 22, 33, 44]);
        }
    }

    #[test]
    fn reductions() {
        let r = run_spmd(cfg(5), |pe| {
            let me = pe.id() as i64;
            (
                pe.reduce_i64(me, ReduceOp::Sum),
                pe.reduce_i64(me, ReduceOp::Min),
                pe.reduce_i64(me, ReduceOp::Max),
                pe.reduce_i64(me + 1, ReduceOp::Prod),
                pe.reduce_f64(0.5, ReduceOp::Sum),
            )
        })
        .unwrap();
        for (sum, min, max, prod, fsum) in r {
            assert_eq!(sum, 10);
            assert_eq!(min, 0);
            assert_eq!(max, 4);
            assert_eq!(prod, 120);
            assert!((fsum - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn dissemination_barrier_end_to_end() {
        let r = run_spmd(cfg(7).barrier(BarrierKind::Dissemination), |pe| {
            let a = pe.shmalloc(1);
            pe.put_i64(a, pe.id(), pe.id() as i64);
            pe.barrier_all();
            let mut sum = 0;
            for t in 0..pe.n_pes() {
                sum += pe.get_i64(a, t);
            }
            sum
        })
        .unwrap();
        for v in r {
            assert_eq!(v, 21);
        }
    }

    #[test]
    fn rand_is_deterministic_per_seed_and_pe() {
        let a = run_spmd(cfg(4).seed(42), |pe| (pe.rand_i64(), pe.rand_f64())).unwrap();
        let b = run_spmd(cfg(4).seed(42), |pe| (pe.rand_i64(), pe.rand_f64())).unwrap();
        let c = run_spmd(cfg(4).seed(43), |pe| (pe.rand_i64(), pe.rand_f64())).unwrap();
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seed must differ");
        // PEs get distinct streams.
        assert_ne!(a[0], a[1]);
        for (i, f) in a.iter().enumerate() {
            assert!(f.0 >= 0 && f.0 < (1 << 31), "WHATEVR out of range on PE {i}");
            assert!(f.1 >= 0.0 && f.1 < 1.0, "WHATEVAR out of range on PE {i}");
        }
    }

    #[test]
    fn failing_pe_reports_spmd_error() {
        let err = run_spmd(cfg(4), |pe| {
            if pe.id() == 2 {
                pe.fail("O NOES! [TEST] PE 2 HAZ A SAD".to_string());
            }
            pe.id()
        })
        .unwrap_err();
        assert_eq!(err.pe, 2);
        assert!(err.message.contains("HAZ A SAD"));
    }

    #[test]
    fn failing_pe_releases_barrier_waiters() {
        // PE 1 panics; PEs waiting in HUGZ must abort, not hang.
        let err = run_spmd(cfg(4).timeout(Duration::from_secs(20)), |pe| {
            if pe.id() == 1 {
                panic!("O NOES! EARLY EXIT");
            }
            pe.barrier_all(); // would deadlock without abort propagation
        })
        .unwrap_err();
        assert_eq!(err.pe, 1);
    }

    #[test]
    fn missing_barrier_participant_trips_watchdog() {
        let err = run_spmd(cfg(2).timeout(Duration::from_millis(200)), |pe| {
            if pe.id() == 0 {
                pe.barrier_all(); // PE 1 never joins
            }
        })
        .unwrap_err();
        assert!(
            err.message.contains("RUN0191") || err.message.contains("RUN0190"),
            "unexpected: {}",
            err.message
        );
    }

    #[test]
    fn alloc_mismatch_is_diagnosed() {
        let err = run_spmd(cfg(2).timeout(Duration::from_secs(5)), |pe| {
            if pe.id() == 0 {
                pe.shmalloc(4);
            } else {
                pe.shmalloc(8);
            }
        })
        .unwrap_err();
        assert!(err.message.contains("RUN0110"), "{}", err.message);
    }

    #[test]
    fn heap_exhaustion_is_diagnosed() {
        let err = run_spmd(cfg(2).heap_words(16).timeout(Duration::from_secs(5)), |pe| {
            pe.shmalloc(32);
        })
        .unwrap_err();
        assert!(err.message.contains("RUN0111"), "{}", err.message);
    }

    #[test]
    fn latency_model_slows_remote_access() {
        use std::time::Instant;
        let lat = LatencyModel::Uniform { remote_ns: 50_000 };
        let r = run_spmd(cfg(2).latency(lat), |pe| {
            let a = pe.shmalloc(1);
            pe.barrier_all();
            let other = 1 - pe.id();
            let t0 = Instant::now();
            for _ in 0..20 {
                pe.get_i64(a, other);
            }
            let remote = t0.elapsed();
            let t1 = Instant::now();
            for _ in 0..20 {
                pe.get_i64(a, pe.id());
            }
            let local = t1.elapsed();
            (local, remote)
        })
        .unwrap();
        for (local, remote) in r {
            assert!(remote > local, "remote ({remote:?}) should cost more than local ({local:?})");
            assert!(remote >= Duration::from_micros(20 * 50));
        }
    }

    #[test]
    fn tracing_records_remote_ops_and_explicit_barriers_only() {
        let traces = run_spmd(cfg(2).trace(true), |pe| {
            let a = pe.shmalloc(2); // internal barrier: must NOT be traced
            let other = 1 - pe.id();
            pe.put_i64(a, pe.id(), 7); // local: not traced
            pe.put_i64(a, other, 9); // remote put
            pe.barrier_all(); // explicit: enter+exit
            let _ = pe.get_i64(a.offset(1), other); // remote get
            pe.take_trace().expect("tracing enabled")
        })
        .unwrap();
        for (id, t) in traces.iter().enumerate() {
            let sig = t.signature();
            let peer = (1 - id) as u32;
            assert_eq!(
                sig,
                vec![
                    ('P', peer, 0, 8),
                    ('B', id as u32, 0, 0),
                    ('b', id as u32, 0, 0),
                    ('G', peer, 1, 8)
                ],
                "PE {id}"
            );
            assert_eq!(t.dropped, 0);
            // Wall timestamps are monotone per PE.
            let times: Vec<u64> = t.events.iter().map(|e| e.t_ns).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        }
    }

    #[test]
    fn trace_buffer_bound_drops_and_counts() {
        let traces = run_spmd(cfg(2).trace(true).trace_capacity(3), |pe| {
            let a = pe.shmalloc(1);
            let other = 1 - pe.id();
            for _ in 0..10 {
                pe.put_i64(a, other, 1);
            }
            pe.take_trace().unwrap()
        })
        .unwrap();
        for t in traces {
            assert_eq!(t.events.len(), 3);
            assert_eq!(t.dropped, 7);
        }
    }

    #[test]
    fn trace_stride_samples_pes_but_counts_drops() {
        let traces = run_spmd(cfg(4).trace(true).trace_stride(2), |pe| {
            let a = pe.shmalloc(1);
            let other = (pe.id() + 1) % pe.n_pes();
            pe.put_i64(a, other, 1);
            pe.take_trace().unwrap()
        })
        .unwrap();
        for (id, t) in traces.iter().enumerate() {
            if id % 2 == 0 {
                assert_eq!(t.events.len(), 1, "sampled PE {id} records its event");
                assert_eq!(t.dropped, 0);
            } else {
                assert!(t.events.is_empty(), "sampled-out PE {id} stores nothing");
                assert_eq!(t.dropped, 1, "…but still counts the event as dropped");
            }
        }
    }

    #[test]
    fn untraced_job_returns_no_trace() {
        let r = run_spmd(cfg(2), |pe| pe.take_trace()).unwrap();
        assert!(r.into_iter().all(|t| t.is_none()));
    }

    #[test]
    fn virtual_clock_accounts_instead_of_spinning() {
        use lol_trace::{VIRT_BARRIER_NS, VIRT_OP_NS};
        let lat = LatencyModel::Uniform { remote_ns: 1_000_000_000 }; // 1s per remote op!
        let t0 = std::time::Instant::now();
        let clocks = run_spmd(cfg(2).latency(lat).clock(ClockMode::Virtual), |pe| {
            let a = pe.shmalloc(1);
            let other = 1 - pe.id();
            for _ in 0..5 {
                pe.put_i64(a, other, 1);
            }
            pe.get_i64(a, pe.id()); // local: free in virtual time
            pe.barrier_all();
            pe.virtual_ns()
        })
        .unwrap();
        // 10 virtual seconds of modelled latency finished ~instantly.
        assert!(t0.elapsed() < Duration::from_secs(2), "virtual mode must not busy-wait");
        let expect = 5 * (1_000_000_000 + VIRT_OP_NS) + VIRT_BARRIER_NS;
        assert_eq!(clocks, vec![expect, expect], "barrier syncs both clocks to the max");
    }

    #[test]
    fn virtual_walls_are_deterministic_and_model_dependent() {
        let body = |pe: &Pe<'_>| {
            let a = pe.shmalloc(4);
            // Nearest-neighbour ring: cheap on a mesh, flat on Uniform.
            let next = (pe.id() + 1) % pe.n_pes();
            for i in 0..8 {
                pe.put_i64(a.offset(i % 4), next, i as i64);
            }
            pe.barrier_all();
            pe.virtual_ns()
        };
        let run = |lat: LatencyModel| {
            run_spmd(cfg(4).latency(lat).clock(ClockMode::Virtual), body).unwrap()
        };
        let mesh = LatencyModel::Mesh2D { width: 2, base_ns: 50, hop_ns: 11 };
        let flat = LatencyModel::Uniform { remote_ns: 1000 };
        assert_eq!(run(mesh), run(mesh), "virtual walls must reproduce exactly");
        assert_eq!(run(flat), run(flat));
        assert_ne!(run(mesh)[0], run(flat)[0], "models must order differently");
    }

    #[test]
    fn results_come_back_in_pe_order() {
        let r = run_spmd(cfg(16), |pe| pe.id()).unwrap();
        assert_eq!(r, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn oversubscribed_many_pes_still_complete() {
        // 64 PEs on a small host: yields in the spin guard must let
        // everyone through.
        let r = run_spmd(cfg(64), |pe| {
            let a = pe.shmalloc(1);
            pe.put_i64(a, pe.id(), 1);
            for _ in 0..5 {
                pe.barrier_all();
            }
            let mut sum = 0;
            for t in 0..pe.n_pes() {
                sum += pe.get_i64(a, t);
            }
            sum
        })
        .unwrap();
        for v in r {
            assert_eq!(v, 64);
        }
    }
}
