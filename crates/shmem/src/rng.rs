//! Per-PE deterministic random streams (offline stand-in for
//! `rand::rngs::SmallRng`).
//!
//! `WHATEVR` / `WHATEVAR` need a small, fast, seedable generator with
//! independent per-PE streams; statistical perfection is not required
//! (the paper's original uses libc `rand()`). This is xoshiro256**
//! seeded via SplitMix64 — the same construction SmallRng used — so
//! per-seed determinism and stream independence carry over.

/// A small, fast, seedable PRNG (xoshiro256**).
///
/// The offline `proptest` stand-in crate carries its own copy of this
/// algorithm (`proptest::TestRng`): the stand-ins stay dependency-free
/// on purpose. If you fix one generator, fix both.
#[derive(Clone, Debug)]
pub struct PeRng {
    s: [u64; 4],
}

impl PeRng {
    /// Expand a 64-bit seed into the full state (SplitMix64), as
    /// `SeedableRng::seed_from_u64` does.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        PeRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.s = [n0, n1, n2, n3];
        result
    }

    /// Uniform `i64` in `[0, bound)`; `bound` must be positive.
    pub fn gen_i64_below(&mut self, bound: i64) -> i64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as i64
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = PeRng::seed_from_u64(42);
        let mut b = PeRng::seed_from_u64(42);
        let mut c = PeRng::seed_from_u64(43);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = PeRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = r.gen_i64_below(1 << 31);
            assert!((0..(1i64 << 31)).contains(&i));
            let f = r.gen_unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn draws_are_not_constant() {
        let mut r = PeRng::seed_from_u64(1);
        let first = r.gen_i64_below(1 << 31);
        assert!((0..100).any(|_| r.gen_i64_below(1 << 31) != first));
    }
}
