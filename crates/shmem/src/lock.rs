//! Global exclusive locks over symmetric words.
//!
//! The paper attaches an *implicit* lock to every shared variable
//! declared `AN IM SHARIN IT`; `IM SRSLY MESIN WIF x` acquires it,
//! `IM MESIN WIF x` try-locks it, `DUN MESIN WIF x` releases it
//! (Table II). OpenSHMEM models such locks as symmetric objects any PE
//! may acquire; here the lock state lives in [`LOCK_WORDS`] consecutive
//! words of the owning PE's heap partition.
//!
//! Two algorithms (ablation A2 in DESIGN.md):
//!
//! * **SpinCas** — compare-and-swap on a single word with exponential
//!   backoff. Simple, unfair under contention.
//! * **Ticket** — FIFO ticket lock (next/serving counters). Fair, one
//!   extra word of state, slightly higher uncontended cost.
//!
//! Both record the owning PE so that releasing a lock you do not hold
//! is a diagnosed error (`RUN0180`) rather than silent corruption —
//! the mistakes students actually make are the ones worth catching.

use crate::barrier::SpinGuard;
use std::sync::atomic::{AtomicU64, Ordering};

/// Words of symmetric storage one lock occupies:
/// `[owner, next_ticket, now_serving]`.
pub const LOCK_WORDS: usize = 3;

/// Which lock algorithm the runtime uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LockKind {
    /// CAS spin lock with exponential backoff (default).
    #[default]
    SpinCas,
    /// FIFO ticket lock.
    Ticket,
}

impl LockKind {
    /// Every algorithm, in ablation-sweep order.
    pub const ALL: [LockKind; 2] = [LockKind::SpinCas, LockKind::Ticket];
}

/// Compact, round-trippable label (`cas` / `ticket`) — the token the
/// sweep grammar (`lock=cas,ticket`) and the C driver's
/// `LOL_STUB_LOCK` env protocol both use.
impl std::fmt::Display for LockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LockKind::SpinCas => "cas",
            LockKind::Ticket => "ticket",
        })
    }
}

/// Parse a lock-algorithm token: `cas` (or `spincas`) / `ticket`.
impl std::str::FromStr for LockKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim() {
            "cas" | "spincas" => Ok(LockKind::SpinCas),
            "ticket" => Ok(LockKind::Ticket),
            other => Err(format!("O NOES! lock IZ cas OR ticket, NOT {other}")),
        }
    }
}

/// The three atomic words backing one lock instance.
pub(crate) struct LockWords<'a> {
    pub owner: &'a AtomicU64,
    pub next: &'a AtomicU64,
    pub serving: &'a AtomicU64,
}

/// Owner-word encoding: 0 = free, `pe + 1` = held by `pe`.
#[inline]
fn encode(pe: usize) -> u64 {
    pe as u64 + 1
}

impl<'a> LockWords<'a> {
    /// Non-blocking acquire. Returns true on success.
    pub(crate) fn try_acquire(&self, kind: LockKind, me: usize) -> bool {
        match kind {
            LockKind::SpinCas => self
                .owner
                .compare_exchange(0, encode(me), Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
            LockKind::Ticket => {
                let t = self.serving.load(Ordering::Acquire);
                if self.next.compare_exchange(t, t + 1, Ordering::AcqRel, Ordering::Relaxed).is_ok()
                {
                    // next == serving == t: the queue was empty and we
                    // took ticket t, which is already being served.
                    self.owner.store(encode(me), Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Blocking acquire (with supervised spinning).
    pub(crate) fn acquire(&self, kind: LockKind, me: usize, mut guard: SpinGuard<'_>) {
        match kind {
            LockKind::SpinCas => {
                let mut backoff = 1u32;
                loop {
                    if self
                        .owner
                        .compare_exchange_weak(0, encode(me), Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        return;
                    }
                    // Exponential backoff: wait out the holder without
                    // hammering the line.
                    for _ in 0..backoff {
                        guard.tick();
                    }
                    backoff = (backoff * 2).min(64);
                }
            }
            LockKind::Ticket => {
                let t = self.next.fetch_add(1, Ordering::AcqRel);
                while self.serving.load(Ordering::Acquire) != t {
                    guard.tick();
                }
                self.owner.store(encode(me), Ordering::Relaxed);
            }
        }
    }

    /// Release. Panics if `me` does not hold the lock.
    pub(crate) fn release(&self, kind: LockKind, me: usize) {
        let holder = self.owner.load(Ordering::Relaxed);
        if holder != encode(me) {
            if holder == 0 {
                panic!("O NOES! [RUN0180] PE {me} DID DUN MESIN WIF BUT NOBODY WUZ MESIN WIF IT");
            }
            panic!(
                "O NOES! [RUN0181] PE {me} TRIED TO DUN MESIN WIF A LOCK HELD BY PE {}",
                holder - 1
            );
        }
        match kind {
            LockKind::SpinCas => self.owner.store(0, Ordering::Release),
            LockKind::Ticket => {
                self.owner.store(0, Ordering::Relaxed);
                self.serving.fetch_add(1, Ordering::Release);
            }
        }
    }

    /// Is the lock currently held (snapshot, for diagnostics)?
    pub(crate) fn is_held(&self) -> bool {
        self.owner.load(Ordering::Relaxed) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    const TIMEOUT: Duration = Duration::from_secs(10);

    struct Cell3 {
        w: [AtomicU64; 3],
    }

    impl Cell3 {
        fn new() -> Self {
            Cell3 { w: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)] }
        }
        fn words(&self) -> LockWords<'_> {
            LockWords { owner: &self.w[0], next: &self.w[1], serving: &self.w[2] }
        }
    }

    fn both_kinds() -> [LockKind; 2] {
        [LockKind::SpinCas, LockKind::Ticket]
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in LockKind::ALL {
            assert_eq!(kind.to_string().parse::<LockKind>().unwrap(), kind);
        }
        assert_eq!("spincas".parse::<LockKind>().unwrap(), LockKind::SpinCas);
        assert!("mcs".parse::<LockKind>().is_err());
    }

    #[test]
    fn uncontended_try_acquire_release() {
        for kind in both_kinds() {
            let c = Cell3::new();
            assert!(c.words().try_acquire(kind, 3), "{kind:?}");
            assert!(c.words().is_held());
            c.words().release(kind, 3);
            assert!(!c.words().is_held());
        }
    }

    #[test]
    fn try_acquire_fails_when_held() {
        for kind in both_kinds() {
            let c = Cell3::new();
            assert!(c.words().try_acquire(kind, 0));
            assert!(!c.words().try_acquire(kind, 1), "{kind:?}");
            c.words().release(kind, 0);
            assert!(c.words().try_acquire(kind, 1));
            c.words().release(kind, 1);
        }
    }

    #[test]
    #[should_panic(expected = "RUN0180")]
    fn release_unheld_panics() {
        let c = Cell3::new();
        c.words().release(LockKind::SpinCas, 0);
    }

    #[test]
    #[should_panic(expected = "RUN0181")]
    fn release_someone_elses_lock_panics() {
        let c = Cell3::new();
        assert!(c.words().try_acquire(LockKind::SpinCas, 0));
        c.words().release(LockKind::SpinCas, 1);
    }

    /// Mutual exclusion under real contention: N threads increment a
    /// plain (non-atomic-protected) counter pair; lost updates or torn
    /// invariants would be detected.
    fn hammer(kind: LockKind, n_threads: usize, iters: u64) {
        let c = Arc::new(Cell3::new());
        let abort = Arc::new(AtomicBool::new(false));
        // Two counters that must always move in lockstep under the lock.
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for me in 0..n_threads {
                let c = Arc::clone(&c);
                let abort = Arc::clone(&abort);
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..iters {
                        c.words().acquire(kind, me, SpinGuard::new(&abort, TIMEOUT, me, "lock"));
                        // Inside the critical section the two counters
                        // must be equal; interleaving would break this.
                        let va = a.load(Ordering::Relaxed);
                        let vb = b.load(Ordering::Relaxed);
                        assert_eq!(va, vb, "critical section violated ({kind:?})");
                        a.store(va + 1, Ordering::Relaxed);
                        std::hint::spin_loop();
                        b.store(vb + 1, Ordering::Relaxed);
                        c.words().release(kind, me);
                    }
                });
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), n_threads as u64 * iters);
        assert_eq!(b.load(Ordering::Relaxed), n_threads as u64 * iters);
    }

    #[test]
    fn spincas_mutual_exclusion() {
        hammer(LockKind::SpinCas, 8, 500);
    }

    #[test]
    fn ticket_mutual_exclusion() {
        hammer(LockKind::Ticket, 8, 500);
    }

    /// Ticket locks are FIFO: with two waiters queued, grant order
    /// matches ticket order.
    #[test]
    fn ticket_is_fair_in_order() {
        let c = Cell3::new();
        let w = c.words();
        // Simulate: holder takes ticket 0, two waiters take 1 and 2.
        assert!(w.try_acquire(LockKind::Ticket, 0));
        let t1 = w.next.fetch_add(1, Ordering::AcqRel);
        let t2 = w.next.fetch_add(1, Ordering::AcqRel);
        assert!(t1 < t2);
        w.release(LockKind::Ticket, 0);
        // Now serving == t1, not t2.
        assert_eq!(w.serving.load(Ordering::Acquire), t1);
    }
}
