//! The symmetric heap: one equal-sized region of atomic words per PE.
//!
//! A [`SymAddr`] is a *word offset* valid in every PE's region — the
//! defining property of symmetric allocation in the PGAS model
//! (Figure 1 of the paper): the same address names storage on every PE,
//! and pairing it with a PE id selects whose instance you touch.

use std::sync::atomic::AtomicU64;

/// A symmetric address: a word offset into every PE's heap region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymAddr(pub u32);

impl SymAddr {
    /// Address `n` words further along (array indexing).
    #[inline]
    pub fn offset(self, n: usize) -> SymAddr {
        SymAddr(self.0 + n as u32)
    }

    /// The raw word index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One PE's partition of the global address space.
pub(crate) struct Heap {
    words: Box<[AtomicU64]>,
}

impl Heap {
    pub(crate) fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        Heap { words: v.into_boxed_slice() }
    }

    /// The atomic word at `addr`. Panics (with a LOLCODE-flavoured
    /// message) on out-of-bounds access — the simulator's equivalent of
    /// a segfault on the device.
    #[inline]
    pub(crate) fn word(&self, addr: SymAddr) -> &AtomicU64 {
        match self.words.get(addr.index()) {
            Some(w) => w,
            None => panic!(
                "O NOES! [RUN0100] SYMMETRIC ADDRESS {} IZ OUTSIDE DA HEAP ({} WORDS)",
                addr.0,
                self.words.len()
            ),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.words.len()
    }
}

/// Conversions between the value types the language stores in symmetric
/// words. `f64` travels as raw bits; `i64` as two's complement.
#[inline]
pub fn f64_to_word(f: f64) -> u64 {
    f.to_bits()
}

/// Inverse of [`f64_to_word`].
#[inline]
pub fn word_to_f64(w: u64) -> f64 {
    f64::from_bits(w)
}

/// Two's-complement encoding of an `i64` in a heap word.
#[inline]
pub fn i64_to_word(i: i64) -> u64 {
    i as u64
}

/// Inverse of [`i64_to_word`].
#[inline]
pub fn word_to_i64(w: u64) -> i64 {
    w as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn sym_addr_offset() {
        let a = SymAddr(10);
        assert_eq!(a.offset(5), SymAddr(15));
        assert_eq!(a.offset(0), a);
        assert_eq!(a.index(), 10);
    }

    #[test]
    fn heap_starts_zeroed() {
        let h = Heap::new(16);
        assert_eq!(h.len(), 16);
        for i in 0..16 {
            assert_eq!(h.word(SymAddr(i)).load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn heap_store_load() {
        let h = Heap::new(4);
        h.word(SymAddr(2)).store(0xDEAD_BEEF, Ordering::Relaxed);
        assert_eq!(h.word(SymAddr(2)).load(Ordering::Relaxed), 0xDEAD_BEEF);
        assert_eq!(h.word(SymAddr(1)).load(Ordering::Relaxed), 0);
    }

    #[test]
    #[should_panic(expected = "OUTSIDE DA HEAP")]
    fn heap_oob_panics() {
        let h = Heap::new(4);
        h.word(SymAddr(4)).load(Ordering::Relaxed);
    }

    #[test]
    fn word_conversions_roundtrip() {
        for i in [0i64, 1, -1, i64::MAX, i64::MIN, 42] {
            assert_eq!(word_to_i64(i64_to_word(i)), i);
        }
        for f in [0.0f64, -0.0, 1.5, -2.25, f64::INFINITY, f64::MIN_POSITIVE] {
            assert_eq!(word_to_f64(f64_to_word(f)).to_bits(), f.to_bits());
        }
        // NaN payload is preserved bit-exactly.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        assert_eq!(word_to_f64(f64_to_word(nan)).to_bits(), nan.to_bits());
    }
}
