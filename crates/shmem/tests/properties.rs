//! Property tests for the PGAS substrate's primitives, via the in-tree
//! `proptest` stand-in: latency-model algebra (symmetry, zero-on-self),
//! `CommStats` fold associativity, and barrier round-trips under random
//! PE counts.

use lol_shmem::{run_spmd, BarrierKind, CommStats, LatencyModel, ShmemConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Every latency model the generators can produce (valid params only;
/// invalid ones are covered by the validation tests below).
fn gen_model() -> BoxedStrategy<LatencyModel> {
    prop_oneof![
        Just(LatencyModel::Off),
        (1u64..100_000).prop_map(|remote_ns| LatencyModel::Uniform { remote_ns }),
        (1usize..12, 0u64..500, 0u64..50).prop_map(|(width, base_ns, hop_ns)| {
            LatencyModel::Mesh2D { width, base_ns, hop_ns }
        }),
        (1usize..12, 1usize..12, 0u64..500, 0u64..50).prop_map(
            |(width, height, base_ns, hop_ns)| LatencyModel::Torus2D {
                width,
                height,
                base_ns,
                hop_ns
            }
        ),
    ]
}

fn gen_stats() -> BoxedStrategy<CommStats> {
    (
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()),
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()),
        (any::<u16>(), any::<u16>(), any::<u16>()),
    )
        .prop_map(|((lg, rg, lp, rp), (bg, bp, am, ba), (la, lt, lr))| CommStats {
            local_gets: lg as u64,
            remote_gets: rg as u64,
            local_puts: lp as u64,
            remote_puts: rp as u64,
            block_get_words: bg as u64,
            block_put_words: bp as u64,
            amos: am as u64,
            barriers: ba as u64,
            lock_acquires: la as u64,
            lock_tries: lt as u64,
            lock_releases: lr as u64,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `delay(a, b) == delay(b, a)` for every model: all modelled
    /// interconnects are undirected.
    #[test]
    fn delay_is_symmetric(m in gen_model(), a in 0usize..256, b in 0usize..256) {
        prop_assert_eq!(m.delay_ns(a, b), m.delay_ns(b, a), "{:?} {} {}", m, a, b);
    }

    /// A PE talking to itself is always free.
    #[test]
    fn delay_is_zero_on_self(m in gen_model(), a in 0usize..256) {
        prop_assert_eq!(m.delay_ns(a, a), 0, "{:?} {}", m, a);
    }

    /// Remote access under a validated model never underflows/panics
    /// and `Off` is always free.
    #[test]
    fn delay_is_total_and_off_is_free(m in gen_model(), a in 0usize..256, b in 0usize..256) {
        m.validate().unwrap();
        let d = m.delay_ns(a, b);
        if matches!(m, LatencyModel::Off) {
            prop_assert_eq!(d, 0);
        }
    }

    /// Torus wraparound can only shorten paths relative to the same
    /// mesh, never lengthen them.
    #[test]
    fn torus_never_costs_more_than_mesh(
        width in 1usize..10,
        height in 1usize..10,
        hop_ns in 1u64..40,
        a in 0usize..100,
        b in 0usize..100,
    ) {
        let mesh = LatencyModel::Mesh2D { width, base_ns: 10, hop_ns };
        let torus = LatencyModel::Torus2D { width, height, base_ns: 10, hop_ns };
        // Compare only PEs whose row index agrees between the two
        // layouts (the torus wraps rows modulo `height`).
        if (a / width) < height && (b / width) < height {
            prop_assert!(torus.delay_ns(a, b) <= mesh.delay_ns(a, b));
        }
    }

    /// CommStats folding is associative and commutative, with the
    /// default value as identity — so job-wide totals don't depend on
    /// the order PEs are folded in.
    #[test]
    fn stats_fold_is_associative(a in gen_stats(), b in gen_stats(), c in gen_stats()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + CommStats::default(), a);
        // `Sum` over any ordering agrees with pairwise `+`.
        let s1: CommStats = [a, b, c].iter().sum();
        let s2: CommStats = [c, a, b].iter().sum();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(s1, a + b + c);
    }
}

proptest! {
    // Each case spins up a real SPMD job; keep the count tame.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Barrier round-trip under random PE counts and both algorithms:
    /// every PE observes every other PE's pre-barrier write after each
    /// episode, and per-PE barrier counts agree exactly.
    #[test]
    fn barrier_round_trips_under_random_pe_counts(
        n in 1usize..17,
        episodes in 1u64..4,
        dissemination in any::<bool>(),
    ) {
        let kind = if dissemination { BarrierKind::Dissemination } else { BarrierKind::Centralized };
        let cfg = ShmemConfig::new(n).barrier(kind).timeout(Duration::from_secs(20));
        let stats = run_spmd(cfg, |pe| {
            let slot = pe.shmalloc(1);
            for round in 1..=episodes {
                pe.put_i64(slot, pe.id(), round as i64);
                pe.barrier_all();
                for other in 0..pe.n_pes() {
                    let seen = pe.get_i64(slot, other);
                    assert!(
                        seen >= round as i64,
                        "PE {} saw PE {other} at round {seen} < {round}",
                        pe.id()
                    );
                }
                pe.barrier_all();
            }
            pe.stats()
        })
        .unwrap();
        // shmalloc adds one implicit barrier; then 2 per episode.
        let want = 1 + 2 * episodes;
        for (id, s) in stats.iter().enumerate() {
            prop_assert_eq!(s.barriers, want, "PE {} barrier count ({:?})", id, kind);
        }
    }
}

#[test]
fn invalid_latency_model_fails_job_construction() {
    let cfg = ShmemConfig::new(2).latency(LatencyModel::Mesh2D { width: 0, base_ns: 1, hop_ns: 1 });
    let err = cfg.validate().unwrap_err();
    assert!(err.contains("RUN0120"), "{err}");
    // World::new enforces the same thing with a panic.
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = lol_shmem::World::new(cfg);
    }))
    .unwrap_err();
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("RUN0120"), "{msg}");
}
