//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds in environments without network access, so the
//! real criterion crate cannot be fetched. This crate implements the
//! exact API subset the `lol-bench` benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! mean-of-samples measurement loop instead of criterion's statistical
//! machinery. Output is one line per benchmark:
//!
//! ```text
//! group/name  mean 12.345 µs  (30 samples)  42.0 MiB/s
//! ```
//!
//! Passing `--test` (as `cargo test --benches` does) runs every
//! benchmark body exactly once, as a smoke test.

use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter,
/// rendered as `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("put", 64)` renders as `put/64`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// The timing loop driver handed to each benchmark closure.
pub struct Bencher {
    /// Measured mean seconds per iteration (filled in by `iter`).
    mean_secs: f64,
    samples: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean wall time.
    ///
    /// Protocol: one untimed warm-up call, then up to `sample_size`
    /// timed samples or until the measurement-time budget is spent,
    /// whichever comes first. In `--test` mode the routine runs once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.mean_secs = 0.0;
            return;
        }
        std::hint::black_box(routine()); // warm-up
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut total = Duration::ZERO;
        let mut n = 0usize;
        while n < self.samples && (n == 0 || start.elapsed() < budget) {
            let t = Instant::now();
            std::hint::black_box(routine());
            total += t.elapsed();
            n += 1;
        }
        self.mean_secs = total.as_secs_f64() / n as f64;
        self.samples = n;
    }

    /// Run `routine(iters)`, which performs `iters` iterations and
    /// returns the elapsed time it measured itself.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine(1));
            self.mean_secs = 0.0;
            return;
        }
        // Calibrate: pick an iteration count that fills roughly one
        // sample's share of the measurement budget.
        let d0 = routine(1).max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_secs_f64() / self.samples.max(1) as f64;
        let iters = ((per_sample / d0.as_secs_f64()).clamp(1.0, 1e6)) as u64;
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        let mut n = 0usize;
        while n < self.samples && (n == 0 || start.elapsed() < budget) {
            total += routine(iters);
            total_iters += iters;
            n += 1;
        }
        self.mean_secs = total.as_secs_f64() / total_iters as f64;
        self.samples = n;
    }
}

/// A named group of benchmarks sharing sample/time/throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to aim for.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget for one benchmark's samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time `f`.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_secs: 0.0,
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        self.report(&id.into_benchmark_id(), &b);
        self
    }

    /// Time `f` with a borrowed input value.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_secs: 0.0,
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b, input);
        self.report(&id.into_benchmark_id(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        if self.criterion.test_mode {
            println!("{}/{id}: ok (test mode)", self.name);
            return;
        }
        let mut line = format!(
            "{}/{id}  mean {}  ({} samples)",
            self.name,
            format_secs(b.mean_secs),
            b.samples
        );
        if let Some(tp) = self.throughput {
            let (per_unit, label) = match tp {
                Throughput::Bytes(n) => (n as f64 / (1 << 20) as f64, "MiB/s"),
                Throughput::BytesDecimal(n) => (n as f64 / 1e6, "MB/s"),
                Throughput::Elements(n) => (n as f64 / 1e6, "Melem/s"),
            };
            if b.mean_secs > 0.0 {
                line.push_str(&format!("  {:.1} {label}", per_unit / b.mean_secs));
            }
        }
        println!("{line}");
    }

    /// End the group (parity with criterion; reporting is per-bench).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Parity shim for criterion's CLI integration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            criterion: self,
        }
    }

    /// Time a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declare a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export for benches written against `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("t");
        g.sample_size(3).measurement_time(Duration::from_millis(10));
        let mut runs = 0;
        g.bench_function("noop", |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        assert!(runs >= 2, "warm-up + at least one sample, got {runs}");
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("put", 64).into_benchmark_id(), "put/64");
        assert_eq!(BenchmarkId::from_parameter(8).into_benchmark_id(), "8");
    }
}
