//! End-to-end tests of the shipped binaries: boot the real `lold`
//! executable, talk to it over a real socket, verify `lolrun --json`
//! prints the byte-identical stable report the service returns, and
//! smoke the `lold-bench` harness.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use lol_serve::{client, json};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boot `lold` on an ephemeral port and parse the readiness line.
    fn boot(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_lold"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lold");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("readiness line");
        let addr = line
            .trim()
            .strip_prefix("lold listening on http://")
            .unwrap_or_else(|| panic!("unexpected readiness line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    /// `POST /shutdown`, then reap the process and return its status.
    fn shutdown(mut self) -> std::process::ExitStatus {
        let resp = client::post(&self.addr, "/shutdown", "").expect("shutdown roundtrip");
        assert_eq!(resp.status, 200);
        self.child.wait().expect("lold exit status")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The daemon boots, serves /healthz, and `POST /shutdown` drains to a
/// clean exit code 0.
#[test]
fn lold_boots_serves_and_shuts_down_cleanly() {
    let daemon = Daemon::boot(&["--workers", "2"]);
    let health = client::get(&daemon.addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let parsed = json::parse(&health.text()).unwrap();
    assert_eq!(parsed.get("ok").and_then(json::Json::as_bool), Some(true));
    assert_eq!(parsed.get("workers").and_then(json::Json::as_u64), Some(2));
    let status = daemon.shutdown();
    assert!(status.success(), "lold must exit 0 after graceful drain, got {status:?}");
}

/// `lolrun --json` stdout (sans trailing newline) is byte-identical to
/// the body the service returns from `POST /run` for the same program
/// and config — the two front doors share one renderer.
#[test]
fn lolrun_json_matches_served_run_body() {
    let dir = std::env::temp_dir().join(format!("lold-bin-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("hello.lol");
    std::fs::write(&program, lolcode::corpus::HELLO_PARALLEL).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "3", "--backend", "vm", "--clock", "virtual", "--json"])
        .arg(&program)
        .output()
        .expect("run lolrun");
    assert!(out.status.success(), "lolrun failed: {}", String::from_utf8_lossy(&out.stderr));
    let cli_body = String::from_utf8(out.stdout).unwrap();

    let daemon = Daemon::boot(&[]);
    let wire = format!(
        "{{\"source\": \"{}\", \"backend\": \"vm\", \"pes\": 3, \"clock\": \"virtual\"}}",
        json::escape(lolcode::corpus::HELLO_PARALLEL)
    );
    let resp = client::post(&daemon.addr, "/run", &wire).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        cli_body.trim_end_matches('\n'),
        resp.text(),
        "lolrun --json and POST /run must emit identical bytes"
    );
    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `lold-bench` with no `--addr` boots an in-process server, drives it,
/// and emits the JSON consumed by the perf-regression gate.
#[test]
fn lold_bench_smoke() {
    let out = Command::new(env!("CARGO_BIN_EXE_lold-bench"))
        .args(["--clients", "2", "--requests", "5", "--backend", "sim", "--pes", "4"])
        .output()
        .expect("run lold-bench");
    assert!(out.status.success(), "lold-bench failed: {}", String::from_utf8_lossy(&out.stderr));
    let report = json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(report.get("clients").and_then(json::Json::as_u64), Some(2));
    assert_eq!(report.get("total").and_then(json::Json::as_u64), Some(10));
    assert_eq!(report.get("ok").and_then(json::Json::as_u64), Some(10));
    assert_eq!(report.get("errors").and_then(json::Json::as_u64), Some(0));
    for key in ["rps", "p50_ns", "p99_ns", "max_ns", "wall_ns"] {
        assert!(report.get(key).is_some(), "bench report missing {key}");
    }
}

/// Quota flags reach the admission layer: a daemon booted with
/// `--max-pes 4` rejects a 64-PE run with the structured code.
#[test]
fn lold_quota_flags_are_live() {
    let daemon = Daemon::boot(&["--max-pes", "4"]);
    let wire = format!(
        "{{\"source\": \"{}\", \"pes\": 64}}",
        json::escape(lolcode::corpus::HELLO_PARALLEL)
    );
    let resp = client::post(&daemon.addr, "/run", &wire).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.text());
    assert!(resp.text().contains("SRV0201"), "{}", resp.text());
    daemon.shutdown();
}
