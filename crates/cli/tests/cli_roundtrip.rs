//! Experiment VI.E — the command-line workflow:
//! `lcc code.lol -o out.c` and `lolrun -np N code.lol`.

use std::io::Write;
use std::process::{Command, Stdio};

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lolcli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p
}

const HELLO: &str = "HAI 1.2\nVISIBLE \"HAI ITZ \" ME \" OF \" MAH FRENZ\nKTHXBYE\n";

#[test]
fn lolrun_executes_on_n_pes() {
    let prog = write_temp("hello.lol", HELLO);
    let out =
        Command::new(env!("CARGO_BIN_EXE_lolrun")).args(["-np", "3"]).arg(&prog).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "HAI ITZ 0 OF 3\nHAI ITZ 1 OF 3\nHAI ITZ 2 OF 3\n");
}

#[test]
fn lolrun_vm_backend_and_tagging() {
    let prog = write_temp("hello2.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "2", "--backend", "vm", "--tag"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "[PE 0] HAI ITZ 0 OF 2\n[PE 1] HAI ITZ 1 OF 2\n");
}

#[test]
fn lolrun_stats_prints_per_pe_comm_stats_on_stderr() {
    let prog = write_temp("stats.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "2", "--stats"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Program output stays clean on stdout...
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "HAI ITZ 0 OF 2\nHAI ITZ 1 OF 2\n");
    // ...stats land on stderr, one line per PE plus job totals.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Interp stats: 2 PEs, wall"), "{stderr}");
    assert!(stderr.contains("[PE 0]"), "{stderr}");
    assert!(stderr.contains("[PE 1]"), "{stderr}");
    assert!(stderr.contains("[job]"), "{stderr}");
}

#[test]
fn lolrun_backend_both_runs_both_engines_and_agrees() {
    let prog = write_temp("both.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "3", "--backend", "both"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Output printed once, not twice.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "HAI ITZ 0 OF 3\nHAI ITZ 1 OF 3\nHAI ITZ 2 OF 3\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("AGREE ON ALL 3 PEs"), "{stderr}");
}

#[test]
fn lolrun_backend_both_rejects_interp_only_programs() {
    // SRS runs on the interpreter but cannot lower to bytecode, so
    // `--backend both` must fail loudly rather than silently compare
    // one engine against nothing.
    let prog = write_temp("srs.lol", "HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE\n");
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--backend", "both"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("VMC0001"), "{stderr}");
}

#[test]
fn lolrun_rejects_bad_flag_values_with_usage() {
    let prog = write_temp("hello3.lol", HELLO);
    for (flag, bad) in
        [("--backend", "turbo"), ("--latency", "warp"), ("-np", "zero"), ("--seed", "cat")]
    {
        let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
            .args([flag, bad])
            .arg(&prog)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag} {bad} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("O NOES!"), "{stderr}");
        assert!(stderr.contains(bad), "error should echo the bad value: {stderr}");
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}

#[test]
fn lolrun_reports_errors_lolcode_style() {
    let prog = write_temp("bad.lol", "HAI 1.2\nVISIBLE ghost\nKTHXBYE\n");
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun")).arg(&prog).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("O NOES!"), "{stderr}");
    assert!(stderr.contains("SEM0001"), "{stderr}");
}

#[test]
fn lolrun_pipes_stdin_to_gimmeh() {
    let prog =
        write_temp("echo.lol", "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE \"GOT \" x\nKTHXBYE\n");
    let mut child = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "1"])
        .arg(&prog)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"CHEEZ\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8(out.stdout).unwrap(), "GOT CHEEZ\n");
}

#[test]
fn lcc_emits_c_to_stdout_and_file() {
    let prog = write_temp("tr.lol", "HAI 1.2\nHUGZ\nVISIBLE ME\nKTHXBYE\n");
    // stdout mode
    let out = Command::new(env!("CARGO_BIN_EXE_lcc")).arg(&prog).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = String::from_utf8(out.stdout).unwrap();
    assert!(c.contains("shmem_barrier_all();"));
    // -o file mode with --stub
    let c_path = prog.with_file_name("tr.c");
    let out = Command::new(env!("CARGO_BIN_EXE_lcc"))
        .arg(&prog)
        .arg("-o")
        .arg(&c_path)
        .arg("--stub")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(c_path.exists());
    assert!(c_path.with_file_name("shmem.h").exists(), "--stub writes shmem.h");
}

#[test]
fn lcc_full_paper_workflow_compiles_with_cc() {
    // Section VI.E end-to-end: lcc -> cc -> run (np=1 stub).
    let prog = write_temp(
        "work.lol",
        "HAI 1.2\nI HAS A x ITZ SRSLY A NUMBR AN ITZ 40\nx R SUM OF x AN 2\nVISIBLE x\nKTHXBYE\n",
    );
    let c_path = prog.with_file_name("work.c");
    let status = Command::new(env!("CARGO_BIN_EXE_lcc"))
        .arg(&prog)
        .arg("-o")
        .arg(&c_path)
        .arg("--stub")
        .status()
        .unwrap();
    assert!(status.success());
    let bin = prog.with_file_name("work.x");
    let cc = Command::new("cc")
        .arg("-std=c99")
        .arg("-I")
        .arg(c_path.parent().unwrap())
        .arg(&c_path)
        .arg("-lm")
        .arg("-o")
        .arg(&bin)
        .output()
        .unwrap();
    assert!(cc.status.success(), "{}", String::from_utf8_lossy(&cc.stderr));
    let run = Command::new(&bin).output().unwrap();
    assert!(run.status.success());
    assert_eq!(String::from_utf8(run.stdout).unwrap(), "42\n");
}

#[test]
fn lcc_check_mode() {
    let prog = write_temp("chk.lol", "HAI 1.2\nWIN, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE\n");
    let out = Command::new(env!("CARGO_BIN_EXE_lcc")).arg(&prog).arg("--check").output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SEM0012"), "teaching lint shown: {stderr}");
    assert!(stderr.contains("IZ GOOD"));
}

#[test]
fn usage_on_missing_args() {
    for bin in [env!("CARGO_BIN_EXE_lcc"), env!("CARGO_BIN_EXE_lolrun")] {
        let out = Command::new(bin).output().unwrap();
        assert!(!out.status.success());
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}
