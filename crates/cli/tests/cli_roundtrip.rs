//! Experiment VI.E — the command-line workflow:
//! `lcc code.lol -o out.c` and `lolrun -np N code.lol`.

use std::io::Write;
use std::process::{Command, Stdio};

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lolcli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p
}

const HELLO: &str = "HAI 1.2\nVISIBLE \"HAI ITZ \" ME \" OF \" MAH FRENZ\nKTHXBYE\n";

#[test]
fn lolrun_executes_on_n_pes() {
    let prog = write_temp("hello.lol", HELLO);
    let out =
        Command::new(env!("CARGO_BIN_EXE_lolrun")).args(["-np", "3"]).arg(&prog).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "HAI ITZ 0 OF 3\nHAI ITZ 1 OF 3\nHAI ITZ 2 OF 3\n");
}

#[test]
fn lolrun_vm_backend_and_tagging() {
    let prog = write_temp("hello2.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "2", "--backend", "vm", "--tag"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "[PE 0] HAI ITZ 0 OF 2\n[PE 1] HAI ITZ 1 OF 2\n");
}

#[test]
fn lolrun_stats_prints_per_pe_comm_stats_on_stderr() {
    let prog = write_temp("stats.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "2", "--stats"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Program output stays clean on stdout...
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "HAI ITZ 0 OF 2\nHAI ITZ 1 OF 2\n");
    // ...stats land on stderr, one line per PE plus job totals.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Interp stats: 2 PEs, wall"), "{stderr}");
    assert!(stderr.contains("[PE 0]"), "{stderr}");
    assert!(stderr.contains("[PE 1]"), "{stderr}");
    assert!(stderr.contains("[job]"), "{stderr}");
}

#[test]
fn lolrun_backend_both_is_deprecated_and_forwards_to_a_sweep() {
    let prog = write_temp("both.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "3", "--backend", "both"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DEPRECATED"), "{stderr}");
    assert!(stderr.contains("backend=interp,vm"), "{stderr}");
    // The forwarded sweep runs both engines at the requested PE count
    // and prints the scaling report, not raw program output.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("x-interp"), "{stdout}");
    assert!(stdout.contains("2 configs, 2 ok"), "{stdout}");
    assert!(stdout.contains("interp") && stdout.contains("vm"), "{stdout}");
}

#[test]
fn lolrun_backend_both_rejects_interp_only_programs() {
    // SRS runs on the interpreter but cannot lower to bytecode, so the
    // forwarded sweep must fail loudly (FAILED vm entry) rather than
    // silently compare one engine against nothing.
    let prog = write_temp("srs.lol", "HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE\n");
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--backend", "both"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VMC0001"), "{stdout}");
    assert!(stdout.contains("FAILED"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("HAZ A SAD"), "{stderr}");
}

#[test]
fn lolrun_c_backend_runs_or_reports_unsupported() {
    // `--backend c` is the paper's lcc path as a first-class engine:
    // with a system C compiler it must produce the same per-PE output
    // as the other engines; without one it must say so clearly.
    let prog = write_temp("cback.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "3", "--backend", "c"])
        .arg(&prog)
        .output()
        .unwrap();
    if out.status.success() {
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert_eq!(stdout, "HAI ITZ 0 OF 3\nHAI ITZ 1 OF 3\nHAI ITZ 2 OF 3\n");
    } else {
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("NO C COMPILER"), "{stderr}");
    }
}

#[test]
fn lolrun_three_backend_sweep_reports_all_engines() {
    // The blessed replacement for `--backend both`, now covering all
    // three of the paper's execution paths in one matrix.
    let prog = write_temp("sweep3.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--sweep", "pes=1,2;backend=interp,vm,c", "--json"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"configs\": 6"), "{stdout}");
    for backend in ["interp", "vm", "c"] {
        assert!(stdout.contains(&format!("\"backend\": \"{backend}\"")), "{stdout}");
    }
    assert!(stdout.contains("\"vs_interp\""), "{stdout}");
    // Either the C engine ran (ok) or it is flagged unsupported —
    // never a hard failure.
    let c_ran = !stdout.contains("\"unsupported\": true");
    if c_ran {
        assert!(!stdout.contains("\"ok\": false"), "{stdout}");
    }
}

#[test]
fn lolrun_json_lines_streams_one_record_per_config() {
    let prog = write_temp("jsonl.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--sweep", "pes=1..3", "--json-lines"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "3 entry records + 1 summary: {stdout}");
    for line in &lines[..3] {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"index\":"), "{line}");
        assert!(line.contains("\"output_hash\""), "{line}");
    }
    assert!(lines[3].contains("\"summary\": true"), "{stdout}");
    assert!(lines[3].contains("\"ok\": 3"), "{stdout}");
    // --json and --json-lines are mutually exclusive.
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--sweep", "pes=1", "--json", "--json-lines"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("NOT BOTH"));
}

#[test]
fn lolrun_rejects_bad_flag_values_with_usage() {
    let prog = write_temp("hello3.lol", HELLO);
    for (flag, bad) in
        [("--backend", "turbo"), ("--latency", "warp"), ("-np", "zero"), ("--seed", "cat")]
    {
        let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
            .args([flag, bad])
            .arg(&prog)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag} {bad} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("O NOES!"), "{stderr}");
        assert!(stderr.contains(bad), "error should echo the bad value: {stderr}");
        assert!(stderr.contains("usage:"), "{stderr}");
    }
}

#[test]
fn lolrun_sweep_prints_scaling_table() {
    let prog = write_temp("sweep.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--sweep", "pes=1..4;seeds=2", "--jobs", "2"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("backend"), "{stdout}");
    assert!(stdout.contains("speedup"), "{stdout}");
    assert!(stdout.contains("8 configs, 8 ok"), "{stdout}");
}

#[test]
fn lolrun_sweep_json_is_machine_readable() {
    let prog = write_temp("sweepj.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--sweep", "pes=1,2;latency=off,torus:2x1", "--json"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"configs\": 4"), "{stdout}");
    assert!(stdout.contains("\"latency\": \"torus:2x1:50:11\""), "{stdout}");
    assert!(stdout.contains("\"output_hash\""), "{stdout}");
}

#[test]
fn lolrun_sweep_spec_backend_clause_beats_backend_both_flag() {
    // `--backend both` only fills the axis when the spec leaves it
    // unset; an explicit backend= clause wins.
    let prog = write_temp("sweepb.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--backend", "both", "--sweep", "backend=vm;pes=1,2", "--json"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"configs\": 2"), "{stdout}");
    assert!(stdout.contains("\"backend\": \"vm\""), "{stdout}");
    assert!(!stdout.contains("\"backend\": \"interp\""), "{stdout}");
}

#[test]
fn lolrun_jobs_and_json_lines_require_sweep() {
    let prog = write_temp("nosweep.lol", HELLO);
    for flags in [vec!["--jobs", "2"], vec!["--json-lines"]] {
        let out =
            Command::new(env!("CARGO_BIN_EXE_lolrun")).args(&flags).arg(&prog).output().unwrap();
        assert!(!out.status.success(), "{flags:?} without --sweep should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("ONLY MEAN SOMETHING WIF --sweep"), "{stderr}");
    }
}

#[test]
fn lolrun_json_works_on_single_runs() {
    // --json on a plain run prints the stable run-report body — the
    // same bytes the lold service returns from POST /run (pinned
    // byte-for-byte in tests/lold_bin.rs).
    let prog = write_temp("singlejson.lol", HELLO);
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "2", "--json"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"backend\": "), "{stdout}");
    assert!(stdout.contains("\"ok\": true"), "{stdout}");
    assert!(stdout.contains("\"outputs\": ["), "{stdout}");
}

#[test]
fn lolrun_stats_and_tag_are_rejected_with_sweep() {
    // Single-run presentation flags don't apply to a sweep report;
    // reject loudly instead of silently ignoring the request.
    let prog = write_temp("sweepstats.lol", HELLO);
    for flag in ["--stats", "--tag"] {
        let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
            .args(["--sweep", "pes=1,2", flag])
            .arg(&prog)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag} with --sweep should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("DONT WORK WIF --sweep"), "{stderr}");
    }
}

#[test]
fn lolrun_sweep_rejects_absurd_matrices_fast() {
    let prog = write_temp("sweephuge.lol", HELLO);
    let t0 = std::time::Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["--sweep", "pes=1..4000000000"])
        .arg(&prog)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("O NOES!"));
    assert!(t0.elapsed() < std::time::Duration::from_secs(5), "rejection must be instant");
}

#[test]
fn lolrun_sweep_rejects_bad_spec_and_zero_width_mesh() {
    let prog = write_temp("sweepbad.lol", HELLO);
    for spec in ["pes=wat", "latency=mesh:0", "warp=9"] {
        let out = Command::new(env!("CARGO_BIN_EXE_lolrun"))
            .args(["--sweep", spec])
            .arg(&prog)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{spec} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("O NOES!"), "{stderr}");
    }
}

#[test]
fn lolrun_reports_errors_lolcode_style() {
    let prog = write_temp("bad.lol", "HAI 1.2\nVISIBLE ghost\nKTHXBYE\n");
    let out = Command::new(env!("CARGO_BIN_EXE_lolrun")).arg(&prog).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("O NOES!"), "{stderr}");
    assert!(stderr.contains("SEM0001"), "{stderr}");
}

#[test]
fn lolrun_pipes_stdin_to_gimmeh() {
    let prog =
        write_temp("echo.lol", "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE \"GOT \" x\nKTHXBYE\n");
    let mut child = Command::new(env!("CARGO_BIN_EXE_lolrun"))
        .args(["-np", "1"])
        .arg(&prog)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"CHEEZ\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8(out.stdout).unwrap(), "GOT CHEEZ\n");
}

#[test]
fn lcc_emits_c_to_stdout_and_file() {
    let prog = write_temp("tr.lol", "HAI 1.2\nHUGZ\nVISIBLE ME\nKTHXBYE\n");
    // stdout mode
    let out = Command::new(env!("CARGO_BIN_EXE_lcc")).arg(&prog).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let c = String::from_utf8(out.stdout).unwrap();
    assert!(c.contains("shmem_barrier_all();"));
    // -o file mode with --stub
    let c_path = prog.with_file_name("tr.c");
    let out = Command::new(env!("CARGO_BIN_EXE_lcc"))
        .arg(&prog)
        .arg("-o")
        .arg(&c_path)
        .arg("--stub")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(c_path.exists());
    assert!(c_path.with_file_name("shmem.h").exists(), "--stub writes shmem.h");
}

#[test]
fn lcc_full_paper_workflow_compiles_with_cc() {
    // Section VI.E end-to-end: lcc -> cc -> run (np=1 stub).
    let prog = write_temp(
        "work.lol",
        "HAI 1.2\nI HAS A x ITZ SRSLY A NUMBR AN ITZ 40\nx R SUM OF x AN 2\nVISIBLE x\nKTHXBYE\n",
    );
    let c_path = prog.with_file_name("work.c");
    let status = Command::new(env!("CARGO_BIN_EXE_lcc"))
        .arg(&prog)
        .arg("-o")
        .arg(&c_path)
        .arg("--stub")
        .status()
        .unwrap();
    assert!(status.success());
    let bin = prog.with_file_name("work.x");
    let cc = Command::new("cc")
        .arg("-std=c99")
        .arg("-pthread")
        .arg("-I")
        .arg(c_path.parent().unwrap())
        .arg(&c_path)
        .arg("-lm")
        .arg("-o")
        .arg(&bin)
        .output()
        .unwrap();
    assert!(cc.status.success(), "{}", String::from_utf8_lossy(&cc.stderr));
    // No env: the stub behaves like the old single-PE one.
    let run = Command::new(&bin).output().unwrap();
    assert!(run.status.success());
    assert_eq!(String::from_utf8(run.stdout).unwrap(), "42\n");
    // The same binary fans out over threads when asked to, capturing
    // each PE's output separately (multi-PE prints race on a shared
    // stdout, so the capture files are the deterministic view).
    let cap = prog.with_file_name("cap");
    let run =
        Command::new(&bin).env("LOL_STUB_NPES", "3").env("LOL_STUB_OUT", &cap).output().unwrap();
    assert!(run.status.success());
    for pe in 0..3 {
        let text = std::fs::read_to_string(prog.with_file_name(format!("cap.pe{pe}.out"))).unwrap();
        assert_eq!(text, "42\n", "PE {pe}");
    }
}

#[test]
fn lcc_check_mode() {
    let prog = write_temp("chk.lol", "HAI 1.2\nWIN, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE\n");
    let out = Command::new(env!("CARGO_BIN_EXE_lcc")).arg(&prog).arg("--check").output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("SEM0012"), "teaching lint shown: {stderr}");
    assert!(stderr.contains("IZ GOOD"));
}

#[test]
fn usage_on_missing_args() {
    for bin in [env!("CARGO_BIN_EXE_lcc"), env!("CARGO_BIN_EXE_lolrun")] {
        let out = Command::new(bin).output().unwrap();
        assert!(!out.status.success());
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
}
