//! `lolrun` — the SPMD launcher, the `coprsh -np 16 ./executable.x` /
//! `aprun` analog from Section VI.E, except it runs parallel LOLCODE
//! directly on the thread-based PGAS substrate:
//!
//! ```text
//! lolrun -np 16 code.lol
//! ```

use lolcode::{Backend, LatencyModel, RunConfig};
use std::process::ExitCode;

const USAGE: &str = "\
usage: lolrun [-np <N>] [--backend interp|vm] [--seed <u64>]
              [--latency off|mesh|flat] [--tag] <input.lol>
  -np <N>          number of processing elements (default 4)
  --backend <b>    interp (default) or vm (compiled bytecode)
  --seed <u64>     RNG seed for WHATEVR/WHATEVAR (default 0xC47F00D)
  --latency <m>    off (default), mesh (Epiphany eMesh analog),
                   flat (Cray-like uniform remote latency)
  --tag            prefix every output line with [PE n]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut n_pes = 4usize;
    let mut backend = Backend::Interp;
    let mut seed = 0xC47_F00Du64;
    let mut latency = LatencyModel::Off;
    let mut tag = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-np" => {
                i += 1;
                n_pes = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("O NOES! -np NEEDS A POSITIV NUMBR\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--backend" => {
                i += 1;
                backend = match args.get(i).map(|s| s.as_str()) {
                    Some("interp") => Backend::Interp,
                    Some("vm") => Backend::Vm,
                    _ => {
                        eprintln!("O NOES! --backend IZ interp OR vm\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("O NOES! --seed NEEDS A NUMBR\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--latency" => {
                i += 1;
                latency = match args.get(i).map(|s| s.as_str()) {
                    Some("off") => LatencyModel::Off,
                    Some("mesh") => LatencyModel::epiphany16(),
                    Some("flat") => LatencyModel::xc40(),
                    _ => {
                        eprintln!("O NOES! --latency IZ off, mesh OR flat\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--tag" => tag = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            a if a.starts_with('-') => {
                eprintln!("O NOES! I DUNNO DIS FLAG: {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    eprintln!("O NOES! ONLY ONE PROGRAM AT A TIME PLZ\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        i += 1;
    }

    let Some(input) = input else {
        eprintln!("O NOES! GIMMEH A PROGRAM 2 RUN\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("O NOES! CANT READ {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Read stdin (if piped) for GIMMEH.
    let mut stdin_lines = Vec::new();
    if !atty_stdin() {
        use std::io::BufRead;
        for line in std::io::stdin().lock().lines().map_while(Result::ok) {
            stdin_lines.push(line);
        }
    }

    let mut cfg = RunConfig::new(n_pes).backend(backend).seed(seed).latency(latency);
    cfg.input = stdin_lines;

    match lolcode::run_source(&src, cfg) {
        Ok(outputs) => {
            for (pe, out) in outputs.iter().enumerate() {
                if tag {
                    for line in out.lines() {
                        println!("[PE {pe}] {line}");
                    }
                } else {
                    print!("{out}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Crude isatty: when stdin can't give us a size hint treat it as a
/// terminal (don't block waiting for input).
fn atty_stdin() -> bool {
    use std::io::IsTerminal;
    std::io::stdin().is_terminal()
}
