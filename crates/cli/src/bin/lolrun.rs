//! `lolrun` — the SPMD launcher, the `coprsh -np 16 ./executable.x` /
//! `aprun` analog from Section VI.E, running parallel LOLCODE on any
//! registered engine: the thread-based PGAS substrate (interp/vm) or
//! the `lcc`-emitted C binary over the SHMEM stub (c):
//!
//! ```text
//! lolrun -np 16 code.lol
//! lolrun -np 8 --stats code.lol            # per-PE comm statistics
//! lolrun -np 4 --backend c code.lol        # the paper's C path
//! lolrun --sweep "pes=1..8;seeds=3" code.lol           # scaling table
//! lolrun --sweep "pes=1..8;backend=all" --json code.lol
//! lolrun --sweep "pes=1..64" --json-lines code.lol     # stream JSONL
//! ```
//!
//! The program is compiled once (parse + sema + lazy bytecode/C
//! lowering) and the resulting artifact is run on the selected
//! engine(s); `--sweep` fans a whole config matrix out over a worker
//! pool under a global thread budget. The old `--backend both` is
//! deprecated sugar for a two-backend sweep.

use lolcode::{
    compile, engine_for, jsonl_record, parse_jsonl_done, Backend, BarrierKind, ClockMode, Compiled,
    LatencyModel, LockKind, RunConfig, RunReport, SweepSpec, TraceSpec,
};
use std::process::ExitCode;

const USAGE: &str = "\
usage: lolrun [-np <N>] [--backend interp|vm|c|sim] [--sim-jobs <N>]
              [--seed <u64>] [--latency <model>] [--barrier <algo>]
              [--lock <algo>] [--clock wall|virtual] [--trace[=FORMAT]]
              [--trace-buf <cap>[@<stride>]] [--trace-out <file>]
              [--tag] [--stats] [--timings] [--profile]
              [--sweep <spec>] [--resume <prev.jsonl>] [--jobs <N>]
              [--json|--json-lines]
              <input.lol>
  -np <N>          number of processing elements (default 4)
  --backend <b>    interp (default), vm (compiled bytecode), c
                   (lcc-emitted C + SHMEM stub, compiled by the system
                   C compiler and run as a native binary), or sim
                   (discrete-event simulator: a small shard-worker
                   pool sweeps 1k-1M PEs; implies virtual timing).
                   `both` is deprecated: it now warns and forwards to
                   an equivalent --sweep \"backend=interp,vm\" run
  --sim-jobs <N>   sim scheduler workers: 0 (default) picks from the
                   PE count and host cores, 1 forces the sequential
                   scheduler, N shards PEs over N workers. Results are
                   byte-identical for every N (lock-using programs
                   always run sequentially); only host wall changes
  --seed <u64>     RNG seed for WHATEVR/WHATEVAR (default 0xC47F00D)
  --latency <m>    off (default), mesh[:W[:BASE:HOP]] (Epiphany eMesh
                   analog), torus[:WxH[:BASE:HOP]] (wraparound mesh),
                   flat[:NS] (Cray-like uniform remote latency)
  --barrier <a>    HUGZ barrier algorithm: central (default) or dissem
  --lock <a>       IM MESIN WIF lock algorithm: cas (default) or ticket
  --clock <c>      wall (default): latency models busy-wait real time;
                   virtual: latency is *accounted* on a deterministic
                   per-PE logical clock instead — virtual walls are
                   machine-independent and byte-reproducible
  --trace[=F]      record communication events and render them to
                   stderr after the run. F is one of
                     gantt (default)  per-PE ASCII timeline
                     events           flat event log
                     matrix           PExPE bytes/ops matrix
                     svg              dependency-free SVG timeline
                     perfetto         Chrome trace_event JSON — open in
                                      Perfetto / chrome://tracing
                   (e.g. `lolrun --trace=svg prog.lol 2>timeline.svg`)
  --trace-buf <s>  global trace budget: at most <cap> events total,
                   sampling every <stride>-th PE (default stride 1).
                   Counts take k/m suffixes: `--trace-buf 64k@256`
                   keeps a 1M-PE trace bounded. Implies --trace;
                   untraced events are counted as dropped
  --trace-out <f>  write the --trace rendering to <f> instead of
                   stderr (a clean artifact, no log noise). Without an
                   explicit --trace format, defaults to perfetto
  --tag            prefix every output line with [PE n]
  --stats          print per-PE communication statistics and wall time
                   to stderr after the run
  --timings        print a lex/parse/sema/compile/exec/render phase
                   breakdown to stderr (plus scheduler stats on
                   --backend sim); with --json, emit the *timing* form
                   of the report (adds wall_ns/phases/sim/profile)
  --profile        count every executed opcode (vm backend) and print
                   opcode totals, the superinstruction share, and the
                   hottest bytecode ranges to stderr; other backends
                   print the phase breakdown and a note
  --sweep <spec>   run a config matrix instead of a single job and
                   print a scaling report. Spec is ;-separated clauses:
                     pes=1..16 or pes=1,2,4   PE counts
                     seeds=3                  3 seeds off the base seed
                     seeds=7,9 or seeds=0..2  explicit seed values
                     latency=off,mesh:4       latency models
                     barrier=central,dissem   barrier algorithms
                     lock=cas,ticket          lock algorithms
                     clock=wall,virtual       latency clock modes
                     backend=interp,vm,c,sim  engines to sweep (also:
                                              both = interp,vm / all)
                     pes=1k,64k,1m            k/m suffixes x1024
                     pes=2^0..2^20            power-of-two ranges
                     trace=64k@256            global trace budget
                     sim-jobs=4               sim scheduler workers
                     jobs=4                   worker cap
                     threads=8                global PE-thread budget
                   e.g. --sweep \"pes=1,2,4;backend=all;clock=virtual\"
                   Unset axes inherit -np/--seed/--latency/--barrier/
                   --lock/--clock/--backend.
  --resume <f>     with --sweep: read a previous --json-lines file and
                   re-run only the configs it is missing or records as
                   failed; already-ok configs report SKIPPED
  --jobs <N>       cap concurrent sweep jobs (default: min(cores,
                   number of configs)); jobs are additionally gated so
                   in-flight PEs fit the thread budget. Use --jobs 1
                   when the wall/speedup columns are the result:
                   concurrent jobs contend for cores and bias each
                   other's timings (virtual-time walls are immune)
  --json           emit the report as JSON on stdout. On a single run
                   this is the *stable* run-report form — the same
                   bytes the lold service returns from POST /run —
                   deterministic (no host timing fields) for a fixed
                   program/config under clock=virtual
  --json-lines     with --sweep: stream one JSONL record per config as
                   it completes (resumable/inspectable mid-run), plus
                   a final summary record
";

enum BackendChoice {
    One(Backend),
    Both,
}

/// `--trace[=FORMAT]` renderings.
#[derive(Clone, Copy)]
enum TraceFormat {
    Gantt,
    Events,
    Matrix,
    Svg,
    Perfetto,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut n_pes = 4usize;
    let mut backend = BackendChoice::One(Backend::Interp);
    let mut seed = 0xC47_F00Du64;
    let mut latency = LatencyModel::Off;
    let mut barrier = BarrierKind::default();
    let mut lock = LockKind::default();
    let mut clock = ClockMode::default();
    let mut sim_jobs = 0usize;
    let mut trace: Option<TraceFormat> = None;
    let mut trace_buf: Option<TraceSpec> = None;
    let mut trace_out: Option<String> = None;
    let mut tag = false;
    let mut stats = false;
    let mut timings = false;
    let mut profile = false;
    let mut sweep: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut json = false;
    let mut json_lines = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-np" => {
                i += 1;
                n_pes = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        let got = args.get(i).map(|s| s.as_str()).unwrap_or("(nothing)");
                        eprintln!("O NOES! -np NEEDS A POSITIV NUMBR, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--backend" => {
                i += 1;
                backend = match args.get(i).map(|s| s.as_str()) {
                    Some("both") => BackendChoice::Both,
                    Some(name) => match name.parse::<Backend>() {
                        Ok(b) => BackendChoice::One(b),
                        Err(_) => {
                            eprintln!(
                                "O NOES! --backend IZ interp, vm, c OR sim, NOT {name}\n{USAGE}"
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    None => {
                        eprintln!(
                            "O NOES! --backend IZ interp, vm, c OR sim, NOT (nothing)\n{USAGE}"
                        );
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        let got = args.get(i).map(|s| s.as_str()).unwrap_or("(nothing)");
                        eprintln!("O NOES! --seed NEEDS A NUMBR, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--latency" => {
                i += 1;
                latency = match args.get(i).map(|s| s.parse::<LatencyModel>()) {
                    Some(Ok(m)) => m,
                    Some(Err(e)) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("O NOES! --latency NEEDS A MODEL\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--barrier" => {
                i += 1;
                barrier = match args.get(i).map(|s| s.parse::<BarrierKind>()) {
                    Some(Ok(b)) => b,
                    Some(Err(e)) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("O NOES! --barrier IZ central OR dissem, NOT (nothing)\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--lock" => {
                i += 1;
                lock = match args.get(i).map(|s| s.parse::<LockKind>()) {
                    Some(Ok(l)) => l,
                    Some(Err(e)) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("O NOES! --lock IZ cas OR ticket, NOT (nothing)\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--clock" => {
                i += 1;
                clock = match args.get(i).map(|s| s.parse::<ClockMode>()) {
                    Some(Ok(c)) => c,
                    Some(Err(e)) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("O NOES! --clock IZ wall OR virtual, NOT (nothing)\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--sim-jobs" => {
                i += 1;
                sim_jobs = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => {
                        let got = args.get(i).map(|s| s.as_str()).unwrap_or("(nothing)");
                        eprintln!("O NOES! --sim-jobs NEEDS A NUMBR, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            a if a == "--trace" || a.starts_with("--trace=") => {
                let fmt = a.strip_prefix("--trace=").unwrap_or("gantt");
                trace = match fmt {
                    "gantt" => Some(TraceFormat::Gantt),
                    "events" => Some(TraceFormat::Events),
                    "matrix" => Some(TraceFormat::Matrix),
                    "svg" => Some(TraceFormat::Svg),
                    "perfetto" => Some(TraceFormat::Perfetto),
                    other => {
                        eprintln!(
                            "O NOES! --trace FORMAT IZ gantt, events, matrix, svg OR perfetto, NOT {other}\n{USAGE}"
                        );
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--trace-out" => {
                i += 1;
                trace_out = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("O NOES! --trace-out NEEDS A FILE\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--trace-buf" => {
                i += 1;
                trace_buf = match args.get(i).map(|s| s.parse::<TraceSpec>()) {
                    Some(Ok(spec)) => Some(spec),
                    Some(Err(e)) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("O NOES! --trace-buf NEEDS A BUDGET (like 64k@256)\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--sweep" => {
                i += 1;
                sweep = match args.get(i) {
                    Some(s) => Some(s.clone()),
                    None => {
                        eprintln!("O NOES! --sweep NEEDS A SPEC\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--resume" => {
                i += 1;
                resume = match args.get(i) {
                    Some(s) => Some(s.clone()),
                    None => {
                        eprintln!("O NOES! --resume NEEDS A JSONL FILE\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        let got = args.get(i).map(|s| s.as_str()).unwrap_or("(nothing)");
                        eprintln!("O NOES! --jobs NEEDS A NUMBR, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--json" => json = true,
            "--json-lines" => json_lines = true,
            "--tag" => tag = true,
            "--stats" => stats = true,
            "--timings" => timings = true,
            "--profile" => profile = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            a if a.starts_with('-') => {
                eprintln!("O NOES! I DUNNO DIS FLAG: {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    eprintln!("O NOES! ONLY ONE PROGRAM AT A TIME PLZ\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        i += 1;
    }

    let Some(input) = input else {
        eprintln!("O NOES! GIMMEH A PROGRAM 2 RUN\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("O NOES! CANT READ {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Read stdin (if piped) for GIMMEH.
    let mut stdin_lines = Vec::new();
    if !atty_stdin() {
        use std::io::BufRead;
        for line in std::io::stdin().lock().lines().map_while(Result::ok) {
            stdin_lines.push(line);
        }
    }

    // Compile once; every run below reuses the artifact.
    let artifact = match compile(&src) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for w in artifact.warnings() {
        eprint!("{w}");
    }

    // `--trace-out` without a format means a Perfetto artifact.
    if trace_out.is_some() && trace.is_none() {
        trace = Some(TraceFormat::Perfetto);
    }
    let mut cfg = RunConfig::new(n_pes)
        .seed(seed)
        .latency(latency)
        .barrier(barrier)
        .lock(lock)
        .clock(clock)
        .sim_jobs(sim_jobs)
        .profile(profile)
        .trace(trace.is_some());
    if let Some(spec) = trace_buf {
        cfg = cfg.trace_spec(spec);
        // A budget implies tracing; on a single run default the
        // rendering to the gantt view so the capped trace is shown.
        if trace.is_none() && sweep.is_none() {
            trace = Some(TraceFormat::Gantt);
        }
    }
    cfg.input = stdin_lines;

    if json && json_lines {
        eprintln!("O NOES! PICK --json OR --json-lines, NOT BOTH\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if resume.is_some() && sweep.is_none() {
        eprintln!("O NOES! --resume ONLY MEANS SOMETHING WIF --sweep\n{USAGE}");
        return ExitCode::FAILURE;
    }

    if let Some(spec) = sweep {
        if stats || tag || trace.is_some() || timings || profile {
            eprintln!(
                "O NOES! --stats, --tag, --trace, --timings AN --profile DONT WORK WIF --sweep (DA REPORT HAZ DA STATS)\n{USAGE}"
            );
            return ExitCode::FAILURE;
        }
        let base = match &backend {
            BackendChoice::One(b) => cfg.clone().backend(*b),
            BackendChoice::Both => {
                warn_both_deprecated();
                cfg.clone()
            }
        };
        let both = matches!(backend, BackendChoice::Both);
        let opts = SweepOpts { both_backends: both, jobs, resume, json, json_lines };
        return run_sweep(&artifact, &spec, base, opts);
    }
    match backend {
        BackendChoice::One(b) => {
            // Sweep-only presentation flags make no sense on a single
            // run (but DO work with `--backend both`, which forwards
            // to a sweep below). `--json` is fine: it selects the
            // stable single-run report form.
            if jobs.is_some() || json_lines {
                eprintln!(
                    "O NOES! --jobs AN --json-lines ONLY MEAN SOMETHING WIF --sweep\n{USAGE}"
                );
                return ExitCode::FAILURE;
            }
            match engine_for(b).run(&artifact, &cfg.backend(b)) {
                Ok(mut report) => {
                    if json {
                        // The byte-stable report (`timing: false`) —
                        // keep in lockstep with the lold service so
                        // `lolrun --json` and `POST /run` diff clean.
                        // `--timings` opts into the timing form
                        // (wall_ns, phases, sim, profile riders).
                        println!("{}", lolcode::service::run_report_json(&report, timings));
                        return ExitCode::SUCCESS;
                    }
                    let render_t0 = std::time::Instant::now();
                    print_outputs(&report, tag);
                    report.phases.render_ns = render_t0.elapsed().as_nanos() as u64;
                    if stats {
                        print_stats(&report);
                    }
                    if timings || profile {
                        print_timings(&report);
                    }
                    if profile {
                        print_profile(&report);
                    }
                    if let Some(fmt) = trace {
                        if print_trace(&report, fmt, trace_out.as_deref()).is_err() {
                            return ExitCode::FAILURE;
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        // Deprecated: forward to the equivalent two-backend sweep at
        // the requested PE count (same artifact, same diff — the sweep
        // report's output hashes are the agreement check).
        BackendChoice::Both => {
            if stats || tag || trace.is_some() {
                eprintln!("O NOES! --stats, --tag AN --trace DONT WORK WIF --backend both ANYMOAR (IT IZ A SWEEP NAO)\n{USAGE}");
                return ExitCode::FAILURE;
            }
            warn_both_deprecated();
            let opts = SweepOpts { both_backends: false, jobs, resume: None, json, json_lines };
            run_sweep(&artifact, "backend=interp,vm", cfg, opts)
        }
    }
}

/// Presentation/scheduling options forwarded from the flag parser to
/// [`run_sweep`].
struct SweepOpts {
    both_backends: bool,
    jobs: Option<usize>,
    resume: Option<String>,
    json: bool,
    json_lines: bool,
}

/// Render the recorded trace to stderr (program output stays clean on
/// stdout; `2>file.svg` captures a timeline), or to `--trace-out`'s
/// file when one was given.
fn print_trace(report: &RunReport, fmt: TraceFormat, out: Option<&str>) -> Result<(), ()> {
    let Some(trace) = &report.trace else {
        eprintln!("HMM... NO TRACE WUZ RECORDED");
        return Ok(());
    };
    let rendered = match fmt {
        TraceFormat::Gantt => format!("{}{}", trace.gantt(100), trace.comm_matrix().render()),
        TraceFormat::Events => trace.event_log(),
        TraceFormat::Matrix => trace.comm_matrix().render(),
        TraceFormat::Svg => trace.to_svg(),
        TraceFormat::Perfetto => trace.to_perfetto(),
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("O NOES! CANT WRITE {path}: {e}");
                return Err(());
            }
            eprintln!("trace written to {path}");
        }
        None => eprint!("{rendered}"),
    }
    if let Some(vw) = report.virtual_wall {
        eprintln!("virtual wall: {vw:?} (deterministic)");
    }
    Ok(())
}

/// Pretty nanoseconds for the phase table.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `--timings`: the per-phase breakdown (and scheduler stats on sim)
/// on stderr.
fn print_timings(report: &RunReport) {
    let p = &report.phases;
    eprintln!("== {:?} phases: {} PEs ==", report.backend, report.n_pes());
    let rows = [
        ("lex", p.lex_ns),
        ("parse", p.parse_ns),
        ("sema", p.sema_ns),
        ("compile", p.compile_ns),
        ("exec", p.exec_ns),
        ("render", p.render_ns),
    ];
    for (name, ns) in rows {
        eprintln!("  {name:<8} {:>10}", fmt_ns(ns));
    }
    eprintln!("  {:<8} {:>10}", "total", fmt_ns(p.total_ns()));
    if let Some(s) = &report.sim {
        eprintln!(
            "  sim: {} events, heap peak {}, {} barrier episodes, {} merge windows, {} events/s",
            s.events,
            s.heap_peak,
            s.barrier_episodes,
            s.merge_windows,
            s.events_per_sec(report.host_wall)
        );
    }
}

/// `--profile`: opcode totals and hot bytecode ranges on stderr (vm
/// backend; everything else explains itself and still exits 0).
fn print_profile(report: &RunReport) {
    let Some(p) = &report.profile else {
        eprintln!(
            "HMM... NO BYTECODE PROFILE ON DIS BACKEND ({:?}) — ONLY vm COUNTS OPCODES",
            report.backend
        );
        return;
    };
    eprintln!(
        "== vm profile: {} ops, {:.2}% superinstructions ==",
        p.total_ops,
        p.super_bp as f64 / 100.0
    );
    for (name, count, is_super) in p.ops.iter().take(15) {
        let tag = if *is_super { " (super)" } else { "" };
        eprintln!("  {count:>12}  {name}{tag}");
    }
    if p.ops.len() > 15 {
        eprintln!("  ... {} more opcodes", p.ops.len() - 15);
    }
    if !p.hot.is_empty() {
        eprintln!("hot bytecode ranges:");
        for h in &p.hot {
            eprintln!("  {}[{}..{}]  {} ops", h.chunk, h.start, h.end, h.count);
        }
    }
}

fn warn_both_deprecated() {
    eprintln!(
        "HMM... --backend both IZ DEPRECATED: FORWARDIN 2 AN EKWIVALENT \
         --sweep \"backend=interp,vm\" RUN (DA REPORT'S output_hash COLUMN IZ DA DIFF)"
    );
}

/// `--sweep`: parse the spec over the base config, fan the matrix out
/// over the worker pool, and print a scaling table (or JSON / JSONL).
///
/// Exit code: failure only for *hard* failures (parse errors, runtime
/// faults, backend disagreement). Engines the machine simply doesn't
/// have (e.g. `backend=c` without a C compiler) are reported as
/// UNSUPPORTED entries and don't fail the sweep.
fn run_sweep(artifact: &Compiled, spec: &str, base: RunConfig, opts: SweepOpts) -> ExitCode {
    let SweepOpts { both_backends, jobs, resume, json, json_lines } = opts;
    let mut spec = match SweepSpec::parse(spec, base) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `--backend both` fills the backend axis only when the spec
    // itself didn't set one (unset axes inherit the flags; set axes
    // win).
    if both_backends && spec.backends_requested().is_empty() {
        spec = spec.backends([Backend::Interp, Backend::Vm]);
    }
    if let Some(j) = jobs {
        spec = spec.jobs(j);
    }
    // `--resume`: collect the previous run's completed configs; only
    // the missing/failed ones run below.
    let done = match &resume {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let done = parse_jsonl_done(&text);
                eprintln!("HMM... --resume FOUND {} FINISHED CONFIGS IN {path}", done.len());
                done
            }
            Err(e) => {
                eprintln!("O NOES! CANT READ --resume FILE {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Default::default(),
    };
    let report = if json_lines {
        // Stream one record per completed config. `println!` locks
        // stdout per call, so records from racing workers stay intact.
        let report = spec.run_resumable(artifact, &done, |i, cfg, result| {
            println!("{}", jsonl_record(i, cfg, result));
        });
        println!(
            "{{\"summary\": true, \"configs\": {}, \"ok\": {}, \"unsupported\": {}, \
             \"skipped\": {}, \"jobs\": {}, \"total_wall_ns\": {}}}",
            report.entries.len(),
            report.ok_count(),
            report.unsupported_count(),
            report.skipped_count(),
            report.jobs,
            report.total_wall.as_nanos()
        );
        report
    } else {
        let report = spec.run_resumable(artifact, &done, |_, _, _| {});
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{}", report.speedup_table());
        }
        report
    };
    // Cross-backend agreement: interp and vm share the substrate (and
    // its RNG), and sim replays the same per-PE RNG stream, so any two
    // ok entries that differ only in those backends must have
    // identical per-PE output — the old `--backend both` diff,
    // generalized to the whole matrix. The C backend is exempt: its
    // WHATEVR stream is the stub's own RNG, so only the equivalence
    // tests (which avoid WHATEVR) pin it.
    let mut disagreement = false;
    let diffable = [Backend::Interp, Backend::Vm, Backend::Sim];
    for (i, a) in report.entries.iter().enumerate() {
        for b in &report.entries[i + 1..] {
            if a.config.backend != b.config.backend
                && diffable.contains(&a.config.backend)
                && diffable.contains(&b.config.backend)
                && a.config.n_pes == b.config.n_pes
                && a.config.seed == b.config.seed
                && a.config.latency == b.config.latency
                && a.config.barrier == b.config.barrier
                && a.config.lock == b.config.lock
                && a.config.clock == b.config.clock
                && a.result.is_ok()
                && b.result.is_ok()
                && a.output_hash() != b.output_hash()
            {
                eprintln!(
                    "O NOES! DA BACKENDS DISAGREE AT pes={} seed={}: {} != {}",
                    a.config.n_pes, a.config.seed, a.config.backend, b.config.backend
                );
                disagreement = true;
            }
        }
    }
    let hard = report.hard_failure_count();
    if report.unsupported_count() > 0 {
        eprintln!(
            "HMM... {} OF {} CONFIGS R UNSUPPORTED ON DIS MACHINE (NOT COUNTED AS FAILURES)",
            report.unsupported_count(),
            report.entries.len()
        );
    }
    if hard > 0 {
        eprintln!("O NOES! {hard} OF {} SWEEP CONFIGS HAZ A SAD", report.entries.len());
    }
    if hard == 0 && !disagreement {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_outputs(report: &RunReport, tag: bool) {
    for (pe, out) in report.outputs.iter().enumerate() {
        if tag {
            for line in out.lines() {
                println!("[PE {pe}] {line}");
            }
        } else {
            print!("{out}");
        }
    }
}

/// Per-PE `CommStats` plus job totals and wall time, on stderr (so
/// program output stays pipeable).
fn print_stats(report: &RunReport) {
    match report.virtual_wall {
        Some(vw) => eprintln!(
            "== {:?} stats: {} PEs, wall {:?}, virtual wall {:?} ==",
            report.backend,
            report.n_pes(),
            report.wall,
            vw
        ),
        None => {
            eprintln!(
                "== {:?} stats: {} PEs, wall {:?} ==",
                report.backend,
                report.n_pes(),
                report.wall
            )
        }
    }
    for (pe, s) in report.stats.iter().enumerate() {
        eprintln!("[PE {pe}] {s}");
    }
    // Barriers are collective: every PE counts the same episode, so
    // the job-wide number is per-PE, not a sum.
    let total = report.total_stats();
    eprintln!(
        "[job]  gets {}/{} (local/remote), puts {}/{}, block words {}/{} (get/put), \
         amos {}, barriers {}/PE, locks {}+{}t/{}r | remote fraction {:.1}%",
        total.local_gets,
        total.remote_gets,
        total.local_puts,
        total.remote_puts,
        total.block_get_words,
        total.block_put_words,
        total.amos,
        report.stats[0].barriers,
        total.lock_acquires,
        total.lock_tries,
        total.lock_releases,
        100.0 * total.remote_fraction()
    );
}

/// Crude isatty: when stdin can't give us a size hint treat it as a
/// terminal (don't block waiting for input).
fn atty_stdin() -> bool {
    use std::io::IsTerminal;
    std::io::stdin().is_terminal()
}
