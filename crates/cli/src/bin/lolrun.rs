//! `lolrun` — the SPMD launcher, the `coprsh -np 16 ./executable.x` /
//! `aprun` analog from Section VI.E, except it runs parallel LOLCODE
//! directly on the thread-based PGAS substrate:
//!
//! ```text
//! lolrun -np 16 code.lol
//! lolrun -np 8 --stats code.lol            # per-PE comm statistics
//! lolrun -np 4 --backend both code.lol     # run interp AND vm, diff
//! lolrun --sweep "pes=1..8;seeds=3" code.lol       # scaling table
//! lolrun --sweep "pes=1..8" --json code.lol        # machine-readable
//! ```
//!
//! The program is compiled once (parse + sema + optional bytecode
//! lowering) and the resulting artifact is run on the selected
//! engine(s); `--backend both` executes the *same* artifact on both,
//! and `--sweep` fans a whole config matrix out over a worker pool.

use lolcode::{
    compile, engine_for, Backend, Compiled, LatencyModel, RunConfig, RunReport, SweepSpec,
};
use std::process::ExitCode;

const USAGE: &str = "\
usage: lolrun [-np <N>] [--backend interp|vm|both] [--seed <u64>]
              [--latency <model>] [--tag] [--stats]
              [--sweep <spec>] [--jobs <N>] [--json] <input.lol>
  -np <N>          number of processing elements (default 4)
  --backend <b>    interp (default), vm (compiled bytecode), or both
                   (run the same compiled artifact on both engines and
                   verify their outputs match)
  --seed <u64>     RNG seed for WHATEVR/WHATEVAR (default 0xC47F00D)
  --latency <m>    off (default), mesh[:W[:BASE:HOP]] (Epiphany eMesh
                   analog), torus[:WxH[:BASE:HOP]] (wraparound mesh),
                   flat[:NS] (Cray-like uniform remote latency)
  --tag            prefix every output line with [PE n]
  --stats          print per-PE communication statistics and wall time
                   to stderr after the run
  --sweep <spec>   run a config matrix instead of a single job and
                   print a scaling report. Spec is ;-separated clauses:
                     pes=1..16 or pes=1,2,4   PE counts
                     seeds=3                  3 seeds off the base seed
                     seeds=7,9 or seeds=0..2  explicit seed values
                     latency=off,mesh:4       latency models
                     backend=interp|vm|both   engines to sweep
                     jobs=4                   worker cap
                   e.g. --sweep \"pes=1..16;seeds=3;latency=off,mesh:4\"
                   Unset axes inherit -np/--seed/--latency/--backend.
  --jobs <N>       cap concurrent sweep jobs (default: min(cores,
                   number of configs)). Use --jobs 1 when the wall/
                   speedup columns are the result: concurrent jobs
                   contend for cores and bias each other's timings
  --json           with --sweep: emit the report as JSON on stdout
";

enum BackendChoice {
    One(Backend),
    Both,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut n_pes = 4usize;
    let mut backend = BackendChoice::One(Backend::Interp);
    let mut seed = 0xC47_F00Du64;
    let mut latency = LatencyModel::Off;
    let mut tag = false;
    let mut stats = false;
    let mut sweep: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-np" => {
                i += 1;
                n_pes = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        let got = args.get(i).map(|s| s.as_str()).unwrap_or("(nothing)");
                        eprintln!("O NOES! -np NEEDS A POSITIV NUMBR, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--backend" => {
                i += 1;
                backend = match args.get(i).map(|s| s.as_str()) {
                    Some("interp") => BackendChoice::One(Backend::Interp),
                    Some("vm") => BackendChoice::One(Backend::Vm),
                    Some("both") => BackendChoice::Both,
                    other => {
                        let got = other.unwrap_or("(nothing)");
                        eprintln!("O NOES! --backend IZ interp, vm OR both, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        let got = args.get(i).map(|s| s.as_str()).unwrap_or("(nothing)");
                        eprintln!("O NOES! --seed NEEDS A NUMBR, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--latency" => {
                i += 1;
                latency = match args.get(i).map(|s| s.parse::<LatencyModel>()) {
                    Some(Ok(m)) => m,
                    Some(Err(e)) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("O NOES! --latency NEEDS A MODEL\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--sweep" => {
                i += 1;
                sweep = match args.get(i) {
                    Some(s) => Some(s.clone()),
                    None => {
                        eprintln!("O NOES! --sweep NEEDS A SPEC\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--jobs" => {
                i += 1;
                jobs = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) => Some(n),
                    None => {
                        let got = args.get(i).map(|s| s.as_str()).unwrap_or("(nothing)");
                        eprintln!("O NOES! --jobs NEEDS A NUMBR, NOT {got}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--json" => json = true,
            "--tag" => tag = true,
            "--stats" => stats = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            a if a.starts_with('-') => {
                eprintln!("O NOES! I DUNNO DIS FLAG: {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    eprintln!("O NOES! ONLY ONE PROGRAM AT A TIME PLZ\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        i += 1;
    }

    let Some(input) = input else {
        eprintln!("O NOES! GIMMEH A PROGRAM 2 RUN\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("O NOES! CANT READ {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Read stdin (if piped) for GIMMEH.
    let mut stdin_lines = Vec::new();
    if !atty_stdin() {
        use std::io::BufRead;
        for line in std::io::stdin().lock().lines().map_while(Result::ok) {
            stdin_lines.push(line);
        }
    }

    // Compile once; every run below reuses the artifact.
    let artifact = match compile(&src) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for w in artifact.warnings() {
        eprint!("{w}");
    }

    let mut cfg = RunConfig::new(n_pes).seed(seed).latency(latency);
    cfg.input = stdin_lines;

    if let Some(spec) = sweep {
        if stats || tag {
            eprintln!(
                "O NOES! --stats AN --tag DONT WORK WIF --sweep (DA REPORT HAZ DA STATS)\n{USAGE}"
            );
            return ExitCode::FAILURE;
        }
        let base = match &backend {
            BackendChoice::One(b) => cfg.clone().backend(*b),
            BackendChoice::Both => cfg.clone(),
        };
        let both = matches!(backend, BackendChoice::Both);
        return run_sweep(&artifact, &spec, base, both, jobs, json);
    }
    if jobs.is_some() || json {
        eprintln!("O NOES! --jobs AN --json ONLY MEAN SOMETHING WIF --sweep\n{USAGE}");
        return ExitCode::FAILURE;
    }

    match backend {
        BackendChoice::One(b) => match engine_for(b).run(&artifact, &cfg.backend(b)) {
            Ok(report) => {
                print_outputs(&report, tag);
                if stats {
                    print_stats(&report);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        BackendChoice::Both => run_both(&artifact, &cfg, tag, stats),
    }
}

/// `--sweep`: parse the spec over the base config, fan the matrix out
/// over the worker pool, and print a scaling table (or JSON).
fn run_sweep(
    artifact: &Compiled,
    spec: &str,
    base: RunConfig,
    both_backends: bool,
    jobs: Option<usize>,
    json: bool,
) -> ExitCode {
    let mut spec = match SweepSpec::parse(spec, base) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // `--backend both` fills the backend axis only when the spec
    // itself didn't set one (unset axes inherit the flags; set axes
    // win).
    if both_backends && spec.backends_requested().is_empty() {
        spec = spec.backends([Backend::Interp, Backend::Vm]);
    }
    if let Some(j) = jobs {
        spec = spec.jobs(j);
    }
    let report = spec.run(artifact);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.speedup_table());
    }
    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "O NOES! {} OF {} SWEEP CONFIGS HAZ A SAD",
            report.entries.len() - report.ok_count(),
            report.entries.len()
        );
        ExitCode::FAILURE
    }
}

/// `--backend both`: run the same artifact on both engines and diff
/// the per-PE outputs. Prints the (agreed) output once.
fn run_both(artifact: &Compiled, cfg: &RunConfig, tag: bool, stats: bool) -> ExitCode {
    let mut reports = Vec::new();
    for b in [Backend::Interp, Backend::Vm] {
        match engine_for(b).run(artifact, &cfg.clone().backend(b)) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("O NOES! {b:?} ENGINE HAZ A SAD: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (interp, vm) = (&reports[0], &reports[1]);
    if interp.outputs != vm.outputs {
        eprintln!("O NOES! DA BACKENDS DISAGREE:");
        for pe in 0..interp.n_pes() {
            if interp.output(pe) != vm.output(pe) {
                eprintln!("[PE {pe}] interp: {:?}", interp.output(pe));
                eprintln!("[PE {pe}]     vm: {:?}", vm.output(pe));
            }
        }
        return ExitCode::FAILURE;
    }
    print_outputs(interp, tag);
    eprintln!(
        "KTHX: interp ({:?}) AN vm ({:?}) AGREE ON ALL {} PEs",
        interp.wall,
        vm.wall,
        interp.n_pes()
    );
    if stats {
        print_stats(interp);
        print_stats(vm);
    }
    ExitCode::SUCCESS
}

fn print_outputs(report: &RunReport, tag: bool) {
    for (pe, out) in report.outputs.iter().enumerate() {
        if tag {
            for line in out.lines() {
                println!("[PE {pe}] {line}");
            }
        } else {
            print!("{out}");
        }
    }
}

/// Per-PE `CommStats` plus job totals and wall time, on stderr (so
/// program output stays pipeable).
fn print_stats(report: &RunReport) {
    eprintln!("== {:?} stats: {} PEs, wall {:?} ==", report.backend, report.n_pes(), report.wall);
    for (pe, s) in report.stats.iter().enumerate() {
        eprintln!("[PE {pe}] {s}");
    }
    // Barriers are collective: every PE counts the same episode, so
    // the job-wide number is per-PE, not a sum.
    let total = report.total_stats();
    eprintln!(
        "[job]  gets {}/{} (local/remote), puts {}/{}, block words {}/{} (get/put), \
         amos {}, barriers {}/PE, locks {}+{}t/{}r | remote fraction {:.1}%",
        total.local_gets,
        total.remote_gets,
        total.local_puts,
        total.remote_puts,
        total.block_get_words,
        total.block_put_words,
        total.amos,
        report.stats[0].barriers,
        total.lock_acquires,
        total.lock_tries,
        total.lock_releases,
        100.0 * total.remote_fraction()
    );
}

/// Crude isatty: when stdin can't give us a size hint treat it as a
/// terminal (don't block waiting for input).
fn atty_stdin() -> bool {
    use std::io::IsTerminal;
    std::io::stdin().is_terminal()
}
