//! `lold` — the playground daemon: parallel LOLCODE as a service.
//!
//! Boots the `lol-serve` JSON-over-HTTP server over the full engine
//! registry and serves until `POST /shutdown` (exit code 0). The
//! printed `lold listening on http://ADDR` line is the machine-parsed
//! readiness signal (tests and the CI smoke job scrape it).
//!
//! ```text
//! lold                          # 127.0.0.1:0 — kernel-picked port
//! lold --addr 127.0.0.1:4040 --workers 8
//! curl -s localhost:4040/healthz
//! curl -s localhost:4040/run -d '{"source": "HAI 1.2\nVISIBLE ME\nKTHXBYE"}'
//! ```

use std::process::ExitCode;
use std::time::Duration;

use lol_serve::{ServeConfig, Server};

const USAGE: &str = "\
usage: lold [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
            [--thread-budget N] [--max-pes N] [--max-wall-ms N]
            [--max-body BYTES] [--max-configs N] [--idle-timeout-ms N]
            [--access-log PATH]
  --addr <a>            bind address (default 127.0.0.1:0 — the kernel
                        picks a port; the listening line has the real one)
  --workers <N>         worker threads; a worker is pinned to its
                        connection, so size >= expected clients (default 8)
  --queue <N>           accepted-connection queue cap; beyond it new
                        connections get 429 + Retry-After (default 32)
  --cache <N>           compiled-artifact LRU capacity (default 32)
  --thread-budget <N>   global run-admission thread budget, sweep
                        semantics (0 = host cores; default 0)
  --max-pes <N>         per-request PE cap (default 65536)
  --max-wall-ms <N>     per-request host wall cap, clamps the deadlock
                        watchdog (default 10000)
  --max-body <N>        request body cap in bytes (default 1048576)
  --max-configs <N>     per-sweep config-count cap (default 64)
  --idle-timeout-ms <N> idle keep-alive connection allowance (default 30000)
  --access-log <PATH>   append one JSONL line per handled request
                        (method, path, status, latency; off by default)

Routes: POST /run, POST /sweep, POST /trace, GET /healthz, GET /metrics
(Prometheus exposition), POST /shutdown (graceful drain, exit code 0).
See docs/SERVE.md and docs/OBSERVABILITY.md.
";

fn parse_num(args: &[String], i: &mut usize, flag: &str) -> Result<u64, String> {
    *i += 1;
    args.get(*i).and_then(|s| s.parse().ok()).ok_or_else(|| {
        let got = args.get(*i).map(|s| s.as_str()).unwrap_or("(nothing)");
        format!("O NOES! {flag} NEEDS A NUMBR, NOT {got}")
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let outcome: Result<(), String> = match flag.as_str() {
            "--addr" => {
                i += 1;
                match args.get(i) {
                    Some(a) => {
                        config.addr = a.clone();
                        Ok(())
                    }
                    None => Err("O NOES! --addr NEEDS HOST:PORT".to_string()),
                }
            }
            "--workers" => parse_num(&args, &mut i, "--workers").map(|n| {
                config.workers = (n as usize).max(1);
            }),
            "--queue" => parse_num(&args, &mut i, "--queue").map(|n| {
                config.queue_cap = (n as usize).max(1);
            }),
            "--cache" => parse_num(&args, &mut i, "--cache").map(|n| {
                config.cache_capacity = (n as usize).max(1);
            }),
            "--thread-budget" => parse_num(&args, &mut i, "--thread-budget").map(|n| {
                config.thread_budget = n as usize;
            }),
            "--max-pes" => parse_num(&args, &mut i, "--max-pes").map(|n| {
                config.quotas.max_pes = n as usize;
            }),
            "--max-wall-ms" => parse_num(&args, &mut i, "--max-wall-ms").map(|n| {
                config.quotas.max_wall = Duration::from_millis(n);
            }),
            "--max-body" => parse_num(&args, &mut i, "--max-body").map(|n| {
                config.quotas.max_body_bytes = n as usize;
            }),
            "--max-configs" => parse_num(&args, &mut i, "--max-configs").map(|n| {
                config.quotas.max_configs = (n as usize).max(1);
            }),
            "--idle-timeout-ms" => parse_num(&args, &mut i, "--idle-timeout-ms").map(|n| {
                config.read_timeout = Duration::from_millis(n.max(1));
            }),
            "--access-log" => {
                i += 1;
                match args.get(i) {
                    Some(p) => {
                        config.access_log = Some(p.clone());
                        Ok(())
                    }
                    None => Err("O NOES! --access-log NEEDS A PATH".to_string()),
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("O NOES! I DUNNO DIS FLAG: {other}")),
        };
        if let Err(e) = outcome {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
        i += 1;
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("O NOES! CANT BIND: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The readiness line — parsed by tests and the CI smoke job.
    println!("lold listening on http://{}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.wait();
    eprintln!("KTHXBYE");
    ExitCode::SUCCESS
}
