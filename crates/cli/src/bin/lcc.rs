//! `lcc` — the LOLCODE-to-C compiler command from Section VI.E:
//!
//! ```text
//! lcc code.lol -o executable.c
//! ```
//!
//! Translates parallel LOLCODE to C with OpenSHMEM calls. With
//! `--stub`, also writes the multi-PE pthread `shmem.h` stub next to
//! the output so the result builds *and runs SPMD* on machines without
//! an OpenSHMEM installation:
//!
//! ```text
//! lcc code.lol -o prog.c --stub
//! cc -std=c99 -I. prog.c -lm -pthread -o prog
//! ./prog                         # 1 PE, stdout
//! LOL_STUB_NPES=8 ./prog         # 8 PE threads
//! ```
//!
//! (`lolrun --backend c` drives exactly this pipeline automatically,
//! with per-PE output capture.)

use std::process::ExitCode;

const USAGE: &str = "\
usage: lcc <input.lol> [-o <output.c>] [--stub] [--check]
  -o <file>   write C output here (default: stdout)
  --stub      also write the multi-PE pthread shmem.h stub beside the
              output (build: cc -std=c99 -I. out.c -lm -pthread;
              run N PEs: LOL_STUB_NPES=N ./a.out)
  --check     parse + analyze only; print warnings, emit nothing
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut stub = false;
    let mut check_only = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                if i >= args.len() {
                    eprintln!("O NOES! -o NEEDS A FILE NAME\n{USAGE}");
                    return ExitCode::FAILURE;
                }
                output = Some(args[i].clone());
            }
            "--stub" => stub = true,
            "--check" => check_only = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            a if a.starts_with('-') => {
                eprintln!("O NOES! I DUNNO DIS FLAG: {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            a => {
                if input.replace(a.to_string()).is_some() {
                    eprintln!("O NOES! ONLY ONE INPUT FILE PLZ\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
        i += 1;
    }

    let Some(input) = input else {
        eprintln!("O NOES! GIMMEH AN INPUT FILE\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("O NOES! CANT READ {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Front end runs once; --check stops here, otherwise the same
    // artifact feeds the C emitter.
    let artifact = match lolcode::compile(&src) {
        Ok(a) => a,
        Err(e) => {
            eprint!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if check_only {
        for w in artifact.warnings() {
            eprint!("{w}");
        }
        eprintln!("KTHX: {input} IZ GOOD");
        return ExitCode::SUCCESS;
    }

    let c = match artifact.emit_c() {
        Ok(c) => c,
        Err(e) => {
            eprint!("{e}");
            return ExitCode::FAILURE;
        }
    };

    match &output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &c) {
                eprintln!("O NOES! CANT WRITE {path}: {e}");
                return ExitCode::FAILURE;
            }
            if stub {
                let dir = std::path::Path::new(path)
                    .parent()
                    .map(|p| p.to_path_buf())
                    .unwrap_or_default();
                let stub_path = dir.join("shmem.h");
                if let Err(e) = std::fs::write(&stub_path, lol_c_codegen::SHMEM_STUB_H) {
                    eprintln!("O NOES! CANT WRITE {}: {e}", stub_path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        None => print!("{c}"),
    }
    ExitCode::SUCCESS
}
