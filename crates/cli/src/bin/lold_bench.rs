//! `lold-bench` — the self-driving load test for the `lold` service.
//!
//! Spins up an in-process server (or targets a running one via
//! `--addr`), then drives N client threads × M requests each over real
//! localhost sockets and reports throughput + latency percentiles.
//! The JSON report is what `scripts/check_perf_regression.py --serve`
//! gates in CI.
//!
//! ```text
//! lold-bench --clients 8 --requests 50 --backend sim --clock virtual \
//!            --program corpus/heat2d_4x8.lol --out serve-bench.json
//! ```

use std::process::ExitCode;

use lol_serve::bench::{run, BenchSpec};
use lol_serve::{json, ServeConfig, Server};

const USAGE: &str = "\
usage: lold-bench [--addr HOST:PORT] [--clients N] [--requests M]
                  [--program FILE] [--backend interp|vm|c|sim] [--pes N]
                  [--clock wall|virtual] [--out FILE]
  --addr <a>       target an already-running lold instead of spawning an
                   in-process server
  --clients <N>    concurrent client threads (default 8)
  --requests <M>   requests per client (default 50)
  --program <f>    program file to POST (default: built-in parallel
                   hello-world)
  --backend <b>    backend field of the request (default sim)
  --pes <N>        PE count per request (default 8)
  --clock <c>      clock field (default virtual — deterministic bodies)
  --out <f>        write the JSON report there (default: stdout)

Exit code is non-zero when any request failed (non-200 or transport).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut clients = 8usize;
    let mut requests = 50usize;
    let mut program: Option<String> = None;
    let mut backend = "sim".to_string();
    let mut pes = 8usize;
    let mut clock = "virtual".to_string();
    let mut out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        macro_rules! value {
            ($flag:expr) => {{
                i += 1;
                match args.get(i) {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("O NOES! {} NEEDS A VALUE\n{USAGE}", $flag);
                        return ExitCode::FAILURE;
                    }
                }
            }};
        }
        match args[i].as_str() {
            "--addr" => addr = Some(value!("--addr")),
            "--clients" => {
                clients = match value!("--clients").parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("O NOES! --clients NEEDS A POSITIV NUMBR\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--requests" => {
                requests = match value!("--requests").parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("O NOES! --requests NEEDS A POSITIV NUMBR\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--program" => program = Some(value!("--program")),
            "--backend" => backend = value!("--backend"),
            "--pes" => {
                pes = match value!("--pes").parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("O NOES! --pes NEEDS A POSITIV NUMBR\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--clock" => clock = value!("--clock"),
            "--out" => out = Some(value!("--out")),
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("O NOES! I DUNNO DIS FLAG: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let source = match &program {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("O NOES! CANT READ {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => lolcode::corpus::HELLO_PARALLEL.to_string(),
    };
    let body = format!(
        "{{\"source\": \"{}\", \"backend\": \"{}\", \"pes\": {}, \"clock\": \"{}\"}}",
        json::escape(&source),
        json::escape(&backend),
        pes,
        json::escape(&clock)
    );

    // No --addr: spawn the server in-process, sized so no client ever
    // starves for a worker (each worker pins one connection).
    let (target, local) = match addr {
        Some(a) => (a, None),
        None => {
            let config = ServeConfig {
                workers: clients + 2,
                queue_cap: clients * 2 + 4,
                ..ServeConfig::default()
            };
            let server = match Server::start(config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("O NOES! CANT BIND: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (server.addr().to_string(), Some(server))
        }
    };

    let spec = BenchSpec { addr: target, clients, requests, path: "/run".to_string(), body };
    let report = run(&spec);
    eprintln!("{}", report.summary());
    let rendered = report.to_json();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
                eprintln!("O NOES! CANT WRITE {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => println!("{rendered}"),
    }
    if let Some(server) = local {
        server.shutdown();
    }
    if report.errors == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("O NOES! {} OF {} REQUESTS HAZ A SAD", report.errors, report.total);
        ExitCode::FAILURE
    }
}
