//! Token definitions shared between the lexer and parser.

use lol_ast::{Span, Symbol, YarnPart};

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// What kind of token this is.
///
/// LOLCODE keywords are multi-word phrases (`IM IN YR`, `SUM OF`,
/// `IM SRSLY MESIN WIF`), so the lexer does **not** classify keywords;
/// it emits [`TokenKind::Word`]s and the parser matches phrases
/// contextually. This mirrors how the original interpreter handles the
/// grammar and keeps identifiers/keywords from clashing.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bareword: keyword fragment or identifier.
    Word(Symbol),
    /// Integer literal.
    Numbr(i64),
    /// Float literal.
    Numbar(f64),
    /// String literal (escapes resolved, interpolations preserved).
    Yarn(Vec<YarnPart>),
    /// `'Z` — array indexing marker.
    TickZ,
    /// Statement separator (newline or comma; collapsed).
    Separator,
    /// `?`
    Question,
    /// `!`
    Bang,
    /// End of input (always the final token).
    Eof,
}

impl Token {
    /// The word's symbol, if this token is a word.
    pub fn word(&self) -> Option<Symbol> {
        match self.kind {
            TokenKind::Word(s) => Some(s),
            _ => None,
        }
    }

    /// Does this word token spell exactly `kw`?
    pub fn is_word(&self, kw: &str) -> bool {
        matches!(self.kind, TokenKind::Word(s) if s.as_str() == kw)
    }
}

/// Render a token kind for diagnostics ("I GOTZ ...").
pub fn describe(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Word(s) => format!("\"{s}\""),
        TokenKind::Numbr(n) => format!("NUMBR {n}"),
        TokenKind::Numbar(f) => format!("NUMBAR {f}"),
        TokenKind::Yarn(_) => "A YARN".into(),
        TokenKind::TickZ => "'Z".into(),
        TokenKind::Separator => "END OF STATEMENT".into(),
        TokenKind::Question => "?".into(),
        TokenKind::Bang => "!".into(),
        TokenKind::Eof => "END OF FILE".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_helpers() {
        let t = Token { kind: TokenKind::Word(Symbol::intern("HUGZ")), span: Span::DUMMY };
        assert!(t.is_word("HUGZ"));
        assert!(!t.is_word("HUG"));
        assert_eq!(t.word(), Some(Symbol::intern("HUGZ")));
        let n = Token { kind: TokenKind::Numbr(3), span: Span::DUMMY };
        assert_eq!(n.word(), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(describe(&TokenKind::Word(Symbol::intern("FISH"))), "\"FISH\"");
        assert_eq!(describe(&TokenKind::Numbr(7)), "NUMBR 7");
        assert_eq!(describe(&TokenKind::Eof), "END OF FILE");
        assert_eq!(describe(&TokenKind::Separator), "END OF STATEMENT");
    }
}
