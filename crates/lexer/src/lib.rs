//! # lol-lexer — tokenizer for parallel LOLCODE
//!
//! A hand-written lexer (the paper used `lex`) covering LOLCODE 1.2 plus
//! the paper's extensions:
//!
//! * barewords (keywords are resolved *contextually* by the parser, which
//!   matches multi-word phrases such as `SUM OF` or `IM SRSLY MESIN WIF`),
//! * `NUMBR` / `NUMBAR` literals (including negatives and exponents),
//! * `YARN` literals with the 1.2 escape set — `:)` newline, `:>` tab,
//!   `:o` bell, `:"` quote, `::` colon, `:(hex)` code point and `:{var}`
//!   runtime interpolation,
//! * `'Z` array indexing (Table II),
//! * statement separators: newline and `,` (equivalent), with `...`
//!   soft line continuation,
//! * comments: `BTW` to end of line, `OBTW ... TLDR` blocks,
//! * `?` (for `O RLY?` / `WTF?` / `CAN HAS x?`) and `!` (for
//!   `VISIBLE ...!`).

pub mod token;

pub use token::{describe, Token, TokenKind};

use lol_ast::diag::{Diagnostic, Diagnostics};
use lol_ast::{Span, Symbol, YarnPart};

/// The result of lexing: tokens (always ending with `Eof`) plus any
/// diagnostics. Lexing is error-tolerant; bad characters become
/// diagnostics and are skipped so the parser can keep going.
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub diags: Diagnostics,
}

/// Tokenize LOLCODE source.
pub fn lex(src: &str) -> LexOutput {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, tokens: Vec::new(), diags: Diagnostics::new() }
    }

    fn run(mut self) -> LexOutput {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'\n' => {
                    self.pos += 1;
                    self.push_separator(start);
                }
                b',' => {
                    self.pos += 1;
                    self.push_separator(start);
                }
                b'?' => {
                    self.pos += 1;
                    self.push(TokenKind::Question, start);
                }
                b'!' => {
                    self.pos += 1;
                    self.push(TokenKind::Bang, start);
                }
                b'\'' => self.lex_tick(start),
                b'.' => self.lex_dots(start),
                b'"' => self.lex_yarn(start),
                b'-' => {
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number(start);
                    } else {
                        self.error_char(start);
                    }
                }
                b'0'..=b'9' => self.lex_number(start),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.lex_word(start),
                _ => self.error_char(start),
            }
        }
        let end = self.src.len() as u32;
        self.tokens.push(Token { kind: TokenKind::Eof, span: Span::new(end, end) });
        LexOutput { tokens: self.tokens, diags: self.diags }
    }

    #[inline]
    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token { kind, span: Span::new(start as u32, self.pos as u32) });
    }

    /// Separators collapse: never emit two in a row, never lead the file.
    fn push_separator(&mut self, start: usize) {
        match self.tokens.last() {
            None | Some(Token { kind: TokenKind::Separator, .. }) => {}
            _ => self.push(TokenKind::Separator, start),
        }
    }

    fn error_char(&mut self, start: usize) {
        let ch = self.src[start..].chars().next().unwrap_or('?');
        self.pos += ch.len_utf8();
        self.diags.push(Diagnostic::error(
            "LEX0001",
            format!("I DUNNO WAT DIS CHARACTER IZ: {ch:?}"),
            Span::new(start as u32, self.pos as u32),
        ));
    }

    /// `'Z` — the array index marker.
    fn lex_tick(&mut self, start: usize) {
        if self.peek_at(1) == Some(b'Z') {
            self.pos += 2;
            self.push(TokenKind::TickZ, start);
        } else {
            self.pos += 1;
            self.diags.push(
                Diagnostic::error(
                    "LEX0002",
                    "A LONELY APOSTROPHE — ONLY 'Z (ARRAY INDEX) IZ ALLOWED",
                    Span::new(start as u32, self.pos as u32),
                )
                .with_note("array elements look like arr'Z idx"),
            );
        }
    }

    /// `...` soft line continuation: swallow the dots, trailing blanks
    /// and the newline.
    fn lex_dots(&mut self, start: usize) {
        if self.peek_at(1) == Some(b'.') && self.peek_at(2) == Some(b'.') {
            self.pos += 3;
            while matches!(self.peek_at(0), Some(b' ' | b'\t' | b'\r')) {
                self.pos += 1;
            }
            if self.peek_at(0) == Some(b'\n') {
                self.pos += 1; // swallow: no separator emitted
            } else if self.peek_at(0).is_none() {
                // `...` at EOF: harmless.
            } else {
                self.diags.push(Diagnostic::error(
                    "LEX0003",
                    "STUFF AFTER ... ON DA SAME LINE",
                    Span::new(start as u32, self.pos as u32),
                ));
            }
        } else {
            self.error_char(start);
        }
    }

    fn lex_number(&mut self, start: usize) {
        if self.peek_at(0) == Some(b'-') {
            self.pos += 1;
        }
        while self.peek_at(0).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek_at(0) == Some(b'.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while self.peek_at(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Exponent (needed so the pretty-printer's shortest-float output
        // round-trips, e.g. `1e-7`).
        if matches!(self.peek_at(0), Some(b'e' | b'E')) {
            let mut ahead = 1;
            if matches!(self.peek_at(1), Some(b'+' | b'-')) {
                ahead = 2;
            }
            if self.peek_at(ahead).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += ahead;
                while self.peek_at(0).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32);
        if is_float {
            match text.parse::<f64>() {
                Ok(f) => self.tokens.push(Token { kind: TokenKind::Numbar(f), span }),
                Err(_) => self.diags.push(Diagnostic::error(
                    "LEX0004",
                    format!("DIS NUMBAR IZ 2 WEIRD: {text}"),
                    span,
                )),
            }
        } else {
            match text.parse::<i64>() {
                Ok(n) => self.tokens.push(Token { kind: TokenKind::Numbr(n), span }),
                Err(_) => self.diags.push(Diagnostic::error(
                    "LEX0005",
                    format!("DIS NUMBR IZ 2 BIG 4 ME: {text}"),
                    span,
                )),
            }
        }
    }

    fn lex_word(&mut self, start: usize) {
        while self.peek_at(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        // Comments are handled here because BTW/OBTW are word-shaped.
        match text {
            "BTW" => {
                while self.peek_at(0).is_some_and(|c| c != b'\n') {
                    self.pos += 1;
                }
                // The newline itself is lexed normally (separator).
            }
            "OBTW" => self.skip_block_comment(start),
            _ => {
                let sym = Symbol::intern(text);
                self.push(TokenKind::Word(sym), start);
            }
        }
    }

    /// Skip everything until a `TLDR` word.
    fn skip_block_comment(&mut self, start: usize) {
        loop {
            while self.peek_at(0).is_some_and(|c| !(c.is_ascii_alphabetic() || c == b'_')) {
                self.pos += 1;
            }
            if self.peek_at(0).is_none() {
                self.diags.push(Diagnostic::error(
                    "LEX0006",
                    "OBTW WIFOUT TLDR — UR COMMENT NEVER ENDS",
                    Span::new(start as u32, self.pos as u32),
                ));
                return;
            }
            let wstart = self.pos;
            while self.peek_at(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
            if &self.src[wstart..self.pos] == "TLDR" {
                return;
            }
        }
    }

    fn lex_yarn(&mut self, start: usize) {
        self.pos += 1; // opening quote
        let mut parts: Vec<YarnPart> = Vec::new();
        let mut cur = String::new();
        loop {
            let Some(b) = self.peek_at(0) else {
                self.diags.push(Diagnostic::error(
                    "LEX0007",
                    "DIS YARN NEVER ENDS — MISSING CLOSING QUOTE",
                    Span::new(start as u32, self.pos as u32),
                ));
                break;
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.diags.push(Diagnostic::error(
                        "LEX0008",
                        "YARNS CANT SPAN LINES (USE :) FOR NEWLINE)",
                        Span::new(start as u32, self.pos as u32),
                    ));
                    break;
                }
                b':' => {
                    self.pos += 1;
                    match self.peek_at(0) {
                        Some(b')') => {
                            cur.push('\n');
                            self.pos += 1;
                        }
                        Some(b'>') => {
                            cur.push('\t');
                            self.pos += 1;
                        }
                        Some(b'o') => {
                            cur.push('\x07');
                            self.pos += 1;
                        }
                        Some(b'"') => {
                            cur.push('"');
                            self.pos += 1;
                        }
                        Some(b':') => {
                            cur.push(':');
                            self.pos += 1;
                        }
                        Some(b'(') => {
                            self.pos += 1;
                            let hstart = self.pos;
                            while self.peek_at(0).is_some_and(|c| c != b')' && c != b'"') {
                                self.pos += 1;
                            }
                            let hex = &self.src[hstart..self.pos];
                            if self.peek_at(0) == Some(b')') {
                                self.pos += 1;
                            }
                            match u32::from_str_radix(hex, 16).ok().and_then(char::from_u32) {
                                Some(c) => cur.push(c),
                                None => self.diags.push(Diagnostic::error(
                                    "LEX0009",
                                    format!("BAD HEX ESCAPE :({hex})"),
                                    Span::new(hstart as u32, self.pos as u32),
                                )),
                            }
                        }
                        Some(b'{') => {
                            self.pos += 1;
                            let vstart = self.pos;
                            while self
                                .peek_at(0)
                                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                            {
                                self.pos += 1;
                            }
                            let name = &self.src[vstart..self.pos];
                            if self.peek_at(0) == Some(b'}') {
                                self.pos += 1;
                            } else {
                                self.diags.push(Diagnostic::error(
                                    "LEX0010",
                                    "MISSING } IN :{var} INTERPOLASHUN",
                                    Span::new(vstart as u32, self.pos as u32),
                                ));
                            }
                            if !cur.is_empty() {
                                parts.push(YarnPart::Text(std::mem::take(&mut cur)));
                            }
                            parts.push(YarnPart::Var(lol_ast::Ident::new(
                                Symbol::intern(name),
                                Span::new(vstart as u32, self.pos as u32),
                            )));
                        }
                        other => {
                            self.diags.push(Diagnostic::error(
                                "LEX0011",
                                format!(
                                    "I DUNNO DIS ESCAPE :{}",
                                    other.map(|c| c as char).unwrap_or(' ')
                                ),
                                Span::new((self.pos - 1) as u32, self.pos as u32),
                            ));
                            if other.is_some() {
                                // Skip the whole (possibly multi-byte)
                                // character, not just one byte.
                                let ch = self.src[self.pos..].chars().next().unwrap();
                                self.pos += ch.len_utf8();
                            }
                        }
                    }
                }
                _ => {
                    let ch = self.src[self.pos..].chars().next().unwrap();
                    cur.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        if !cur.is_empty() || parts.is_empty() {
            parts.push(YarnPart::Text(cur));
        }
        self.tokens.push(Token {
            kind: TokenKind::Yarn(parts),
            span: Span::new(start as u32, self.pos as u32),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let out = lex(src);
        assert!(!out.diags.has_errors(), "unexpected lex errors: {:?}", out.diags.into_vec());
        out.tokens.into_iter().map(|t| t.kind).collect()
    }

    fn word(s: &str) -> TokenKind {
        TokenKind::Word(Symbol::intern(s))
    }

    #[test]
    fn lexes_hai_kthxbye() {
        assert_eq!(
            kinds("HAI 1.2\nKTHXBYE"),
            vec![
                word("HAI"),
                TokenKind::Numbar(1.2),
                TokenKind::Separator,
                word("KTHXBYE"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comma_is_separator() {
        assert_eq!(
            kinds("HUGZ, HUGZ"),
            vec![word("HUGZ"), TokenKind::Separator, word("HUGZ"), TokenKind::Eof]
        );
    }

    #[test]
    fn separators_collapse() {
        assert_eq!(
            kinds("HUGZ\n\n,\n,HUGZ"),
            vec![word("HUGZ"), TokenKind::Separator, word("HUGZ"), TokenKind::Eof]
        );
    }

    #[test]
    fn no_leading_separator() {
        assert_eq!(kinds("\n\nHUGZ"), vec![word("HUGZ"), TokenKind::Eof]);
    }

    #[test]
    fn continuation_swallows_newline() {
        assert_eq!(
            kinds("SUM OF ...\n  1 AN 2"),
            vec![
                word("SUM"),
                word("OF"),
                TokenKind::Numbr(1),
                word("AN"),
                TokenKind::Numbr(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_including_negative_and_float() {
        assert_eq!(
            kinds("42 -7 3.25 -0.5 1e-7"),
            vec![
                TokenKind::Numbr(42),
                TokenKind::Numbr(-7),
                TokenKind::Numbar(3.25),
                TokenKind::Numbar(-0.5),
                TokenKind::Numbar(1e-7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tick_z_token() {
        assert_eq!(
            kinds("pos_x'Z i"),
            vec![word("pos_x"), TokenKind::TickZ, word("i"), TokenKind::Eof]
        );
    }

    #[test]
    fn question_and_bang() {
        assert_eq!(
            kinds("O RLY?"),
            vec![word("O"), word("RLY"), TokenKind::Question, TokenKind::Eof]
        );
        assert_eq!(
            kinds("VISIBLE x!"),
            vec![word("VISIBLE"), word("x"), TokenKind::Bang, TokenKind::Eof]
        );
    }

    #[test]
    fn btw_comment_to_eol() {
        assert_eq!(
            kinds("HUGZ BTW dis is ignored ??? ---\nHUGZ"),
            vec![word("HUGZ"), TokenKind::Separator, word("HUGZ"), TokenKind::Eof]
        );
    }

    #[test]
    fn obtw_tldr_block() {
        // The whole block (including its trailing newline separator,
        // suppressed at file start) vanishes.
        assert_eq!(
            kinds("OBTW\n lots of\n stuff 123 ...\nTLDR\nHUGZ"),
            vec![word("HUGZ"), TokenKind::Eof]
        );
    }

    #[test]
    fn yarn_plain() {
        let k = kinds("\"HAI WORLD\"");
        assert_eq!(k[0], TokenKind::Yarn(vec![YarnPart::Text("HAI WORLD".into())]));
    }

    #[test]
    fn yarn_escapes() {
        let k = kinds("\"a:)b:>c:\"d::e:of\"");
        assert_eq!(k[0], TokenKind::Yarn(vec![YarnPart::Text("a\nb\tc\"d:e\x07f".into())]));
    }

    #[test]
    fn yarn_hex_escape() {
        let k = kinds("\":(1F63A)\"");
        assert_eq!(k[0], TokenKind::Yarn(vec![YarnPart::Text("\u{1F63A}".into())]));
    }

    #[test]
    fn yarn_interpolation() {
        let k = kinds("\"HAI :{name}!\"");
        match &k[0] {
            TokenKind::Yarn(parts) => {
                assert_eq!(parts.len(), 3);
                assert_eq!(parts[0], YarnPart::Text("HAI ".into()));
                assert!(matches!(&parts[1], YarnPart::Var(id) if id.sym.as_str() == "name"));
                assert_eq!(parts[2], YarnPart::Text("!".into()));
            }
            other => panic!("expected yarn, got {other:?}"),
        }
    }

    #[test]
    fn empty_yarn() {
        assert_eq!(kinds("\"\"")[0], TokenKind::Yarn(vec![YarnPart::Text(String::new())]));
    }

    #[test]
    fn unterminated_yarn_is_error() {
        let out = lex("\"never ends");
        assert!(out.diags.has_errors());
    }

    #[test]
    fn unterminated_obtw_is_error() {
        let out = lex("OBTW never ends");
        assert!(out.diags.has_errors());
    }

    #[test]
    fn weird_char_is_error_but_recovers() {
        let out = lex("HUGZ @ HUGZ");
        assert!(out.diags.has_errors());
        let words = out.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Word(_))).count();
        assert_eq!(words, 2);
    }

    #[test]
    fn lone_minus_is_error() {
        let out = lex("- 5");
        assert!(out.diags.has_errors());
    }

    #[test]
    fn spans_are_accurate() {
        let out = lex("HAI 1.2");
        assert_eq!(out.tokens[0].span, Span::new(0, 3));
        assert_eq!(out.tokens[1].span, Span::new(4, 7));
    }

    #[test]
    fn paper_nbody_header_lexes() {
        let src = "I HAS A little_time ITZ SRSLY A NUMBAR ...\n  AN ITZ 0.001";
        let k = kinds(src);
        assert!(k.contains(&TokenKind::Numbar(0.001)));
        assert!(k.contains(&word("SRSLY")));
        // Continuation removed the separator.
        assert!(!k.contains(&TokenKind::Separator));
    }
}
