//! # lol-sema — semantic analysis for parallel LOLCODE
//!
//! Runs after parsing and before any backend (interpreter, VM, C
//! emitter). Produces:
//!
//! * a [`SharedLayout`]: every `WE HAS A` variable/array placed at a
//!   fixed word offset in the symmetric heap, with an extra
//!   [`LOCK_WORDS`]-word lock cell for `AN IM SHARIN IT` declarations —
//!   this is the static equivalent of the paper's symmetric data
//!   segment,
//! * a function table with arities,
//! * a [`Features`] summary (`SRS` use, `GIMMEH` use) that lets the
//!   compiled backends reject the dynamic-only constructs up front,
//! * diagnostics: scope errors, misuse of the parallel extensions
//!   (`UR` outside `TXT MAH BFF`, locking something nobody is sharing,
//!   array-size mismatches), and the teaching lints the paper's target
//!   audience needs most (`HUGZ` inside a conditional → your program
//!   hangs when PEs disagree).

#![forbid(unsafe_code)]

mod const_eval;
mod layout;
mod walk;

pub use const_eval::const_eval_i64;
pub use layout::{SharedKind, SharedLayout, SharedVar, LOCK_WORDS};

use lol_ast::diag::Diagnostics;
use lol_ast::{Program, Symbol};
use std::collections::HashMap;

/// Signature of a `HOW IZ I` function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSig {
    pub name: Symbol,
    pub arity: usize,
}

/// Dynamic-language features a program uses (compiled backends reject
/// some of these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Features {
    /// `SRS expr` dynamic identifiers (interpreter-only).
    pub uses_srs: bool,
    /// `GIMMEH` input.
    pub uses_gimmeh: bool,
    /// Any Table II parallel construct (useful for reporting).
    pub uses_parallel: bool,
}

/// The result of semantic analysis.
#[derive(Debug)]
pub struct Analysis {
    pub shared: SharedLayout,
    pub funcs: HashMap<Symbol, FuncSig>,
    pub features: Features,
    pub diags: Diagnostics,
}

impl Analysis {
    /// True when no error-severity diagnostics were produced.
    pub fn is_ok(&self) -> bool {
        !self.diags.has_errors()
    }
}

/// Analyze a parsed program.
pub fn analyze(program: &Program) -> Analysis {
    walk::Checker::run(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_ast::Severity;
    use lol_parser::parse;

    fn analyze_src(src: &str) -> Analysis {
        let p = parse(src).expect_program(src);
        analyze(&p)
    }

    fn ok(src: &str) -> Analysis {
        let a = analyze_src(src);
        assert!(a.is_ok(), "unexpected sema errors: {:?}", a.diags.iter().collect::<Vec<_>>());
        a
    }

    fn err_code(src: &str) -> String {
        let a = analyze_src(src);
        assert!(a.diags.has_errors(), "expected an error for {src:?}");
        let code = a.diags.iter().find(|d| d.severity == Severity::Error).unwrap().code;
        code.to_string()
    }

    fn warn_codes(src: &str) -> Vec<String> {
        analyze_src(src)
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .map(|d| d.code.to_string())
            .collect()
    }

    // -----------------------------------------------------------------
    // Shared layout
    // -----------------------------------------------------------------

    #[test]
    fn layout_places_scalars_and_arrays() {
        let a = ok("HAI 1.2\n\
            WE HAS A x ITZ SRSLY A NUMBR\n\
            WE HAS A arr ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32\n\
            WE HAS A y ITZ SRSLY A NUMBAR\n\
            KTHXBYE");
        let x = a.shared.get(Symbol::intern("x")).unwrap();
        let arr = a.shared.get(Symbol::intern("arr")).unwrap();
        let y = a.shared.get(Symbol::intern("y")).unwrap();
        assert_eq!(x.addr, 0);
        assert_eq!(arr.addr, 1);
        assert_eq!(y.addr, 33);
        assert_eq!(a.shared.total_words, 34);
        assert!(matches!(arr.kind, SharedKind::Array { len: 32 }));
        assert!(x.lock.is_none());
    }

    #[test]
    fn sharin_it_allocates_a_lock_cell() {
        let a = ok("HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nKTHXBYE");
        let x = a.shared.get(Symbol::intern("x")).unwrap();
        assert_eq!(x.addr, 0);
        assert_eq!(x.lock, Some(1));
        assert_eq!(a.shared.total_words, 1 + LOCK_WORDS);
    }

    #[test]
    fn paper_nbody_shared_layout() {
        let a = ok("HAI 1.2\n\
            WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT\n\
            WE HAS A pos_y ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32 AN IM SHARIN IT\n\
            KTHXBYE");
        assert_eq!(a.shared.total_words, 2 * (32 + LOCK_WORDS));
    }

    #[test]
    fn const_size_arithmetic() {
        let a = ok(
            "HAI 1.2\nWE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ PRODUKT OF 4 AN 8\nKTHXBYE",
        );
        let arr = a.shared.get(Symbol::intern("arr")).unwrap();
        assert!(matches!(arr.kind, SharedKind::Array { len: 32 }));
    }

    #[test]
    fn shared_yarn_is_error() {
        assert_eq!(err_code("HAI 1.2\nWE HAS A s ITZ SRSLY A YARN\nKTHXBYE"), "SEM0003");
    }

    #[test]
    fn shared_without_type_is_error() {
        assert_eq!(err_code("HAI 1.2\nWE HAS A x\nKTHXBYE"), "SEM0003");
    }

    #[test]
    fn shared_array_nonconst_size_is_error() {
        assert_eq!(
            err_code("HAI 1.2\nI HAS A n ITZ 4\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ n\nKTHXBYE"),
            "SEM0004"
        );
    }

    #[test]
    fn shared_array_nonpositive_size_is_error() {
        assert_eq!(
            err_code("HAI 1.2\nWE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 0\nKTHXBYE"),
            "SEM0004"
        );
    }

    #[test]
    fn shared_decl_in_nested_block_is_error() {
        assert_eq!(
            err_code(
                "HAI 1.2\nIM IN YR l\nWE HAS A x ITZ SRSLY A NUMBR\nGTFO\nIM OUTTA YR l\nKTHXBYE"
            ),
            "SEM0005"
        );
    }

    #[test]
    fn sharin_private_var_is_error() {
        assert_eq!(err_code("HAI 1.2\nI HAS A x ITZ A NUMBR AN IM SHARIN IT\nKTHXBYE"), "SEM0013");
    }

    // -----------------------------------------------------------------
    // Scoping
    // -----------------------------------------------------------------

    #[test]
    fn undeclared_variable_is_error() {
        assert_eq!(err_code("HAI 1.2\nx R 5\nKTHXBYE"), "SEM0001");
    }

    #[test]
    fn declared_variable_is_fine() {
        ok("HAI 1.2\nI HAS A x\nx R 5\nVISIBLE x\nKTHXBYE");
    }

    #[test]
    fn loop_var_is_auto_declared() {
        ok("HAI 1.2\nIM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\nVISIBLE i\nIM OUTTA YR l\nKTHXBYE");
    }

    #[test]
    fn loop_var_not_visible_after_loop() {
        assert_eq!(
            err_code("HAI 1.2\nIM IN YR l UPPIN YR i TIL BOTH SAEM i AN 3\nIM OUTTA YR l\nVISIBLE i\nKTHXBYE"),
            "SEM0001"
        );
    }

    #[test]
    fn it_is_predeclared() {
        ok("HAI 1.2\nSUM OF 1 AN 2\nVISIBLE IT\nKTHXBYE");
    }

    #[test]
    fn function_params_are_in_scope() {
        ok("HAI 1.2\nHOW IZ I f YR a AN YR b\nFOUND YR SUM OF a AN b\nIF U SAY SO\nKTHXBYE");
    }

    #[test]
    fn function_cannot_see_main_locals() {
        assert_eq!(
            err_code("HAI 1.2\nI HAS A x ITZ 1\nHOW IZ I f\nFOUND YR x\nIF U SAY SO\nKTHXBYE"),
            "SEM0001"
        );
    }

    #[test]
    fn function_can_see_shared_vars() {
        ok("HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nHOW IZ I f\nFOUND YR x\nIF U SAY SO\nKTHXBYE");
    }

    #[test]
    fn duplicate_declaration_same_scope_is_error() {
        assert_eq!(err_code("HAI 1.2\nI HAS A x\nI HAS A x\nKTHXBYE"), "SEM0016");
    }

    #[test]
    fn shadowing_in_nested_scope_is_allowed() {
        ok("HAI 1.2\nI HAS A x ITZ 1\nIM IN YR l\nI HAS A x ITZ 2\nGTFO\nIM OUTTA YR l\nKTHXBYE");
    }

    #[test]
    fn srs_is_flagged_not_checked() {
        let a = ok("HAI 1.2\nI HAS A x\nSRS \"x\" R 5\nKTHXBYE");
        assert!(a.features.uses_srs);
    }

    // -----------------------------------------------------------------
    // Predication / locality
    // -----------------------------------------------------------------

    #[test]
    fn ur_outside_predication_is_error() {
        assert_eq!(
            err_code("HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nVISIBLE UR x\nKTHXBYE"),
            "SEM0002"
        );
    }

    #[test]
    fn ur_inside_txt_stmt_is_ok() {
        ok("HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nI HAS A y\nTXT MAH BFF 0, y R UR x\nKTHXBYE");
    }

    #[test]
    fn ur_inside_txt_block_is_ok() {
        ok("HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nTXT MAH BFF 0 AN STUFF\nx R UR x\nTTYL\nKTHXBYE");
    }

    #[test]
    fn ur_on_private_var_is_error() {
        assert_eq!(
            err_code("HAI 1.2\nI HAS A x ITZ 1\nTXT MAH BFF 0, x R UR x\nKTHXBYE"),
            "SEM0017"
        );
    }

    #[test]
    fn mah_outside_predication_warns() {
        let w = warn_codes("HAI 1.2\nI HAS A x ITZ 1\nVISIBLE MAH x\nKTHXBYE");
        assert!(w.contains(&"SEM0018".to_string()), "{w:?}");
    }

    #[test]
    fn nested_txt_warns() {
        let w = warn_codes(
            "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nTXT MAH BFF 0 AN STUFF\nTXT MAH BFF 1, x R UR x\nTTYL\nKTHXBYE",
        );
        assert!(w.contains(&"SEM0019".to_string()), "{w:?}");
    }

    // -----------------------------------------------------------------
    // Locks
    // -----------------------------------------------------------------

    #[test]
    fn lock_on_shared_with_sharin_is_ok() {
        let a = ok("HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nIM SRSLY MESIN WIF x\nDUN MESIN WIF x\nKTHXBYE");
        assert!(a.features.uses_parallel);
    }

    #[test]
    fn lock_without_sharin_is_error() {
        assert_eq!(
            err_code("HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR\nIM SRSLY MESIN WIF x\nKTHXBYE"),
            "SEM0006"
        );
    }

    #[test]
    fn lock_on_private_var_is_error() {
        assert_eq!(err_code("HAI 1.2\nI HAS A x\nIM MESIN WIF x\nKTHXBYE"), "SEM0006");
    }

    #[test]
    fn lock_on_undeclared_is_error() {
        assert_eq!(err_code("HAI 1.2\nIM MESIN WIF ghost\nKTHXBYE"), "SEM0001");
    }

    // -----------------------------------------------------------------
    // Functions
    // -----------------------------------------------------------------

    #[test]
    fn call_unknown_function_is_error() {
        assert_eq!(err_code("HAI 1.2\nI IZ nope MKAY\nKTHXBYE"), "SEM0007");
    }

    #[test]
    fn call_wrong_arity_is_error() {
        assert_eq!(
            err_code("HAI 1.2\nHOW IZ I f YR a\nFOUND YR a\nIF U SAY SO\nI IZ f MKAY\nKTHXBYE"),
            "SEM0008"
        );
    }

    #[test]
    fn duplicate_function_is_error() {
        assert_eq!(
            err_code(
                "HAI 1.2\nHOW IZ I f\nGTFO\nIF U SAY SO\nHOW IZ I f\nGTFO\nIF U SAY SO\nKTHXBYE"
            ),
            "SEM0011"
        );
    }

    #[test]
    fn found_yr_outside_function_is_error() {
        assert_eq!(err_code("HAI 1.2\nFOUND YR 1\nKTHXBYE"), "SEM0010");
    }

    #[test]
    fn gtfo_at_top_level_is_error() {
        assert_eq!(err_code("HAI 1.2\nGTFO\nKTHXBYE"), "SEM0009");
    }

    #[test]
    fn gtfo_in_loop_switch_function_is_ok() {
        ok("HAI 1.2\nIM IN YR l\nGTFO\nIM OUTTA YR l\nKTHXBYE");
        ok("HAI 1.2\nWTF?\nOMG 1\nGTFO\nOIC\nKTHXBYE");
        ok("HAI 1.2\nHOW IZ I f\nGTFO\nIF U SAY SO\nKTHXBYE");
    }

    // -----------------------------------------------------------------
    // Arrays
    // -----------------------------------------------------------------

    #[test]
    fn indexing_scalar_is_error() {
        assert_eq!(err_code("HAI 1.2\nI HAS A x ITZ 1\nVISIBLE x'Z 0\nKTHXBYE"), "SEM0022");
    }

    #[test]
    fn whole_array_copy_same_size_is_ok() {
        ok("HAI 1.2\n\
            WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n\
            WE HAS A b ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n\
            TXT MAH BFF 0, MAH a R UR b\nKTHXBYE");
    }

    #[test]
    fn whole_array_copy_size_mismatch_is_error() {
        assert_eq!(
            err_code(
                "HAI 1.2\n\
                WE HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n\
                WE HAS A b ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n\
                TXT MAH BFF 0, MAH a R UR b\nKTHXBYE"
            ),
            "SEM0014"
        );
    }

    #[test]
    fn array_into_scalar_is_error() {
        assert_eq!(
            err_code(
                "HAI 1.2\nI HAS A x\nI HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\nx R a\nKTHXBYE"
            ),
            "SEM0015"
        );
    }

    // -----------------------------------------------------------------
    // Teaching lints
    // -----------------------------------------------------------------

    #[test]
    fn hugz_inside_conditional_warns() {
        let w = warn_codes("HAI 1.2\nWIN, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE");
        assert!(w.contains(&"SEM0012".to_string()), "{w:?}");
    }

    #[test]
    fn hugz_at_top_level_is_clean() {
        let a = ok("HAI 1.2\nHUGZ\nKTHXBYE");
        assert!(a.diags.is_empty());
        assert!(a.features.uses_parallel);
    }

    #[test]
    fn hugz_inside_predication_warns() {
        let w = warn_codes("HAI 1.2\nTXT MAH BFF 0 AN STUFF\nHUGZ\nTTYL\nKTHXBYE");
        assert!(w.contains(&"SEM0023".to_string()), "{w:?}");
    }

    // -----------------------------------------------------------------
    // Full paper programs
    // -----------------------------------------------------------------

    #[test]
    fn paper_example_a_analyzes_clean() {
        ok("HAI 1.2\n\
            I HAS A pe ITZ A NUMBR AN ITZ ME\n\
            I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ\n\
            WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32\n\
            I HAS A next_pe ITZ A NUMBR AN ITZ SUM OF pe AN 1\n\
            next_pe R MOD OF next_pe AN n_pes\n\
            TXT MAH BFF next_pe, MAH array R UR array\n\
            KTHXBYE");
    }

    #[test]
    fn paper_example_b_analyzes_clean() {
        ok("HAI 1.2\n\
            I HAS A k ITZ 0\n\
            WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
            TXT MAH BFF k AN STUFF\n\
            IM MESIN WIF UR x\n\
            x R SUM OF x AN 1\n\
            DUN MESIN WIF UR x\n\
            TTYL\n\
            KTHXBYE");
    }
}
