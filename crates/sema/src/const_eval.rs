//! Compile-time evaluation of constant integer expressions.
//!
//! Shared array sizes (`AN THAR IZ <size>`) must be known at analysis
//! time so the symmetric heap can be laid out statically, exactly as
//! the paper's compiler lays out C arrays in the symmetric data
//! segment. Only literals and pure arithmetic fold; anything involving
//! `ME`, variables or randomness is not constant.

use lol_ast::{BinOp, Expr, ExprKind, Lit, UnOp};

/// Evaluate `e` to an `i64` if it is a compile-time constant.
pub fn const_eval_i64(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::Lit(Lit::Numbr(n)) => Some(*n),
        ExprKind::Lit(Lit::Numbar(f)) => {
            // A float literal used as a size truncates, matching the
            // language's NUMBAR->NUMBR cast.
            Some(*f as i64)
        }
        ExprKind::Lit(Lit::Troof(b)) => Some(*b as i64),
        ExprKind::Bin { op, lhs, rhs } => {
            let l = const_eval_i64(lhs)?;
            let r = const_eval_i64(rhs)?;
            Some(match op {
                BinOp::Sum => l.checked_add(r)?,
                BinOp::Diff => l.checked_sub(r)?,
                BinOp::Produkt => l.checked_mul(r)?,
                BinOp::Quoshunt => l.checked_div(r)?,
                BinOp::Mod => l.checked_rem(r)?,
                BinOp::BiggrOf => l.max(r),
                BinOp::SmallrOf => l.min(r),
                _ => return None,
            })
        }
        ExprKind::Un { op: UnOp::Squar, expr } => {
            let v = const_eval_i64(expr)?;
            v.checked_mul(v)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_ast::Span;

    fn num(n: i64) -> Expr {
        Expr::new(ExprKind::Lit(Lit::Numbr(n)), Span::DUMMY)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::new(ExprKind::Bin { op, lhs: Box::new(l), rhs: Box::new(r) }, Span::DUMMY)
    }

    #[test]
    fn literals_fold() {
        assert_eq!(const_eval_i64(&num(32)), Some(32));
        assert_eq!(
            const_eval_i64(&Expr::new(ExprKind::Lit(Lit::Numbar(4.9)), Span::DUMMY)),
            Some(4)
        );
        assert_eq!(
            const_eval_i64(&Expr::new(ExprKind::Lit(Lit::Troof(true)), Span::DUMMY)),
            Some(1)
        );
    }

    #[test]
    fn arithmetic_folds() {
        assert_eq!(const_eval_i64(&bin(BinOp::Sum, num(4), num(8))), Some(12));
        assert_eq!(const_eval_i64(&bin(BinOp::Produkt, num(4), num(8))), Some(32));
        assert_eq!(const_eval_i64(&bin(BinOp::Quoshunt, num(9), num(2))), Some(4));
        assert_eq!(const_eval_i64(&bin(BinOp::Mod, num(9), num(4))), Some(1));
        assert_eq!(const_eval_i64(&bin(BinOp::BiggrOf, num(3), num(7))), Some(7));
        assert_eq!(const_eval_i64(&bin(BinOp::SmallrOf, num(3), num(7))), Some(3));
    }

    #[test]
    fn nested_folds() {
        let e = bin(BinOp::Sum, bin(BinOp::Produkt, num(4), num(4)), num(16));
        assert_eq!(const_eval_i64(&e), Some(32));
    }

    #[test]
    fn me_is_not_constant() {
        assert_eq!(const_eval_i64(&Expr::new(ExprKind::Me, Span::DUMMY)), None);
        assert_eq!(
            const_eval_i64(&bin(BinOp::Sum, num(1), Expr::new(ExprKind::Me, Span::DUMMY))),
            None
        );
    }

    #[test]
    fn whatevr_is_not_constant() {
        assert_eq!(const_eval_i64(&Expr::new(ExprKind::Whatevr, Span::DUMMY)), None);
    }

    #[test]
    fn division_by_zero_is_not_constant() {
        assert_eq!(const_eval_i64(&bin(BinOp::Quoshunt, num(1), num(0))), None);
        assert_eq!(const_eval_i64(&bin(BinOp::Mod, num(1), num(0))), None);
    }

    #[test]
    fn overflow_is_not_constant() {
        assert_eq!(const_eval_i64(&bin(BinOp::Produkt, num(i64::MAX), num(2))), None);
    }

    #[test]
    fn squar_folds() {
        let e = Expr::new(ExprKind::Un { op: UnOp::Squar, expr: Box::new(num(6)) }, Span::DUMMY);
        assert_eq!(const_eval_i64(&e), Some(36));
    }
}
