//! The semantic checker: a context-carrying walk over the AST.

use crate::const_eval::const_eval_i64;
use crate::layout::{SharedKind, SharedLayout};
use crate::{Analysis, Features, FuncSig};
use lol_ast::diag::{Diagnostic, Diagnostics};
use lol_ast::*;
use std::collections::HashMap;

/// What the checker knows about a variable in scope.
#[derive(Debug, Clone)]
struct VarInfo {
    shared: bool,
    /// Has an implicit lock (`AN IM SHARIN IT`).
    sharin: bool,
    is_array: bool,
    /// Array length when statically known.
    array_len: Option<usize>,
    /// Statically typed (`ITZ SRSLY A`): the type is fixed forever.
    pinned: bool,
}

impl VarInfo {
    fn scalar(shared: bool, sharin: bool) -> Self {
        VarInfo { shared, sharin, is_array: false, array_len: None, pinned: false }
    }
}

pub(crate) struct Checker<'p> {
    program: &'p Program,
    diags: Diagnostics,
    shared: SharedLayout,
    funcs: HashMap<Symbol, FuncSig>,
    features: Features,
    /// Scope stack; `scopes[0]` holds globals (shared vars, `IT`).
    scopes: Vec<HashMap<Symbol, VarInfo>>,
    txt_depth: usize,
    loop_depth: usize,
    switch_depth: usize,
    cond_depth: usize,
    in_function: bool,
    /// Directly in the main body (where `WE HAS A` is legal).
    at_top_level: bool,
}

impl<'p> Checker<'p> {
    pub(crate) fn run(program: &'p Program) -> Analysis {
        let mut c = Checker {
            program,
            diags: Diagnostics::new(),
            shared: SharedLayout::default(),
            funcs: HashMap::new(),
            features: Features::default(),
            scopes: vec![HashMap::new()],
            txt_depth: 0,
            loop_depth: 0,
            switch_depth: 0,
            cond_depth: 0,
            in_function: false,
            at_top_level: true,
        };
        // IT is predeclared.
        c.scopes[0].insert(Symbol::it(), VarInfo::scalar(false, false));

        // Functions are hoisted: collect signatures first.
        for f in &program.funcs {
            let sig = FuncSig { name: f.name.sym, arity: f.params.len() };
            if c.funcs.insert(f.name.sym, sig).is_some() {
                c.diags.push(Diagnostic::error(
                    "SEM0011",
                    format!("U ALREADY TOLD ME HOW IZ I {}", f.name.sym),
                    f.name.span,
                ));
            }
        }

        // Main body.
        c.scopes.push(HashMap::new());
        for s in &program.body {
            c.check_stmt(s);
        }
        c.scopes.pop();

        // Function bodies: fresh scope stack over globals only.
        for f in &program.funcs {
            c.in_function = true;
            c.at_top_level = false;
            c.scopes.push(HashMap::new());
            for p in &f.params {
                c.declare(p.sym, VarInfo::scalar(false, false), p.span);
            }
            for s in &f.body {
                c.check_stmt(s);
            }
            c.scopes.pop();
            c.in_function = false;
        }

        Analysis { shared: c.shared, funcs: c.funcs, features: c.features, diags: c.diags }
    }

    // ------------------------------------------------------------------
    // Scope helpers
    // ------------------------------------------------------------------

    fn declare(&mut self, name: Symbol, info: VarInfo, span: Span) {
        let top = self.scopes.last_mut().expect("scope stack never empty");
        match top.entry(name) {
            std::collections::hash_map::Entry::Occupied(_) => self.diags.push(
                Diagnostic::error("SEM0016", format!("U ALREADY HAS A {name} IN DIS SCOPE"), span)
                    .with_note("shadowing is allowed in a nested scope, not the same one"),
            ),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(info);
            }
        }
    }

    fn resolve(&self, name: Symbol) -> Option<VarInfo> {
        for scope in self.scopes.iter().rev() {
            if let Some(i) = scope.get(&name) {
                return Some(i.clone());
            }
        }
        None
    }

    fn in_scope<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.scopes.push(HashMap::new());
        let out = f(self);
        self.scopes.pop();
        out
    }

    /// Enter a nested (non-top-level) region.
    fn nested<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let was_top = self.at_top_level;
        self.at_top_level = false;
        let out = self.in_scope(f);
        self.at_top_level = was_top;
        out
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn check_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Declare(d) => self.check_decl(d),
            StmtKind::Assign { target, value } => {
                self.check_expr(value);
                let tinfo = self.check_lvalue(target);
                // Whole-array copy vs scalar assignment shape checks.
                let vinfo = match &value.kind {
                    ExprKind::Var(vr) => self.varref_info(vr),
                    _ => None,
                };
                let target_is_plain_var = matches!(target, LValue::Var(_));
                let target_is_array =
                    target_is_plain_var && tinfo.as_ref().map(|i| i.is_array).unwrap_or(false);
                let value_is_array = vinfo.as_ref().map(|i| i.is_array).unwrap_or(false);
                match (target_is_array, value_is_array) {
                    (true, true) => {
                        if let (Some(a), Some(b)) = (
                            tinfo.as_ref().and_then(|i| i.array_len),
                            vinfo.as_ref().and_then(|i| i.array_len),
                        ) {
                            if a != b {
                                self.diags.push(Diagnostic::error(
                                    "SEM0014",
                                    format!("ARRAY SIZES DONT MATCH: {a} ELEMENTS CANT HOLD {b}"),
                                    s.span,
                                ));
                            }
                        }
                    }
                    (true, false) | (false, true) => {
                        self.diags.push(Diagnostic::error(
                            "SEM0015",
                            "U CANT MIX A WHOLE ARRAY AN A SCALAR IN ONE ASSIGNMENT".to_string(),
                            s.span,
                        ));
                    }
                    (false, false) => {}
                }
            }
            StmtKind::ExprStmt(e) => self.check_expr(e),
            StmtKind::Visible { args, .. } => {
                for a in args {
                    self.check_expr(a);
                }
            }
            StmtKind::Gimmeh(lv) => {
                self.features.uses_gimmeh = true;
                self.check_lvalue(lv);
            }
            StmtKind::If(ifs) => {
                self.cond_depth += 1;
                self.nested(|c| {
                    for st in &ifs.then_block {
                        c.check_stmt(st);
                    }
                });
                for m in &ifs.mebbes {
                    self.check_expr(&m.cond);
                    self.nested(|c| {
                        for st in &m.body {
                            c.check_stmt(st);
                        }
                    });
                }
                if let Some(e) = &ifs.else_block {
                    self.nested(|c| {
                        for st in e {
                            c.check_stmt(st);
                        }
                    });
                }
                self.cond_depth -= 1;
            }
            StmtKind::Switch(sw) => {
                self.cond_depth += 1;
                self.switch_depth += 1;
                for arm in &sw.arms {
                    self.nested(|c| {
                        for st in &arm.body {
                            c.check_stmt(st);
                        }
                    });
                }
                if let Some(d) = &sw.default {
                    self.nested(|c| {
                        for st in d {
                            c.check_stmt(st);
                        }
                    });
                }
                self.switch_depth -= 1;
                self.cond_depth -= 1;
            }
            StmtKind::Loop(lp) => {
                self.loop_depth += 1;
                self.nested(|c| {
                    if let Some((_, var)) = &lp.update {
                        c.declare(var.sym, VarInfo::scalar(false, false), var.span);
                    }
                    if let Some((_, guard)) = &lp.guard {
                        c.check_expr(guard);
                    }
                    for st in &lp.body {
                        c.check_stmt(st);
                    }
                });
                self.loop_depth -= 1;
            }
            StmtKind::Gtfo => {
                if self.loop_depth == 0 && self.switch_depth == 0 && !self.in_function {
                    self.diags.push(Diagnostic::error(
                        "SEM0009",
                        "GTFO OF WHERE? THERES NO LOOP, SWITCH OR FUNKSHUN HERE".to_string(),
                        s.span,
                    ));
                }
            }
            StmtKind::FoundYr(e) => {
                self.check_expr(e);
                if !self.in_function {
                    self.diags.push(Diagnostic::error(
                        "SEM0010",
                        "FOUND YR ONLY WORKS INSIDE A FUNKSHUN".to_string(),
                        s.span,
                    ));
                }
            }
            StmtKind::IsNowA { target, .. } => {
                let info = self.check_lvalue(target);
                // A SRSLY-typed (or shared) variable's type is part of
                // its compiled layout and cannot change at runtime.
                if let Some(i) = info {
                    if i.pinned || i.shared {
                        self.diags.push(
                            Diagnostic::error(
                                "SEM0024",
                                "SRSLY TYPED AN SHARED VARIABLES KEEP THEIR TYPE 4EVER".to_string(),
                                target.span(),
                            )
                            .with_note("drop SRSLY if u wants dynamic retyping"),
                        );
                    }
                }
            }
            StmtKind::Hugz => {
                self.features.uses_parallel = true;
                if self.cond_depth > 0 {
                    self.diags.push(
                        Diagnostic::warning(
                            "SEM0012",
                            "HUGZ INSIDE A CONDITIONAL — IF NOT ALL PEs TAKE DIS BRANCH UR PROGRAM HANGZ FOREVER"
                                .to_string(),
                            s.span,
                        )
                        .with_note("barriers are collective: every PE must reach them"),
                    );
                }
                if self.txt_depth > 0 {
                    self.diags.push(Diagnostic::warning(
                        "SEM0023",
                        "HUGZ INSIDE TXT MAH BFF DOES NOT TARGET DA BFF — BARRIERS R ALWAYS COLLECTIVE"
                            .to_string(),
                        s.span,
                    ));
                }
            }
            StmtKind::LockAcquire(v) | StmtKind::LockTry(v) | StmtKind::LockRelease(v) => {
                self.features.uses_parallel = true;
                self.check_varref(v);
                if let Some(info) = self.varref_info(v) {
                    if !info.sharin {
                        self.diags.push(
                            Diagnostic::error(
                                "SEM0006",
                                "U CANT MESIN WIF DIS — NOBODY IZ SHARIN IT".to_string(),
                                v.span,
                            )
                            .with_note("declare it WE HAS A ... AN IM SHARIN IT"),
                        );
                    }
                }
            }
            StmtKind::TxtStmt { pe, stmt } => {
                self.features.uses_parallel = true;
                self.check_expr(pe);
                if self.txt_depth > 0 {
                    self.diags.push(Diagnostic::warning(
                        "SEM0019",
                        "TXT MAH BFF INSIDE TXT MAH BFF — DA INNER BFF WINS".to_string(),
                        s.span,
                    ));
                }
                self.txt_depth += 1;
                self.check_stmt(stmt);
                self.txt_depth -= 1;
            }
            StmtKind::TxtBlock { pe, body } => {
                self.features.uses_parallel = true;
                self.check_expr(pe);
                if self.txt_depth > 0 {
                    self.diags.push(Diagnostic::warning(
                        "SEM0019",
                        "TXT MAH BFF INSIDE TXT MAH BFF — DA INNER BFF WINS".to_string(),
                        s.span,
                    ));
                }
                self.txt_depth += 1;
                self.nested(|c| {
                    for st in body {
                        c.check_stmt(st);
                    }
                });
                self.txt_depth -= 1;
            }
        }
    }

    fn check_decl(&mut self, d: &Decl) {
        // Walk size/init expressions first (self-reference is invalid).
        if let Some(sz) = &d.array_size {
            self.check_expr(sz);
        }
        if let Some(init) = &d.init {
            self.check_expr(init);
        }

        match d.scope {
            DeclScope::We => {
                self.features.uses_parallel = true;
                if self.in_function || !self.at_top_level {
                    self.diags.push(
                        Diagnostic::error(
                            "SEM0005",
                            "WE HAS A MUST BE AT DA TOP LEVEL — SYMMETRIC ALLOCASHUN IZ COLLECTIVE"
                                .to_string(),
                            d.span,
                        )
                        .with_note("every PE must execute the declaration in the same order"),
                    );
                    return;
                }
                let Some(ty) = d.ty else {
                    self.diags.push(
                        Diagnostic::error(
                            "SEM0003",
                            format!(
                                "SHARED VARIABLE {} NEEDS A TYPE (NUMBR, NUMBAR OR TROOF)",
                                d.name.sym
                            ),
                            d.span,
                        )
                        .with_note(
                            "symmetric memory is laid out statically, like the paper's C backend",
                        ),
                    );
                    return;
                };
                if !ty.is_word_sized() {
                    self.diags.push(Diagnostic::error(
                        "SEM0003",
                        format!("{} CANT BE SHARED — ONLY WORD-SIZED TYPES (NUMBR, NUMBAR, TROOF) LIV IN SYMMETRIC MEMORY", ty),
                        d.span,
                    ));
                    return;
                }
                let kind = match &d.array_size {
                    None => SharedKind::Scalar,
                    Some(sz) => match const_eval_i64(sz) {
                        Some(n) if n > 0 => SharedKind::Array { len: n as usize },
                        _ => {
                            self.diags.push(
                                Diagnostic::error(
                                    "SEM0004",
                                    "SHARED ARRAY SIZE MUST BE A POSITIVE CONSTANT".to_string(),
                                    sz.span,
                                )
                                .with_note("the symmetric heap is laid out at compile time"),
                            );
                            return;
                        }
                    },
                };
                if self.shared.push(d.name.sym, ty, kind, d.sharin, d.span).is_none() {
                    self.diags.push(Diagnostic::error(
                        "SEM0016",
                        format!("WE ALREADY HAS A {}", d.name.sym),
                        d.span,
                    ));
                    return;
                }
                // Shared vars live in the global scope.
                let info = VarInfo {
                    shared: true,
                    sharin: d.sharin,
                    is_array: matches!(kind, SharedKind::Array { .. }),
                    array_len: match kind {
                        SharedKind::Array { len } => Some(len),
                        SharedKind::Scalar => None,
                    },
                    pinned: true,
                };
                self.scopes[0].insert(d.name.sym, info);
            }
            DeclScope::I => {
                if d.sharin {
                    self.diags.push(
                        Diagnostic::error(
                            "SEM0013",
                            "U CANT BE SHARIN A PRIVATE VARIABLE — USE WE HAS A".to_string(),
                            d.span,
                        )
                        .with_note("locks belong to symmetric shared data (Table II)"),
                    );
                }
                let is_array = d.array_size.is_some();
                let array_len = d.array_size.as_ref().and_then(const_eval_i64).and_then(|n| {
                    if n > 0 {
                        Some(n as usize)
                    } else {
                        None
                    }
                });
                self.declare(
                    d.name.sym,
                    VarInfo {
                        shared: false,
                        sharin: false,
                        is_array,
                        array_len,
                        pinned: d.srsly && !is_array,
                    },
                    d.name.span,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions / references
    // ------------------------------------------------------------------

    fn check_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Lit(Lit::Yarn(parts)) => {
                for p in parts {
                    if let YarnPart::Var(id) = p {
                        if self.resolve(id.sym).is_none() {
                            self.diags.push(Diagnostic::error(
                                "SEM0001",
                                format!("WHO IZ {}? (IN A :{{...}} INTERPOLASHUN)", id.sym),
                                id.span,
                            ));
                        }
                    }
                }
            }
            ExprKind::Lit(_) => {}
            ExprKind::Var(vr) => {
                self.check_varref(vr);
            }
            ExprKind::Index { arr, idx } => {
                self.check_varref(arr);
                if let Some(info) = self.varref_info(arr) {
                    if !info.is_array {
                        self.diags.push(Diagnostic::error(
                            "SEM0022",
                            "DIS IZ NOT AN ARRAY — 'Z ONLY WORKS ON LOTZ A THINGZ".to_string(),
                            arr.span,
                        ));
                    }
                }
                self.check_expr(idx);
            }
            ExprKind::Bin { lhs, rhs, .. } => {
                self.check_expr(lhs);
                self.check_expr(rhs);
            }
            ExprKind::Un { expr, .. } => self.check_expr(expr),
            ExprKind::Nary { args, .. } => {
                for a in args {
                    self.check_expr(a);
                }
            }
            ExprKind::Cast { expr, .. } => self.check_expr(expr),
            ExprKind::Call { name, args } => {
                for a in args {
                    self.check_expr(a);
                }
                match self.funcs.get(&name.sym) {
                    None => self.diags.push(Diagnostic::error(
                        "SEM0007",
                        format!("I DUNNO HOW IZ I {}", name.sym),
                        name.span,
                    )),
                    Some(sig) if sig.arity != args.len() => {
                        self.diags.push(Diagnostic::error(
                            "SEM0008",
                            format!(
                                "{} TAKES {} ARGUMENT(S) BUT I GOTZ {}",
                                name.sym,
                                sig.arity,
                                args.len()
                            ),
                            name.span,
                        ));
                    }
                    Some(_) => {}
                }
            }
            ExprKind::Me | ExprKind::MahFrenz => {
                self.features.uses_parallel = true;
            }
            ExprKind::Whatevr | ExprKind::Whatevar => {}
        }
    }

    fn check_lvalue(&mut self, lv: &LValue) -> Option<VarInfo> {
        match lv {
            LValue::Var(vr) => {
                self.check_varref(vr);
                self.varref_info(vr)
            }
            LValue::Index { arr, idx, .. } => {
                self.check_varref(arr);
                if let Some(info) = self.varref_info(arr) {
                    if !info.is_array {
                        self.diags.push(Diagnostic::error(
                            "SEM0022",
                            "DIS IZ NOT AN ARRAY — 'Z ONLY WORKS ON LOTZ A THINGZ".to_string(),
                            arr.span,
                        ));
                    }
                }
                self.check_expr(idx);
                // Indexed element is scalar-shaped.
                None
            }
        }
    }

    /// Locality + existence checks for a variable reference.
    fn check_varref(&mut self, vr: &VarRef) {
        match vr.locality {
            Locality::Ur => {
                self.features.uses_parallel = true;
                if self.txt_depth == 0 {
                    self.diags.push(
                        Diagnostic::error(
                            "SEM0002",
                            "UR ONLY MAKES SENSE INSIDE TXT MAH BFF — WHOS ADDRESS SPACE IZ DIS?"
                                .to_string(),
                            vr.span,
                        )
                        .with_note("predicate the statement: TXT MAH BFF <pe>, ..."),
                    );
                }
            }
            Locality::Mah => {
                if self.txt_depth == 0 {
                    self.diags.push(Diagnostic::warning(
                        "SEM0018",
                        "MAH OUTSIDE TXT MAH BFF IZ REDUNDANT (EVERYTHIN IZ ALREADY YOURS)"
                            .to_string(),
                        vr.span,
                    ));
                }
            }
            Locality::Unqualified => {}
        }
        match &vr.name {
            VarName::Named(id) => match self.resolve(id.sym) {
                None => self.diags.push(
                    Diagnostic::error("SEM0001", format!("WHO IZ {}?", id.sym), id.span)
                        .with_note("declare it wif I HAS A (or WE HAS A for shared)"),
                ),
                Some(info) => {
                    if vr.locality == Locality::Ur && !info.shared {
                        self.diags.push(
                            Diagnostic::error(
                                "SEM0017",
                                format!(
                                    "{} IZ PRIVATE — ONLY WE HAS A VARIABLES R REMOTELY VISIBLE",
                                    id.sym
                                ),
                                vr.span,
                            )
                            .with_note("the PGAS model shares only symmetric allocations"),
                        );
                    }
                }
            },
            VarName::Srs(e) => {
                self.features.uses_srs = true;
                self.check_expr(e);
            }
        }
    }

    /// Resolve a reference to its VarInfo (named refs only).
    fn varref_info(&self, vr: &VarRef) -> Option<VarInfo> {
        match &vr.name {
            VarName::Named(id) => self.resolve(id.sym),
            VarName::Srs(_) => None,
        }
    }
}

// `program` is kept for future passes (e.g. type inference) — silence
// the field-never-read lint without losing the reference.
impl<'p> Checker<'p> {
    #[allow(dead_code)]
    fn program(&self) -> &'p Program {
        self.program
    }
}
