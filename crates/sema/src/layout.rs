//! Symmetric heap layout for `WE HAS A` declarations.
//!
//! Shared variables get fixed word offsets assigned in declaration
//! order, one instance per PE (the PGAS model of Figure 1). Variables
//! declared `AN IM SHARIN IT` get an adjacent lock cell of
//! [`LOCK_WORDS`] words — the "hidden lock ... acquired and released by
//! association" from Section V of the paper.

use lol_ast::{LolType, Span, Symbol};

/// Words a lock cell occupies. Must match
/// `lol_shmem::lock::LOCK_WORDS` (asserted by the interpreter crate,
/// which sees both).
pub const LOCK_WORDS: usize = 3;

/// Scalar or fixed-size array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedKind {
    Scalar,
    Array { len: usize },
}

impl SharedKind {
    /// Number of data words this object occupies.
    pub fn words(self) -> usize {
        match self {
            SharedKind::Scalar => 1,
            SharedKind::Array { len } => len,
        }
    }
}

/// One shared (symmetric) variable.
#[derive(Debug, Clone)]
pub struct SharedVar {
    pub name: Symbol,
    pub ty: LolType,
    pub kind: SharedKind,
    /// Word offset of the data in every PE's symmetric heap.
    pub addr: u32,
    /// Word offset of the lock cell, when declared `AN IM SHARIN IT`.
    pub lock: Option<u32>,
    pub span: Span,
}

/// The full symmetric layout of a program.
#[derive(Debug, Default)]
pub struct SharedLayout {
    /// Declaration-ordered; programs share a handful of variables, so
    /// name lookup is a linear scan over interned ids — cheaper than
    /// hashing on the interpreter's per-access hot path.
    vars: Vec<SharedVar>,
    /// Total symmetric words needed per PE.
    pub total_words: usize,
}

impl SharedLayout {
    /// Append a shared variable; returns its index, or `None` if the
    /// name is already taken.
    pub(crate) fn push(
        &mut self,
        name: Symbol,
        ty: LolType,
        kind: SharedKind,
        sharin: bool,
        span: Span,
    ) -> Option<&SharedVar> {
        if self.vars.iter().any(|v| v.name == name) {
            return None;
        }
        let addr = self.total_words as u32;
        self.total_words += kind.words();
        let lock = if sharin {
            let l = self.total_words as u32;
            self.total_words += LOCK_WORDS;
            Some(l)
        } else {
            None
        };
        let idx = self.vars.len();
        self.vars.push(SharedVar { name, ty, kind, addr, lock, span });
        Some(&self.vars[idx])
    }

    /// Look up a shared variable by name.
    #[inline]
    pub fn get(&self, name: Symbol) -> Option<&SharedVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// All shared variables in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &SharedVar> {
        self.vars.iter()
    }

    /// Number of shared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the program shares nothing.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_packing() {
        let mut l = SharedLayout::default();
        l.push(Symbol::intern("a"), LolType::Numbr, SharedKind::Scalar, false, Span::DUMMY);
        l.push(
            Symbol::intern("b"),
            LolType::Numbar,
            SharedKind::Array { len: 10 },
            false,
            Span::DUMMY,
        );
        l.push(Symbol::intern("c"), LolType::Numbr, SharedKind::Scalar, true, Span::DUMMY);
        assert_eq!(l.get(Symbol::intern("a")).unwrap().addr, 0);
        assert_eq!(l.get(Symbol::intern("b")).unwrap().addr, 1);
        let c = l.get(Symbol::intern("c")).unwrap();
        assert_eq!(c.addr, 11);
        assert_eq!(c.lock, Some(12));
        assert_eq!(l.total_words, 12 + LOCK_WORDS);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut l = SharedLayout::default();
        assert!(l
            .push(Symbol::intern("x"), LolType::Numbr, SharedKind::Scalar, false, Span::DUMMY)
            .is_some());
        assert!(l
            .push(Symbol::intern("x"), LolType::Numbr, SharedKind::Scalar, false, Span::DUMMY)
            .is_none());
    }

    #[test]
    fn empty_layout() {
        let l = SharedLayout::default();
        assert!(l.is_empty());
        assert_eq!(l.total_words, 0);
        assert!(l.get(Symbol::intern("nope")).is_none());
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let mut l = SharedLayout::default();
        for name in ["one", "two", "three"] {
            l.push(Symbol::intern(name), LolType::Numbr, SharedKind::Scalar, false, Span::DUMMY);
        }
        let names: Vec<_> = l.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two", "three"]);
    }
}
