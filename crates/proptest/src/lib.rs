//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! This workspace builds without network access, so the real proptest
//! crate cannot be fetched. This crate implements the API subset the
//! workspace's property tests use — `Strategy` with `prop_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, `BoxedStrategy`, `Just`,
//! `any`, ranges and tuples as strategies, `collection::vec`,
//! `sample::select`, `option::of`, `char::range`, the `prop_oneof!`
//! (weighted and unweighted) and `proptest!` macros — with plain
//! random generation and **no shrinking**: a failing case panics with
//! the generated inputs left to the assertion message.
//!
//! Generation is deterministic per test (the RNG is seeded from the
//! test's name), so failures reproduce across runs.

use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic xoshiro256** generator driving all strategies.
///
/// `lol_shmem::rng::PeRng` carries its own copy of this algorithm:
/// the stand-in crates mirror crates-io packages and stay
/// dependency-free on purpose. If you fix one generator, fix both.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from raw entropy.
    pub fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Seed deterministically from a test's name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.s = [n0, n1, n2, n3];
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy: Clone + 'static {
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: 'static, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy::from_fn(move |rng| f(self.gen_value(rng)))
    }

    /// Keep only values satisfying `pred` (regenerates on reject).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..10_000 {
                let v = self.gen_value(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter({reason}): rejected 10000 candidates in a row");
        })
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds one
    /// more level from the strategy for the level below. `depth` levels
    /// are stacked, so generation is bounded by construction.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value>,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = recurse(cur).boxed();
        }
        cur
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::from_fn(move |rng| s.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Arc::clone(&self.gen) }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generation function.
    pub fn from_fn<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> Self {
        BoxedStrategy { gen: Arc::new(f) }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges as strategies (uniform over [start, end)).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Simple pattern strategies for `&str`: supports the `.{m,n}` form
/// (a random string of `m..=n` arbitrary printable chars); any other
/// pattern generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        if let Some(rest) = self.strip_prefix(".{") {
            if let Some(body) = rest.strip_suffix('}') {
                if let Some((lo, hi)) = body.split_once(',') {
                    if let (Ok(lo), Ok(hi)) = (lo.parse::<usize>(), hi.parse::<usize>()) {
                        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                        return (0..len)
                            .map(|_| {
                                // Mostly ASCII, some multi-byte soup.
                                if rng.below(8) == 0 {
                                    char::from_u32(0x80 + rng.below(0xFFF) as u32).unwrap_or('¿')
                                } else {
                                    (0x20 + rng.below(0x5F) as u8) as char
                                }
                            })
                            .collect();
                    }
                }
            }
        }
        self.to_string()
    }
}

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
}

/// Weighted union over type-erased branches (used by `prop_oneof!`).
pub fn union<T: 'static>(branches: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
    let total: u64 = branches.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    BoxedStrategy::from_fn(move |rng| {
        let mut pick = rng.below(total);
        for (w, s) in &branches {
            if pick < *w as u64 {
                return s.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    })
}

// ---------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Half raw bit patterns (hits infinities, NaNs, subnormals),
        // half human-scale values.
        if rng.next_u64() & 1 == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            (rng.unit_f64() - 0.5) * 2e6
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    BoxedStrategy::from_fn(A::arbitrary)
}

// ---------------------------------------------------------------------
// Submodules mirroring proptest's layout
// ---------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Accepted sizes for [`vec()`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let n = size.lo + rng.below((size.hi - size.lo) as u64) as usize;
            (0..n).map(|_| element.gen_value(rng)).collect()
        })
    }
}

pub mod sample {
    use super::*;

    /// One element drawn uniformly from the given collection.
    pub fn select<T, C>(options: C) -> BoxedStrategy<T>
    where
        T: Clone + 'static,
        C: Into<Vec<T>>,
    {
        let options: Vec<T> = options.into();
        assert!(!options.is_empty(), "select over an empty collection");
        BoxedStrategy::from_fn(move |rng| options[rng.below(options.len() as u64) as usize].clone())
    }
}

pub mod option {
    use super::*;

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy,
        S::Value: 'static,
    {
        BoxedStrategy::from_fn(
            move |rng| {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(inner.gen_value(rng))
                }
            },
        )
    }
}

pub mod char {
    use super::*;

    /// A char drawn uniformly from `[lo, hi]`.
    pub fn range(
        lo: ::core::primitive::char,
        hi: ::core::primitive::char,
    ) -> BoxedStrategy<::core::primitive::char> {
        assert!(lo <= hi);
        BoxedStrategy::from_fn(move |rng| loop {
            let cp = lo as u32 + rng.below((hi as u32 - lo as u32 + 1) as u64) as u32;
            if let Some(c) = ::core::primitive::char::from_u32(cp) {
                return c;
            }
        })
    }
}

pub mod test_runner {
    pub use super::TestRng;

    /// How many cases each `proptest!` test runs.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// `prop::` path alias, as re-exported by proptest's prelude.
pub mod prop {
    pub use super::char;
    pub use super::{collection, option, sample};
}

pub mod prelude {
    pub use super::test_runner::TestRng;
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Union of strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// No-shrink analog of proptest's `prop_assert!`: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// No-shrink analog of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// No-shrink analog of proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each test body runs `config.cases` times with
/// fresh inputs drawn from its strategies; the RNG is seeded from the
/// test name, so runs are deterministic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_and_filters_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        let s = (-5i64..5).prop_filter("nonzero", |v| *v != 0);
        for _ in 0..500 {
            let v = s.clone().gen_value(&mut rng);
            assert!((-5..5).contains(&v) && v != 0);
        }
    }

    #[test]
    fn oneof_weights_respected_loosely() {
        let mut rng = TestRng::from_seed(3);
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000).filter(|_| s.gen_value(&mut rng) == 1).count();
        assert!(ones > 700, "expected mostly 1s, got {ones}");
    }

    #[test]
    fn recursive_is_bounded() {
        let leaf = Just(0u32);
        let s = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a.max(b) + 1)
        });
        let mut rng = TestRng::from_seed(11);
        for _ in 0..50 {
            assert!(s.gen_value(&mut rng) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(a in 0i64..10, b in 10i64..20) {
            prop_assert!(a < b);
        }

        #[test]
        fn string_pattern_generates_bounded_len(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }
    }
}
