//! The SPMD tree-walking interpreter.
//!
//! One `Interp` runs per PE (per thread); they share the immutable AST
//! and analysis and communicate only through the symmetric heap, which
//! is exactly the paper's execution model: same program, multiple data.

use crate::env::{Env, Slot};
use crate::value::{arith, cast, compare, default_for, RResult, RunError, Value};
use lol_ast::*;
use lol_sema::{Analysis, SharedKind, SharedVar};
use lol_shmem::{Pe, SymAddr};
use std::collections::{HashMap, VecDeque};

/// Control flow escaping a statement.
pub(crate) enum Flow {
    Normal,
    /// `GTFO` — stops the innermost loop or switch.
    Break,
    /// `FOUND YR v` (or function-level `GTFO` with NOOB).
    Return(Value),
}

/// Maximum call depth (`I IZ ... MKAY` recursion guard).
const MAX_CALL_DEPTH: usize = 200;

pub(crate) struct Interp<'a, 'w> {
    analysis: &'a Analysis,
    pe: &'a Pe<'w>,
    /// Base of the program's symmetric segment.
    base: SymAddr,
    env: Env,
    /// Predication stack (`TXT MAH BFF`): innermost BFF last.
    bff: Vec<usize>,
    out: String,
    input: VecDeque<String>,
    funcs: HashMap<Symbol, &'a FuncDef>,
    call_depth: usize,
}

impl<'a, 'w> Interp<'a, 'w> {
    pub(crate) fn new(
        program: &'a Program,
        analysis: &'a Analysis,
        pe: &'a Pe<'w>,
        input: &[String],
    ) -> Self {
        let funcs = program.funcs.iter().map(|f| (f.name.sym, f)).collect();
        // Collectively allocate the symmetric segment (all PEs execute
        // this constructor, so the allocation sequence is uniform).
        let total = analysis.shared.total_words;
        let base = if total > 0 { pe.shmalloc(total) } else { SymAddr(0) };
        Interp {
            analysis,
            pe,
            base,
            env: Env::new(),
            bff: Vec::new(),
            out: String::new(),
            input: input.iter().cloned().collect(),
            funcs,
            call_depth: 0,
        }
    }

    /// Execute the whole program body; returns captured output.
    pub(crate) fn run(mut self, program: &'a Program) -> RResult<String> {
        for s in &program.body {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                Flow::Break | Flow::Return(_) => {
                    return Err(RunError::new("RUN0019", "GTFO/FOUND YR ESCAPED DA PROGRAM BODY"))
                }
            }
        }
        Ok(self.out)
    }

    // ------------------------------------------------------------------
    // Name / locality resolution
    // ------------------------------------------------------------------

    fn resolve_name(&mut self, vr: &VarRef) -> RResult<Symbol> {
        match &vr.name {
            VarName::Named(id) => Ok(id.sym),
            VarName::Srs(e) => {
                let v = self.eval(e)?;
                let s = v.to_yarn()?;
                Ok(Symbol::intern(&s))
            }
        }
    }

    /// Which PE's address space a reference with `locality` touches.
    fn target_pe(&self, locality: Locality) -> RResult<usize> {
        match locality {
            Locality::Ur => self.bff.last().copied().ok_or_else(|| {
                RunError::new("RUN0120", "UR OUTSIDE TXT MAH BFF — WHOS ADDRESS SPACE IZ DIS?")
            }),
            Locality::Mah | Locality::Unqualified => Ok(self.pe.id()),
        }
    }

    fn shared(&self, name: Symbol) -> Option<&'a SharedVar> {
        self.analysis.shared.get(name)
    }

    fn shared_or_err(&self, name: Symbol) -> RResult<&'a SharedVar> {
        self.shared(name).ok_or_else(|| {
            RunError::new(
                "RUN0121",
                format!("{name} IZ NOT SHARED — ONLY WE HAS A VARIABLES R REMOTE"),
            )
        })
    }

    // ------------------------------------------------------------------
    // Symmetric word <-> Value
    // ------------------------------------------------------------------

    fn shared_read(&self, sv: &SharedVar, index: usize, target: usize) -> Value {
        let addr = self.base.offset(sv.addr as usize + index);
        match sv.ty {
            LolType::Numbar => Value::Numbar(self.pe.get_f64(addr, target)),
            LolType::Troof => Value::Troof(self.pe.get_u64(addr, target) != 0),
            _ => Value::Numbr(self.pe.get_i64(addr, target)),
        }
    }

    fn shared_write(&self, sv: &SharedVar, index: usize, target: usize, v: &Value) -> RResult<()> {
        let addr = self.base.offset(sv.addr as usize + index);
        match sv.ty {
            LolType::Numbar => self.pe.put_f64(addr, target, v.to_numbar()?),
            LolType::Troof => self.pe.put_u64(addr, target, v.to_troof() as u64),
            _ => self.pe.put_i64(addr, target, v.to_numbr()?),
        }
        Ok(())
    }

    fn shared_len(sv: &SharedVar) -> RResult<usize> {
        match sv.kind {
            SharedKind::Array { len } => Ok(len),
            SharedKind::Scalar => {
                Err(RunError::new("RUN0122", format!("{} IZ A SCALAR, NOT LOTZ A THINGZ", sv.name)))
            }
        }
    }

    fn check_bounds(name: Symbol, idx: i64, len: usize) -> RResult<usize> {
        if idx < 0 || idx as usize >= len {
            Err(RunError::new(
                "RUN0123",
                format!("INDEX {idx} IZ OUTSIDE {name} (IT HAS {len} THINGZ)"),
            ))
        } else {
            Ok(idx as usize)
        }
    }

    // ------------------------------------------------------------------
    // Reads / writes
    // ------------------------------------------------------------------

    fn read_var(&mut self, vr: &VarRef) -> RResult<Value> {
        let name = self.resolve_name(vr)?;
        if vr.locality == Locality::Ur {
            let sv = self.shared_or_err(name)?;
            if matches!(sv.kind, SharedKind::Array { .. }) {
                return Err(RunError::new(
                    "RUN0011",
                    format!("{name} IZ A WHOLE ARRAY, NOT A VALUE"),
                ));
            }
            let target = self.target_pe(vr.locality)?;
            return Ok(self.shared_read(sv, 0, target));
        }
        // One scan of the environment (not contains + read).
        match self.env.get(name) {
            Some(Slot::Scalar { value, .. }) => return Ok(value.clone()),
            Some(Slot::Array { .. }) => {
                return Err(RunError::new(
                    "RUN0011",
                    format!("{name} IZ A WHOLE ARRAY, NOT A VALUE"),
                ))
            }
            None => {}
        }
        if let Some(sv) = self.shared(name) {
            if matches!(sv.kind, SharedKind::Array { .. }) {
                return Err(RunError::new(
                    "RUN0011",
                    format!("{name} IZ A WHOLE ARRAY, NOT A VALUE"),
                ));
            }
            return Ok(self.shared_read(sv, 0, self.pe.id()));
        }
        Err(RunError::new("RUN0010", format!("WHO IZ {name}?")))
    }

    fn write_var(&mut self, vr: &VarRef, v: Value) -> RResult<()> {
        let name = self.resolve_name(vr)?;
        if vr.locality == Locality::Ur {
            let sv = self.shared_or_err(name)?;
            if matches!(sv.kind, SharedKind::Array { .. }) {
                return Err(RunError::new(
                    "RUN0011",
                    format!("{name} IZ A WHOLE ARRAY — ASSIGN ELEMENTS OR COPY AN ARRAY"),
                ));
            }
            let target = self.target_pe(vr.locality)?;
            return self.shared_write(sv, 0, target, &v);
        }
        match self.env.get_mut(name) {
            Some(Slot::Scalar { value, pinned }) => {
                *value = match pinned {
                    Some(ty) => cast(&v, *ty)?,
                    None => v,
                };
                return Ok(());
            }
            Some(Slot::Array { .. }) => {
                return Err(RunError::new(
                    "RUN0011",
                    format!("{name} IZ A WHOLE ARRAY — ASSIGN ELEMENTS WIF {name}'Z idx"),
                ))
            }
            None => {}
        }
        if let Some(sv) = self.shared(name) {
            if matches!(sv.kind, SharedKind::Array { .. }) {
                return Err(RunError::new(
                    "RUN0011",
                    format!("{name} IZ A WHOLE ARRAY — ASSIGN ELEMENTS OR COPY AN ARRAY"),
                ));
            }
            return self.shared_write(sv, 0, self.pe.id(), &v);
        }
        Err(RunError::new("RUN0010", format!("WHO IZ {name}?")))
    }

    fn read_index(&mut self, arr: &VarRef, idx: &Expr) -> RResult<Value> {
        let name = self.resolve_name(arr)?;
        let i = self.eval(idx)?.to_numbr()?;
        if arr.locality != Locality::Ur {
            match self.env.get(name) {
                Some(Slot::Array { elems, .. }) => {
                    let i = Self::check_bounds(name, i, elems.len())?;
                    return Ok(elems[i].clone());
                }
                Some(Slot::Scalar { .. }) => {
                    return Err(RunError::new("RUN0122", format!("{name} IZ NOT LOTZ A THINGZ")))
                }
                None => {}
            }
        }
        let sv = self.shared_or_err(name)?;
        let len = Self::shared_len(sv)?;
        let i = Self::check_bounds(name, i, len)?;
        let target = self.target_pe(arr.locality)?;
        Ok(self.shared_read(sv, i, target))
    }

    fn write_index(&mut self, arr: &VarRef, idx: &Expr, v: Value) -> RResult<()> {
        let name = self.resolve_name(arr)?;
        let i = self.eval(idx)?.to_numbr()?;
        if arr.locality != Locality::Ur {
            match self.env.get_mut(name) {
                Some(Slot::Array { elems, ty }) => {
                    let i = Self::check_bounds(name, i, elems.len())?;
                    elems[i] = cast(&v, *ty)?;
                    return Ok(());
                }
                Some(Slot::Scalar { .. }) => {
                    return Err(RunError::new("RUN0122", format!("{name} IZ NOT LOTZ A THINGZ")))
                }
                None => {}
            }
        }
        let sv = self.shared_or_err(name)?;
        let len = Self::shared_len(sv)?;
        let i = Self::check_bounds(name, i, len)?;
        let target = self.target_pe(arr.locality)?;
        self.shared_write(sv, i, target, &v)
    }

    /// Does this reference name an array (in its locality)?
    fn is_array_ref(&mut self, vr: &VarRef) -> RResult<bool> {
        let name = self.resolve_name(vr)?;
        if vr.locality != Locality::Ur {
            if let Some(slot) = self.env.get(name) {
                return Ok(matches!(slot, Slot::Array { .. }));
            }
        }
        Ok(self.shared(name).map(|sv| matches!(sv.kind, SharedKind::Array { .. })).unwrap_or(false))
    }

    /// Whole-array copy: `MAH array R UR array` (Section VI.A).
    fn array_copy(&mut self, dst: &VarRef, src: &VarRef) -> RResult<()> {
        // Read the source into values.
        let src_name = self.resolve_name(src)?;
        let local_src = if src.locality != Locality::Ur {
            match self.env.get(src_name) {
                Some(Slot::Array { elems, .. }) => Some(elems.clone()),
                Some(Slot::Scalar { .. }) => {
                    return Err(RunError::new(
                        "RUN0122",
                        format!("{src_name} IZ NOT LOTZ A THINGZ"),
                    ))
                }
                None => None,
            }
        } else {
            None
        };
        let values: Vec<Value> = match local_src {
            Some(v) => v,
            None => {
                let sv = self.shared_or_err(src_name)?;
                let len = Self::shared_len(sv)?;
                let target = self.target_pe(src.locality)?;
                (0..len).map(|i| self.shared_read(sv, i, target)).collect()
            }
        };

        // Write into the destination.
        let dst_name = self.resolve_name(dst)?;
        if dst.locality != Locality::Ur {
            match self.env.get_mut(dst_name) {
                Some(Slot::Array { elems, ty }) => {
                    let converted: RResult<Vec<Value>> =
                        values.iter().map(|v| cast(v, *ty)).collect();
                    *elems = converted?;
                    return Ok(());
                }
                Some(Slot::Scalar { .. }) => {
                    return Err(RunError::new(
                        "RUN0122",
                        format!("{dst_name} IZ NOT LOTZ A THINGZ"),
                    ))
                }
                None => {}
            }
        }
        {
            let sv = self.shared_or_err(dst_name)?;
            let len = Self::shared_len(sv)?;
            if len != values.len() {
                return Err(RunError::new(
                    "RUN0013",
                    format!(
                        "ARRAY COPY SIZE MISMATCH: {dst_name} HAS {len} THINGZ, SOURCE HAS {}",
                        values.len()
                    ),
                ));
            }
            let target = self.target_pe(dst.locality)?;
            for (i, v) in values.iter().enumerate() {
                self.shared_write(sv, i, target, v)?;
            }
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    pub(crate) fn eval(&mut self, e: &Expr) -> RResult<Value> {
        match &e.kind {
            ExprKind::Lit(l) => self.literal(l),
            ExprKind::Var(vr) => self.read_var(vr),
            ExprKind::Index { arr, idx } => self.read_index(arr, idx),
            ExprKind::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                self.binop(*op, a, b)
            }
            ExprKind::Un { op, expr } => {
                let v = self.eval(expr)?;
                self.unop(*op, v)
            }
            ExprKind::Nary { op, args } => self.naryop(*op, args),
            ExprKind::Cast { expr, ty } => {
                let v = self.eval(expr)?;
                cast(&v, *ty)
            }
            ExprKind::Call { name, args } => self.call(name.sym, args),
            ExprKind::Me => Ok(Value::Numbr(self.pe.id() as i64)),
            ExprKind::MahFrenz => Ok(Value::Numbr(self.pe.n_pes() as i64)),
            ExprKind::Whatevr => Ok(Value::Numbr(self.pe.rand_i64())),
            ExprKind::Whatevar => Ok(Value::Numbar(self.pe.rand_f64())),
        }
    }

    fn literal(&mut self, l: &Lit) -> RResult<Value> {
        Ok(match l {
            Lit::Numbr(n) => Value::Numbr(*n),
            Lit::Numbar(f) => Value::Numbar(*f),
            Lit::Troof(b) => Value::Troof(*b),
            Lit::Noob => Value::Noob,
            Lit::Yarn(parts) => {
                let mut s = String::new();
                for p in parts {
                    match p {
                        YarnPart::Text(t) => s.push_str(t),
                        YarnPart::Var(id) => {
                            let vr = VarRef::named(*id);
                            let v = self.read_var(&vr)?;
                            s.push_str(&v.to_yarn()?);
                        }
                    }
                }
                Value::yarn(s)
            }
        })
    }

    fn binop(&mut self, op: BinOp, a: Value, b: Value) -> RResult<Value> {
        use BinOp::*;
        match op {
            Sum | Diff | Produkt | Quoshunt | Mod | BiggrOf | SmallrOf => arith(op, &a, &b),
            Bigger | Smallr => compare(op, &a, &b),
            BothSaem => Ok(Value::Troof(a.saem(&b))),
            Diffrint => Ok(Value::Troof(!a.saem(&b))),
            BothOf => Ok(Value::Troof(a.to_troof() && b.to_troof())),
            EitherOf => Ok(Value::Troof(a.to_troof() || b.to_troof())),
            WonOf => Ok(Value::Troof(a.to_troof() ^ b.to_troof())),
        }
    }

    fn unop(&mut self, op: UnOp, v: Value) -> RResult<Value> {
        match op {
            UnOp::Not => Ok(Value::Troof(!v.to_troof())),
            // Table III: SQUAR OF = v*v (preserves NUMBR-ness).
            UnOp::Squar => arith(BinOp::Produkt, &v, &v),
            UnOp::Unsquar => Ok(Value::Numbar(v.to_numbar()?.sqrt())),
            UnOp::Flip => {
                let f = v.to_numbar()?;
                Ok(Value::Numbar(1.0 / f))
            }
        }
    }

    fn naryop(&mut self, op: NaryOp, args: &[Expr]) -> RResult<Value> {
        match op {
            NaryOp::AllOf => {
                let mut acc = true;
                for a in args {
                    acc &= self.eval(a)?.to_troof();
                }
                Ok(Value::Troof(acc))
            }
            NaryOp::AnyOf => {
                let mut acc = false;
                for a in args {
                    acc |= self.eval(a)?.to_troof();
                }
                Ok(Value::Troof(acc))
            }
            NaryOp::Smoosh => {
                let mut s = String::new();
                for a in args {
                    let v = self.eval(a)?;
                    s.push_str(&v.to_yarn()?);
                }
                Ok(Value::yarn(s))
            }
        }
    }

    fn call(&mut self, name: Symbol, args: &[Expr]) -> RResult<Value> {
        let Some(fd) = self.funcs.get(&name).copied() else {
            return Err(RunError::new("RUN0018", format!("I DUNNO HOW IZ I {name}")));
        };
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(RunError::new(
                "RUN0130",
                format!("2 MUCH RECURSHUN IN {name} (DEPTH {MAX_CALL_DEPTH})"),
            ));
        }
        if fd.params.len() != args.len() {
            return Err(RunError::new(
                "RUN0131",
                format!("{name} TAKES {} ARGS, GOT {}", fd.params.len(), args.len()),
            ));
        }
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.eval(a)?);
        }
        // Fresh frame: functions see params + IT (+ shared vars, which
        // bypass the environment entirely). The frame floor hides every
        // caller binding without allocating a new environment.
        self.env.push_frame();
        for (p, v) in fd.params.iter().zip(argv) {
            self.env.declare(p.sym, Slot::Scalar { value: v, pinned: None });
        }
        self.call_depth += 1;
        let mut result: Option<RResult<Value>> = None;
        for s in &fd.body {
            match self.exec_stmt(s) {
                Ok(Flow::Normal) => {}
                Ok(Flow::Return(v)) => {
                    result = Some(Ok(v));
                    break;
                }
                Ok(Flow::Break) => {
                    // GTFO at function level returns NOOB (LOLCODE 1.2).
                    result = Some(Ok(Value::Noob));
                    break;
                }
                Err(e) => {
                    result = Some(Err(e));
                    break;
                }
            }
        }
        // Fall-through returns the function's IT (LOLCODE 1.2) — read
        // it before the frame unwinds.
        let result = result.unwrap_or_else(|| self.env.read_scalar(Symbol::it()));
        self.call_depth -= 1;
        self.env.pop_frame();
        result
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    pub(crate) fn exec_stmt(&mut self, s: &Stmt) -> RResult<Flow> {
        match &s.kind {
            StmtKind::Declare(d) => {
                self.exec_decl(d)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, value } => {
                self.exec_assign(target, value)?;
                Ok(Flow::Normal)
            }
            StmtKind::ExprStmt(e) => {
                let v = self.eval(e)?;
                self.env.assign_scalar(Symbol::it(), v)?;
                Ok(Flow::Normal)
            }
            StmtKind::Visible { args, newline } => {
                for a in args {
                    let v = self.eval(a)?;
                    let s = v.to_yarn()?;
                    self.out.push_str(&s);
                }
                if *newline {
                    self.out.push('\n');
                }
                Ok(Flow::Normal)
            }
            StmtKind::Gimmeh(lv) => {
                let line = self
                    .input
                    .pop_front()
                    .ok_or_else(|| RunError::new("RUN0140", "GIMMEH BUT THERES NO MOAR INPUT"))?;
                let v = Value::yarn(line);
                self.write_lvalue(lv, v)?;
                Ok(Flow::Normal)
            }
            StmtKind::If(ifs) => self.exec_if(ifs),
            StmtKind::Switch(sw) => self.exec_switch(sw),
            StmtKind::Loop(lp) => self.exec_loop(lp),
            StmtKind::Gtfo => Ok(Flow::Break),
            StmtKind::FoundYr(e) => {
                let v = self.eval(e)?;
                Ok(Flow::Return(v))
            }
            StmtKind::IsNowA { target, ty } => {
                self.exec_is_now_a(target, *ty)?;
                Ok(Flow::Normal)
            }
            StmtKind::Hugz => {
                self.pe.barrier_all();
                Ok(Flow::Normal)
            }
            StmtKind::LockAcquire(vr) => {
                let (addr, target) = self.lock_target(vr)?;
                self.pe.lock(addr, target);
                self.env.assign_scalar(Symbol::it(), Value::Troof(true))?;
                Ok(Flow::Normal)
            }
            StmtKind::LockTry(vr) => {
                let (addr, target) = self.lock_target(vr)?;
                let got = self.pe.try_lock(addr, target);
                self.env.assign_scalar(Symbol::it(), Value::Troof(got))?;
                Ok(Flow::Normal)
            }
            StmtKind::LockRelease(vr) => {
                let (addr, target) = self.lock_target(vr)?;
                self.pe.unlock(addr, target);
                Ok(Flow::Normal)
            }
            StmtKind::TxtStmt { pe, stmt } => {
                let k = self.eval_bff(pe)?;
                self.bff.push(k);
                let r = self.exec_stmt(stmt);
                self.bff.pop();
                r
            }
            StmtKind::TxtBlock { pe, body } => {
                let k = self.eval_bff(pe)?;
                self.bff.push(k);
                self.env.push_scope();
                let mut flow = Flow::Normal;
                let mut err = None;
                for st in body {
                    match self.exec_stmt(st) {
                        Ok(Flow::Normal) => {}
                        Ok(f) => {
                            flow = f;
                            break;
                        }
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                self.env.pop_scope();
                self.bff.pop();
                match err {
                    Some(e) => Err(e),
                    None => Ok(flow),
                }
            }
        }
    }

    fn eval_bff(&mut self, pe_expr: &Expr) -> RResult<usize> {
        let k = self.eval(pe_expr)?.to_numbr()?;
        if k < 0 || k as usize >= self.pe.n_pes() {
            return Err(RunError::new(
                "RUN0017",
                format!("PE {k} IZ NOT MAH FREN (THERE R ONLY {} OF US)", self.pe.n_pes()),
            ));
        }
        Ok(k as usize)
    }

    fn lock_target(&mut self, vr: &VarRef) -> RResult<(SymAddr, usize)> {
        let name = self.resolve_name(vr)?;
        let sv = self.shared_or_err(name)?;
        let Some(lock_off) = sv.lock else {
            return Err(RunError::new(
                "RUN0016",
                format!("{name} HAS NO LOCK — DECLARE IT WIF AN IM SHARIN IT"),
            ));
        };
        let target = self.target_pe(vr.locality)?;
        Ok((self.base.offset(lock_off as usize), target))
    }

    fn exec_decl(&mut self, d: &Decl) -> RResult<()> {
        match d.scope {
            DeclScope::We => {
                // Storage was laid out statically; run the initializer
                // (own instance only).
                if let Some(init) = &d.init {
                    let v = self.eval(init)?;
                    let sv = self.shared_or_err(d.name.sym)?;
                    if matches!(sv.kind, SharedKind::Scalar) {
                        self.shared_write(sv, 0, self.pe.id(), &v)?;
                    }
                }
                Ok(())
            }
            DeclScope::I => {
                if let Some(size) = &d.array_size {
                    let n = self.eval(size)?.to_numbr()?;
                    if n <= 0 {
                        return Err(RunError::new(
                            "RUN0014",
                            format!("ARRAY SIZE MUST BE POSITIVE, NOT {n}"),
                        ));
                    }
                    let ty = d.ty.unwrap_or(LolType::Noob);
                    self.env.declare(
                        d.name.sym,
                        Slot::Array { elems: vec![default_for(ty); n as usize], ty },
                    );
                } else {
                    let value = match (&d.init, d.ty) {
                        (Some(init), Some(ty)) => cast(&self.eval(init)?, ty)?,
                        (Some(init), None) => self.eval(init)?,
                        (None, Some(ty)) => default_for(ty),
                        (None, None) => Value::Noob,
                    };
                    let pinned = if d.srsly { d.ty } else { None };
                    self.env.declare(d.name.sym, Slot::Scalar { value, pinned });
                }
                Ok(())
            }
        }
    }

    fn exec_assign(&mut self, target: &LValue, value: &Expr) -> RResult<()> {
        match target {
            LValue::Var(dst) => {
                // Whole-array copy path (Section VI.A: MAH array R UR
                // array).
                if let ExprKind::Var(src) = &value.kind {
                    let d_arr = self.is_array_ref(dst)?;
                    let s_arr = self.is_array_ref(src)?;
                    match (d_arr, s_arr) {
                        (true, true) => return self.array_copy(dst, src),
                        (true, false) | (false, true) => {
                            return Err(RunError::new(
                                "RUN0012",
                                "U CANT MIX A WHOLE ARRAY AN A SCALAR IN ONE ASSIGNMENT",
                            ))
                        }
                        (false, false) => {}
                    }
                } else if self.is_array_ref(dst)? {
                    return Err(RunError::new(
                        "RUN0012",
                        "AN ARRAY CAN ONLY BE ASSIGNED FROM ANOTHER ARRAY",
                    ));
                }
                let v = self.eval(value)?;
                self.write_var(dst, v)
            }
            LValue::Index { arr, idx, .. } => {
                let v = self.eval(value)?;
                self.write_index(arr, idx, v)
            }
        }
    }

    fn write_lvalue(&mut self, lv: &LValue, v: Value) -> RResult<()> {
        match lv {
            LValue::Var(vr) => self.write_var(vr, v),
            LValue::Index { arr, idx, .. } => self.write_index(arr, idx, v),
        }
    }

    fn exec_is_now_a(&mut self, target: &LValue, ty: LolType) -> RResult<()> {
        match target {
            LValue::Var(vr) => {
                let name = self.resolve_name(vr)?;
                if vr.locality != Locality::Ur {
                    match self.env.get_mut(name) {
                        Some(Slot::Scalar { value, pinned }) => {
                            *value = cast(value, ty)?;
                            if pinned.is_some() {
                                *pinned = Some(ty);
                            }
                            return Ok(());
                        }
                        Some(Slot::Array { .. }) => {
                            return Err(RunError::new(
                                "RUN0011",
                                format!("{name} IZ A WHOLE ARRAY, NOT A VALUE"),
                            ))
                        }
                        None => {}
                    }
                }
                Err(RunError::new(
                    "RUN0015",
                    format!("{name} LIVES IN SYMMETRIC MEMORY — ITS TYPE IZ FIXED 4EVER"),
                ))
            }
            LValue::Index { .. } => {
                Err(RunError::new("RUN0015", "ARRAY ELEMENTS KEEP DA ARRAY'S TYPE"))
            }
        }
    }

    fn exec_if(&mut self, ifs: &IfStmt) -> RResult<Flow> {
        let it = self.env.read_scalar(Symbol::it())?;
        if it.to_troof() {
            return self.exec_block(&ifs.then_block);
        }
        for m in &ifs.mebbes {
            let c = self.eval(&m.cond)?;
            if c.to_troof() {
                return self.exec_block(&m.body);
            }
        }
        if let Some(e) = &ifs.else_block {
            return self.exec_block(e);
        }
        Ok(Flow::Normal)
    }

    fn exec_switch(&mut self, sw: &SwitchStmt) -> RResult<Flow> {
        let it = self.env.read_scalar(Symbol::it())?;
        // Find the first matching arm.
        let mut start = None;
        for (i, arm) in sw.arms.iter().enumerate() {
            let lit_v = self.literal(&arm.value)?;
            if it.saem(&lit_v) {
                start = Some(i);
                break;
            }
        }
        match start {
            Some(i) => {
                // Fallthrough: run arms i.. then default, until GTFO.
                for arm in &sw.arms[i..] {
                    match self.exec_block(&arm.body)? {
                        Flow::Normal => {}
                        Flow::Break => return Ok(Flow::Normal),
                        f @ Flow::Return(_) => return Ok(f),
                    }
                }
                if let Some(d) = &sw.default {
                    match self.exec_block(d)? {
                        Flow::Normal | Flow::Break => {}
                        f @ Flow::Return(_) => return Ok(f),
                    }
                }
                Ok(Flow::Normal)
            }
            None => {
                if let Some(d) = &sw.default {
                    match self.exec_block(d)? {
                        Flow::Normal | Flow::Break => Ok(Flow::Normal),
                        f @ Flow::Return(_) => Ok(f),
                    }
                } else {
                    Ok(Flow::Normal)
                }
            }
        }
    }

    fn exec_loop(&mut self, lp: &LoopStmt) -> RResult<Flow> {
        self.env.push_scope();
        if let Some((_, var)) = &lp.update {
            self.env.declare(var.sym, Slot::Scalar { value: Value::Numbr(0), pinned: None });
        }
        let mut out = Flow::Normal;
        loop {
            // Guard first (TIL stops when WIN, WILE stops when FAIL).
            if let Some((kind, guard)) = &lp.guard {
                let g = match self.eval(guard) {
                    Ok(v) => v.to_troof(),
                    Err(e) => {
                        self.env.pop_scope();
                        return Err(e);
                    }
                };
                let stop = match kind {
                    GuardKind::Til => g,
                    GuardKind::Wile => !g,
                };
                if stop {
                    break;
                }
            }
            // Body.
            let mut broke = false;
            for st in &lp.body {
                match self.exec_stmt(st) {
                    Ok(Flow::Normal) => {}
                    Ok(Flow::Break) => {
                        broke = true;
                        break;
                    }
                    Ok(f @ Flow::Return(_)) => {
                        self.env.pop_scope();
                        return Ok(f);
                    }
                    Err(e) => {
                        self.env.pop_scope();
                        return Err(e);
                    }
                }
            }
            if broke {
                break;
            }
            // Update clause.
            if let Some((dir, var)) = &lp.update {
                let cur = match self.env.read_scalar(var.sym) {
                    Ok(v) => v,
                    Err(e) => {
                        self.env.pop_scope();
                        return Err(e);
                    }
                };
                let delta = Value::Numbr(1);
                let op = match dir {
                    LoopDir::Uppin => BinOp::Sum,
                    LoopDir::Nerfin => BinOp::Diff,
                };
                let next = match arith(op, &cur, &delta) {
                    Ok(v) => v,
                    Err(e) => {
                        self.env.pop_scope();
                        return Err(e);
                    }
                };
                if let Err(e) = self.env.assign_scalar(var.sym, next) {
                    self.env.pop_scope();
                    return Err(e);
                }
            } else if lp.guard.is_none() {
                // Infinite loop without GTFO would spin forever; that is
                // the program's own business (matches lci).
            }
            out = Flow::Normal;
        }
        self.env.pop_scope();
        Ok(out)
    }

    fn exec_block(&mut self, b: &Block) -> RResult<Flow> {
        self.env.push_scope();
        let mut flow = Flow::Normal;
        for st in b {
            match self.exec_stmt(st) {
                Ok(Flow::Normal) => {}
                Ok(f) => {
                    flow = f;
                    break;
                }
                Err(e) => {
                    self.env.pop_scope();
                    return Err(e);
                }
            }
        }
        self.env.pop_scope();
        Ok(flow)
    }
}
