//! # lol-interp — SPMD tree-walking interpreter for parallel LOLCODE
//!
//! The execution engine corresponding to the original `lci` interpreter
//! [2 in the paper], extended with the paper's parallel semantics: it
//! runs the *same* program on every PE over the [`lol_shmem`] PGAS
//! substrate. `VISIBLE` output is captured per PE and returned in PE
//! order (deterministic for tests; the CLI prints it PE-tagged).
//!
//! The interpreter supports the *entire* language, including the
//! dynamic constructs (`SRS`, `IS NOW A`, dynamically sized local
//! arrays) that the compiled backends reject — exactly the
//! flexibility/efficiency trade the paper describes between its
//! interpreter and compiler paths.
//!
//! One consequence of tree-walking: a PE's mid-execution state lives
//! on the Rust call stack, so this engine is inherently
//! thread-per-PE. The discrete-event engine (`lol-sim`, which
//! simulates 1k–1M PEs on one thread) instead drives the bytecode
//! VM's resumable `Machine`, whose state is an explicit heap object
//! that can park and resume without a stack — the `SRS`-less subset
//! is the price of mega-scale.

#![forbid(unsafe_code)]

mod env;
mod exec;
pub mod value;

pub use value::{RResult, RunError, Value};

use exec::Interp;
use lol_ast::Program;
use lol_sema::Analysis;
use lol_shmem::Pe;

// The lock layout planned by sema must match the substrate's.
const _: () = assert!(lol_sema::LOCK_WORDS == lol_shmem::lock::LOCK_WORDS);

/// Run `program` on a single PE (call from inside
/// [`lol_shmem::run_spmd`], one call per PE). Returns the PE's captured
/// `VISIBLE` output.
///
/// This is the whole public execution surface of the crate: SPMD
/// launching, output collection and statistics gathering live in the
/// `lolcode` driver's `InterpEngine`, which runs a compiled artifact
/// through this entry point on every PE.
pub fn run_on_pe(
    program: &Program,
    analysis: &Analysis,
    pe: &Pe<'_>,
    input: &[String],
) -> Result<String, RunError> {
    Interp::new(program, analysis, pe, input).run(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_parser::parse;
    use lol_sema::analyze;
    use lol_shmem::{run_spmd, ShmemConfig, SpmdError};
    use std::time::Duration;

    fn cfg(n: usize) -> ShmemConfig {
        ShmemConfig::new(n).timeout(Duration::from_secs(15))
    }

    /// SPMD launch helper (what `lolcode`'s `InterpEngine` does, minus
    /// the stats/timing plumbing).
    fn run_parallel(
        program: &Program,
        analysis: &Analysis,
        cfg: ShmemConfig,
    ) -> Result<Vec<String>, SpmdError> {
        run_parallel_with_input(program, analysis, cfg, &[])
    }

    fn run_parallel_with_input(
        program: &Program,
        analysis: &Analysis,
        cfg: ShmemConfig,
        input: &[String],
    ) -> Result<Vec<String>, SpmdError> {
        run_spmd(cfg, |pe| match run_on_pe(program, analysis, pe, input) {
            Ok(out) => out,
            Err(e) => pe.fail(e.to_string()),
        })
    }

    /// Parse + analyze + run on `n` PEs, returning per-PE outputs.
    fn run_n(n: usize, src: &str) -> Vec<String> {
        let p = parse(src).expect_program(src);
        let a = analyze(&p);
        assert!(a.is_ok(), "sema failed: {:?}", a.diags.iter().collect::<Vec<_>>());
        run_parallel(&p, &a, cfg(n)).expect("run failed")
    }

    /// Single-PE run returning the one output.
    fn run1(src: &str) -> String {
        run_n(1, src).pop().unwrap()
    }

    fn run1_input(src: &str, input: &[&str]) -> String {
        let p = parse(src).expect_program(src);
        let a = analyze(&p);
        assert!(a.is_ok());
        let input: Vec<String> = input.iter().map(|s| s.to_string()).collect();
        run_parallel_with_input(&p, &a, cfg(1), &input).expect("run failed").pop().unwrap()
    }

    fn run_err(n: usize, src: &str) -> SpmdError {
        let p = parse(src).expect_program(src);
        let a = analyze(&p);
        assert!(a.is_ok(), "sema failed: {:?}", a.diags.iter().collect::<Vec<_>>());
        run_parallel(&p, &a, cfg(n).timeout(Duration::from_secs(5))).unwrap_err()
    }

    fn prog(body: &str) -> String {
        format!("HAI 1.2\n{body}\nKTHXBYE")
    }

    // -----------------------------------------------------------------
    // Sequential language basics (Table I)
    // -----------------------------------------------------------------

    #[test]
    fn hello_world() {
        assert_eq!(run1(&prog("VISIBLE \"HAI WORLD\"")), "HAI WORLD\n");
    }

    #[test]
    fn visible_concatenates_and_bang() {
        assert_eq!(run1(&prog("VISIBLE \"A\" \"B\" 3")), "AB3\n");
        assert_eq!(run1(&prog("VISIBLE \"X\"!")), "X");
    }

    #[test]
    fn arithmetic_chain() {
        assert_eq!(run1(&prog("VISIBLE SUM OF 2 AN PRODUKT OF 3 AN 4")), "14\n");
        assert_eq!(run1(&prog("VISIBLE QUOSHUNT OF 7 AN 2")), "3\n");
        assert_eq!(run1(&prog("VISIBLE QUOSHUNT OF 7.0 AN 2")), "3.50\n");
        assert_eq!(run1(&prog("VISIBLE MOD OF 17 AN 5")), "2\n");
        assert_eq!(run1(&prog("VISIBLE DIFF OF 3 AN 10")), "-7\n");
    }

    #[test]
    fn variables_and_assignment() {
        assert_eq!(run1(&prog("I HAS A x ITZ 5\nx R SUM OF x AN 1\nVISIBLE x")), "6\n");
    }

    #[test]
    fn typed_declaration_defaults() {
        assert_eq!(run1(&prog("I HAS A x ITZ A NUMBR\nVISIBLE x")), "0\n");
        assert_eq!(run1(&prog("I HAS A f ITZ A NUMBAR\nVISIBLE f")), "0.00\n");
        assert_eq!(run1(&prog("I HAS A t ITZ A TROOF\nVISIBLE t")), "FAIL\n");
    }

    #[test]
    fn srsly_static_typing_coerces() {
        // The paper's static typing extension: assignments coerce to
        // the pinned type.
        assert_eq!(run1(&prog("I HAS A x ITZ SRSLY A NUMBR\nx R \"42\"\nVISIBLE x")), "42\n");
        assert_eq!(run1(&prog("I HAS A x ITZ SRSLY A NUMBR\nx R 3.9\nVISIBLE x")), "3\n");
    }

    #[test]
    fn it_and_o_rly() {
        assert_eq!(
            run1(&prog(
                "BOTH SAEM 1 AN 1, O RLY?\nYA RLY\nVISIBLE \"yes\"\nNO WAI\nVISIBLE \"no\"\nOIC"
            )),
            "yes\n"
        );
        assert_eq!(
            run1(&prog(
                "BOTH SAEM 1 AN 2, O RLY?\nYA RLY\nVISIBLE \"yes\"\nNO WAI\nVISIBLE \"no\"\nOIC"
            )),
            "no\n"
        );
    }

    #[test]
    fn mebbe_arms() {
        let src = prog(
            "I HAS A x ITZ 2\n\
             BOTH SAEM x AN 1, O RLY?\n\
             YA RLY\nVISIBLE \"one\"\n\
             MEBBE BOTH SAEM x AN 2\nVISIBLE \"two\"\n\
             NO WAI\nVISIBLE \"other\"\nOIC",
        );
        assert_eq!(run1(&src), "two\n");
    }

    #[test]
    fn wtf_switch_with_fallthrough_and_gtfo() {
        let src = prog(
            "I HAS A x ITZ 1\n\
             x, WTF?\n\
             OMG 1\nVISIBLE \"one\"\n\
             OMG 2\nVISIBLE \"two\"\nGTFO\n\
             OMG 3\nVISIBLE \"three\"\n\
             OMGWTF\nVISIBLE \"default\"\nOIC",
        );
        // Arm 1 matches, falls through into arm 2, GTFO stops.
        assert_eq!(run1(&src), "one\ntwo\n");
    }

    #[test]
    fn wtf_default_arm() {
        let src = prog(
            "I HAS A x ITZ 9\nx, WTF?\nOMG 1\nVISIBLE \"one\"\nOMGWTF\nVISIBLE \"dunno\"\nOIC",
        );
        assert_eq!(run1(&src), "dunno\n");
    }

    #[test]
    fn counted_loop_uppin() {
        let src = prog("IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\nVISIBLE i!\nIM OUTTA YR l");
        assert_eq!(run1(&src), "0123");
    }

    #[test]
    fn nerfin_wile_loop() {
        let src = prog(
            "I HAS A n ITZ 3\nIM IN YR l NERFIN YR i WILE BIGGER n AN 0\nVISIBLE n!\nn R DIFF OF n AN 1\nIM OUTTA YR l",
        );
        assert_eq!(run1(&src), "321");
    }

    #[test]
    fn gtfo_breaks_loop() {
        let src = prog(
            "IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 100\n\
             BOTH SAEM i AN 3, O RLY?\nYA RLY\nGTFO\nOIC\nVISIBLE i!\nIM OUTTA YR l",
        );
        assert_eq!(run1(&src), "012");
    }

    #[test]
    fn nested_loops_same_label() {
        let src = prog(
            "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 2\n\
             IM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 2\n\
             VISIBLE SMOOSH i j MKAY!\n\
             IM OUTTA YR loop\nIM OUTTA YR loop",
        );
        assert_eq!(run1(&src), "00011011");
    }

    #[test]
    fn functions_and_recursion() {
        let src = "HAI 1.2\n\
            HOW IZ I fact YR n\n\
            BOTH SAEM n AN 0, O RLY?\n\
            YA RLY\nFOUND YR 1\nOIC\n\
            FOUND YR PRODUKT OF n AN I IZ fact YR DIFF OF n AN 1 MKAY\n\
            IF U SAY SO\n\
            VISIBLE I IZ fact YR 10 MKAY\n\
            KTHXBYE";
        assert_eq!(run1(src), "3628800\n");
    }

    #[test]
    fn function_fallthrough_returns_it() {
        let src = "HAI 1.2\nHOW IZ I f\nSUM OF 40 AN 2\nIF U SAY SO\nVISIBLE I IZ f MKAY\nKTHXBYE";
        assert_eq!(run1(src), "42\n");
    }

    #[test]
    fn function_gtfo_returns_noob_troof_cast() {
        let src =
            "HAI 1.2\nHOW IZ I f\nGTFO\nIF U SAY SO\nVISIBLE MAEK I IZ f MKAY A TROOF\nKTHXBYE";
        assert_eq!(run1(src), "FAIL\n");
    }

    #[test]
    fn infinite_recursion_is_diagnosed() {
        let src =
            "HAI 1.2\nHOW IZ I f\nFOUND YR I IZ f MKAY\nIF U SAY SO\nVISIBLE I IZ f MKAY\nKTHXBYE";
        let e = run_err(1, src);
        assert!(e.message.contains("RUN0130"), "{}", e.message);
    }

    #[test]
    fn smoosh_and_casts() {
        assert_eq!(run1(&prog("VISIBLE SMOOSH \"a\" AN 1 AN WIN MKAY")), "a1WIN\n");
        assert_eq!(run1(&prog("VISIBLE MAEK \"42\" A NUMBR")), "42\n");
        assert_eq!(run1(&prog("VISIBLE MAEK 3.7 A NUMBR")), "3\n");
        assert_eq!(run1(&prog("VISIBLE MAEK 3 A NUMBAR")), "3.00\n");
    }

    #[test]
    fn is_now_a() {
        assert_eq!(
            run1(&prog("I HAS A x ITZ \"5\"\nx IS NOW A NUMBR\nVISIBLE SUM OF x AN 1")),
            "6\n"
        );
    }

    #[test]
    fn boolean_ops() {
        assert_eq!(run1(&prog("VISIBLE BOTH OF WIN AN FAIL")), "FAIL\n");
        assert_eq!(run1(&prog("VISIBLE EITHER OF WIN AN FAIL")), "WIN\n");
        assert_eq!(run1(&prog("VISIBLE WON OF WIN AN WIN")), "FAIL\n");
        assert_eq!(run1(&prog("VISIBLE NOT FAIL")), "WIN\n");
        assert_eq!(run1(&prog("VISIBLE ALL OF WIN AN WIN AN FAIL MKAY")), "FAIL\n");
        assert_eq!(run1(&prog("VISIBLE ANY OF FAIL AN WIN MKAY")), "WIN\n");
    }

    #[test]
    fn srs_dynamic_identifiers() {
        let src = prog("I HAS A x ITZ 7\nI HAS A name ITZ \"x\"\nVISIBLE SRS name");
        assert_eq!(run1(&src), "7\n");
    }

    #[test]
    fn yarn_interpolation() {
        let src = prog("I HAS A cat ITZ \"CEILING\"\nVISIBLE \"HAI :{cat} CAT\"");
        assert_eq!(run1(&src), "HAI CEILING CAT\n");
    }

    #[test]
    fn gimmeh_reads_input() {
        let src = prog("I HAS A x\nGIMMEH x\nVISIBLE SMOOSH \"GOT \" x MKAY");
        assert_eq!(run1_input(&src, &["CHEEZ"]), "GOT CHEEZ\n");
    }

    #[test]
    fn gimmeh_without_input_errors() {
        let e = run_err(1, &prog("I HAS A x\nGIMMEH x"));
        assert!(e.message.contains("RUN0140"), "{}", e.message);
    }

    #[test]
    fn local_arrays() {
        let src = prog(
            "I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 5\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n\
             a'Z i R SQUAR OF i\n\
             IM OUTTA YR l\n\
             VISIBLE a'Z 4",
        );
        assert_eq!(run1(&src), "16\n");
    }

    #[test]
    fn dynamic_local_array_size() {
        // "real arrays that can be dynamically sized" (paper §II.B).
        let src = prog(
            "I HAS A n ITZ 3\n\
             I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ PRODUKT OF n AN 2\n\
             a'Z 5 R 99\nVISIBLE a'Z 5",
        );
        assert_eq!(run1(&src), "99\n");
    }

    #[test]
    fn array_out_of_bounds_is_diagnosed() {
        let e = run_err(1, &prog("I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 3\nVISIBLE a'Z 5"));
        assert!(e.message.contains("RUN0123"), "{}", e.message);
    }

    #[test]
    fn division_by_zero_is_diagnosed() {
        let e = run_err(1, &prog("VISIBLE QUOSHUNT OF 1 AN 0"));
        assert!(e.message.contains("RUN0001"), "{}", e.message);
    }

    #[test]
    fn table3_math_extensions() {
        assert_eq!(run1(&prog("VISIBLE SQUAR OF 7")), "49\n");
        assert_eq!(run1(&prog("VISIBLE UNSQUAR OF 16")), "4.00\n");
        assert_eq!(run1(&prog("VISIBLE FLIP OF 4")), "0.25\n");
        // WHATEVR / WHATEVAR produce in-range values.
        let out = run1(&prog(
            "I HAS A r ITZ WHATEVR\nVISIBLE BOTH OF NOT SMALLR r AN 0 AN SMALLR r AN 2147483648",
        ));
        assert_eq!(out, "WIN\n");
        let out = run1(&prog(
            "I HAS A f ITZ WHATEVAR\nVISIBLE BOTH OF NOT SMALLR f AN 0.0 AN SMALLR f AN 1.0",
        ));
        assert_eq!(out, "WIN\n");
    }

    // -----------------------------------------------------------------
    // Parallel semantics (Table II)
    // -----------------------------------------------------------------

    #[test]
    fn me_and_mah_frenz() {
        let outs = run_n(4, &prog("VISIBLE \"PE \" ME \" OF \" MAH FRENZ"));
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o, &format!("PE {i} OF 4\n"));
        }
    }

    #[test]
    fn shared_scalar_is_per_pe() {
        let src = prog("WE HAS A x ITZ SRSLY A NUMBR\nx R PRODUKT OF ME AN 10\nHUGZ\nVISIBLE x");
        let outs = run_n(4, &src);
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o, &format!("{}\n", i * 10));
        }
    }

    #[test]
    fn txt_mah_bff_remote_read() {
        // Every PE reads PE 0's x.
        let src = prog(
            "WE HAS A x ITZ SRSLY A NUMBR\n\
             x R PRODUKT OF ME AN 10\nHUGZ\n\
             I HAS A y ITZ A NUMBR\n\
             TXT MAH BFF 0, y R UR x\n\
             VISIBLE y",
        );
        let outs = run_n(4, &src);
        for o in outs {
            assert_eq!(o, "0\n");
        }
    }

    #[test]
    fn txt_mah_bff_remote_write() {
        // Figure 2 / Section VI.C: TXT MAH BFF k, UR b R MAH a; HUGZ.
        let src = prog(
            "WE HAS A a ITZ SRSLY A NUMBR\n\
             WE HAS A b ITZ SRSLY A NUMBR\n\
             WE HAS A c ITZ SRSLY A NUMBR\n\
             a R SUM OF ME AN 1\nHUGZ\n\
             I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             TXT MAH BFF k, UR b R MAH a\n\
             HUGZ\n\
             c R SUM OF a AN b\nVISIBLE c",
        );
        let n = 6;
        let outs = run_n(n, &src);
        for (me, o) in outs.iter().enumerate() {
            let left = (me + n - 1) % n;
            assert_eq!(o, &format!("{}\n", (me + 1) + (left + 1)));
        }
    }

    #[test]
    fn multi_remote_reference_statement() {
        // Section V: MAH x R SUM OF UR y AN UR z.
        let src = prog(
            "WE HAS A y ITZ SRSLY A NUMBR\n\
             WE HAS A z ITZ SRSLY A NUMBR\n\
             I HAS A x\n\
             y R SUM OF ME AN 100\nz R SUM OF ME AN 200\nHUGZ\n\
             TXT MAH BFF 0, MAH x R SUM OF UR y AN UR z\n\
             VISIBLE x",
        );
        let outs = run_n(3, &src);
        for o in outs {
            assert_eq!(o, "300\n");
        }
    }

    #[test]
    fn txt_block_with_remote_indexing() {
        let src = prog(
            "WE HAS A arr ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 4\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\n\
             arr'Z i R SUM OF PRODUKT OF ME AN 100 AN i\n\
             IM OUTTA YR l\n\
             HUGZ\n\
             I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             I HAS A got\n\
             TXT MAH BFF k AN STUFF\n\
             got R UR arr'Z 2\n\
             TTYL\n\
             VISIBLE got",
        );
        let n = 3;
        let outs = run_n(n, &src);
        for (me, o) in outs.iter().enumerate() {
            let k = (me + 1) % n;
            assert_eq!(o, &format!("{}\n", k * 100 + 2));
        }
    }

    #[test]
    fn whole_array_circular_copy_example_a() {
        // Section VI.A, complete.
        let src = prog(
            "I HAS A pe ITZ A NUMBR AN ITZ ME\n\
             I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ\n\
             WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32\n\
             I HAS A next_pe ITZ A NUMBR AN ITZ SUM OF pe AN 1\n\
             next_pe R MOD OF next_pe AN n_pes\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 32\n\
             array'Z i R SUM OF PRODUKT OF pe AN 1000 AN i\n\
             IM OUTTA YR l\n\
             HUGZ\n\
             I HAS A mine ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32\n\
             TXT MAH BFF next_pe, MAH mine R UR array\n\
             VISIBLE mine'Z 31",
        );
        let n = 4;
        let outs = run_n(n, &src);
        for (me, o) in outs.iter().enumerate() {
            let next = (me + 1) % n;
            assert_eq!(o, &format!("{}\n", next * 1000 + 31));
        }
    }

    #[test]
    fn locks_example_b_remote_increment() {
        // Section VI.B with the faithful remote-increment variant
        // (DESIGN.md §3.1): every PE increments PE 0's x under its lock.
        let src = prog(
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
             HUGZ\n\
             I HAS A i ITZ 0\n\
             IM IN YR l UPPIN YR j TIL BOTH SAEM j AN 50\n\
             TXT MAH BFF 0 AN STUFF\n\
             IM SRSLY MESIN WIF UR x\n\
             UR x R SUM OF UR x AN 1\n\
             DUN MESIN WIF UR x\n\
             TTYL\n\
             IM OUTTA YR l\n\
             HUGZ\n\
             VISIBLE x",
        );
        let n = 4;
        let outs = run_n(n, &src);
        assert_eq!(outs[0], format!("{}\n", n * 50));
    }

    #[test]
    fn trylock_sets_it() {
        let src = prog(
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
             IM MESIN WIF x, O RLY?\n\
             YA RLY\nVISIBLE \"GOT IT\"\nDUN MESIN WIF x\n\
             NO WAI\nVISIBLE \"BUSY\"\nOIC",
        );
        assert_eq!(run1(&src), "GOT IT\n");
    }

    #[test]
    fn unlock_without_lock_is_diagnosed() {
        let e = run_err(1, &prog("WE HAS A x ITZ A NUMBR AN IM SHARIN IT\nDUN MESIN WIF x"));
        assert!(e.message.contains("RUN0180"), "{}", e.message);
    }

    #[test]
    fn bff_out_of_range_is_diagnosed() {
        let e = run_err(2, &prog("WE HAS A x ITZ SRSLY A NUMBR\nTXT MAH BFF 7, x R UR x"));
        assert!(e.message.contains("RUN0017"), "{}", e.message);
    }

    #[test]
    fn missing_hugz_race_detected_by_example() {
        // With the barrier the sum is deterministic; this is the
        // Figure 2 guarantee.
        let src = prog(
            "WE HAS A b ITZ SRSLY A NUMBR\n\
             I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             TXT MAH BFF k, UR b R SUM OF ME AN 1\n\
             HUGZ\n\
             VISIBLE b",
        );
        let n = 4;
        let outs = run_n(n, &src);
        for (me, o) in outs.iter().enumerate() {
            let left = (me + n - 1) % n;
            assert_eq!(o, &format!("{}\n", left + 1));
        }
    }

    #[test]
    fn whatevr_streams_differ_across_pes() {
        let outs = run_n(4, &prog("VISIBLE WHATEVR"));
        let distinct: std::collections::HashSet<&String> = outs.iter().collect();
        assert!(distinct.len() >= 2, "PE RNG streams should differ: {outs:?}");
    }

    #[test]
    fn many_pes_smoke() {
        // A 32-PE "Cray-ish" run of a collective program.
        let src = prog(
            "WE HAS A x ITZ SRSLY A NUMBR\nx R ME\nHUGZ\n\
             I HAS A sum ITZ 0\n\
             IM IN YR l UPPIN YR t TIL BOTH SAEM t AN MAH FRENZ\n\
             TXT MAH BFF t, sum R SUM OF sum AN UR x\n\
             IM OUTTA YR l\n\
             VISIBLE sum",
        );
        let outs = run_n(32, &src);
        let want = (0..32).sum::<usize>();
        for o in outs {
            assert_eq!(o, format!("{want}\n"));
        }
    }
}
