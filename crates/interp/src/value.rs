//! Runtime values and LOLCODE 1.2 coercion semantics.
//!
//! The five types (`NOOB`, `TROOF`, `NUMBR`, `NUMBAR`, `YARN`) coerce
//! the way the original `lci` interpreter does:
//!
//! * arithmetic promotes NUMBR→NUMBAR when either side is (or parses
//!   as) a float; NUMBR÷NUMBR is integer division,
//! * casting NUMBAR to YARN keeps two decimal places (the `%.2f` of the
//!   reference implementation),
//! * `NOOB` casts implicitly only to TROOF (`FAIL`); any other cast of
//!   an uninitialized value is a runtime error,
//! * YARNs coerce numerically by parsing (`"3"` → 3, `"3.5"` → 3.5).

use std::fmt;
use std::sync::Arc;

/// A runtime LOLCODE value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Noob,
    Troof(bool),
    Numbr(i64),
    Numbar(f64),
    Yarn(Arc<str>),
}

/// A runtime error with a stable code (rendered LOLCODE-style by the
/// driver).
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    pub code: &'static str,
    pub message: String,
}

impl RunError {
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        RunError { code, message: message.into() }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O NOES! [{}] {}", self.code, self.message)
    }
}

impl std::error::Error for RunError {}

/// Result alias used throughout the interpreter.
pub type RResult<T> = Result<T, RunError>;

/// A number: integer or float, after numeric coercion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    I(i64),
    F(f64),
}

impl Num {
    pub fn as_f64(self) -> f64 {
        match self {
            Num::I(i) => i as f64,
            Num::F(f) => f,
        }
    }
}

impl Value {
    /// Make a YARN value.
    pub fn yarn(s: impl Into<String>) -> Value {
        Value::Yarn(Arc::from(s.into().into_boxed_str()))
    }

    /// The type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Noob => "NOOB",
            Value::Troof(_) => "TROOF",
            Value::Numbr(_) => "NUMBR",
            Value::Numbar(_) => "NUMBAR",
            Value::Yarn(_) => "YARN",
        }
    }

    /// Coerce to TROOF (always succeeds): empty/zero/NOOB are FAIL.
    pub fn to_troof(&self) -> bool {
        match self {
            Value::Noob => false,
            Value::Troof(b) => *b,
            Value::Numbr(n) => *n != 0,
            Value::Numbar(f) => *f != 0.0,
            Value::Yarn(s) => !s.is_empty(),
        }
    }

    /// Coerce to a number for arithmetic.
    pub fn to_num(&self) -> RResult<Num> {
        match self {
            Value::Noob => Err(RunError::new(
                "RUN0002",
                "CANT DO MATHS WIF NOOB (DECLARE AN INITIALIZE UR VARIABLE)",
            )),
            Value::Troof(b) => Ok(Num::I(*b as i64)),
            Value::Numbr(n) => Ok(Num::I(*n)),
            Value::Numbar(f) => Ok(Num::F(*f)),
            Value::Yarn(s) => parse_yarn_number(s),
        }
    }

    /// Explicit cast to NUMBR.
    pub fn to_numbr(&self) -> RResult<i64> {
        match self.to_num()? {
            Num::I(i) => Ok(i),
            Num::F(f) => Ok(f as i64),
        }
    }

    /// Explicit cast to NUMBAR.
    pub fn to_numbar(&self) -> RResult<f64> {
        Ok(self.to_num()?.as_f64())
    }

    /// Coerce to YARN (printing rules; NUMBAR keeps 2 decimals like lci).
    pub fn to_yarn(&self) -> RResult<String> {
        match self {
            Value::Noob => Err(RunError::new("RUN0003", "CANT MAKE A YARN OUT OF NOOB")),
            Value::Troof(true) => Ok("WIN".to_string()),
            Value::Troof(false) => Ok("FAIL".to_string()),
            Value::Numbr(n) => Ok(n.to_string()),
            Value::Numbar(f) => Ok(numbar_to_yarn(*f)),
            Value::Yarn(s) => Ok(s.to_string()),
        }
    }

    /// `BOTH SAEM` equality: NUMBR/NUMBAR pairs compare numerically,
    /// otherwise same-type comparison; mixed types are FAIL.
    pub fn saem(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Noob, Noob) => true,
            (Troof(a), Troof(b)) => a == b,
            (Numbr(a), Numbr(b)) => a == b,
            (Numbar(a), Numbar(b)) => a == b,
            (Numbr(a), Numbar(b)) | (Numbar(b), Numbr(a)) => *a as f64 == *b,
            (Yarn(a), Yarn(b)) => a == b,
            _ => false,
        }
    }
}

/// Render a NUMBAR as a YARN: two decimals for finite values (the
/// `%.2f` of the reference implementation), and the C-library-style
/// lowercase spellings for the non-finite ones.
///
/// All four backends share this rendering. The sign of a NaN is
/// deliberately dropped: IEEE leaves it unspecified (x86 SSE produces
/// `-nan` for `0.0/0.0` where Rust's formatter says `NaN`), so pinning
/// a plain `nan` on every backend is the only portable choice.
pub fn numbar_to_yarn(f: f64) -> String {
    if f.is_finite() {
        format!("{f:.2}")
    } else if f.is_nan() {
        "nan".to_string()
    } else if f > 0.0 {
        "inf".to_string()
    } else {
        "-inf".to_string()
    }
}

/// Parse a YARN as NUMBR or NUMBAR (decimal point / exponent → float).
fn parse_yarn_number(s: &str) -> RResult<Num> {
    let t = s.trim();
    if t.contains('.') || t.contains('e') || t.contains('E') {
        t.parse::<f64>()
            .map(Num::F)
            .map_err(|_| RunError::new("RUN0004", format!("\"{s}\" IZ NOT A NUMBAR")))
    } else {
        t.parse::<i64>()
            .map(Num::I)
            .map_err(|_| RunError::new("RUN0004", format!("\"{s}\" IZ NOT A NUMBR")))
    }
}

/// Integer arithmetic (wrapping, like the reference C backend's
/// two's-complement behavior; division checks for zero).
#[inline]
fn arith_int(op: lol_ast::BinOp, x: i64, y: i64) -> RResult<Value> {
    use lol_ast::BinOp::*;
    let r = match op {
        Sum => x.wrapping_add(y),
        Diff => x.wrapping_sub(y),
        Produkt => x.wrapping_mul(y),
        Quoshunt => {
            if y == 0 {
                return Err(RunError::new("RUN0001", "DIVIDIN BY ZERO IZ NOT ALLOWED"));
            }
            x.wrapping_div(y)
        }
        Mod => {
            if y == 0 {
                return Err(RunError::new("RUN0001", "MOD BY ZERO IZ NOT ALLOWED"));
            }
            x.wrapping_rem(y)
        }
        BiggrOf => x.max(y),
        SmallrOf => x.min(y),
        _ => unreachable!("not an arithmetic op: {op:?}"),
    };
    Ok(Value::Numbr(r))
}

/// Float arithmetic (IEEE — division by zero is inf/nan, not a fault).
#[inline]
fn arith_float(op: lol_ast::BinOp, x: f64, y: f64) -> Value {
    use lol_ast::BinOp::*;
    let r = match op {
        Sum => x + y,
        Diff => x - y,
        Produkt => x * y,
        Quoshunt => x / y,
        Mod => x % y,
        BiggrOf => x.max(y),
        SmallrOf => x.min(y),
        _ => unreachable!("not an arithmetic op: {op:?}"),
    };
    Value::Numbar(r)
}

/// Apply a LOLCODE arithmetic operator with promotion rules.
///
/// The all-NUMBR and all-NUMBAR cases — the only ones hot loops hit —
/// dispatch without constructing [`Num`] intermediates; the mixed and
/// coercing cases (TROOF/YARN operands) fall back to [`Value::to_num`].
#[inline]
pub fn arith(op: lol_ast::BinOp, a: &Value, b: &Value) -> RResult<Value> {
    match (a, b) {
        (Value::Numbr(x), Value::Numbr(y)) => arith_int(op, *x, *y),
        (Value::Numbar(x), Value::Numbar(y)) => Ok(arith_float(op, *x, *y)),
        (Value::Numbr(x), Value::Numbar(y)) => Ok(arith_float(op, *x as f64, *y)),
        (Value::Numbar(x), Value::Numbr(y)) => Ok(arith_float(op, *x, *y as f64)),
        _ => match (a.to_num()?, b.to_num()?) {
            (Num::I(x), Num::I(y)) => arith_int(op, x, y),
            (na, nb) => Ok(arith_float(op, na.as_f64(), nb.as_f64())),
        },
    }
}

/// Apply a comparison operator (`BIGGER` / `SMALLR`).
#[inline]
pub fn compare(op: lol_ast::BinOp, a: &Value, b: &Value) -> RResult<Value> {
    use lol_ast::BinOp::*;
    // Comparison is float-domain on every backend (the C runtime
    // compares via `lol_to_dbl` too), so NUMBRs beyond 2^53 must keep
    // rounding identically here — no integer special case.
    let (x, y) = match (a, b) {
        (Value::Numbr(x), Value::Numbr(y)) => (*x as f64, *y as f64),
        (Value::Numbar(x), Value::Numbar(y)) => (*x, *y),
        _ => (a.to_num()?.as_f64(), b.to_num()?.as_f64()),
    };
    let r = match op {
        Bigger => x > y,
        Smallr => x < y,
        _ => unreachable!("not a comparison: {op:?}"),
    };
    Ok(Value::Troof(r))
}

/// Default value for a declared (typed) variable.
pub fn default_for(ty: lol_ast::LolType) -> Value {
    use lol_ast::LolType;
    match ty {
        LolType::Noob => Value::Noob,
        LolType::Troof => Value::Troof(false),
        LolType::Numbr => Value::Numbr(0),
        LolType::Numbar => Value::Numbar(0.0),
        LolType::Yarn => Value::yarn(""),
    }
}

/// Explicit cast (`MAEK`, `IS NOW A`).
pub fn cast(v: &Value, ty: lol_ast::LolType) -> RResult<Value> {
    use lol_ast::LolType;
    Ok(match ty {
        LolType::Noob => Value::Noob,
        LolType::Troof => Value::Troof(v.to_troof()),
        LolType::Numbr => Value::Numbr(v.to_numbr()?),
        LolType::Numbar => Value::Numbar(v.to_numbar()?),
        LolType::Yarn => Value::yarn(v.to_yarn()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_ast::BinOp;

    #[test]
    fn troof_coercions() {
        assert!(!Value::Noob.to_troof());
        assert!(Value::Troof(true).to_troof());
        assert!(!Value::Numbr(0).to_troof());
        assert!(Value::Numbr(-3).to_troof());
        assert!(!Value::Numbar(0.0).to_troof());
        assert!(Value::Numbar(0.1).to_troof());
        assert!(!Value::yarn("").to_troof());
        assert!(Value::yarn("x").to_troof());
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let v = arith(BinOp::Quoshunt, &Value::Numbr(7), &Value::Numbr(2)).unwrap();
        assert_eq!(v, Value::Numbr(3), "NUMBR division truncates");
        let v = arith(BinOp::Sum, &Value::Numbr(2), &Value::Numbr(3)).unwrap();
        assert_eq!(v, Value::Numbr(5));
        let v = arith(BinOp::Mod, &Value::Numbr(7), &Value::Numbr(4)).unwrap();
        assert_eq!(v, Value::Numbr(3));
    }

    #[test]
    fn float_promotion() {
        let v = arith(BinOp::Sum, &Value::Numbr(1), &Value::Numbar(0.5)).unwrap();
        assert_eq!(v, Value::Numbar(1.5));
        let v = arith(BinOp::Quoshunt, &Value::Numbar(7.0), &Value::Numbr(2)).unwrap();
        assert_eq!(v, Value::Numbar(3.5));
    }

    #[test]
    fn yarn_numeric_coercion() {
        let v = arith(BinOp::Sum, &Value::yarn("3"), &Value::Numbr(4)).unwrap();
        assert_eq!(v, Value::Numbr(7));
        let v = arith(BinOp::Sum, &Value::yarn("3.5"), &Value::Numbr(1)).unwrap();
        assert_eq!(v, Value::Numbar(4.5));
        assert!(arith(BinOp::Sum, &Value::yarn("fish"), &Value::Numbr(1)).is_err());
    }

    #[test]
    fn troof_is_numeric_01() {
        let v = arith(BinOp::Sum, &Value::Troof(true), &Value::Troof(true)).unwrap();
        assert_eq!(v, Value::Numbr(2));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = arith(BinOp::Quoshunt, &Value::Numbr(1), &Value::Numbr(0)).unwrap_err();
        assert_eq!(e.code, "RUN0001");
        let e = arith(BinOp::Mod, &Value::Numbr(1), &Value::Numbr(0)).unwrap_err();
        assert_eq!(e.code, "RUN0001");
        // Float division by zero is IEEE.
        let v = arith(BinOp::Quoshunt, &Value::Numbar(1.0), &Value::Numbar(0.0)).unwrap();
        assert_eq!(v, Value::Numbar(f64::INFINITY));
    }

    #[test]
    fn noob_math_errors() {
        let e = arith(BinOp::Sum, &Value::Noob, &Value::Numbr(1)).unwrap_err();
        assert_eq!(e.code, "RUN0002");
    }

    #[test]
    fn biggr_smallr_of_are_min_max() {
        assert_eq!(
            arith(BinOp::BiggrOf, &Value::Numbr(3), &Value::Numbr(7)).unwrap(),
            Value::Numbr(7)
        );
        assert_eq!(
            arith(BinOp::SmallrOf, &Value::Numbr(3), &Value::Numbr(7)).unwrap(),
            Value::Numbr(3)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            compare(BinOp::Bigger, &Value::Numbr(4), &Value::Numbr(3)).unwrap(),
            Value::Troof(true)
        );
        assert_eq!(
            compare(BinOp::Smallr, &Value::Numbar(1.5), &Value::Numbr(2)).unwrap(),
            Value::Troof(true)
        );
        assert_eq!(
            compare(BinOp::Bigger, &Value::Numbr(3), &Value::Numbr(3)).unwrap(),
            Value::Troof(false)
        );
    }

    #[test]
    fn saem_semantics() {
        assert!(Value::Numbr(1).saem(&Value::Numbr(1)));
        assert!(Value::Numbr(1).saem(&Value::Numbar(1.0)), "NUMBR widens to NUMBAR");
        assert!(!Value::Numbr(1).saem(&Value::yarn("1")), "no implicit yarn compare");
        assert!(Value::yarn("a").saem(&Value::yarn("a")));
        assert!(Value::Noob.saem(&Value::Noob));
        assert!(!Value::Noob.saem(&Value::Numbr(0)));
        assert!(!Value::Troof(false).saem(&Value::Numbr(0)));
    }

    #[test]
    fn yarn_casting_rules() {
        assert_eq!(Value::Numbr(42).to_yarn().unwrap(), "42");
        assert_eq!(Value::Numbar(1.23456).to_yarn().unwrap(), "1.23", "lci keeps 2 decimals");
        assert_eq!(Value::Numbar(2.0).to_yarn().unwrap(), "2.00");
        assert_eq!(Value::Troof(true).to_yarn().unwrap(), "WIN");
        assert!(Value::Noob.to_yarn().is_err());
    }

    #[test]
    fn non_finite_numbars_render_c_style() {
        // One spelling on all four backends: lowercase, sign-stripped
        // NaN (IEEE leaves the NaN sign unspecified across dividers).
        assert_eq!(Value::Numbar(f64::INFINITY).to_yarn().unwrap(), "inf");
        assert_eq!(Value::Numbar(f64::NEG_INFINITY).to_yarn().unwrap(), "-inf");
        assert_eq!(Value::Numbar(f64::NAN).to_yarn().unwrap(), "nan");
        assert_eq!(Value::Numbar(-f64::NAN).to_yarn().unwrap(), "nan");
    }

    #[test]
    fn explicit_casts() {
        use lol_ast::LolType;
        assert_eq!(cast(&Value::yarn("3"), LolType::Numbr).unwrap(), Value::Numbr(3));
        assert_eq!(cast(&Value::Numbar(3.9), LolType::Numbr).unwrap(), Value::Numbr(3));
        assert_eq!(cast(&Value::Numbr(3), LolType::Numbar).unwrap(), Value::Numbar(3.0));
        assert_eq!(cast(&Value::Noob, LolType::Troof).unwrap(), Value::Troof(false));
        assert!(cast(&Value::Noob, LolType::Numbr).is_err());
        assert_eq!(cast(&Value::Numbr(0), LolType::Troof).unwrap(), Value::Troof(false));
    }

    #[test]
    fn defaults() {
        use lol_ast::LolType;
        assert_eq!(default_for(LolType::Numbr), Value::Numbr(0));
        assert_eq!(default_for(LolType::Numbar), Value::Numbar(0.0));
        assert_eq!(default_for(LolType::Troof), Value::Troof(false));
        assert_eq!(default_for(LolType::Yarn), Value::yarn(""));
        assert_eq!(default_for(LolType::Noob), Value::Noob);
    }

    #[test]
    fn wrapping_not_panicking() {
        // Overflow wraps (teaching simulator, not UB).
        let v = arith(BinOp::Sum, &Value::Numbr(i64::MAX), &Value::Numbr(1)).unwrap();
        assert_eq!(v, Value::Numbr(i64::MIN));
    }
}
