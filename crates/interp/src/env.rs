//! Lexically scoped environments for per-PE private variables.
//!
//! Shared (`WE HAS A`) variables never live here — they live in the
//! symmetric heap and are resolved through the
//! [`lol_sema::SharedLayout`]. The environment holds everything
//! private: scalars (optionally pinned to a static type by
//! `ITZ SRSLY A`) and local arrays (dynamically sized, per the paper's
//! array extension).
//!
//! # Representation
//!
//! Historically this was a `Vec<HashMap<Symbol, Slot>>` scope chain —
//! one SipHash per probed scope on every variable touch, which
//! dominated the tree-walker's profile. It is now a single flat
//! binding arena: declarations push `(Symbol, Slot)` pairs onto one
//! `Vec`, and scopes are just saved lengths (`scope_marks`). Lookup is
//! O(1): a per-symbol *binding stack* (`bindings`, indexed by the
//! dense interned-symbol id) records where each name's live bindings
//! sit in the arena, so resolving a variable is one indexed load plus
//! a frame-floor compare — no hashing, no scope-chain walk. Function
//! calls push a *frame floor* that hides every caller binding without
//! allocating a fresh environment, so `I IZ ... MKAY` is
//! allocation-free too. Shadowing and scope teardown behave exactly as
//! before: the latest binding wins, and popping a scope truncates the
//! arena and unwinds the affected binding stacks.

use crate::value::{cast, RResult, RunError, Value};
use lol_ast::{LolType, Symbol};

/// A private variable.
#[derive(Debug, Clone)]
pub enum Slot {
    /// A scalar; `pinned` holds the static type for `ITZ SRSLY A`
    /// declarations (assignments coerce to it).
    Scalar { value: Value, pinned: Option<LolType> },
    /// A local array with element type and dynamic length.
    Array { elems: Vec<Value>, ty: LolType },
}

/// A flat arena of lexical bindings (see the module docs).
#[derive(Debug, Default)]
pub struct Env {
    /// The binding stack: innermost declarations last.
    entries: Vec<(Symbol, Slot)>,
    /// `entries.len()` at each `push_scope`.
    scope_marks: Vec<u32>,
    /// Per active function frame: (`entries.len()`, `scope_marks.len()`)
    /// at `push_frame` time. Lookups never descend below the top floor.
    frame_floors: Vec<(u32, u32)>,
    /// `bindings[sym.index()]` = arena indices of that symbol's live
    /// bindings, innermost last. Entries below the frame floor are
    /// filtered at lookup (callers' bindings stay on their stacks but
    /// are invisible inside the callee).
    bindings: Vec<Vec<u32>>,
}

impl Env {
    /// New environment with one (outermost) scope containing `IT`.
    pub fn new() -> Self {
        let mut e = Env {
            entries: Vec::with_capacity(32),
            scope_marks: Vec::with_capacity(8),
            frame_floors: Vec::new(),
            bindings: Vec::new(),
        };
        e.declare(Symbol::it(), Slot::Scalar { value: Value::Noob, pinned: None });
        e
    }

    /// The binding index below which lookups must not descend.
    #[inline]
    fn floor(&self) -> usize {
        self.frame_floors.last().map_or(0, |&(f, _)| f as usize)
    }

    /// Unwind the per-symbol binding stacks for every entry at index
    /// `from` or above, then truncate the arena.
    fn truncate_to(&mut self, from: usize) {
        for (name, _) in &self.entries[from..] {
            let popped = self.bindings[name.index() as usize].pop();
            debug_assert!(popped.is_some(), "binding stack out of sync");
        }
        self.entries.truncate(from);
    }

    pub fn push_scope(&mut self) {
        self.scope_marks.push(self.entries.len() as u32);
    }

    pub fn pop_scope(&mut self) {
        let mark = self.scope_marks.pop().expect("scope underflow");
        self.truncate_to(mark as usize);
        assert!(self.entries.len() >= self.floor(), "frame floor breached");
    }

    /// Enter a function frame: caller bindings become invisible, and a
    /// fresh `IT` is declared for the callee.
    pub fn push_frame(&mut self) {
        self.frame_floors.push((self.entries.len() as u32, self.scope_marks.len() as u32));
        self.declare(Symbol::it(), Slot::Scalar { value: Value::Noob, pinned: None });
    }

    /// Leave a function frame, dropping every binding and scope the
    /// callee created (including on early return / error unwind).
    pub fn pop_frame(&mut self) {
        let (floor, marks) = self.frame_floors.pop().expect("frame underflow");
        self.truncate_to(floor as usize);
        self.scope_marks.truncate(marks as usize);
    }

    /// Declare in the innermost scope (shadowing outer scopes).
    pub fn declare(&mut self, name: Symbol, slot: Slot) {
        let id = name.index() as usize;
        if id >= self.bindings.len() {
            self.bindings.resize_with(id + 1, Vec::new);
        }
        self.bindings[id].push(self.entries.len() as u32);
        self.entries.push((name, slot));
    }

    /// Find a variable, innermost binding first: one indexed load plus
    /// a frame-floor check.
    #[inline]
    pub fn get(&self, name: Symbol) -> Option<&Slot> {
        let ix = *self.bindings.get(name.index() as usize)?.last()? as usize;
        (ix >= self.floor()).then(|| &self.entries[ix].1)
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, name: Symbol) -> Option<&mut Slot> {
        let ix = *self.bindings.get(name.index() as usize)?.last()? as usize;
        (ix >= self.floor()).then(|| &mut self.entries[ix].1)
    }

    /// Assign to a scalar variable, honouring its pinned type.
    pub fn assign_scalar(&mut self, name: Symbol, value: Value) -> RResult<()> {
        match self.get_mut(name) {
            Some(Slot::Scalar { value: v, pinned }) => {
                *v = match pinned {
                    Some(ty) => cast(&value, *ty)?,
                    None => value,
                };
                Ok(())
            }
            Some(Slot::Array { .. }) => Err(RunError::new(
                "RUN0011",
                format!("{name} IZ A WHOLE ARRAY — ASSIGN ELEMENTS WIF {name}'Z idx"),
            )),
            None => Err(RunError::new("RUN0010", format!("WHO IZ {name}?"))),
        }
    }

    /// Read a scalar value.
    pub fn read_scalar(&self, name: Symbol) -> RResult<Value> {
        match self.get(name) {
            Some(Slot::Scalar { value, .. }) => Ok(value.clone()),
            Some(Slot::Array { .. }) => {
                Err(RunError::new("RUN0011", format!("{name} IZ A WHOLE ARRAY, NOT A VALUE")))
            }
            None => Err(RunError::new("RUN0010", format!("WHO IZ {name}?"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn declare_and_read() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(5), pinned: None });
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(5));
    }

    #[test]
    fn it_is_predeclared() {
        let e = Env::new();
        assert_eq!(e.read_scalar(Symbol::it()).unwrap(), Value::Noob);
    }

    #[test]
    fn shadowing_and_scope_pop() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(1), pinned: None });
        e.push_scope();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(2), pinned: None });
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(2));
        e.pop_scope();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(1));
    }

    #[test]
    fn redeclaration_in_same_scope_shadows() {
        // The old HashMap replaced; the arena pushes a shadowing
        // binding. Both resolve the latest declaration.
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(1), pinned: None });
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(2), pinned: None });
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(2));
    }

    #[test]
    fn assignment_reaches_outer_scope() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(1), pinned: None });
        e.push_scope();
        e.assign_scalar(sym("x"), Value::Numbr(9)).unwrap();
        e.pop_scope();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(9));
    }

    #[test]
    fn frames_hide_caller_bindings() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(1), pinned: None });
        e.push_frame();
        assert!(e.get(sym("x")).is_none(), "caller binding must be invisible");
        assert_eq!(e.read_scalar(Symbol::it()).unwrap(), Value::Noob, "fresh IT per frame");
        e.declare(sym("y"), Slot::Scalar { value: Value::Numbr(2), pinned: None });
        e.push_scope(); // left open on purpose: pop_frame must unwind it
        e.declare(sym("z"), Slot::Scalar { value: Value::Numbr(3), pinned: None });
        e.pop_frame();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(1));
        assert!(e.get(sym("y")).is_none());
        assert!(e.get(sym("z")).is_none());
    }

    #[test]
    fn nested_frames_restore_in_order() {
        let mut e = Env::new();
        e.push_frame();
        e.declare(sym("a"), Slot::Scalar { value: Value::Numbr(1), pinned: None });
        e.push_frame();
        assert!(e.get(sym("a")).is_none());
        e.pop_frame();
        assert_eq!(e.read_scalar(sym("a")).unwrap(), Value::Numbr(1));
        e.pop_frame();
        assert!(e.get(sym("a")).is_none());
    }

    #[test]
    fn pinned_type_coerces_on_assign() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(0), pinned: Some(LolType::Numbr) });
        e.assign_scalar(sym("x"), Value::yarn("42")).unwrap();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(42));
        e.assign_scalar(sym("x"), Value::Numbar(3.9)).unwrap();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(3));
    }

    #[test]
    fn pinned_type_rejects_impossible_coercion() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(0), pinned: Some(LolType::Numbr) });
        assert!(e.assign_scalar(sym("x"), Value::yarn("fish")).is_err());
    }

    #[test]
    fn unpinned_is_dynamic() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(0), pinned: None });
        e.assign_scalar(sym("x"), Value::yarn("fish")).unwrap();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::yarn("fish"));
    }

    #[test]
    fn array_slot_errors_on_scalar_ops() {
        let mut e = Env::new();
        e.declare(sym("a"), Slot::Array { elems: vec![Value::Numbr(0); 4], ty: LolType::Numbr });
        assert_eq!(e.read_scalar(sym("a")).unwrap_err().code, "RUN0011");
        assert_eq!(e.assign_scalar(sym("a"), Value::Numbr(1)).unwrap_err().code, "RUN0011");
    }

    #[test]
    fn unknown_variable_errors() {
        let mut e = Env::new();
        assert_eq!(e.read_scalar(sym("ghost")).unwrap_err().code, "RUN0010");
        assert_eq!(e.assign_scalar(sym("ghost"), Value::Noob).unwrap_err().code, "RUN0010");
    }
}
