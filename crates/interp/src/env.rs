//! Lexically scoped environments for per-PE private variables.
//!
//! Shared (`WE HAS A`) variables never live here — they live in the
//! symmetric heap and are resolved through the
//! [`lol_sema::SharedLayout`]. The environment holds everything
//! private: scalars (optionally pinned to a static type by
//! `ITZ SRSLY A`) and local arrays (dynamically sized, per the paper's
//! array extension).

use crate::value::{cast, RResult, RunError, Value};
use lol_ast::{LolType, Symbol};
use std::collections::HashMap;

/// A private variable.
#[derive(Debug, Clone)]
pub enum Slot {
    /// A scalar; `pinned` holds the static type for `ITZ SRSLY A`
    /// declarations (assignments coerce to it).
    Scalar { value: Value, pinned: Option<LolType> },
    /// A local array with element type and dynamic length.
    Array { elems: Vec<Value>, ty: LolType },
}

/// A stack of lexical scopes.
#[derive(Debug, Default)]
pub struct Env {
    scopes: Vec<HashMap<Symbol, Slot>>,
}

impl Env {
    /// New environment with one (outermost) scope containing `IT`.
    pub fn new() -> Self {
        let mut e = Env { scopes: vec![HashMap::new()] };
        e.declare(Symbol::it(), Slot::Scalar { value: Value::Noob, pinned: None });
        e
    }

    pub fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    pub fn pop_scope(&mut self) {
        self.scopes.pop().expect("scope underflow");
        assert!(!self.scopes.is_empty(), "outermost scope popped");
    }

    /// Declare in the innermost scope (shadowing outer scopes).
    pub fn declare(&mut self, name: Symbol, slot: Slot) {
        self.scopes.last_mut().expect("no scope").insert(name, slot);
    }

    /// Find a variable, innermost scope first.
    pub fn get(&self, name: Symbol) -> Option<&Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(&name))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: Symbol) -> Option<&mut Slot> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(&name))
    }

    /// Is the name bound at all?
    pub fn contains(&self, name: Symbol) -> bool {
        self.get(name).is_some()
    }

    /// Assign to a scalar variable, honouring its pinned type.
    pub fn assign_scalar(&mut self, name: Symbol, value: Value) -> RResult<()> {
        match self.get_mut(name) {
            Some(Slot::Scalar { value: v, pinned }) => {
                *v = match pinned {
                    Some(ty) => cast(&value, *ty)?,
                    None => value,
                };
                Ok(())
            }
            Some(Slot::Array { .. }) => Err(RunError::new(
                "RUN0011",
                format!("{name} IZ A WHOLE ARRAY — ASSIGN ELEMENTS WIF {name}'Z idx"),
            )),
            None => Err(RunError::new("RUN0010", format!("WHO IZ {name}?"))),
        }
    }

    /// Read a scalar value.
    pub fn read_scalar(&self, name: Symbol) -> RResult<Value> {
        match self.get(name) {
            Some(Slot::Scalar { value, .. }) => Ok(value.clone()),
            Some(Slot::Array { .. }) => {
                Err(RunError::new("RUN0011", format!("{name} IZ A WHOLE ARRAY, NOT A VALUE")))
            }
            None => Err(RunError::new("RUN0010", format!("WHO IZ {name}?"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn declare_and_read() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(5), pinned: None });
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(5));
    }

    #[test]
    fn it_is_predeclared() {
        let e = Env::new();
        assert_eq!(e.read_scalar(Symbol::it()).unwrap(), Value::Noob);
    }

    #[test]
    fn shadowing_and_scope_pop() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(1), pinned: None });
        e.push_scope();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(2), pinned: None });
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(2));
        e.pop_scope();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(1));
    }

    #[test]
    fn assignment_reaches_outer_scope() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(1), pinned: None });
        e.push_scope();
        e.assign_scalar(sym("x"), Value::Numbr(9)).unwrap();
        e.pop_scope();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(9));
    }

    #[test]
    fn pinned_type_coerces_on_assign() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(0), pinned: Some(LolType::Numbr) });
        e.assign_scalar(sym("x"), Value::yarn("42")).unwrap();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(42));
        e.assign_scalar(sym("x"), Value::Numbar(3.9)).unwrap();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::Numbr(3));
    }

    #[test]
    fn pinned_type_rejects_impossible_coercion() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(0), pinned: Some(LolType::Numbr) });
        assert!(e.assign_scalar(sym("x"), Value::yarn("fish")).is_err());
    }

    #[test]
    fn unpinned_is_dynamic() {
        let mut e = Env::new();
        e.declare(sym("x"), Slot::Scalar { value: Value::Numbr(0), pinned: None });
        e.assign_scalar(sym("x"), Value::yarn("fish")).unwrap();
        assert_eq!(e.read_scalar(sym("x")).unwrap(), Value::yarn("fish"));
    }

    #[test]
    fn array_slot_errors_on_scalar_ops() {
        let mut e = Env::new();
        e.declare(sym("a"), Slot::Array { elems: vec![Value::Numbr(0); 4], ty: LolType::Numbr });
        assert_eq!(e.read_scalar(sym("a")).unwrap_err().code, "RUN0011");
        assert_eq!(e.assign_scalar(sym("a"), Value::Numbr(1)).unwrap_err().code, "RUN0011");
    }

    #[test]
    fn unknown_variable_errors() {
        let mut e = Env::new();
        assert_eq!(e.read_scalar(sym("ghost")).unwrap_err().code, "RUN0010");
        assert_eq!(e.assign_scalar(sym("ghost"), Value::Noob).unwrap_err().code, "RUN0010");
    }
}
