fn main() {
    let src = std::fs::read_to_string(std::env::args().nth(1).unwrap()).unwrap();
    let prog = lol_parser::parse(&src).expect_program(&src);
    let analysis = lol_sema::analyze(&prog);
    let m = lol_vm::compile(&prog, &analysis).unwrap();
    for (i, op) in m.main.code.iter().enumerate() {
        println!("{i:4}  {op:?}");
    }
}
