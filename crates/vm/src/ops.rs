//! The bytecode instruction set.
//!
//! A compact stack machine: expressions leave values on the operand
//! stack, locals live in a per-frame slot array (slot 0 is `IT`), and
//! shared (symmetric) accesses carry their resolved heap offset, type
//! and length — everything the semantic analysis could pin down ahead
//! of time, which is exactly where the speedup over the tree-walker
//! comes from.

use lol_ast::{BinOp, LolType, UnOp};
use lol_interp::Value;

/// Where an array lives, for whole-array copies.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrLoc {
    /// A frame-local array (index into the frame's array table, a
    /// separate space from scalar slots).
    Local { arr: u16 },
    /// A symmetric array; `remote` selects the current BFF instead of
    /// the own instance.
    Shared { off: u32, len: u32, ty: LolType, remote: bool },
}

/// One instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push constant `k`.
    Const(u16),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Pop, cast, push (for `MAEK` / pinned stores / `IS NOW A`).
    Cast(LolType),
    /// Pop and discard.
    Pop,

    /// Load a shared scalar (own or BFF instance).
    SharedLoad {
        off: u32,
        ty: LolType,
        remote: bool,
    },
    /// Pop value, store to a shared scalar.
    SharedStore {
        off: u32,
        ty: LolType,
        remote: bool,
    },
    /// Pop index, push element of a shared array.
    SharedLoadIdx {
        off: u32,
        len: u32,
        ty: LolType,
        remote: bool,
    },
    /// Pop index then value, store element of a shared array.
    SharedStoreIdx {
        off: u32,
        len: u32,
        ty: LolType,
        remote: bool,
    },

    /// Pop size, create local array `arr`.
    LocalArrNew {
        arr: u16,
        ty: LolType,
    },
    /// Pop index, push element of local array `arr`.
    LocalArrLoad {
        arr: u16,
    },
    /// Pop index then value, store element of local array `arr`.
    LocalArrStore {
        arr: u16,
    },
    /// Whole-array copy (Section VI.A).
    ArrayCopy {
        dst: ArrLoc,
        src: ArrLoc,
    },

    /// Binary operator on the top two values (lhs below rhs).
    Bin(BinOp),
    /// Unary operator on the top value.
    Un(UnOp),

    // Superinstructions — peephole fusions of the idioms the compiler
    // emits for loop guards, stencil index arithmetic and reductions.
    // Each is exactly equivalent to the op sequence it replaces; the
    // fuser never folds across an interior jump target.
    /// `LoadLocal a; LoadLocal b; Bin(op)`.
    BinLL {
        op: BinOp,
        a: u16,
        b: u16,
    },
    /// `LoadLocal a; Const k; Bin(op)`.
    BinLC {
        op: BinOp,
        a: u16,
        k: u16,
    },
    /// `LoadLocal b; Bin(op)` — rhs from a slot, lhs on the stack.
    BinSL {
        op: BinOp,
        b: u16,
    },
    /// `Const k; Bin(op)` — rhs from the pool, lhs on the stack.
    BinSC {
        op: BinOp,
        k: u16,
    },
    /// `LoadLocal a; LoadLocal b; Bin(op); StoreLocal dst` — the
    /// reduction idiom (`acc R SUM OF acc AN x`).
    BinLLS {
        op: BinOp,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `LoadLocal a; Const k; Bin(op); StoreLocal dst` — counted-loop
    /// increments and index arithmetic.
    BinLCS {
        op: BinOp,
        a: u16,
        k: u16,
        dst: u16,
    },
    /// `Cast(ty); StoreLocal(slot)` — every store to a pinned
    /// (`ITZ SRSLY A`) variable.
    CastStore {
        ty: LolType,
        slot: u16,
    },
    /// Counted-loop guard: jump when `slots[slot]` SAEMs `consts[k]`.
    /// Fuses both guard shapes the compiler emits (`TIL BOTH SAEM`
    /// via `Bin(BothSaem); Un(Not); JumpIfFalse` and `WILE DIFFRINT`
    /// via `Bin(Diffrint); JumpIfFalse`).
    JumpIfLocalEqConst {
        slot: u16,
        k: u16,
        target: u32,
    },
    /// Same guard shapes with a variable bound: jump when `slots[a]`
    /// SAEMs `slots[b]`.
    JumpIfLocalEqLocal {
        a: u16,
        b: u16,
        target: u32,
    },
    /// `LoadLocal slot; JumpIfFalse target` — `O RLY?` on `IT`.
    JumpIfLocalFalse {
        slot: u16,
        target: u32,
    },
    /// `LoadLocal idx; LocalArrLoad { arr }` — stencil reads.
    LocalArrLoadL {
        arr: u16,
        idx: u16,
    },
    /// `LoadLocal idx; LocalArrStore { arr }` — stencil writes.
    LocalArrStoreL {
        arr: u16,
        idx: u16,
    },
    /// `LoadLocal idx; SharedLoadIdx { .. }` — symmetric-array reads
    /// indexed by a loop variable.
    SharedLoadIdxL {
        off: u32,
        len: u32,
        ty: LolType,
        remote: bool,
        idx: u16,
    },
    /// `LoadLocal idx; SharedStoreIdx { .. }`.
    SharedStoreIdxL {
        off: u32,
        len: u32,
        ty: LolType,
        remote: bool,
        idx: u16,
    },
    /// N-ary string concat.
    Smoosh(u8),
    /// N-ary AND / OR.
    AllOf(u8),
    AnyOf(u8),

    /// Unconditional jump (absolute pc).
    Jump(u32),
    /// Pop; jump when FAIL-y.
    JumpIfFalse(u32),

    /// Call function `func` with `argc` stack arguments.
    Call {
        func: u16,
        argc: u8,
    },
    /// Return the top of stack from the current function.
    Ret,

    /// Pop `argc` printed values (pushed left-to-right), emit.
    Visible {
        argc: u8,
        newline: bool,
    },
    /// Push one input line as a YARN.
    ReadLine,

    /// `HUGZ`.
    Barrier,
    /// Locks on the resolved lock cell.
    LockAcquire {
        off: u32,
        remote: bool,
    },
    /// Pushes WIN/FAIL.
    LockTry {
        off: u32,
        remote: bool,
    },
    LockRelease {
        off: u32,
        remote: bool,
    },

    /// Pop PE number, validate, push onto the BFF (predication) stack.
    PushBff,
    /// Pop the BFF stack.
    PopBff,

    /// Environment queries / randomness.
    Me,
    MahFrenz,
    RandI,
    RandF,

    /// End of the main chunk.
    Halt,
}

/// Stable profile names, indexed by [`Op::profile_index`]. Kept in the
/// enum's declaration order, superinstructions contiguous (see
/// [`Op::is_superinstruction`]).
const PROFILE_NAMES: [&str; Op::COUNT] = [
    "Const",
    "LoadLocal",
    "StoreLocal",
    "Cast",
    "Pop",
    "SharedLoad",
    "SharedStore",
    "SharedLoadIdx",
    "SharedStoreIdx",
    "LocalArrNew",
    "LocalArrLoad",
    "LocalArrStore",
    "ArrayCopy",
    "Bin",
    "Un",
    "BinLL",
    "BinLC",
    "BinSL",
    "BinSC",
    "BinLLS",
    "BinLCS",
    "CastStore",
    "JumpIfLocalEqConst",
    "JumpIfLocalEqLocal",
    "JumpIfLocalFalse",
    "LocalArrLoadL",
    "LocalArrStoreL",
    "SharedLoadIdxL",
    "SharedStoreIdxL",
    "Smoosh",
    "AllOf",
    "AnyOf",
    "Jump",
    "JumpIfFalse",
    "Call",
    "Ret",
    "Visible",
    "ReadLine",
    "Barrier",
    "LockAcquire",
    "LockTry",
    "LockRelease",
    "PushBff",
    "PopBff",
    "Me",
    "MahFrenz",
    "RandI",
    "RandF",
    "Halt",
];

/// Profile indices `15..29` are the superinstructions.
const SUPER_FIRST: usize = 15;
const SUPER_LAST: usize = 28;

impl Op {
    /// Number of distinct opcodes (the length of a per-opcode profile
    /// counter array).
    pub const COUNT: usize = 49;

    /// This op's dense profile index (`0..Op::COUNT`), operand-blind:
    /// every `Bin` counts in the same cell regardless of operator.
    /// [`Op::profile_name`] maps it back to the opcode name.
    #[inline]
    pub fn profile_index(&self) -> usize {
        match self {
            Op::Const(_) => 0,
            Op::LoadLocal(_) => 1,
            Op::StoreLocal(_) => 2,
            Op::Cast(_) => 3,
            Op::Pop => 4,
            Op::SharedLoad { .. } => 5,
            Op::SharedStore { .. } => 6,
            Op::SharedLoadIdx { .. } => 7,
            Op::SharedStoreIdx { .. } => 8,
            Op::LocalArrNew { .. } => 9,
            Op::LocalArrLoad { .. } => 10,
            Op::LocalArrStore { .. } => 11,
            Op::ArrayCopy { .. } => 12,
            Op::Bin(_) => 13,
            Op::Un(_) => 14,
            Op::BinLL { .. } => 15,
            Op::BinLC { .. } => 16,
            Op::BinSL { .. } => 17,
            Op::BinSC { .. } => 18,
            Op::BinLLS { .. } => 19,
            Op::BinLCS { .. } => 20,
            Op::CastStore { .. } => 21,
            Op::JumpIfLocalEqConst { .. } => 22,
            Op::JumpIfLocalEqLocal { .. } => 23,
            Op::JumpIfLocalFalse { .. } => 24,
            Op::LocalArrLoadL { .. } => 25,
            Op::LocalArrStoreL { .. } => 26,
            Op::SharedLoadIdxL { .. } => 27,
            Op::SharedStoreIdxL { .. } => 28,
            Op::Smoosh(_) => 29,
            Op::AllOf(_) => 30,
            Op::AnyOf(_) => 31,
            Op::Jump(_) => 32,
            Op::JumpIfFalse(_) => 33,
            Op::Call { .. } => 34,
            Op::Ret => 35,
            Op::Visible { .. } => 36,
            Op::ReadLine => 37,
            Op::Barrier => 38,
            Op::LockAcquire { .. } => 39,
            Op::LockTry { .. } => 40,
            Op::LockRelease { .. } => 41,
            Op::PushBff => 42,
            Op::PopBff => 43,
            Op::Me => 44,
            Op::MahFrenz => 45,
            Op::RandI => 46,
            Op::RandF => 47,
            Op::Halt => 48,
        }
    }

    /// The opcode name for a profile index (inverse of
    /// [`Op::profile_index`]).
    pub fn profile_name(idx: usize) -> &'static str {
        PROFILE_NAMES[idx]
    }

    /// Is profile index `idx` a superinstruction (a peephole fusion of
    /// several plain ops)?
    pub fn is_superinstruction(idx: usize) -> bool {
        (SUPER_FIRST..=SUPER_LAST).contains(&idx)
    }
}

/// A compiled chunk: code plus frame size.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    pub code: Vec<Op>,
    /// Number of scalar slots (slot 0 = IT).
    pub n_slots: u16,
    /// Number of local-array slots (a separate index space, so scalar
    /// loads never branch on an array/scalar discriminant).
    pub n_arrays: u16,
}

/// A compiled module: main chunk, function chunks, constant pool.
#[derive(Debug, Clone, Default)]
pub struct Module {
    pub consts: Vec<Value>,
    pub main: Chunk,
    /// Function chunks; `funcs[i].1.n_slots` includes IT + params.
    pub funcs: Vec<(String, Chunk, u8)>,
    /// Symmetric words to allocate at startup (from the sema layout).
    pub shared_words: usize,
}

impl Module {
    /// Total instruction count (diagnostics / tests).
    pub fn code_len(&self) -> usize {
        self.main.code.len() + self.funcs.iter().map(|(_, c, _)| c.code.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_small() {
        // The dispatch loop copies ops; keep them cache-friendly.
        assert!(std::mem::size_of::<Op>() <= 48, "Op grew to {} bytes", std::mem::size_of::<Op>());
    }

    #[test]
    fn module_code_len_counts_everything() {
        let mut m = Module::default();
        m.main.code = vec![Op::Halt];
        m.funcs.push((
            "f".into(),
            Chunk { code: vec![Op::Ret, Op::Ret], n_slots: 1, n_arrays: 0 },
            0,
        ));
        assert_eq!(m.code_len(), 3);
    }
}
