//! The bytecode instruction set.
//!
//! A compact stack machine: expressions leave values on the operand
//! stack, locals live in a per-frame slot array (slot 0 is `IT`), and
//! shared (symmetric) accesses carry their resolved heap offset, type
//! and length — everything the semantic analysis could pin down ahead
//! of time, which is exactly where the speedup over the tree-walker
//! comes from.

use lol_ast::{BinOp, LolType, UnOp};
use lol_interp::Value;

/// Where an array lives, for whole-array copies.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrLoc {
    /// A frame-local array slot.
    Local { slot: u16 },
    /// A symmetric array; `remote` selects the current BFF instead of
    /// the own instance.
    Shared { off: u32, len: u32, ty: LolType, remote: bool },
}

/// One instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push constant `k`.
    Const(u16),
    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Pop, cast, push (for `MAEK` / pinned stores / `IS NOW A`).
    Cast(LolType),
    /// Pop and discard.
    Pop,

    /// Load a shared scalar (own or BFF instance).
    SharedLoad {
        off: u32,
        ty: LolType,
        remote: bool,
    },
    /// Pop value, store to a shared scalar.
    SharedStore {
        off: u32,
        ty: LolType,
        remote: bool,
    },
    /// Pop index, push element of a shared array.
    SharedLoadIdx {
        off: u32,
        len: u32,
        ty: LolType,
        remote: bool,
    },
    /// Pop index then value, store element of a shared array.
    SharedStoreIdx {
        off: u32,
        len: u32,
        ty: LolType,
        remote: bool,
    },

    /// Pop size, create a local array in `slot`.
    LocalArrNew {
        slot: u16,
        ty: LolType,
    },
    /// Pop index, push element of local array in `slot`.
    LocalArrLoad {
        slot: u16,
    },
    /// Pop index then value, store element of local array.
    LocalArrStore {
        slot: u16,
    },
    /// Whole-array copy (Section VI.A).
    ArrayCopy {
        dst: ArrLoc,
        src: ArrLoc,
    },

    /// Binary operator on the top two values (lhs below rhs).
    Bin(BinOp),
    /// Unary operator on the top value.
    Un(UnOp),
    /// N-ary string concat.
    Smoosh(u8),
    /// N-ary AND / OR.
    AllOf(u8),
    AnyOf(u8),

    /// Unconditional jump (absolute pc).
    Jump(u32),
    /// Pop; jump when FAIL-y.
    JumpIfFalse(u32),

    /// Call function `func` with `argc` stack arguments.
    Call {
        func: u16,
        argc: u8,
    },
    /// Return the top of stack from the current function.
    Ret,

    /// Pop `argc` printed values (pushed left-to-right), emit.
    Visible {
        argc: u8,
        newline: bool,
    },
    /// Push one input line as a YARN.
    ReadLine,

    /// `HUGZ`.
    Barrier,
    /// Locks on the resolved lock cell.
    LockAcquire {
        off: u32,
        remote: bool,
    },
    /// Pushes WIN/FAIL.
    LockTry {
        off: u32,
        remote: bool,
    },
    LockRelease {
        off: u32,
        remote: bool,
    },

    /// Pop PE number, validate, push onto the BFF (predication) stack.
    PushBff,
    /// Pop the BFF stack.
    PopBff,

    /// Environment queries / randomness.
    Me,
    MahFrenz,
    RandI,
    RandF,

    /// End of the main chunk.
    Halt,
}

/// A compiled chunk: code plus frame size.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    pub code: Vec<Op>,
    /// Number of local slots (slot 0 = IT).
    pub n_slots: u16,
}

/// A compiled module: main chunk, function chunks, constant pool.
#[derive(Debug, Clone, Default)]
pub struct Module {
    pub consts: Vec<Value>,
    pub main: Chunk,
    /// Function chunks; `funcs[i].1.n_slots` includes IT + params.
    pub funcs: Vec<(String, Chunk, u8)>,
    /// Symmetric words to allocate at startup (from the sema layout).
    pub shared_words: usize,
}

impl Module {
    /// Total instruction count (diagnostics / tests).
    pub fn code_len(&self) -> usize {
        self.main.code.len() + self.funcs.iter().map(|(_, c, _)| c.code.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_small() {
        // The dispatch loop copies ops; keep them cache-friendly.
        assert!(std::mem::size_of::<Op>() <= 48, "Op grew to {} bytes", std::mem::size_of::<Op>());
    }

    #[test]
    fn module_code_len_counts_everything() {
        let mut m = Module::default();
        m.main.code = vec![Op::Halt];
        m.funcs.push(("f".into(), Chunk { code: vec![Op::Ret, Op::Ret], n_slots: 1 }, 0));
        assert_eq!(m.code_len(), 3);
    }
}
