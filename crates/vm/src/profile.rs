//! Opt-in bytecode execution profiling (`lolrun --profile`).
//!
//! A [`VmProfile`] holds two counter planes, both sized once up front
//! so the hot-path hook (the crate-internal `hit`) is two array
//! increments — no allocation, no hashing, no branching beyond the
//! caller's single "is profiling on?" check:
//!
//! * **per-opcode counts** — one cell per [`Op`] discriminant
//!   ([`Op::COUNT`] of them), operand-blind, so "how much of this
//!   program is superinstructions?" is a table lookup;
//! * **per-pc heat** — one cell per bytecode offset per chunk, from
//!   which [`VmProfile::hot_ranges`] recovers the top-N contiguous hot
//!   bytecode ranges (inner loops show up as single ranges, not a
//!   smear of individual pcs).
//!
//! Profiles from different PEs of the same module share a shape and
//! [merge](VmProfile::merge) by element-wise addition, so a threaded
//! run reports one job-wide profile.

use crate::ops::{Module, Op};

/// Execution counters for one run of a [`Module`] (see module docs).
#[derive(Clone, Debug)]
pub struct VmProfile {
    /// `ops[Op::profile_index()]` = times that opcode executed.
    ops: Vec<u64>,
    /// `heat[chunk][pc]` = times the op at `pc` executed. Chunk 0 is
    /// `main`, chunk `i + 1` is `funcs[i]`.
    heat: Vec<Vec<u64>>,
}

/// One contiguous run of executed bytecode, scored by total op count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotRange {
    /// Chunk index (0 = `main`, `i + 1` = `funcs[i]`).
    pub chunk: usize,
    /// First bytecode offset of the range.
    pub start: usize,
    /// One past the last bytecode offset of the range.
    pub end: usize,
    /// Total op executions inside the range.
    pub count: u64,
}

impl VmProfile {
    /// An all-zero profile shaped for `module`.
    pub fn for_module(module: &Module) -> Self {
        let mut heat = Vec::with_capacity(1 + module.funcs.len());
        heat.push(vec![0u64; module.main.code.len()]);
        for (_, chunk, _) in &module.funcs {
            heat.push(vec![0u64; chunk.code.len()]);
        }
        VmProfile { ops: vec![0u64; Op::COUNT], heat }
    }

    /// Record one op execution. Two bounds-checked array increments —
    /// cheap enough for every dispatched op when profiling is on, and
    /// never called when it is off.
    #[inline]
    pub(crate) fn hit(&mut self, chunk: usize, pc: usize, op_idx: usize) {
        self.ops[op_idx] += 1;
        self.heat[chunk][pc] += 1;
    }

    /// Fold another PE's profile of the same module into this one.
    pub fn merge(&mut self, other: &VmProfile) {
        for (a, b) in self.ops.iter_mut().zip(&other.ops) {
            *a += b;
        }
        for (a, b) in self.heat.iter_mut().zip(&other.heat) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Total ops executed.
    pub fn total(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Executed opcodes as `(name, count, is_superinstruction)`,
    /// descending by count (ties broken by profile index, so the
    /// order is deterministic).
    pub fn op_counts(&self) -> Vec<(&'static str, u64, bool)> {
        let mut rows: Vec<(usize, u64)> =
            self.ops.iter().copied().enumerate().filter(|&(_, n)| n > 0).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.into_iter()
            .map(|(i, n)| (Op::profile_name(i), n, Op::is_superinstruction(i)))
            .collect()
    }

    /// The share of executed ops that were fused superinstructions,
    /// in parts per 10 000 (avoids float in the report plumbing).
    pub fn super_bp(&self) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let fused: u64 = self
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| Op::is_superinstruction(*i))
            .map(|(_, n)| n)
            .sum();
        fused * 10_000 / total
    }

    /// The top-`n` contiguous executed bytecode ranges, hottest first
    /// (ties broken by chunk then start, so the order is
    /// deterministic). A range is a maximal run of pcs that all
    /// executed at least once — a loop body surfaces as one range.
    pub fn hot_ranges(&self, n: usize) -> Vec<HotRange> {
        let mut ranges = Vec::new();
        for (chunk, heat) in self.heat.iter().enumerate() {
            let mut pc = 0;
            while pc < heat.len() {
                if heat[pc] == 0 {
                    pc += 1;
                    continue;
                }
                let start = pc;
                let mut count = 0u64;
                while pc < heat.len() && heat[pc] > 0 {
                    count += heat[pc];
                    pc += 1;
                }
                ranges.push(HotRange { chunk, start, end: pc, count });
            }
        }
        ranges.sort_by(|a, b| {
            b.count.cmp(&a.count).then(a.chunk.cmp(&b.chunk)).then(a.start.cmp(&b.start))
        });
        ranges.truncate(n);
        ranges
    }

    /// Human label for a heat-plane chunk index (`main` or the
    /// function's source name).
    pub fn chunk_label(module: &Module, chunk: usize) -> String {
        if chunk == 0 {
            "main".to_string()
        } else {
            module.funcs.get(chunk - 1).map_or_else(|| format!("chunk{chunk}"), |f| f.0.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_indices_are_a_dense_permutation() {
        // Names table and index space agree; supers are a contiguous
        // block strictly inside the range.
        assert_eq!(Op::profile_name(0), "Const");
        assert_eq!(Op::profile_name(Op::COUNT - 1), "Halt");
        assert_eq!(Op::Halt.profile_index(), Op::COUNT - 1);
        let sum = lol_ast::BinOp::Sum;
        assert!(Op::is_superinstruction(Op::BinLL { op: sum, a: 0, b: 0 }.profile_index()));
        assert!(!Op::is_superinstruction(Op::Bin(sum).profile_index()));
        let n_super = (0..Op::COUNT).filter(|&i| Op::is_superinstruction(i)).count();
        assert_eq!(n_super, 14);
    }

    #[test]
    fn merge_and_hot_ranges_are_deterministic() {
        let module = Module {
            consts: Vec::new(),
            main: crate::ops::Chunk { code: vec![Op::Halt; 8], n_slots: 0, n_arrays: 0 },
            funcs: Vec::new(),
            shared_words: 0,
        };
        let mut a = VmProfile::for_module(&module);
        let mut b = VmProfile::for_module(&module);
        // a executes pcs 1..=3 heavily, b executes pc 6 once.
        for _ in 0..10 {
            a.hit(0, 1, Op::Halt.profile_index());
            a.hit(0, 2, Op::Halt.profile_index());
            a.hit(0, 3, Op::Halt.profile_index());
        }
        b.hit(0, 6, Op::Halt.profile_index());
        a.merge(&b);
        assert_eq!(a.total(), 31);
        let ranges = a.hot_ranges(10);
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0], HotRange { chunk: 0, start: 1, end: 4, count: 30 });
        assert_eq!(ranges[1], HotRange { chunk: 0, start: 6, end: 7, count: 1 });
        let counts = a.op_counts();
        assert_eq!(counts, vec![("Halt", 31, false)]);
        assert_eq!(VmProfile::chunk_label(&module, 0), "main");
    }
}
