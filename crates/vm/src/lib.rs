//! # lol-vm — the compiled execution path for parallel LOLCODE
//!
//! The paper argues that "using a compiler for LOLCODE is more flexible
//! and efficient than an interpreter" (§II.B). Its compiler emits C;
//! ours has two back ends: the C emitter (`lol-c-codegen`, faithful to
//! the paper's output) and this bytecode VM, which is the *measurable*
//! compiled path in an environment without an OpenSHMEM C toolchain.
//!
//! [`compile`] lowers an analyzed program to a [`Module`] (slots
//! resolved, shared offsets baked in, control flow as jumps); the VM
//! executes modules SPMD over [`lol_shmem`], byte-for-byte matching the
//! interpreter's output (see the differential tests below and the
//! `interp_vs_vm` bench, which reproduces the paper's
//! compiled-vs-interpreted claim).
//!
//! Restriction: `SRS` (dynamic identifiers) is interpreter-only; the
//! compiler rejects it with `VMC0001` (DESIGN.md §3.11).

#![forbid(unsafe_code)]

mod compile;
pub mod machine;
pub mod ops;
pub mod profile;

pub use compile::compile;
pub use machine::{Machine, Step};
pub use ops::{Chunk, Module, Op};
pub use profile::{HotRange, VmProfile};

use lol_ast::Program;
use lol_interp::RunError;
use lol_sema::Analysis;
use lol_shmem::Pe;

/// Compile and immediately report the first error as a rendered string
/// (test/CLI convenience).
pub fn compile_checked(program: &Program, analysis: &Analysis) -> Result<Module, String> {
    compile(program, analysis).map_err(|d| d.to_string())
}

/// Run a compiled module on one PE; returns captured output.
///
/// Drives a [`Machine`] against the threaded substrate, which never
/// reports `Pending` — one `resume` runs the program to completion.
/// SPMD launching, output collection and statistics gathering live in
/// the `lolcode` driver's `VmEngine`; the discrete-event `lol-sim`
/// engine drives the same [`Machine`] from an event queue instead.
pub fn run_on_pe(module: &Module, pe: &Pe<'_>, input: &[String]) -> Result<String, RunError> {
    let mut m = Machine::new(module, input);
    match m.resume(pe)? {
        Step::Done => Ok(m.take_output()),
        Step::Blocked => unreachable!("the threaded substrate never reports Pending"),
    }
}

/// [`run_on_pe`] with bytecode profiling on: additionally returns the
/// PE's [`VmProfile`] (merge the per-PE profiles for a job-wide view).
pub fn run_on_pe_profiled(
    module: &Module,
    pe: &Pe<'_>,
    input: &[String],
) -> Result<(String, VmProfile), RunError> {
    let mut m = Machine::new(module, input);
    m.enable_profile();
    match m.resume(pe)? {
        Step::Done => {
            let out = m.take_output();
            let prof = m.take_profile().expect("profiling was enabled");
            Ok((out, prof))
        }
        Step::Blocked => unreachable!("the threaded substrate never reports Pending"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lol_parser::parse;
    use lol_sema::analyze;
    use lol_shmem::{run_spmd, ShmemConfig, SpmdError};
    use std::time::Duration;

    fn cfg(n: usize) -> ShmemConfig {
        ShmemConfig::new(n).timeout(Duration::from_secs(15))
    }

    fn build(src: &str) -> (lol_ast::Program, lol_sema::Analysis) {
        let p = parse(src).expect_program(src);
        let a = analyze(&p);
        assert!(a.is_ok(), "sema: {:?}", a.diags.iter().collect::<Vec<_>>());
        (p, a)
    }

    /// SPMD launch helper (what `lolcode`'s `VmEngine` does, minus the
    /// stats/timing plumbing).
    fn run_parallel(module: &Module, cfg: ShmemConfig) -> Result<Vec<String>, SpmdError> {
        run_spmd(cfg, |pe| match run_on_pe(module, pe, &[]) {
            Ok(out) => out,
            Err(e) => pe.fail(e.to_string()),
        })
    }

    /// Interpreter-side launch helper for the differential tests.
    fn interp_parallel(
        program: &Program,
        analysis: &Analysis,
        cfg: ShmemConfig,
    ) -> Result<Vec<String>, SpmdError> {
        run_spmd(cfg, |pe| match lol_interp::run_on_pe(program, analysis, pe, &[]) {
            Ok(out) => out,
            Err(e) => pe.fail(e.to_string()),
        })
    }

    fn run_vm(n: usize, src: &str) -> Vec<String> {
        let (p, a) = build(src);
        let m = compile(&p, &a).expect("compile failed");
        run_parallel(&m, cfg(n)).expect("vm run failed")
    }

    fn vm1(src: &str) -> String {
        run_vm(1, src).pop().unwrap()
    }

    fn prog(body: &str) -> String {
        format!("HAI 1.2\n{body}\nKTHXBYE")
    }

    /// Interpreter and VM must produce byte-identical output.
    fn differential(n: usize, src: &str) {
        let (p, a) = build(src);
        let m = compile(&p, &a).expect("compile failed");
        let vm_out = run_parallel(&m, cfg(n).seed(7)).expect("vm failed");
        let in_out = interp_parallel(&p, &a, cfg(n).seed(7)).expect("interp failed");
        assert_eq!(vm_out, in_out, "interp/VM divergence on:\n{src}");
    }

    // -----------------------------------------------------------------
    // Basics
    // -----------------------------------------------------------------

    #[test]
    fn hello_world() {
        assert_eq!(vm1(&prog("VISIBLE \"HAI WORLD\"")), "HAI WORLD\n");
    }

    #[test]
    fn arithmetic_and_it() {
        assert_eq!(vm1(&prog("SUM OF 40 AN 2\nVISIBLE IT")), "42\n");
        assert_eq!(vm1(&prog("VISIBLE QUOSHUNT OF 7 AN 2")), "3\n");
        assert_eq!(vm1(&prog("VISIBLE QUOSHUNT OF 7.0 AN 2")), "3.50\n");
    }

    #[test]
    fn control_flow() {
        let src = prog(
            "I HAS A x ITZ 2\n\
             BOTH SAEM x AN 1, O RLY?\nYA RLY\nVISIBLE \"one\"\n\
             MEBBE BOTH SAEM x AN 2\nVISIBLE \"two\"\n\
             NO WAI\nVISIBLE \"other\"\nOIC",
        );
        assert_eq!(vm1(&src), "two\n");
    }

    #[test]
    fn switch_fallthrough_gtfo() {
        let src = prog(
            "I HAS A x ITZ 1\nx, WTF?\n\
             OMG 1\nVISIBLE \"one\"\n\
             OMG 2\nVISIBLE \"two\"\nGTFO\n\
             OMG 3\nVISIBLE \"three\"\n\
             OMGWTF\nVISIBLE \"default\"\nOIC",
        );
        assert_eq!(vm1(&src), "one\ntwo\n");
    }

    #[test]
    fn loops() {
        assert_eq!(
            vm1(&prog("IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\nVISIBLE i!\nIM OUTTA YR l")),
            "0123"
        );
    }

    #[test]
    fn functions_recursion() {
        let src = "HAI 1.2\n\
            HOW IZ I fib YR n\n\
            SMALLR n AN 2, O RLY?\nYA RLY\nFOUND YR n\nOIC\n\
            FOUND YR SUM OF I IZ fib YR DIFF OF n AN 1 MKAY AN I IZ fib YR DIFF OF n AN 2 MKAY\n\
            IF U SAY SO\n\
            VISIBLE I IZ fib YR 15 MKAY\nKTHXBYE";
        assert_eq!(vm1(src), "610\n");
    }

    #[test]
    fn local_arrays() {
        let src = prog(
            "I HAS A a ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 5\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 5\n\
             a'Z i R SQUAR OF i\nIM OUTTA YR l\nVISIBLE a'Z 4",
        );
        assert_eq!(vm1(&src), "16\n");
    }

    #[test]
    fn srs_is_rejected_at_compile_time() {
        let (p, a) = build(&prog("I HAS A x ITZ 1\nVISIBLE SRS \"x\""));
        let err = compile(&p, &a).unwrap_err();
        assert_eq!(err.code, "VMC0001");
    }

    #[test]
    fn pinned_types_coerce() {
        assert_eq!(vm1(&prog("I HAS A x ITZ SRSLY A NUMBR\nx R \"42\"\nVISIBLE x")), "42\n");
    }

    #[test]
    fn yarn_interpolation() {
        assert_eq!(
            vm1(&prog("I HAS A cat ITZ \"CEILING\"\nVISIBLE \"HAI :{cat} CAT\"")),
            "HAI CEILING CAT\n"
        );
    }

    // -----------------------------------------------------------------
    // Parallel ops
    // -----------------------------------------------------------------

    #[test]
    fn me_and_frenz() {
        let outs = run_vm(4, &prog("VISIBLE \"PE \" ME \" OF \" MAH FRENZ"));
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o, &format!("PE {i} OF 4\n"));
        }
    }

    #[test]
    fn figure2_barrier_example() {
        let src = prog(
            "WE HAS A a ITZ SRSLY A NUMBR\n\
             WE HAS A b ITZ SRSLY A NUMBR\n\
             a R SUM OF ME AN 1\nHUGZ\n\
             I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             TXT MAH BFF k, UR b R MAH a\nHUGZ\n\
             VISIBLE SUM OF a AN b",
        );
        let n = 5;
        let outs = run_vm(n, &src);
        for (me, o) in outs.iter().enumerate() {
            let left = (me + n - 1) % n;
            assert_eq!(o, &format!("{}\n", me + 1 + left + 1));
        }
    }

    #[test]
    fn locks_remote_increment() {
        let src = prog(
            "WE HAS A x ITZ A NUMBR AN IM SHARIN IT\nHUGZ\n\
             IM IN YR l UPPIN YR j TIL BOTH SAEM j AN 25\n\
             TXT MAH BFF 0 AN STUFF\n\
             IM SRSLY MESIN WIF UR x\n\
             UR x R SUM OF UR x AN 1\n\
             DUN MESIN WIF UR x\n\
             TTYL\nIM OUTTA YR l\nHUGZ\nVISIBLE x",
        );
        let outs = run_vm(4, &src);
        assert_eq!(outs[0], "100\n");
    }

    #[test]
    fn whole_array_copy() {
        let src = prog(
            "WE HAS A array ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8\n\
             array'Z i R SUM OF PRODUKT OF ME AN 100 AN i\nIM OUTTA YR l\nHUGZ\n\
             I HAS A mine ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 8\n\
             I HAS A next ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
             TXT MAH BFF next, MAH mine R UR array\n\
             VISIBLE mine'Z 7",
        );
        let n = 3;
        let outs = run_vm(n, &src);
        for (me, o) in outs.iter().enumerate() {
            let next = (me + 1) % n;
            assert_eq!(o, &format!("{}\n", next * 100 + 7));
        }
    }

    // -----------------------------------------------------------------
    // Differential: VM ≡ interpreter
    // -----------------------------------------------------------------

    #[test]
    fn differential_sequential_corpus() {
        let corpus = [
            prog("VISIBLE \"HAI\""),
            prog("I HAS A x ITZ 5\nx R SUM OF x AN 1\nVISIBLE x"),
            prog("VISIBLE SMOOSH 1 AN \" \" AN 2.5 AN \" \" AN WIN MKAY"),
            prog("IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\nVISIBLE SQUAR OF i!\nIM OUTTA YR l"),
            prog("I HAS A n ITZ 17\nMOD OF n AN 2, WTF?\nOMG 0\nVISIBLE \"even\"\nGTFO\nOMG 1\nVISIBLE \"odd\"\nOIC"),
            prog("I HAS A a ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 4\na'Z 0 R 1.5\na'Z 1 R 2.5\nVISIBLE SUM OF a'Z 0 AN a'Z 1"),
            prog("VISIBLE BIGGR OF 3 AN 7\nVISIBLE SMALLR OF 3 AN 7\nVISIBLE BIGGER 3 AN 7\nVISIBLE SMALLR 3 AN 7"),
            prog("VISIBLE WHATEVR\nVISIBLE WHATEVAR"),
            prog("VISIBLE MAEK \"3.5\" A NUMBAR\nVISIBLE MAEK 9 A YARN\nVISIBLE MAEK 0 A TROOF"),
            "HAI 1.2\nHOW IZ I gcd YR a AN YR b\nBOTH SAEM b AN 0, O RLY?\nYA RLY\nFOUND YR a\nOIC\nFOUND YR I IZ gcd YR b AN YR MOD OF a AN b MKAY\nIF U SAY SO\nVISIBLE I IZ gcd YR 252 AN YR 105 MKAY\nKTHXBYE".to_string(),
        ];
        for src in &corpus {
            differential(1, src);
        }
    }

    #[test]
    fn differential_parallel_corpus() {
        let corpus = [
            prog("VISIBLE \"PE \" ME \"/\" MAH FRENZ"),
            prog(
                "WE HAS A x ITZ SRSLY A NUMBR\nx R PRODUKT OF ME AN 3\nHUGZ\n\
                 I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
                 I HAS A y\nTXT MAH BFF k, y R UR x\nVISIBLE y",
            ),
            prog(
                "WE HAS A arr ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 6\n\
                 IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 6\n\
                 arr'Z i R SUM OF ME AN WHATEVAR\nIM OUTTA YR l\nHUGZ\n\
                 I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ\n\
                 I HAS A got\nTXT MAH BFF k, got R UR arr'Z 3\nVISIBLE got",
            ),
            prog(
                "WE HAS A c ITZ A NUMBR AN IM SHARIN IT\nHUGZ\n\
                 IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 10\n\
                 TXT MAH BFF 0 AN STUFF\nIM SRSLY MESIN WIF UR c\n\
                 UR c R SUM OF UR c AN 1\nDUN MESIN WIF UR c\nTTYL\nIM OUTTA YR l\n\
                 HUGZ\nVISIBLE c",
            ),
        ];
        for src in &corpus {
            differential(4, src);
        }
    }

    #[test]
    fn differential_nbody_style_kernel() {
        // A miniature of the paper's Section VI.D structure.
        let src = prog(
            "I HAS A x ITZ SRSLY A NUMBAR\n\
             I HAS A dx ITZ SRSLY A NUMBAR\n\
             I HAS A inv ITZ SRSLY A NUMBAR\n\
             WE HAS A pos ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 8\n\
             IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 8\n\
             pos'Z i R SUM OF ME AN WHATEVAR\nIM OUTTA YR l\nHUGZ\n\
             I HAS A acc ITZ SRSLY A NUMBAR AN ITZ 0.0\n\
             IM IN YR l UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ\n\
             DIFFRINT k AN ME, O RLY?\nYA RLY\n\
             IM IN YR m UPPIN YR j TIL BOTH SAEM j AN 8\n\
             TXT MAH BFF k, dx R DIFF OF pos'Z 0 AN UR pos'Z j\n\
             inv R FLIP OF UNSQUAR OF SUM OF PRODUKT OF dx AN dx AN 0.001\n\
             acc R SUM OF acc AN inv\n\
             IM OUTTA YR m\nOIC\nIM OUTTA YR l\n\
             VISIBLE acc",
        );
        differential(4, &src);
    }

    #[test]
    fn module_structure_is_reasonable() {
        let (p, a) = build(&prog("VISIBLE \"x\"\nHUGZ"));
        let m = compile(&p, &a).unwrap();
        assert!(m.code_len() >= 3); // const+visible, barrier, halt
        assert!(m.main.code.contains(&Op::Barrier));
        assert!(matches!(m.main.code.last(), Some(Op::Halt)));
    }

    // -----------------------------------------------------------------
    // Fault paths: malformed bytecode must die with RUN0192, not a
    // naked panic
    // -----------------------------------------------------------------

    /// Hand-built broken modules (the compiler never emits these — they
    /// model compiler bugs / corrupted bytecode). Each must surface the
    /// stable `RUN0192` internal-bug diagnostic from `resume`.
    fn malformed_modules() -> Vec<(&'static str, Module)> {
        use lol_ast::BinOp;
        let with_main = |code: Vec<Op>| Module {
            main: Chunk { code, n_slots: 1, n_arrays: 0 },
            ..Default::default()
        };
        vec![
            ("binop on empty stack", with_main(vec![Op::Bin(BinOp::Sum), Op::Halt])),
            ("load of out-of-range slot", with_main(vec![Op::LoadLocal(99), Op::Halt])),
            ("store to out-of-range slot", with_main(vec![Op::StoreLocal(7), Op::Halt])),
            ("const index out of range", with_main(vec![Op::Const(3), Op::Halt])),
            ("call of missing funkshun", with_main(vec![Op::Call { func: 0, argc: 0 }, Op::Halt])),
            ("ret with empty stack", with_main(vec![Op::Ret])),
        ]
    }

    #[test]
    fn malformed_bytecode_is_a_structured_vm_bug_error() {
        for (what, m) in malformed_modules() {
            let err = run_spmd(cfg(1), |pe| {
                run_on_pe(&m, pe, &[]).expect_err(&format!("{what}: expected an error"))
            })
            .unwrap()
            .pop()
            .unwrap();
            assert_eq!(err.code, "RUN0192", "{what}: wrong code: {err}");
            assert!(
                err.to_string().contains("DIS IZ NOT UR PROGRAMZ FAULT"),
                "{what}: message should disown the user program: {err}"
            );
        }
    }

    #[test]
    fn malformed_bytecode_surfaces_through_spmd_error() {
        // The engine path: the PE converts the RunError into `pe.fail`,
        // and the job reports a structured SpmdError (what the sweep
        // driver records as FAILED) rather than propagating a panic.
        let (_, m) = malformed_modules().pop().unwrap();
        let err = run_parallel(&m, cfg(2)).expect_err("job should fail");
        assert!(err.message.contains("RUN0192"), "missing code in: {err}");
        assert!(err.to_string().starts_with("PE "), "should name the failing PE: {err}");
    }

    #[test]
    fn machine_is_dead_after_vm_bug() {
        use lol_ast::BinOp;
        let m = Module {
            main: Chunk { code: vec![Op::Bin(BinOp::Sum), Op::Halt], n_slots: 1, n_arrays: 0 },
            ..Default::default()
        };
        run_spmd(cfg(1), |pe| {
            let mut mach = Machine::new(&m, &[]);
            assert_eq!(mach.resume(pe).unwrap_err().code, "RUN0192");
            // A second resume must not continue past the fault.
            assert!(mach.resume(pe).is_err(), "machine must stay dead after an error");
        })
        .unwrap();
    }

    #[test]
    fn consts_are_deduped() {
        let (p, a) = build(&prog("VISIBLE 7\nVISIBLE 7\nVISIBLE 7"));
        let m = compile(&p, &a).unwrap();
        let sevens = m.consts.iter().filter(|v| **v == lol_interp::Value::Numbr(7)).count();
        assert_eq!(sevens, 1);
    }
}
