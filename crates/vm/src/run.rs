//! The stack VM executing compiled modules over the PGAS substrate.

use crate::ops::{ArrLoc, Chunk, Module, Op};
use lol_ast::LolType;
use lol_interp::value::{arith, cast, compare, default_for, RResult, RunError, Value};
use lol_shmem::{Pe, SymAddr};
use std::collections::VecDeque;

const MAX_CALL_DEPTH: usize = 200;

/// One frame slot: a scalar value or a local array.
#[derive(Debug, Clone)]
enum Cell {
    Val(Value),
    Arr { elems: Vec<Value>, ty: LolType },
}

pub(crate) struct Vm<'a, 'w> {
    module: &'a Module,
    pe: &'a Pe<'w>,
    base: SymAddr,
    stack: Vec<Value>,
    bff: Vec<usize>,
    out: String,
    input: VecDeque<String>,
    call_depth: usize,
}

impl<'a, 'w> Vm<'a, 'w> {
    pub(crate) fn new(module: &'a Module, pe: &'a Pe<'w>, input: &[String]) -> Self {
        let base =
            if module.shared_words > 0 { pe.shmalloc(module.shared_words) } else { SymAddr(0) };
        Vm {
            module,
            pe,
            base,
            stack: Vec::with_capacity(64),
            bff: Vec::new(),
            out: String::new(),
            input: input.iter().cloned().collect(),
            call_depth: 0,
        }
    }

    pub(crate) fn run(mut self) -> RResult<String> {
        let mut frame = new_frame(&self.module.main);
        self.exec(&self.module.main, &mut frame)?;
        Ok(self.out)
    }

    #[inline]
    fn pop(&mut self) -> Value {
        self.stack.pop().expect("VM stack underflow (compiler bug)")
    }

    fn target(&self, remote: bool) -> RResult<usize> {
        if remote {
            self.bff.last().copied().ok_or_else(|| {
                RunError::new("RUN0120", "UR OUTSIDE TXT MAH BFF — WHOS ADDRESS SPACE IZ DIS?")
            })
        } else {
            Ok(self.pe.id())
        }
    }

    fn shared_read(&self, off: u32, index: usize, ty: LolType, target: usize) -> Value {
        let addr = self.base.offset(off as usize + index);
        match ty {
            LolType::Numbar => Value::Numbar(self.pe.get_f64(addr, target)),
            LolType::Troof => Value::Troof(self.pe.get_u64(addr, target) != 0),
            _ => Value::Numbr(self.pe.get_i64(addr, target)),
        }
    }

    fn shared_write(
        &self,
        off: u32,
        index: usize,
        ty: LolType,
        target: usize,
        v: &Value,
    ) -> RResult<()> {
        let addr = self.base.offset(off as usize + index);
        match ty {
            LolType::Numbar => self.pe.put_f64(addr, target, v.to_numbar()?),
            LolType::Troof => self.pe.put_u64(addr, target, v.to_troof() as u64),
            _ => self.pe.put_i64(addr, target, v.to_numbr()?),
        }
        Ok(())
    }

    fn bounds(idx: i64, len: u32) -> RResult<usize> {
        if idx < 0 || idx as u32 >= len {
            Err(RunError::new(
                "RUN0123",
                format!("INDEX {idx} IZ OUTSIDE DA ARRAY (IT HAS {len} THINGZ)"),
            ))
        } else {
            Ok(idx as usize)
        }
    }

    /// Execute a chunk to completion; returns the `Ret` value, if any.
    fn exec(&mut self, chunk: &Chunk, frame: &mut [Cell]) -> RResult<Option<Value>> {
        let mut pc = 0usize;
        let code = &chunk.code;
        while pc < code.len() {
            let op = &code[pc];
            pc += 1;
            match op {
                Op::Const(k) => self.stack.push(self.module.consts[*k as usize].clone()),
                Op::LoadLocal(s) => match &frame[*s as usize] {
                    Cell::Val(v) => self.stack.push(v.clone()),
                    Cell::Arr { .. } => {
                        return Err(RunError::new("RUN0011", "DIS IZ A WHOLE ARRAY"))
                    }
                },
                Op::StoreLocal(s) => {
                    let v = self.pop();
                    frame[*s as usize] = Cell::Val(v);
                }
                Op::Cast(ty) => {
                    let v = self.pop();
                    self.stack.push(cast(&v, *ty)?);
                }
                Op::Pop => {
                    self.pop();
                }
                Op::SharedLoad { off, ty, remote } => {
                    let t = self.target(*remote)?;
                    self.stack.push(self.shared_read(*off, 0, *ty, t));
                }
                Op::SharedStore { off, ty, remote } => {
                    let t = self.target(*remote)?;
                    let v = self.pop();
                    self.shared_write(*off, 0, *ty, t, &v)?;
                }
                Op::SharedLoadIdx { off, len, ty, remote } => {
                    let t = self.target(*remote)?;
                    let i = Self::bounds(self.pop().to_numbr()?, *len)?;
                    self.stack.push(self.shared_read(*off, i, *ty, t));
                }
                Op::SharedStoreIdx { off, len, ty, remote } => {
                    let t = self.target(*remote)?;
                    let i = Self::bounds(self.pop().to_numbr()?, *len)?;
                    let v = self.pop();
                    self.shared_write(*off, i, *ty, t, &v)?;
                }
                Op::LocalArrNew { slot, ty } => {
                    let n = self.pop().to_numbr()?;
                    if n <= 0 {
                        return Err(RunError::new(
                            "RUN0014",
                            format!("ARRAY SIZE MUST BE POSITIVE, NOT {n}"),
                        ));
                    }
                    frame[*slot as usize] =
                        Cell::Arr { elems: vec![default_for(*ty); n as usize], ty: *ty };
                }
                Op::LocalArrLoad { slot } => {
                    let i = self.pop().to_numbr()?;
                    match &frame[*slot as usize] {
                        Cell::Arr { elems, .. } => {
                            let i = Self::bounds(i, elems.len() as u32)?;
                            self.stack.push(elems[i].clone());
                        }
                        Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
                    }
                }
                Op::LocalArrStore { slot } => {
                    let i = self.pop().to_numbr()?;
                    let v = self.pop();
                    match &mut frame[*slot as usize] {
                        Cell::Arr { elems, ty } => {
                            let i = Self::bounds(i, elems.len() as u32)?;
                            elems[i] = cast(&v, *ty)?;
                        }
                        Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
                    }
                }
                Op::ArrayCopy { dst, src } => self.array_copy(dst, src, frame)?,
                Op::Bin(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    let r = self.binop(*op, a, b)?;
                    self.stack.push(r);
                }
                Op::Un(op) => {
                    let v = self.pop();
                    let r = self.unop(*op, v)?;
                    self.stack.push(r);
                }
                Op::Smoosh(n) => {
                    let vals = self.pop_n(*n);
                    let mut s = String::new();
                    for v in vals {
                        s.push_str(&v.to_yarn()?);
                    }
                    self.stack.push(Value::yarn(s));
                }
                Op::AllOf(n) => {
                    let vals = self.pop_n(*n);
                    self.stack.push(Value::Troof(vals.iter().all(|v| v.to_troof())));
                }
                Op::AnyOf(n) => {
                    let vals = self.pop_n(*n);
                    self.stack.push(Value::Troof(vals.iter().any(|v| v.to_troof())));
                }
                Op::Jump(t) => pc = *t as usize,
                Op::JumpIfFalse(t) => {
                    let v = self.pop();
                    if !v.to_troof() {
                        pc = *t as usize;
                    }
                }
                Op::Call { func, argc } => {
                    if self.call_depth >= MAX_CALL_DEPTH {
                        return Err(RunError::new(
                            "RUN0130",
                            format!("2 MUCH RECURSHUN (DEPTH {MAX_CALL_DEPTH})"),
                        ));
                    }
                    let (_, chunk, arity) = &self.module.funcs[*func as usize];
                    debug_assert_eq!(*arity, *argc, "arity checked by sema");
                    let mut callee = new_frame(chunk);
                    // Args were pushed left-to-right: pop into reverse.
                    for i in (0..*argc).rev() {
                        let v = self.pop();
                        callee[1 + i as usize] = Cell::Val(v);
                    }
                    self.call_depth += 1;
                    let r = self.exec(chunk, &mut callee)?;
                    self.call_depth -= 1;
                    self.stack.push(r.unwrap_or(Value::Noob));
                }
                Op::Ret => {
                    let v = self.pop();
                    return Ok(Some(v));
                }
                Op::Visible { argc, newline } => {
                    let vals = self.pop_n(*argc);
                    for v in vals {
                        let s = v.to_yarn()?;
                        self.out.push_str(&s);
                    }
                    if *newline {
                        self.out.push('\n');
                    }
                }
                Op::ReadLine => {
                    let line = self.input.pop_front().ok_or_else(|| {
                        RunError::new("RUN0140", "GIMMEH BUT THERES NO MOAR INPUT")
                    })?;
                    self.stack.push(Value::yarn(line));
                }
                Op::Barrier => self.pe.barrier_all(),
                Op::LockAcquire { off, remote } => {
                    let t = self.target(*remote)?;
                    self.pe.lock(self.base.offset(*off as usize), t);
                }
                Op::LockTry { off, remote } => {
                    let t = self.target(*remote)?;
                    let got = self.pe.try_lock(self.base.offset(*off as usize), t);
                    self.stack.push(Value::Troof(got));
                }
                Op::LockRelease { off, remote } => {
                    let t = self.target(*remote)?;
                    self.pe.unlock(self.base.offset(*off as usize), t);
                }
                Op::PushBff => {
                    let k = self.pop().to_numbr()?;
                    if k < 0 || k as usize >= self.pe.n_pes() {
                        return Err(RunError::new(
                            "RUN0017",
                            format!(
                                "PE {k} IZ NOT MAH FREN (THERE R ONLY {} OF US)",
                                self.pe.n_pes()
                            ),
                        ));
                    }
                    self.bff.push(k as usize);
                }
                Op::PopBff => {
                    self.bff.pop();
                }
                Op::Me => self.stack.push(Value::Numbr(self.pe.id() as i64)),
                Op::MahFrenz => self.stack.push(Value::Numbr(self.pe.n_pes() as i64)),
                Op::RandI => self.stack.push(Value::Numbr(self.pe.rand_i64())),
                Op::RandF => self.stack.push(Value::Numbar(self.pe.rand_f64())),
                Op::Halt => return Ok(None),
            }
        }
        Ok(None)
    }

    fn pop_n(&mut self, n: u8) -> Vec<Value> {
        let at = self.stack.len() - n as usize;
        self.stack.split_off(at)
    }

    fn binop(&mut self, op: lol_ast::BinOp, a: Value, b: Value) -> RResult<Value> {
        use lol_ast::BinOp::*;
        match op {
            Sum | Diff | Produkt | Quoshunt | Mod | BiggrOf | SmallrOf => arith(op, &a, &b),
            Bigger | Smallr => compare(op, &a, &b),
            BothSaem => Ok(Value::Troof(a.saem(&b))),
            Diffrint => Ok(Value::Troof(!a.saem(&b))),
            BothOf => Ok(Value::Troof(a.to_troof() && b.to_troof())),
            EitherOf => Ok(Value::Troof(a.to_troof() || b.to_troof())),
            WonOf => Ok(Value::Troof(a.to_troof() ^ b.to_troof())),
        }
    }

    fn unop(&mut self, op: lol_ast::UnOp, v: Value) -> RResult<Value> {
        use lol_ast::UnOp::*;
        match op {
            Not => Ok(Value::Troof(!v.to_troof())),
            Squar => arith(lol_ast::BinOp::Produkt, &v, &v),
            Unsquar => Ok(Value::Numbar(v.to_numbar()?.sqrt())),
            Flip => Ok(Value::Numbar(1.0 / v.to_numbar()?)),
        }
    }

    fn array_copy(&mut self, dst: &ArrLoc, src: &ArrLoc, frame: &mut [Cell]) -> RResult<()> {
        let values: Vec<Value> = match src {
            ArrLoc::Local { slot } => match &frame[*slot as usize] {
                Cell::Arr { elems, .. } => elems.clone(),
                Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
            },
            ArrLoc::Shared { off, len, ty, remote } => {
                let t = self.target(*remote)?;
                (0..*len as usize).map(|i| self.shared_read(*off, i, *ty, t)).collect()
            }
        };
        match dst {
            ArrLoc::Local { slot } => {
                let ty = match &frame[*slot as usize] {
                    Cell::Arr { ty, .. } => *ty,
                    Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
                };
                let converted: RResult<Vec<Value>> = values.iter().map(|v| cast(v, ty)).collect();
                match &mut frame[*slot as usize] {
                    Cell::Arr { elems, .. } => *elems = converted?,
                    Cell::Val(_) => unreachable!(),
                }
                Ok(())
            }
            ArrLoc::Shared { off, len, ty, remote } => {
                if values.len() != *len as usize {
                    return Err(RunError::new(
                        "RUN0013",
                        format!("ARRAY COPY SIZE MISMATCH: {} THINGZ INTO {len}", values.len()),
                    ));
                }
                let t = self.target(*remote)?;
                for (i, v) in values.iter().enumerate() {
                    self.shared_write(*off, i, *ty, t, v)?;
                }
                Ok(())
            }
        }
    }
}

fn new_frame(chunk: &Chunk) -> Vec<Cell> {
    vec![Cell::Val(Value::Noob); chunk.n_slots as usize]
}
