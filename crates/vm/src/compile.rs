//! AST → bytecode compiler.
//!
//! Resolution that the tree-walker repeats on every execution happens
//! exactly once here: variable names become frame slots, shared names
//! become heap offsets, pinned (`ITZ SRSLY A`) types become explicit
//! `Cast` instructions, and control flow becomes jumps. The dynamic
//! constructs that cannot be resolved statically (`SRS`) are rejected
//! with a compile error — the documented compiled-subset restriction
//! (DESIGN.md §3.11).

use crate::ops::{ArrLoc, Chunk, Module, Op};
use lol_ast::diag::Diagnostic;
use lol_ast::*;
use lol_interp::Value;
use lol_sema::{Analysis, SharedKind, SharedVar};
use std::collections::HashMap;

type CResult<T> = Result<T, Diagnostic>;

/// Compile an analyzed program to bytecode.
pub fn compile(program: &Program, analysis: &Analysis) -> CResult<Module> {
    let mut module = Module::default();
    let mut func_ids: HashMap<Symbol, u16> = HashMap::new();
    for (i, f) in program.funcs.iter().enumerate() {
        func_ids.insert(f.name.sym, i as u16);
    }

    // Main chunk.
    {
        let mut c = FnCompiler::new(analysis, &func_ids, &mut module.consts, false);
        c.enter_scope();
        for s in &program.body {
            c.stmt(s)?;
        }
        c.leave_scope();
        c.code.push(Op::Halt);
        module.main = Chunk { code: peephole(c.code), n_slots: c.n_slots, n_arrays: c.n_arrays };
    }

    // Function chunks.
    for f in &program.funcs {
        let mut c = FnCompiler::new(analysis, &func_ids, &mut module.consts, true);
        c.enter_scope();
        for p in &f.params {
            let slot = c.alloc_slot(p.sym, SlotKind::Scalar { pinned: None });
            debug_assert!(slot >= 1);
        }
        for s in &f.body {
            c.stmt(s)?;
        }
        c.leave_scope();
        // Fall-through returns IT.
        c.code.push(Op::LoadLocal(0));
        c.code.push(Op::Ret);
        module.funcs.push((
            f.name.sym.as_str().to_string(),
            Chunk { code: peephole(c.code), n_slots: c.n_slots, n_arrays: c.n_arrays },
            f.params.len() as u8,
        ));
    }

    module.shared_words = analysis.shared.total_words;
    Ok(module)
}

#[derive(Clone)]
enum SlotKind {
    Scalar { pinned: Option<LolType> },
    Array,
}

#[derive(Clone)]
struct LocalSlot {
    slot: u16,
    kind: SlotKind,
}

struct FnCompiler<'a> {
    analysis: &'a Analysis,
    func_ids: &'a HashMap<Symbol, u16>,
    consts: &'a mut Vec<Value>,
    code: Vec<Op>,
    scopes: Vec<HashMap<Symbol, LocalSlot>>,
    n_slots: u16,
    n_arrays: u16,
    /// Jump indices to patch per open loop/switch.
    break_frames: Vec<Vec<usize>>,
    in_function: bool,
}

impl<'a> FnCompiler<'a> {
    fn new(
        analysis: &'a Analysis,
        func_ids: &'a HashMap<Symbol, u16>,
        consts: &'a mut Vec<Value>,
        in_function: bool,
    ) -> Self {
        FnCompiler {
            analysis,
            func_ids,
            consts,
            code: Vec::new(),
            scopes: vec![],
            n_slots: 1, // slot 0 = IT
            n_arrays: 0,
            break_frames: Vec::new(),
            in_function,
        }
    }

    // -- helpers -------------------------------------------------------

    fn enter_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn leave_scope(&mut self) {
        self.scopes.pop();
    }

    /// Allocate a slot index in the space matching `kind` (scalars and
    /// arrays index disjoint per-frame tables).
    fn alloc_slot(&mut self, name: Symbol, kind: SlotKind) -> u16 {
        let counter = match kind {
            SlotKind::Scalar { .. } => &mut self.n_slots,
            SlotKind::Array => &mut self.n_arrays,
        };
        let slot = *counter;
        *counter += 1;
        self.scopes.last_mut().expect("scope").insert(name, LocalSlot { slot, kind });
        slot
    }

    fn lookup(&self, name: Symbol) -> Option<LocalSlot> {
        if let Some(ls) = self.scopes.iter().rev().find_map(|s| s.get(&name)) {
            return Some(ls.clone());
        }
        // `IT` is implicitly slot 0 of every frame.
        if name == Symbol::it() {
            return Some(LocalSlot { slot: 0, kind: SlotKind::Scalar { pinned: None } });
        }
        None
    }

    fn konst(&mut self, v: Value) -> u16 {
        // Linear dedup is fine at compile time for teaching programs.
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn emit_const(&mut self, v: Value) {
        let k = self.konst(v);
        self.code.push(Op::Const(k));
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn emit_jump_placeholder(&mut self, op: fn(u32) -> Op) -> usize {
        let at = self.here();
        self.code.push(op(u32::MAX));
        at
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.here() as u32;
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) => *t = target,
            other => panic!("not a jump at {at}: {other:?}"),
        }
    }

    fn err(&self, code: &'static str, msg: String, span: Span) -> Diagnostic {
        Diagnostic::error(code, msg, span)
    }

    fn shared(&self, name: Symbol) -> Option<&'a SharedVar> {
        self.analysis.shared.get(name)
    }

    fn named(&self, vr: &VarRef) -> CResult<Symbol> {
        match &vr.name {
            VarName::Named(id) => Ok(id.sym),
            VarName::Srs(_) => Err(self.err(
                "VMC0001",
                "SRS IZ 2 DYNAMIC 4 DA COMPILER — RUN DIS WIF DA INTERPRETER".to_string(),
                vr.span,
            )),
        }
    }

    /// Is this reference an array (in its locality)?
    fn is_array_ref(&self, vr: &VarRef) -> CResult<bool> {
        let name = self.named(vr)?;
        if vr.locality != Locality::Ur {
            if let Some(ls) = self.lookup(name) {
                return Ok(matches!(ls.kind, SlotKind::Array));
            }
        }
        Ok(self.shared(name).map(|sv| matches!(sv.kind, SharedKind::Array { .. })).unwrap_or(false))
    }

    fn arr_loc(&self, vr: &VarRef) -> CResult<ArrLoc> {
        let name = self.named(vr)?;
        if vr.locality != Locality::Ur {
            if let Some(ls) = self.lookup(name) {
                if matches!(ls.kind, SlotKind::Array) {
                    return Ok(ArrLoc::Local { arr: ls.slot });
                }
            }
        }
        let sv = self.shared(name).ok_or_else(|| {
            self.err("VMC0002", format!("{name} IZ NOT AN ARRAY I KNOW"), vr.span)
        })?;
        match sv.kind {
            SharedKind::Array { len } => Ok(ArrLoc::Shared {
                off: sv.addr,
                len: len as u32,
                ty: sv.ty,
                remote: vr.locality == Locality::Ur,
            }),
            SharedKind::Scalar => Err(self.err("VMC0002", format!("{name} IZ A SCALAR"), vr.span)),
        }
    }

    // -- expressions ---------------------------------------------------

    fn expr(&mut self, e: &Expr) -> CResult<()> {
        match &e.kind {
            ExprKind::Lit(l) => self.literal(l, e.span)?,
            ExprKind::Var(vr) => self.var_read(vr)?,
            ExprKind::Index { arr, idx } => {
                let name = self.named(arr)?;
                if arr.locality != Locality::Ur {
                    if let Some(ls) = self.lookup(name) {
                        match ls.kind {
                            SlotKind::Array => {
                                self.expr(idx)?;
                                self.code.push(Op::LocalArrLoad { arr: ls.slot });
                                return Ok(());
                            }
                            SlotKind::Scalar { .. } => {
                                return Err(self.err(
                                    "VMC0002",
                                    format!("{name} IZ NOT LOTZ A THINGZ"),
                                    arr.span,
                                ))
                            }
                        }
                    }
                }
                let sv = self
                    .shared(name)
                    .ok_or_else(|| self.err("VMC0002", format!("WHO IZ {name}?"), arr.span))?;
                let SharedKind::Array { len } = sv.kind else {
                    return Err(self.err("VMC0002", format!("{name} IZ A SCALAR"), arr.span));
                };
                self.expr(idx)?;
                self.code.push(Op::SharedLoadIdx {
                    off: sv.addr,
                    len: len as u32,
                    ty: sv.ty,
                    remote: arr.locality == Locality::Ur,
                });
            }
            ExprKind::Bin { op, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.code.push(Op::Bin(*op));
            }
            ExprKind::Un { op, expr } => {
                self.expr(expr)?;
                self.code.push(Op::Un(*op));
            }
            ExprKind::Nary { op, args } => {
                for a in args {
                    self.expr(a)?;
                }
                let n = args.len() as u8;
                self.code.push(match op {
                    NaryOp::AllOf => Op::AllOf(n),
                    NaryOp::AnyOf => Op::AnyOf(n),
                    NaryOp::Smoosh => Op::Smoosh(n),
                });
            }
            ExprKind::Cast { expr, ty } => {
                self.expr(expr)?;
                self.code.push(Op::Cast(*ty));
            }
            ExprKind::Call { name, args } => {
                let Some(&func) = self.func_ids.get(&name.sym) else {
                    return Err(self.err(
                        "VMC0003",
                        format!("I DUNNO HOW IZ I {}", name.sym),
                        name.span,
                    ));
                };
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Op::Call { func, argc: args.len() as u8 });
            }
            ExprKind::Me => self.code.push(Op::Me),
            ExprKind::MahFrenz => self.code.push(Op::MahFrenz),
            ExprKind::Whatevr => self.code.push(Op::RandI),
            ExprKind::Whatevar => self.code.push(Op::RandF),
        }
        Ok(())
    }

    fn literal(&mut self, l: &Lit, span: Span) -> CResult<()> {
        match l {
            Lit::Numbr(n) => self.emit_const(Value::Numbr(*n)),
            Lit::Numbar(f) => self.emit_const(Value::Numbar(*f)),
            Lit::Troof(b) => self.emit_const(Value::Troof(*b)),
            Lit::Noob => self.emit_const(Value::Noob),
            Lit::Yarn(parts) => {
                // Pure text folds to one constant; interpolation
                // becomes loads + SMOOSH.
                let needs_interp = parts.iter().any(|p| matches!(p, YarnPart::Var(_)));
                if !needs_interp {
                    let text: String = parts
                        .iter()
                        .map(|p| match p {
                            YarnPart::Text(t) => t.as_str(),
                            YarnPart::Var(_) => unreachable!(),
                        })
                        .collect();
                    self.emit_const(Value::yarn(text));
                } else {
                    let mut n = 0u8;
                    for p in parts {
                        match p {
                            YarnPart::Text(t) => {
                                self.emit_const(Value::yarn(t.clone()));
                            }
                            YarnPart::Var(id) => {
                                let vr = VarRef::named(*id);
                                let vr = VarRef { span, ..vr };
                                self.var_read(&vr)?;
                                self.code.push(Op::Cast(LolType::Yarn));
                            }
                        }
                        n += 1;
                    }
                    self.code.push(Op::Smoosh(n));
                }
            }
        }
        Ok(())
    }

    fn var_read(&mut self, vr: &VarRef) -> CResult<()> {
        let name = self.named(vr)?;
        if vr.locality != Locality::Ur {
            if let Some(ls) = self.lookup(name) {
                return match ls.kind {
                    SlotKind::Scalar { .. } => {
                        self.code.push(Op::LoadLocal(ls.slot));
                        Ok(())
                    }
                    SlotKind::Array => Err(self.err(
                        "VMC0004",
                        format!("{name} IZ A WHOLE ARRAY, NOT A VALUE"),
                        vr.span,
                    )),
                };
            }
        }
        let Some(sv) = self.shared(name) else {
            return Err(self.err("VMC0005", format!("WHO IZ {name}?"), vr.span));
        };
        match sv.kind {
            SharedKind::Scalar => {
                self.code.push(Op::SharedLoad {
                    off: sv.addr,
                    ty: sv.ty,
                    remote: vr.locality == Locality::Ur,
                });
                Ok(())
            }
            SharedKind::Array { .. } => {
                Err(self.err("VMC0004", format!("{name} IZ A WHOLE ARRAY, NOT A VALUE"), vr.span))
            }
        }
    }

    /// Store the value on top of the stack into a scalar variable.
    fn var_store(&mut self, vr: &VarRef) -> CResult<()> {
        let name = self.named(vr)?;
        if vr.locality != Locality::Ur {
            if let Some(ls) = self.lookup(name) {
                return match ls.kind {
                    SlotKind::Scalar { pinned } => {
                        if let Some(ty) = pinned {
                            self.code.push(Op::Cast(ty));
                        }
                        self.code.push(Op::StoreLocal(ls.slot));
                        Ok(())
                    }
                    SlotKind::Array => Err(self.err(
                        "VMC0004",
                        format!("{name} IZ A WHOLE ARRAY — ASSIGN ELEMENTS"),
                        vr.span,
                    )),
                };
            }
        }
        let Some(sv) = self.shared(name) else {
            return Err(self.err("VMC0005", format!("WHO IZ {name}?"), vr.span));
        };
        match sv.kind {
            SharedKind::Scalar => {
                self.code.push(Op::SharedStore {
                    off: sv.addr,
                    ty: sv.ty,
                    remote: vr.locality == Locality::Ur,
                });
                Ok(())
            }
            SharedKind::Array { .. } => Err(self.err(
                "VMC0004",
                format!("{name} IZ A WHOLE ARRAY — ASSIGN ELEMENTS"),
                vr.span,
            )),
        }
    }

    /// Store stack-top into an lvalue. For indexed stores the compiler
    /// pushes value first, then the index.
    fn store_lvalue(&mut self, lv: &LValue) -> CResult<()> {
        match lv {
            LValue::Var(vr) => self.var_store(vr),
            LValue::Index { arr, idx, .. } => {
                let name = self.named(arr)?;
                self.expr(idx)?;
                if arr.locality != Locality::Ur {
                    if let Some(ls) = self.lookup(name) {
                        return match ls.kind {
                            SlotKind::Array => {
                                self.code.push(Op::LocalArrStore { arr: ls.slot });
                                Ok(())
                            }
                            SlotKind::Scalar { .. } => Err(self.err(
                                "VMC0002",
                                format!("{name} IZ NOT LOTZ A THINGZ"),
                                arr.span,
                            )),
                        };
                    }
                }
                let sv = self
                    .shared(name)
                    .ok_or_else(|| self.err("VMC0005", format!("WHO IZ {name}?"), arr.span))?;
                let SharedKind::Array { len } = sv.kind else {
                    return Err(self.err("VMC0002", format!("{name} IZ A SCALAR"), arr.span));
                };
                self.code.push(Op::SharedStoreIdx {
                    off: sv.addr,
                    len: len as u32,
                    ty: sv.ty,
                    remote: arr.locality == Locality::Ur,
                });
                Ok(())
            }
        }
    }

    // -- statements ----------------------------------------------------

    fn block(&mut self, b: &Block) -> CResult<()> {
        self.enter_scope();
        for s in b {
            self.stmt(s)?;
        }
        self.leave_scope();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> CResult<()> {
        match &s.kind {
            StmtKind::Declare(d) => self.decl(d),
            StmtKind::Assign { target, value } => self.assign(s, target, value),
            StmtKind::ExprStmt(e) => {
                self.expr(e)?;
                self.code.push(Op::StoreLocal(0));
                Ok(())
            }
            StmtKind::Visible { args, newline } => {
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Op::Visible { argc: args.len() as u8, newline: *newline });
                Ok(())
            }
            StmtKind::Gimmeh(lv) => {
                self.code.push(Op::ReadLine);
                self.store_lvalue(lv)
            }
            StmtKind::If(ifs) => self.if_stmt(ifs),
            StmtKind::Switch(sw) => self.switch(sw),
            StmtKind::Loop(lp) => self.loop_stmt(lp),
            StmtKind::Gtfo => {
                if !self.break_frames.is_empty() {
                    let at = self.here();
                    self.code.push(Op::Jump(u32::MAX));
                    self.break_frames.last_mut().expect("checked").push(at);
                } else if self.in_function {
                    self.emit_const(Value::Noob);
                    self.code.push(Op::Ret);
                } else {
                    return Err(self.err("VMC0006", "GTFO OF WHERE?".to_string(), s.span));
                }
                Ok(())
            }
            StmtKind::FoundYr(e) => {
                self.expr(e)?;
                if !self.in_function {
                    return Err(self.err(
                        "VMC0006",
                        "FOUND YR OUTSIDE A FUNKSHUN".to_string(),
                        s.span,
                    ));
                }
                self.code.push(Op::Ret);
                Ok(())
            }
            StmtKind::IsNowA { target, ty } => match target {
                LValue::Var(vr) => {
                    let name = self.named(vr)?;
                    match self.lookup(name) {
                        Some(LocalSlot { slot, kind: SlotKind::Scalar { .. } }) => {
                            self.code.push(Op::LoadLocal(slot));
                            self.code.push(Op::Cast(*ty));
                            self.code.push(Op::StoreLocal(slot));
                            Ok(())
                        }
                        _ => Err(self.err(
                            "VMC0007",
                            format!("{name} CANT CHANGE TYPE (SHARED/ARRAY TYPES R FIXED)"),
                            vr.span,
                        )),
                    }
                }
                LValue::Index { span, .. } => Err(self.err(
                    "VMC0007",
                    "ARRAY ELEMENTS KEEP DA ARRAY'S TYPE".to_string(),
                    *span,
                )),
            },
            StmtKind::Hugz => {
                self.code.push(Op::Barrier);
                Ok(())
            }
            StmtKind::LockAcquire(vr) => {
                let (off, remote) = self.lock_cell(vr)?;
                self.code.push(Op::LockAcquire { off, remote });
                self.emit_const(Value::Troof(true));
                self.code.push(Op::StoreLocal(0));
                Ok(())
            }
            StmtKind::LockTry(vr) => {
                let (off, remote) = self.lock_cell(vr)?;
                self.code.push(Op::LockTry { off, remote });
                self.code.push(Op::StoreLocal(0));
                Ok(())
            }
            StmtKind::LockRelease(vr) => {
                let (off, remote) = self.lock_cell(vr)?;
                self.code.push(Op::LockRelease { off, remote });
                Ok(())
            }
            StmtKind::TxtStmt { pe, stmt } => {
                self.expr(pe)?;
                self.code.push(Op::PushBff);
                self.stmt(stmt)?;
                self.code.push(Op::PopBff);
                Ok(())
            }
            StmtKind::TxtBlock { pe, body } => {
                self.expr(pe)?;
                self.code.push(Op::PushBff);
                self.block(body)?;
                self.code.push(Op::PopBff);
                Ok(())
            }
        }
    }

    fn lock_cell(&mut self, vr: &VarRef) -> CResult<(u32, bool)> {
        let name = self.named(vr)?;
        let sv = self
            .shared(name)
            .ok_or_else(|| self.err("VMC0005", format!("{name} IZ NOT SHARED"), vr.span))?;
        let off = sv.lock.ok_or_else(|| {
            self.err(
                "VMC0008",
                format!("{name} HAS NO LOCK — DECLARE IT WIF AN IM SHARIN IT"),
                vr.span,
            )
        })?;
        Ok((off, vr.locality == Locality::Ur))
    }

    fn decl(&mut self, d: &Decl) -> CResult<()> {
        match d.scope {
            DeclScope::We => {
                // Layout is static; compile the per-PE initializer.
                if let Some(init) = &d.init {
                    if let Some(sv) = self.shared(d.name.sym) {
                        if matches!(sv.kind, SharedKind::Scalar) {
                            self.expr(init)?;
                            self.code.push(Op::SharedStore {
                                off: sv.addr,
                                ty: sv.ty,
                                remote: false,
                            });
                        }
                    }
                }
                Ok(())
            }
            DeclScope::I => {
                if let Some(size) = &d.array_size {
                    self.expr(size)?;
                    let arr = self.alloc_slot(d.name.sym, SlotKind::Array);
                    self.code.push(Op::LocalArrNew { arr, ty: d.ty.unwrap_or(LolType::Noob) });
                    Ok(())
                } else {
                    match (&d.init, d.ty) {
                        (Some(init), Some(ty)) => {
                            self.expr(init)?;
                            self.code.push(Op::Cast(ty));
                        }
                        (Some(init), None) => self.expr(init)?,
                        (None, Some(ty)) => {
                            let v = lol_interp::value::default_for(ty);
                            self.emit_const(v);
                        }
                        (None, None) => self.emit_const(Value::Noob),
                    }
                    let pinned = if d.srsly { d.ty } else { None };
                    let slot = self.alloc_slot(d.name.sym, SlotKind::Scalar { pinned });
                    self.code.push(Op::StoreLocal(slot));
                    Ok(())
                }
            }
        }
    }

    fn assign(&mut self, s: &Stmt, target: &LValue, value: &Expr) -> CResult<()> {
        if let LValue::Var(dst) = target {
            if let ExprKind::Var(src) = &value.kind {
                let d_arr = self.is_array_ref(dst)?;
                let s_arr = self.is_array_ref(src)?;
                match (d_arr, s_arr) {
                    (true, true) => {
                        let dst = self.arr_loc(dst)?;
                        let src = self.arr_loc(src)?;
                        self.code.push(Op::ArrayCopy { dst, src });
                        return Ok(());
                    }
                    (true, false) | (false, true) => {
                        return Err(self.err(
                            "VMC0009",
                            "U CANT MIX A WHOLE ARRAY AN A SCALAR IN ONE ASSIGNMENT".to_string(),
                            s.span,
                        ))
                    }
                    (false, false) => {}
                }
            } else if self.is_array_ref(dst)? {
                return Err(self.err(
                    "VMC0009",
                    "AN ARRAY CAN ONLY BE ASSIGNED FROM ANOTHER ARRAY".to_string(),
                    s.span,
                ));
            }
        }
        self.expr(value)?;
        self.store_lvalue(target)
    }

    fn if_stmt(&mut self, ifs: &IfStmt) -> CResult<()> {
        // IT is the scrutinee.
        self.code.push(Op::LoadLocal(0));
        let to_next = self.emit_jump_placeholder(Op::JumpIfFalse);
        self.block(&ifs.then_block)?;
        let mut to_end = vec![self.emit_jump_placeholder(Op::Jump)];
        self.patch_jump(to_next);
        for m in &ifs.mebbes {
            self.expr(&m.cond)?;
            let skip = self.emit_jump_placeholder(Op::JumpIfFalse);
            self.block(&m.body)?;
            to_end.push(self.emit_jump_placeholder(Op::Jump));
            self.patch_jump(skip);
        }
        if let Some(e) = &ifs.else_block {
            self.block(e)?;
        }
        for j in to_end {
            self.patch_jump(j);
        }
        Ok(())
    }

    fn switch(&mut self, sw: &SwitchStmt) -> CResult<()> {
        // Dispatch: compare IT to each arm literal in turn; on match
        // jump to that arm's body. Bodies are contiguous (fallthrough);
        // GTFO patches to the end.
        self.break_frames.push(Vec::new());
        let mut body_entries = Vec::new();
        for arm in &sw.arms {
            self.code.push(Op::LoadLocal(0));
            self.literal(&arm.value, Span::DUMMY)?;
            self.code.push(Op::Bin(BinOp::BothSaem));
            let no = self.emit_jump_placeholder(Op::JumpIfFalse);
            let to_body = self.emit_jump_placeholder(Op::Jump);
            body_entries.push(to_body);
            self.patch_jump(no);
        }
        // No match: jump to default (or end).
        let to_default = self.emit_jump_placeholder(Op::Jump);
        for (arm, entry) in sw.arms.iter().zip(body_entries) {
            self.patch_jump(entry);
            self.block(&arm.body)?;
            // falls through into the next arm's body
        }
        self.patch_jump(to_default);
        if let Some(d) = &sw.default {
            self.block(d)?;
        }
        let breaks = self.break_frames.pop().expect("switch break frame");
        for b in breaks {
            self.patch_jump(b);
        }
        Ok(())
    }

    fn loop_stmt(&mut self, lp: &LoopStmt) -> CResult<()> {
        self.enter_scope();
        let update_slot = match &lp.update {
            Some((_, var)) => {
                let slot = self.alloc_slot(var.sym, SlotKind::Scalar { pinned: None });
                self.emit_const(Value::Numbr(0));
                self.code.push(Op::StoreLocal(slot));
                Some(slot)
            }
            None => None,
        };
        self.break_frames.push(Vec::new());
        let start = self.here() as u32;
        let mut guard_exit = None;
        if let Some((kind, guard)) = &lp.guard {
            self.expr(guard)?;
            if matches!(kind, GuardKind::Til) {
                self.code.push(Op::Un(UnOp::Not));
            }
            guard_exit = Some(self.emit_jump_placeholder(Op::JumpIfFalse));
        }
        for st in &lp.body {
            self.stmt(st)?;
        }
        if let (Some(slot), Some((dir, _))) = (update_slot, &lp.update) {
            self.code.push(Op::LoadLocal(slot));
            self.emit_const(Value::Numbr(1));
            self.code.push(Op::Bin(match dir {
                LoopDir::Uppin => BinOp::Sum,
                LoopDir::Nerfin => BinOp::Diff,
            }));
            self.code.push(Op::StoreLocal(slot));
        }
        self.code.push(Op::Jump(start));
        if let Some(g) = guard_exit {
            self.patch_jump(g);
        }
        let breaks = self.break_frames.pop().expect("loop break frame");
        for b in breaks {
            self.patch_jump(b);
        }
        self.leave_scope();
        Ok(())
    }
}

/// Fuse common instruction idioms into superinstructions.
///
/// The fuser works on fully patched code (absolute jump targets). Two
/// rules keep it exactly semantics-preserving:
///
/// 1. a fusion window never covers an *interior* jump target — the
///    window's first instruction may be jumped to, the rest may not
///    (otherwise a jump would land mid-superinstruction);
/// 2. after fusion every jump target is remapped through the old→new
///    pc table.
///
/// Each superinstruction performs the identical value operations (same
/// errors, in the same order) as the sequence it replaces, so fused
/// and unfused code are byte-identical in output, stats, and traces.
fn peephole(code: Vec<Op>) -> Vec<Op> {
    let n = code.len();
    let mut is_target = vec![false; n + 1];
    for op in &code {
        match op {
            Op::Jump(t) | Op::JumpIfFalse(t) => is_target[*t as usize] = true,
            _ => {}
        }
    }

    let mut out: Vec<Op> = Vec::with_capacity(n);
    // Old pc → new pc, for every instruction boundary (+ end-of-code,
    // a legal jump target for loop exits at the end of a chunk).
    let mut map = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        map[i] = out.len() as u32;
        // No interior instruction of the window [i, i+len) is a target.
        let free = |len: usize| !is_target[i + 1..i + len].iter().any(|&b| b);
        let fused: Option<(Op, usize)> = match &code[i..] {
            // Counted-loop guards (both the TIL and WILE DIFFRINT
            // shapes reduce to "jump out when var SAEMs the bound"),
            // with constant or variable bounds.
            [Op::LoadLocal(s), Op::Const(k), Op::Bin(BinOp::BothSaem), Op::Un(UnOp::Not), Op::JumpIfFalse(t), ..]
                if free(5) =>
            {
                Some((Op::JumpIfLocalEqConst { slot: *s, k: *k, target: *t }, 5))
            }
            [Op::LoadLocal(a), Op::LoadLocal(b), Op::Bin(BinOp::BothSaem), Op::Un(UnOp::Not), Op::JumpIfFalse(t), ..]
                if free(5) =>
            {
                Some((Op::JumpIfLocalEqLocal { a: *a, b: *b, target: *t }, 5))
            }
            [Op::LoadLocal(s), Op::Const(k), Op::Bin(BinOp::Diffrint), Op::JumpIfFalse(t), ..]
                if free(4) =>
            {
                Some((Op::JumpIfLocalEqConst { slot: *s, k: *k, target: *t }, 4))
            }
            [Op::LoadLocal(a), Op::LoadLocal(b), Op::Bin(BinOp::Diffrint), Op::JumpIfFalse(t), ..]
                if free(4) =>
            {
                Some((Op::JumpIfLocalEqLocal { a: *a, b: *b, target: *t }, 4))
            }
            // Compute-and-store: reductions (`acc R SUM OF acc AN x`)
            // and loop increments / index arithmetic.
            [Op::LoadLocal(a), Op::LoadLocal(b), Op::Bin(op), Op::StoreLocal(d), ..] if free(4) => {
                Some((Op::BinLLS { op: *op, a: *a, b: *b, dst: *d }, 4))
            }
            [Op::LoadLocal(a), Op::Const(k), Op::Bin(op), Op::StoreLocal(d), ..] if free(4) => {
                Some((Op::BinLCS { op: *op, a: *a, k: *k, dst: *d }, 4))
            }
            [Op::LoadLocal(a), Op::LoadLocal(b), Op::Bin(op), ..] if free(3) => {
                Some((Op::BinLL { op: *op, a: *a, b: *b }, 3))
            }
            [Op::LoadLocal(a), Op::Const(k), Op::Bin(op), ..] if free(3) => {
                Some((Op::BinLC { op: *op, a: *a, k: *k }, 3))
            }
            // Array / symmetric-heap accesses indexed by a variable.
            [Op::LoadLocal(idx), Op::LocalArrLoad { arr }, ..] if free(2) => {
                Some((Op::LocalArrLoadL { arr: *arr, idx: *idx }, 2))
            }
            [Op::LoadLocal(idx), Op::LocalArrStore { arr }, ..] if free(2) => {
                Some((Op::LocalArrStoreL { arr: *arr, idx: *idx }, 2))
            }
            [Op::LoadLocal(idx), Op::SharedLoadIdx { off, len, ty, remote }, ..] if free(2) => {
                Some((
                    Op::SharedLoadIdxL {
                        off: *off,
                        len: *len,
                        ty: *ty,
                        remote: *remote,
                        idx: *idx,
                    },
                    2,
                ))
            }
            [Op::LoadLocal(idx), Op::SharedStoreIdx { off, len, ty, remote }, ..] if free(2) => {
                Some((
                    Op::SharedStoreIdxL {
                        off: *off,
                        len: *len,
                        ty: *ty,
                        remote: *remote,
                        idx: *idx,
                    },
                    2,
                ))
            }
            // `O RLY?` dispatch on IT (or any branch on a local).
            [Op::LoadLocal(s), Op::JumpIfFalse(t), ..] if free(2) => {
                Some((Op::JumpIfLocalFalse { slot: *s, target: *t }, 2))
            }
            [Op::LoadLocal(b), Op::Bin(op), ..] if free(2) => {
                Some((Op::BinSL { op: *op, b: *b }, 2))
            }
            [Op::Const(k), Op::Bin(op), ..] if free(2) => Some((Op::BinSC { op: *op, k: *k }, 2)),
            // Stores to pinned (`ITZ SRSLY A`) variables.
            [Op::Cast(ty), Op::StoreLocal(s), ..] if free(2) => {
                Some((Op::CastStore { ty: *ty, slot: *s }, 2))
            }
            _ => None,
        };
        match fused {
            Some((op, len)) => {
                for j in 1..len {
                    map[i + j] = out.len() as u32;
                }
                out.push(op);
                i += len;
            }
            None => {
                out.push(code[i].clone());
                i += 1;
            }
        }
    }
    map[n] = out.len() as u32;

    for op in &mut out {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::JumpIfLocalEqConst { target: t, .. }
            | Op::JumpIfLocalEqLocal { target: t, .. }
            | Op::JumpIfLocalFalse { target: t, .. } => {
                *t = map[*t as usize];
            }
            _ => {}
        }
    }
    out
}
