//! The resumable stack machine executing compiled modules over any
//! [`Substrate`].
//!
//! Historically the VM ran each PE as a recursive `exec` loop directly
//! against the threaded [`lol_shmem::Pe`] handle — blocking operations
//! simply blocked the OS thread. That shape cannot scale past a few
//! thousand PEs, so the execution loop lives here as an *explicit*
//! machine: frames are a heap-allocated stack (no host recursion), the
//! program counter is data, and every potentially-blocking substrate
//! call ([`Substrate::shmalloc`], [`Substrate::barrier`],
//! [`Substrate::lock`]) may return [`Progress::Pending`], in which
//! case [`Machine::resume`] rewinds the instruction and yields
//! [`Step::Blocked`]. The caller re-invokes `resume` when the
//! substrate says the PE can make progress:
//!
//! * the threaded backends (`run_on_pe`) call it in a loop — the
//!   threaded substrate never pends, so the loop runs each PE to
//!   completion exactly as before;
//! * the discrete-event engine (`lol-sim`) parks the machine and
//!   re-resumes it from a binary-heap event queue, which is what makes
//!   million-PE jobs possible on one thread.
//!
//! The instruction semantics here are a line-for-line port of the old
//! recursive loop; the differential tests in `lib.rs` pin VM output to
//! the interpreter's byte-for-byte.

use crate::ops::{ArrLoc, Chunk, Module, Op};
use lol_ast::LolType;
use lol_interp::value::{arith, cast, compare, default_for, RResult, RunError, Value};
use lol_shmem::substrate::{Progress, Substrate};
use lol_shmem::SymAddr;
use std::collections::VecDeque;

const MAX_CALL_DEPTH: usize = 200;

/// What a call to [`Machine::resume`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The program ran to completion; collect the output with
    /// [`Machine::take_output`].
    Done,
    /// The PE would block (allocation fence, barrier, or lock). The
    /// substrate has parked it; resume again once it is woken.
    Blocked,
}

/// One frame slot: a scalar value or a local array.
#[derive(Debug, Clone)]
enum Cell {
    Val(Value),
    Arr { elems: Vec<Value>, ty: LolType },
}

/// Which chunk a frame executes.
#[derive(Debug, Clone, Copy)]
enum ChunkRef {
    Main,
    Func(u16),
}

#[derive(Debug)]
struct Frame {
    chunk: ChunkRef,
    pc: usize,
    slots: Vec<Cell>,
}

/// One PE's complete execution state, decoupled from any thread.
///
/// Memory footprint is deliberately lean — a fresh machine is a few
/// empty `Vec`s plus the main frame's slots — because the simulator
/// keeps one `Machine` per PE and a million of them must fit in RAM.
pub struct Machine<'a> {
    module: &'a Module,
    base: SymAddr,
    /// Set once the startup allocation (if any) has completed.
    started: bool,
    frames: Vec<Frame>,
    stack: Vec<Value>,
    bff: Vec<usize>,
    out: String,
    input: VecDeque<String>,
}

impl<'a> Machine<'a> {
    /// A machine ready to run `module` from the beginning.
    pub fn new(module: &'a Module, input: &[String]) -> Self {
        Machine {
            module,
            base: SymAddr(0),
            started: false,
            frames: Vec::new(),
            stack: Vec::new(),
            bff: Vec::new(),
            out: String::new(),
            input: input.iter().cloned().collect(),
        }
    }

    /// The captured `VISIBLE` output (call after [`Step::Done`]).
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.out)
    }

    fn chunk_of(module: &'a Module, c: ChunkRef) -> &'a Chunk {
        match c {
            ChunkRef::Main => &module.main,
            ChunkRef::Func(i) => &module.funcs[i as usize].1,
        }
    }

    #[inline]
    fn pop(&mut self) -> Value {
        self.stack.pop().expect("VM stack underflow (compiler bug)")
    }

    fn target<S: Substrate + ?Sized>(&self, sub: &S, remote: bool) -> RResult<usize> {
        if remote {
            self.bff.last().copied().ok_or_else(|| {
                RunError::new("RUN0120", "UR OUTSIDE TXT MAH BFF — WHOS ADDRESS SPACE IZ DIS?")
            })
        } else {
            Ok(sub.id())
        }
    }

    fn shared_read<S: Substrate + ?Sized>(
        &self,
        sub: &S,
        off: u32,
        index: usize,
        ty: LolType,
        target: usize,
    ) -> Value {
        let addr = self.base.offset(off as usize + index);
        match ty {
            LolType::Numbar => Value::Numbar(sub.get_f64(addr, target)),
            LolType::Troof => Value::Troof(sub.get_u64(addr, target) != 0),
            _ => Value::Numbr(sub.get_i64(addr, target)),
        }
    }

    fn shared_write<S: Substrate + ?Sized>(
        &self,
        sub: &S,
        off: u32,
        index: usize,
        ty: LolType,
        target: usize,
        v: &Value,
    ) -> RResult<()> {
        let addr = self.base.offset(off as usize + index);
        match ty {
            LolType::Numbar => sub.put_f64(addr, target, v.to_numbar()?),
            LolType::Troof => sub.put_u64(addr, target, v.to_troof() as u64),
            _ => sub.put_i64(addr, target, v.to_numbr()?),
        }
        Ok(())
    }

    fn bounds(idx: i64, len: u32) -> RResult<usize> {
        if idx < 0 || idx as u32 >= len {
            Err(RunError::new(
                "RUN0123",
                format!("INDEX {idx} IZ OUTSIDE DA ARRAY (IT HAS {len} THINGZ)"),
            ))
        } else {
            Ok(idx as usize)
        }
    }

    /// Run until the program completes or the PE would block.
    ///
    /// On [`Step::Blocked`] the machine has already rewound to re-issue
    /// the same substrate call; calling `resume` again retries it.
    /// Stats and latency accounting stay exact because substrates
    /// charge them on the first attempt only.
    pub fn resume<S: Substrate + ?Sized>(&mut self, sub: &S) -> RResult<Step> {
        let module = self.module;
        if !self.started {
            if module.shared_words > 0 {
                match sub.shmalloc(module.shared_words) {
                    Progress::Ready(a) => self.base = a,
                    Progress::Pending => return Ok(Step::Blocked),
                }
            }
            self.started = true;
            self.frames.push(Frame {
                chunk: ChunkRef::Main,
                pc: 0,
                slots: new_frame(&module.main),
            });
        }
        loop {
            let Some(top) = self.frames.last() else { return Ok(Step::Done) };
            let fi = self.frames.len() - 1;
            let chunk = Self::chunk_of(module, top.chunk);
            let pc = top.pc;
            if pc >= chunk.code.len() {
                // Fell off the end of the chunk: implicit return.
                self.frames.pop();
                if self.frames.is_empty() {
                    return Ok(Step::Done);
                }
                self.stack.push(Value::Noob);
                continue;
            }
            self.frames[fi].pc = pc + 1;
            let op = &chunk.code[pc];
            match op {
                Op::Const(k) => self.stack.push(module.consts[*k as usize].clone()),
                Op::LoadLocal(s) => {
                    let v = match &self.frames[fi].slots[*s as usize] {
                        Cell::Val(v) => v.clone(),
                        Cell::Arr { .. } => {
                            return Err(RunError::new("RUN0011", "DIS IZ A WHOLE ARRAY"))
                        }
                    };
                    self.stack.push(v);
                }
                Op::StoreLocal(s) => {
                    let v = self.pop();
                    self.frames[fi].slots[*s as usize] = Cell::Val(v);
                }
                Op::Cast(ty) => {
                    let v = self.pop();
                    self.stack.push(cast(&v, *ty)?);
                }
                Op::Pop => {
                    self.pop();
                }
                Op::SharedLoad { off, ty, remote } => {
                    let t = self.target(sub, *remote)?;
                    let v = self.shared_read(sub, *off, 0, *ty, t);
                    self.stack.push(v);
                }
                Op::SharedStore { off, ty, remote } => {
                    let t = self.target(sub, *remote)?;
                    let v = self.pop();
                    self.shared_write(sub, *off, 0, *ty, t, &v)?;
                }
                Op::SharedLoadIdx { off, len, ty, remote } => {
                    let t = self.target(sub, *remote)?;
                    let i = Self::bounds(self.pop().to_numbr()?, *len)?;
                    let v = self.shared_read(sub, *off, i, *ty, t);
                    self.stack.push(v);
                }
                Op::SharedStoreIdx { off, len, ty, remote } => {
                    let t = self.target(sub, *remote)?;
                    let i = Self::bounds(self.pop().to_numbr()?, *len)?;
                    let v = self.pop();
                    self.shared_write(sub, *off, i, *ty, t, &v)?;
                }
                Op::LocalArrNew { slot, ty } => {
                    let n = self.pop().to_numbr()?;
                    if n <= 0 {
                        return Err(RunError::new(
                            "RUN0014",
                            format!("ARRAY SIZE MUST BE POSITIVE, NOT {n}"),
                        ));
                    }
                    self.frames[fi].slots[*slot as usize] =
                        Cell::Arr { elems: vec![default_for(*ty); n as usize], ty: *ty };
                }
                Op::LocalArrLoad { slot } => {
                    let i = self.pop().to_numbr()?;
                    let v = match &self.frames[fi].slots[*slot as usize] {
                        Cell::Arr { elems, .. } => {
                            let i = Self::bounds(i, elems.len() as u32)?;
                            elems[i].clone()
                        }
                        Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
                    };
                    self.stack.push(v);
                }
                Op::LocalArrStore { slot } => {
                    let i = self.pop().to_numbr()?;
                    let v = self.pop();
                    match &mut self.frames[fi].slots[*slot as usize] {
                        Cell::Arr { elems, ty } => {
                            let i = Self::bounds(i, elems.len() as u32)?;
                            elems[i] = cast(&v, *ty)?;
                        }
                        Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
                    }
                }
                Op::ArrayCopy { dst, src } => self.array_copy(sub, fi, dst, src)?,
                Op::Bin(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    let r = binop(*op, a, b)?;
                    self.stack.push(r);
                }
                Op::Un(op) => {
                    let v = self.pop();
                    let r = unop(*op, v)?;
                    self.stack.push(r);
                }
                Op::Smoosh(n) => {
                    let vals = self.pop_n(*n);
                    let mut s = String::new();
                    for v in vals {
                        s.push_str(&v.to_yarn()?);
                    }
                    self.stack.push(Value::yarn(s));
                }
                Op::AllOf(n) => {
                    let vals = self.pop_n(*n);
                    self.stack.push(Value::Troof(vals.iter().all(|v| v.to_troof())));
                }
                Op::AnyOf(n) => {
                    let vals = self.pop_n(*n);
                    self.stack.push(Value::Troof(vals.iter().any(|v| v.to_troof())));
                }
                Op::Jump(t) => self.frames[fi].pc = *t as usize,
                Op::JumpIfFalse(t) => {
                    let v = self.pop();
                    if !v.to_troof() {
                        self.frames[fi].pc = *t as usize;
                    }
                }
                Op::Call { func, argc } => {
                    // frames.len() - 1 = number of active calls.
                    if self.frames.len() > MAX_CALL_DEPTH {
                        return Err(RunError::new(
                            "RUN0130",
                            format!("2 MUCH RECURSHUN (DEPTH {MAX_CALL_DEPTH})"),
                        ));
                    }
                    let (_, chunk, arity) = &module.funcs[*func as usize];
                    debug_assert_eq!(*arity, *argc, "arity checked by sema");
                    let mut callee = new_frame(chunk);
                    // Args were pushed left-to-right: pop into reverse.
                    for i in (0..*argc).rev() {
                        let v = self.pop();
                        callee[1 + i as usize] = Cell::Val(v);
                    }
                    self.frames.push(Frame { chunk: ChunkRef::Func(*func), pc: 0, slots: callee });
                }
                Op::Ret => {
                    let v = self.pop();
                    self.frames.pop();
                    if self.frames.is_empty() {
                        return Ok(Step::Done);
                    }
                    self.stack.push(v);
                }
                Op::Visible { argc, newline } => {
                    let vals = self.pop_n(*argc);
                    for v in vals {
                        let s = v.to_yarn()?;
                        self.out.push_str(&s);
                    }
                    if *newline {
                        self.out.push('\n');
                    }
                }
                Op::ReadLine => {
                    let line = self.input.pop_front().ok_or_else(|| {
                        RunError::new("RUN0140", "GIMMEH BUT THERES NO MOAR INPUT")
                    })?;
                    self.stack.push(Value::yarn(line));
                }
                Op::Barrier => {
                    if let Progress::Pending = sub.barrier() {
                        self.frames[fi].pc = pc;
                        return Ok(Step::Blocked);
                    }
                }
                Op::LockAcquire { off, remote } => {
                    let t = self.target(sub, *remote)?;
                    if let Progress::Pending = sub.lock(self.base.offset(*off as usize), t) {
                        self.frames[fi].pc = pc;
                        return Ok(Step::Blocked);
                    }
                }
                Op::LockTry { off, remote } => {
                    let t = self.target(sub, *remote)?;
                    let got = sub.try_lock(self.base.offset(*off as usize), t);
                    self.stack.push(Value::Troof(got));
                }
                Op::LockRelease { off, remote } => {
                    let t = self.target(sub, *remote)?;
                    sub.unlock(self.base.offset(*off as usize), t);
                }
                Op::PushBff => {
                    let k = self.pop().to_numbr()?;
                    if k < 0 || k as usize >= sub.n_pes() {
                        return Err(RunError::new(
                            "RUN0017",
                            format!("PE {k} IZ NOT MAH FREN (THERE R ONLY {} OF US)", sub.n_pes()),
                        ));
                    }
                    self.bff.push(k as usize);
                }
                Op::PopBff => {
                    self.bff.pop();
                }
                Op::Me => self.stack.push(Value::Numbr(sub.id() as i64)),
                Op::MahFrenz => self.stack.push(Value::Numbr(sub.n_pes() as i64)),
                Op::RandI => self.stack.push(Value::Numbr(sub.rand_i64())),
                Op::RandF => self.stack.push(Value::Numbar(sub.rand_f64())),
                Op::Halt => {
                    self.frames.pop();
                    if self.frames.is_empty() {
                        return Ok(Step::Done);
                    }
                    // Halt inside a function behaves like falling off
                    // the end: the call produced no value.
                    self.stack.push(Value::Noob);
                }
            }
        }
    }

    fn pop_n(&mut self, n: u8) -> Vec<Value> {
        let at = self.stack.len() - n as usize;
        self.stack.split_off(at)
    }

    fn array_copy<S: Substrate + ?Sized>(
        &mut self,
        sub: &S,
        fi: usize,
        dst: &ArrLoc,
        src: &ArrLoc,
    ) -> RResult<()> {
        let values: Vec<Value> = match src {
            ArrLoc::Local { slot } => match &self.frames[fi].slots[*slot as usize] {
                Cell::Arr { elems, .. } => elems.clone(),
                Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
            },
            ArrLoc::Shared { off, len, ty, remote } => {
                let t = self.target(sub, *remote)?;
                (0..*len as usize).map(|i| self.shared_read(sub, *off, i, *ty, t)).collect()
            }
        };
        match dst {
            ArrLoc::Local { slot } => {
                let ty = match &self.frames[fi].slots[*slot as usize] {
                    Cell::Arr { ty, .. } => *ty,
                    Cell::Val(_) => return Err(RunError::new("RUN0122", "NOT LOTZ A THINGZ")),
                };
                let converted: RResult<Vec<Value>> = values.iter().map(|v| cast(v, ty)).collect();
                match &mut self.frames[fi].slots[*slot as usize] {
                    Cell::Arr { elems, .. } => *elems = converted?,
                    Cell::Val(_) => unreachable!(),
                }
                Ok(())
            }
            ArrLoc::Shared { off, len, ty, remote } => {
                if values.len() != *len as usize {
                    return Err(RunError::new(
                        "RUN0013",
                        format!("ARRAY COPY SIZE MISMATCH: {} THINGZ INTO {len}", values.len()),
                    ));
                }
                let t = self.target(sub, *remote)?;
                for (i, v) in values.iter().enumerate() {
                    self.shared_write(sub, *off, i, *ty, t, v)?;
                }
                Ok(())
            }
        }
    }
}

fn binop(op: lol_ast::BinOp, a: Value, b: Value) -> RResult<Value> {
    use lol_ast::BinOp::*;
    match op {
        Sum | Diff | Produkt | Quoshunt | Mod | BiggrOf | SmallrOf => arith(op, &a, &b),
        Bigger | Smallr => compare(op, &a, &b),
        BothSaem => Ok(Value::Troof(a.saem(&b))),
        Diffrint => Ok(Value::Troof(!a.saem(&b))),
        BothOf => Ok(Value::Troof(a.to_troof() && b.to_troof())),
        EitherOf => Ok(Value::Troof(a.to_troof() || b.to_troof())),
        WonOf => Ok(Value::Troof(a.to_troof() ^ b.to_troof())),
    }
}

fn unop(op: lol_ast::UnOp, v: Value) -> RResult<Value> {
    use lol_ast::UnOp::*;
    match op {
        Not => Ok(Value::Troof(!v.to_troof())),
        Squar => arith(lol_ast::BinOp::Produkt, &v, &v),
        Unsquar => Ok(Value::Numbar(v.to_numbar()?.sqrt())),
        Flip => Ok(Value::Numbar(1.0 / v.to_numbar()?)),
    }
}

fn new_frame(chunk: &Chunk) -> Vec<Cell> {
    vec![Cell::Val(Value::Noob); chunk.n_slots as usize]
}
