//! The resumable stack machine executing compiled modules over any
//! [`Substrate`].
//!
//! Historically the VM ran each PE as a recursive `exec` loop directly
//! against the threaded [`lol_shmem::Pe`] handle — blocking operations
//! simply blocked the OS thread. That shape cannot scale past a few
//! thousand PEs, so the execution loop lives here as an *explicit*
//! machine: frames are a heap-allocated stack (no host recursion), the
//! program counter is data, and every potentially-blocking substrate
//! call ([`Substrate::shmalloc`], [`Substrate::barrier`],
//! [`Substrate::lock`]) may return [`Progress::Pending`], in which
//! case [`Machine::resume`] rewinds the instruction and yields
//! [`Step::Blocked`]. The caller re-invokes `resume` when the
//! substrate says the PE can make progress:
//!
//! * the threaded backends (`run_on_pe`) call it in a loop — the
//!   threaded substrate never pends, so the loop runs each PE to
//!   completion exactly as before;
//! * the discrete-event engine (`lol-sim`) parks the machine and
//!   re-resumes it from a binary-heap event queue, which is what makes
//!   million-PE jobs possible on one thread.
//!
//! # Hot-path layout
//!
//! [`Machine::resume`] destructures `self` into disjoint field borrows
//! and holds `&mut Frame` for the whole frame activation, so a scalar
//! load is one bounds-checked index — not a `frames[fi].slots[s]`
//! double hop — and `pc` lives in a register, written back only at
//! control transfers (call, return, block). Scalar slots are a plain
//! `Vec<Value>` and local arrays live in a separate per-frame table, so
//! the scalar fast path never branches on an array/scalar discriminant
//! and NUMBR/NUMBAR/TROOF moves are plain 24-byte copies that never
//! touch an `Arc`. Superinstructions (see [`Op`]) collapse the
//! compiler's loop-guard, pinned-store and stencil idioms into single
//! dispatches.
//!
//! Internal invariant violations (operand-stack underflow, slot or
//! constant indices out of range — only reachable with a malformed
//! [`Module`], i.e. a compiler bug) surface as the stable `RUN0192`
//! error code through the normal [`RResult`] channel instead of a
//! panic, so a bad module produces a structured `O NOES!` diagnostic
//! and a FAILED sweep entry rather than tearing down the job with an
//! opaque unwind. After an `Err` the machine is dead: `resume` must
//! not be called again (the `pc` is mid-instruction).
//!
//! The instruction semantics are a line-for-line port of the old
//! recursive loop; the differential tests in `lib.rs` pin VM output to
//! the interpreter's byte-for-byte.

use crate::ops::{ArrLoc, Chunk, Module, Op};
use crate::profile::VmProfile;
use lol_ast::LolType;
use lol_interp::value::{arith, cast, compare, default_for, RResult, RunError, Value};
use lol_shmem::substrate::{Progress, Substrate};
use lol_shmem::SymAddr;
use std::collections::VecDeque;

const MAX_CALL_DEPTH: usize = 200;

/// What a call to [`Machine::resume`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The program ran to completion; collect the output with
    /// [`Machine::take_output`].
    Done,
    /// The PE would block (allocation fence, barrier, or lock). The
    /// substrate has parked it; resume again once it is woken.
    Blocked,
}

/// Internal-invariant violation: only a malformed module (a compiler
/// bug) can reach these, so they carry a dedicated stable code instead
/// of panicking across the substrate.
#[cold]
fn vmbug(what: &str) -> RunError {
    RunError::new("RUN0192", format!("INTERNAL VM BUG: {what} — DIS IZ NOT UR PROGRAMZ FAULT"))
}

/// A local (`I HAS A ... LOTZ`) array.
#[derive(Debug, Clone)]
struct LocalArr {
    elems: Vec<Value>,
    ty: LolType,
}

/// Which chunk a frame executes.
#[derive(Debug, Clone, Copy)]
enum ChunkRef {
    Main,
    Func(u16),
}

#[derive(Debug)]
struct Frame {
    chunk: ChunkRef,
    pc: usize,
    /// Scalar slots (slot 0 = IT).
    slots: Vec<Value>,
    /// Local arrays (separate index space); `None` until `LocalArrNew`.
    arrays: Vec<Option<LocalArr>>,
}

/// How a frame activation ended (other than blocking or erroring).
enum Xfer {
    /// Pop the frame; push the value for the caller (Noob for implicit
    /// returns and `Halt`). If it was the last frame, the program is
    /// done.
    Unwind(Value),
    /// Push the callee frame and enter it.
    Call(Frame),
}

/// One PE's complete execution state, decoupled from any thread.
///
/// Memory footprint is deliberately lean — a fresh machine is a few
/// empty `Vec`s plus the main frame's slots — because the simulator
/// keeps one `Machine` per PE and a million of them must fit in RAM.
pub struct Machine<'a> {
    module: &'a Module,
    base: SymAddr,
    /// Set once the startup allocation (if any) has completed.
    started: bool,
    frames: Vec<Frame>,
    stack: Vec<Value>,
    bff: Vec<usize>,
    out: String,
    input: VecDeque<String>,
    /// Opt-in per-op execution counters; `None` (the default) keeps
    /// the dispatch loop's profiling cost to one predictable branch.
    prof: Option<Box<VmProfile>>,
}

impl<'a> Machine<'a> {
    /// A machine ready to run `module` from the beginning.
    pub fn new(module: &'a Module, input: &[String]) -> Self {
        Machine {
            module,
            base: SymAddr(0),
            started: false,
            frames: Vec::new(),
            // Deliberately empty: a mega-scale simulation holds one
            // Machine per PE, so a fresh machine must cost no heap at
            // all — the stack grows on first use instead of reserving
            // 16 slots (384 bytes) per idle PE.
            stack: Vec::new(),
            bff: Vec::new(),
            out: String::new(),
            input: input.iter().cloned().collect(),
            prof: None,
        }
    }

    /// The captured `VISIBLE` output (call after [`Step::Done`]).
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.out)
    }

    /// Turn on bytecode profiling: every subsequently dispatched op is
    /// counted into a [`VmProfile`] (collect it with
    /// [`Machine::take_profile`]). Call before the first
    /// [`Machine::resume`] for a whole-run profile.
    pub fn enable_profile(&mut self) {
        if self.prof.is_none() {
            self.prof = Some(Box::new(VmProfile::for_module(self.module)));
        }
    }

    /// Detach the collected profile (`None` if profiling was never
    /// enabled). Profiling stops until re-enabled.
    pub fn take_profile(&mut self) -> Option<VmProfile> {
        self.prof.take().map(|b| *b)
    }

    /// Run until the program completes or the PE would block.
    ///
    /// On [`Step::Blocked`] the machine has already rewound to re-issue
    /// the same substrate call; calling `resume` again retries it.
    /// Stats and latency accounting stay exact because substrates
    /// charge them on the first attempt only. On `Err` the machine is
    /// dead and must not be resumed.
    pub fn resume<S: Substrate + ?Sized>(&mut self, sub: &S) -> RResult<Step> {
        let module = self.module;
        if !self.started {
            if module.shared_words > 0 {
                match sub.shmalloc(module.shared_words) {
                    Progress::Ready(a) => self.base = a,
                    Progress::Pending => return Ok(Step::Blocked),
                }
            }
            self.started = true;
            self.frames.push(new_frame(ChunkRef::Main, &module.main));
        }
        let base = self.base;
        // Split `self` into disjoint borrows so the dispatch loop can
        // hold `&mut Frame` (from `frames`) alongside the operand
        // stack and output buffer without going through `self`.
        let Machine { frames, stack, bff, out, input, prof, .. } = self;
        let mut prof = prof.as_deref_mut();
        // Outer loop: one iteration per frame activation. The inner
        // loop keeps `pc` and `chunk` in locals — `chunk` borrows from
        // `module` (not `self`) — and breaks with the control transfer
        // once the activation ends.
        loop {
            let depth = frames.len();
            let Some(frame) = frames.last_mut() else { return Ok(Step::Done) };
            let chunk = chunk_of(module, frame.chunk);
            // Heat-plane index for this activation (0 = main,
            // i + 1 = funcs[i]) — hoisted so the profiled inner loop
            // pays two array increments per op and nothing more.
            let ci = match frame.chunk {
                ChunkRef::Main => 0,
                ChunkRef::Func(i) => i as usize + 1,
            };
            let mut pc = frame.pc;
            let xfer = loop {
                let Some(op) = chunk.code.get(pc) else {
                    // Fell off the end of the chunk: implicit return.
                    break Xfer::Unwind(Value::Noob);
                };
                pc += 1;
                // One predictable branch when profiling is off; the
                // counters live outside the match so every opcode —
                // including superinstructions — is counted exactly once.
                if let Some(p) = prof.as_deref_mut() {
                    p.hit(ci, pc - 1, op.profile_index());
                }
                match op {
                    Op::Const(k) => {
                        let v = konst(module, *k)?.clone();
                        stack.push(v);
                    }
                    Op::LoadLocal(s) => {
                        let v = slot(frame, *s)?.clone();
                        stack.push(v);
                    }
                    Op::StoreLocal(s) => {
                        let v = pop(stack)?;
                        *slot_mut(frame, *s)? = v;
                    }
                    Op::Cast(ty) => {
                        let v = pop(stack)?;
                        stack.push(cast(&v, *ty)?);
                    }
                    Op::Pop => {
                        pop(stack)?;
                    }
                    Op::SharedLoad { off, ty, remote } => {
                        let t = target(bff, sub, *remote)?;
                        let v = shared_read(base, sub, *off, 0, *ty, t);
                        stack.push(v);
                    }
                    Op::SharedStore { off, ty, remote } => {
                        let t = target(bff, sub, *remote)?;
                        let v = pop(stack)?;
                        shared_write(base, sub, *off, 0, *ty, t, &v)?;
                    }
                    Op::SharedLoadIdx { off, len, ty, remote } => {
                        let t = target(bff, sub, *remote)?;
                        let i = bounds(pop(stack)?.to_numbr()?, *len)?;
                        let v = shared_read(base, sub, *off, i, *ty, t);
                        stack.push(v);
                    }
                    Op::SharedStoreIdx { off, len, ty, remote } => {
                        let t = target(bff, sub, *remote)?;
                        let i = bounds(pop(stack)?.to_numbr()?, *len)?;
                        let v = pop(stack)?;
                        shared_write(base, sub, *off, i, *ty, t, &v)?;
                    }
                    Op::LocalArrNew { arr, ty } => {
                        let n = pop(stack)?.to_numbr()?;
                        if n <= 0 {
                            return Err(RunError::new(
                                "RUN0014",
                                format!("ARRAY SIZE MUST BE POSITIVE, NOT {n}"),
                            ));
                        }
                        *frame
                            .arrays
                            .get_mut(*arr as usize)
                            .ok_or_else(|| vmbug("ARRAY SLOT OUT OF RANGE"))? =
                            Some(LocalArr { elems: vec![default_for(*ty); n as usize], ty: *ty });
                    }
                    Op::LocalArrLoad { arr: a } => {
                        let i = pop(stack)?.to_numbr()?;
                        let la = arr(frame, *a)?;
                        let i = bounds(i, la.elems.len() as u32)?;
                        let v = la.elems[i].clone();
                        stack.push(v);
                    }
                    Op::LocalArrStore { arr: a } => {
                        let i = pop(stack)?.to_numbr()?;
                        let v = pop(stack)?;
                        let la = arr_mut(frame, *a)?;
                        let i = bounds(i, la.elems.len() as u32)?;
                        la.elems[i] = cast(&v, la.ty)?;
                    }
                    Op::ArrayCopy { dst, src } => array_copy(frame, sub, base, bff, dst, src)?,
                    Op::Bin(op) => {
                        let b = pop(stack)?;
                        let a = pop(stack)?;
                        let r = binop(*op, &a, &b)?;
                        stack.push(r);
                    }
                    Op::Un(op) => {
                        let v = pop(stack)?;
                        let r = unop(*op, &v)?;
                        stack.push(r);
                    }
                    Op::BinLL { op, a, b } => {
                        let r = binop(*op, slot(frame, *a)?, slot(frame, *b)?)?;
                        stack.push(r);
                    }
                    Op::BinLC { op, a, k } => {
                        let r = binop(*op, slot(frame, *a)?, konst(module, *k)?)?;
                        stack.push(r);
                    }
                    Op::BinSL { op, b } => {
                        let va = pop(stack)?;
                        let r = binop(*op, &va, slot(frame, *b)?)?;
                        stack.push(r);
                    }
                    Op::BinSC { op, k } => {
                        let va = pop(stack)?;
                        let r = binop(*op, &va, konst(module, *k)?)?;
                        stack.push(r);
                    }
                    Op::BinLLS { op, a, b, dst } => {
                        let r = binop(*op, slot(frame, *a)?, slot(frame, *b)?)?;
                        *slot_mut(frame, *dst)? = r;
                    }
                    Op::BinLCS { op, a, k, dst } => {
                        let r = binop(*op, slot(frame, *a)?, konst(module, *k)?)?;
                        *slot_mut(frame, *dst)? = r;
                    }
                    Op::CastStore { ty, slot: s } => {
                        let v = pop(stack)?;
                        let c = cast(&v, *ty)?;
                        *slot_mut(frame, *s)? = c;
                    }
                    Op::JumpIfLocalEqConst { slot: s, k, target } => {
                        if slot(frame, *s)?.saem(konst(module, *k)?) {
                            pc = *target as usize;
                        }
                    }
                    Op::JumpIfLocalEqLocal { a, b, target } => {
                        if slot(frame, *a)?.saem(slot(frame, *b)?) {
                            pc = *target as usize;
                        }
                    }
                    Op::JumpIfLocalFalse { slot: s, target } => {
                        if !slot(frame, *s)?.to_troof() {
                            pc = *target as usize;
                        }
                    }
                    Op::LocalArrLoadL { arr: a, idx } => {
                        let i = slot(frame, *idx)?.to_numbr()?;
                        let la = arr(frame, *a)?;
                        let i = bounds(i, la.elems.len() as u32)?;
                        let v = la.elems[i].clone();
                        stack.push(v);
                    }
                    Op::LocalArrStoreL { arr: a, idx } => {
                        let i = slot(frame, *idx)?.to_numbr()?;
                        let v = pop(stack)?;
                        let la = arr_mut(frame, *a)?;
                        let i = bounds(i, la.elems.len() as u32)?;
                        la.elems[i] = cast(&v, la.ty)?;
                    }
                    Op::SharedLoadIdxL { off, len, ty, remote, idx } => {
                        let t = target(bff, sub, *remote)?;
                        let i = bounds(slot(frame, *idx)?.to_numbr()?, *len)?;
                        let v = shared_read(base, sub, *off, i, *ty, t);
                        stack.push(v);
                    }
                    Op::SharedStoreIdxL { off, len, ty, remote, idx } => {
                        let t = target(bff, sub, *remote)?;
                        let i = bounds(slot(frame, *idx)?.to_numbr()?, *len)?;
                        let v = pop(stack)?;
                        shared_write(base, sub, *off, i, *ty, t, &v)?;
                    }
                    Op::Smoosh(n) => {
                        let at = stack_base(stack, *n)?;
                        let mut s = String::new();
                        for v in &stack[at..] {
                            s.push_str(&v.to_yarn()?);
                        }
                        stack.truncate(at);
                        stack.push(Value::yarn(s));
                    }
                    Op::AllOf(n) => {
                        let at = stack_base(stack, *n)?;
                        let r = stack[at..].iter().all(|v| v.to_troof());
                        stack.truncate(at);
                        stack.push(Value::Troof(r));
                    }
                    Op::AnyOf(n) => {
                        let at = stack_base(stack, *n)?;
                        let r = stack[at..].iter().any(|v| v.to_troof());
                        stack.truncate(at);
                        stack.push(Value::Troof(r));
                    }
                    Op::Jump(t) => pc = *t as usize,
                    Op::JumpIfFalse(t) => {
                        let v = pop(stack)?;
                        if !v.to_troof() {
                            pc = *t as usize;
                        }
                    }
                    Op::Call { func, argc } => {
                        // depth - 1 = number of active calls.
                        if depth > MAX_CALL_DEPTH {
                            return Err(RunError::new(
                                "RUN0130",
                                format!("2 MUCH RECURSHUN (DEPTH {MAX_CALL_DEPTH})"),
                            ));
                        }
                        let (_, chunk, arity) = module
                            .funcs
                            .get(*func as usize)
                            .ok_or_else(|| vmbug("FUNKSHUN INDEX OUT OF RANGE"))?;
                        debug_assert_eq!(*arity, *argc, "arity checked by sema");
                        let mut callee = new_frame(ChunkRef::Func(*func), chunk);
                        // Args were pushed left-to-right: pop into reverse.
                        for i in (0..*argc).rev() {
                            let v = pop(stack)?;
                            *callee
                                .slots
                                .get_mut(1 + i as usize)
                                .ok_or_else(|| vmbug("ARG SLOT OUT OF RANGE"))? = v;
                        }
                        frame.pc = pc;
                        break Xfer::Call(callee);
                    }
                    Op::Ret => {
                        let v = pop(stack)?;
                        break Xfer::Unwind(v);
                    }
                    Op::Visible { argc, newline } => {
                        let at = stack_base(stack, *argc)?;
                        for v in &stack[at..] {
                            let s = v.to_yarn()?;
                            out.push_str(&s);
                        }
                        stack.truncate(at);
                        if *newline {
                            out.push('\n');
                        }
                    }
                    Op::ReadLine => {
                        let line = input.pop_front().ok_or_else(|| {
                            RunError::new("RUN0140", "GIMMEH BUT THERES NO MOAR INPUT")
                        })?;
                        stack.push(Value::yarn(line));
                    }
                    Op::Barrier => {
                        if let Progress::Pending = sub.barrier() {
                            frame.pc = pc - 1;
                            return Ok(Step::Blocked);
                        }
                    }
                    Op::LockAcquire { off, remote } => {
                        let t = target(bff, sub, *remote)?;
                        if let Progress::Pending = sub.lock(base.offset(*off as usize), t) {
                            frame.pc = pc - 1;
                            return Ok(Step::Blocked);
                        }
                    }
                    Op::LockTry { off, remote } => {
                        let t = target(bff, sub, *remote)?;
                        let got = sub.try_lock(base.offset(*off as usize), t);
                        stack.push(Value::Troof(got));
                    }
                    Op::LockRelease { off, remote } => {
                        let t = target(bff, sub, *remote)?;
                        sub.unlock(base.offset(*off as usize), t);
                    }
                    Op::PushBff => {
                        let k = pop(stack)?.to_numbr()?;
                        if k < 0 || k as usize >= sub.n_pes() {
                            return Err(RunError::new(
                                "RUN0017",
                                format!(
                                    "PE {k} IZ NOT MAH FREN (THERE R ONLY {} OF US)",
                                    sub.n_pes()
                                ),
                            ));
                        }
                        bff.push(k as usize);
                    }
                    Op::PopBff => {
                        bff.pop();
                    }
                    Op::Me => stack.push(Value::Numbr(sub.id() as i64)),
                    Op::MahFrenz => stack.push(Value::Numbr(sub.n_pes() as i64)),
                    Op::RandI => stack.push(Value::Numbr(sub.rand_i64())),
                    Op::RandF => stack.push(Value::Numbar(sub.rand_f64())),
                    Op::Halt => {
                        // Halt inside a function behaves like falling off
                        // the end: the call produced no value.
                        break Xfer::Unwind(Value::Noob);
                    }
                }
            };
            match xfer {
                Xfer::Unwind(v) => {
                    frames.pop();
                    if frames.is_empty() {
                        return Ok(Step::Done);
                    }
                    stack.push(v);
                }
                Xfer::Call(callee) => frames.push(callee),
            }
        }
    }
}

fn chunk_of(module: &Module, c: ChunkRef) -> &Chunk {
    match c {
        ChunkRef::Main => &module.main,
        ChunkRef::Func(i) => &module.funcs[i as usize].1,
    }
}

#[inline]
fn pop(stack: &mut Vec<Value>) -> RResult<Value> {
    stack.pop().ok_or_else(|| vmbug("OPERAND STACK UNDERFLOW"))
}

/// Start index of the top `n` stack values (for n-ary ops).
#[inline]
fn stack_base(stack: &[Value], n: u8) -> RResult<usize> {
    stack.len().checked_sub(n as usize).ok_or_else(|| vmbug("OPERAND STACK UNDERFLOW"))
}

#[inline]
fn slot(frame: &Frame, s: u16) -> RResult<&Value> {
    frame.slots.get(s as usize).ok_or_else(|| vmbug("SCALAR SLOT OUT OF RANGE"))
}

#[inline]
fn slot_mut(frame: &mut Frame, s: u16) -> RResult<&mut Value> {
    frame.slots.get_mut(s as usize).ok_or_else(|| vmbug("SCALAR SLOT OUT OF RANGE"))
}

#[inline]
fn konst(module: &Module, k: u16) -> RResult<&Value> {
    module.consts.get(k as usize).ok_or_else(|| vmbug("CONSTANT INDEX OUT OF RANGE"))
}

fn arr(frame: &Frame, a: u16) -> RResult<&LocalArr> {
    frame
        .arrays
        .get(a as usize)
        .ok_or_else(|| vmbug("ARRAY SLOT OUT OF RANGE"))?
        .as_ref()
        .ok_or_else(|| RunError::new("RUN0122", "NOT LOTZ A THINGZ"))
}

fn arr_mut(frame: &mut Frame, a: u16) -> RResult<&mut LocalArr> {
    frame
        .arrays
        .get_mut(a as usize)
        .ok_or_else(|| vmbug("ARRAY SLOT OUT OF RANGE"))?
        .as_mut()
        .ok_or_else(|| RunError::new("RUN0122", "NOT LOTZ A THINGZ"))
}

fn target<S: Substrate + ?Sized>(bff: &[usize], sub: &S, remote: bool) -> RResult<usize> {
    if remote {
        bff.last().copied().ok_or_else(|| {
            RunError::new("RUN0120", "UR OUTSIDE TXT MAH BFF — WHOS ADDRESS SPACE IZ DIS?")
        })
    } else {
        Ok(sub.id())
    }
}

fn shared_read<S: Substrate + ?Sized>(
    base: SymAddr,
    sub: &S,
    off: u32,
    index: usize,
    ty: LolType,
    target: usize,
) -> Value {
    let addr = base.offset(off as usize + index);
    match ty {
        LolType::Numbar => Value::Numbar(sub.get_f64(addr, target)),
        LolType::Troof => Value::Troof(sub.get_u64(addr, target) != 0),
        _ => Value::Numbr(sub.get_i64(addr, target)),
    }
}

fn shared_write<S: Substrate + ?Sized>(
    base: SymAddr,
    sub: &S,
    off: u32,
    index: usize,
    ty: LolType,
    target: usize,
    v: &Value,
) -> RResult<()> {
    let addr = base.offset(off as usize + index);
    match ty {
        LolType::Numbar => sub.put_f64(addr, target, v.to_numbar()?),
        LolType::Troof => sub.put_u64(addr, target, v.to_troof() as u64),
        _ => sub.put_i64(addr, target, v.to_numbr()?),
    }
    Ok(())
}

fn bounds(idx: i64, len: u32) -> RResult<usize> {
    if idx < 0 || idx as u32 >= len {
        Err(RunError::new(
            "RUN0123",
            format!("INDEX {idx} IZ OUTSIDE DA ARRAY (IT HAS {len} THINGZ)"),
        ))
    } else {
        Ok(idx as usize)
    }
}

fn array_copy<S: Substrate + ?Sized>(
    frame: &mut Frame,
    sub: &S,
    base: SymAddr,
    bff: &[usize],
    dst: &ArrLoc,
    src: &ArrLoc,
) -> RResult<()> {
    let values: Vec<Value> = match src {
        ArrLoc::Local { arr: a } => arr(frame, *a)?.elems.clone(),
        ArrLoc::Shared { off, len, ty, remote } => {
            let t = target(bff, sub, *remote)?;
            (0..*len as usize).map(|i| shared_read(base, sub, *off, i, *ty, t)).collect()
        }
    };
    match dst {
        ArrLoc::Local { arr: a } => {
            let ty = arr(frame, *a)?.ty;
            let converted: RResult<Vec<Value>> = values.iter().map(|v| cast(v, ty)).collect();
            arr_mut(frame, *a)?.elems = converted?;
            Ok(())
        }
        ArrLoc::Shared { off, len, ty, remote } => {
            if values.len() != *len as usize {
                return Err(RunError::new(
                    "RUN0013",
                    format!("ARRAY COPY SIZE MISMATCH: {} THINGZ INTO {len}", values.len()),
                ));
            }
            let t = target(bff, sub, *remote)?;
            for (i, v) in values.iter().enumerate() {
                shared_write(base, sub, *off, i, *ty, t, v)?;
            }
            Ok(())
        }
    }
}

#[inline]
fn binop(op: lol_ast::BinOp, a: &Value, b: &Value) -> RResult<Value> {
    use lol_ast::BinOp::*;
    match op {
        Sum | Diff | Produkt | Quoshunt | Mod | BiggrOf | SmallrOf => arith(op, a, b),
        Bigger | Smallr => compare(op, a, b),
        BothSaem => Ok(Value::Troof(a.saem(b))),
        Diffrint => Ok(Value::Troof(!a.saem(b))),
        BothOf => Ok(Value::Troof(a.to_troof() && b.to_troof())),
        EitherOf => Ok(Value::Troof(a.to_troof() || b.to_troof())),
        WonOf => Ok(Value::Troof(a.to_troof() ^ b.to_troof())),
    }
}

#[inline]
fn unop(op: lol_ast::UnOp, v: &Value) -> RResult<Value> {
    use lol_ast::UnOp::*;
    match op {
        Not => Ok(Value::Troof(!v.to_troof())),
        Squar => arith(lol_ast::BinOp::Produkt, v, v),
        Unsquar => Ok(Value::Numbar(v.to_numbar()?.sqrt())),
        Flip => Ok(Value::Numbar(1.0 / v.to_numbar()?)),
    }
}

fn new_frame(cref: ChunkRef, chunk: &Chunk) -> Frame {
    Frame {
        chunk: cref,
        pc: 0,
        slots: vec![Value::Noob; chunk.n_slots as usize],
        arrays: vec![None; chunk.n_arrays as usize],
    }
}
