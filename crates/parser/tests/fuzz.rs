//! Fuzz-style robustness: the front end must never panic or hang, no
//! matter what bytes arrive — it either parses or returns diagnostics.

use lol_parser::parse;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode soup: parse() terminates without panicking.
    #[test]
    fn arbitrary_text_never_panics(src in ".{0,400}") {
        let _ = parse(&src);
    }

    /// Keyword soup: sequences of real LOLCODE tokens in random order
    /// stress the recovery paths much harder than random bytes.
    #[test]
    fn keyword_soup_never_panics(
        words in proptest::collection::vec(
            prop::sample::select(vec![
                "HAI", "KTHXBYE", "I", "WE", "HAS", "A", "ITZ", "SRSLY", "LOTZ",
                "AN", "THAR", "IZ", "R", "SUM", "OF", "VISIBLE", "GIMMEH",
                "O", "RLY", "YA", "NO", "WAI", "OIC", "WTF", "OMG", "OMGWTF",
                "IM", "IN", "OUTTA", "YR", "UPPIN", "NERFIN", "TIL", "WILE",
                "GTFO", "FOUND", "HOW", "SAY", "SO", "MKAY", "MAEK", "SRS",
                "HUGZ", "TXT", "MAH", "BFF", "STUFF", "TTYL", "UR", "ME",
                "FRENZ", "MESIN", "WIF", "DUN", "WHATEVR", "WHATEVAR",
                "SQUAR", "UNSQUAR", "FLIP", "NOT", "WIN", "FAIL", "NOOB",
                "x", "y", "42", "3.5", "\"yarn\"", ",", "?", "!", "...", "'Z",
            ]),
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = parse(&src);
    }

    /// Mutation fuzzing: corrupt one byte of a valid program; the
    /// parser must survive (parse or diagnose, never panic).
    #[test]
    fn mutated_valid_program_never_panics(pos in 0usize..200, byte in 0u8..128) {
        let base = "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\n\
                    IM IN YR l UPPIN YR i TIL BOTH SAEM i AN 4\n\
                    TXT MAH BFF 0, UR x R SUM OF UR x AN 1\n\
                    IM OUTTA YR l\nHUGZ\nVISIBLE x\nKTHXBYE\n";
        let mut bytes = base.as_bytes().to_vec();
        let at = pos % bytes.len();
        bytes[at] = byte;
        if let Ok(src) = String::from_utf8(bytes) {
            let _ = parse(&src);
        }
    }

    /// Deleting a random line from a valid program never panics.
    #[test]
    fn truncated_program_never_panics(skip in 0usize..9) {
        let base = "HAI 1.2\nI HAS A x ITZ 1\nWIN, O RLY?\nYA RLY\nx R 2\nNO WAI\nx R 3\nOIC\nKTHXBYE";
        let src: Vec<&str> =
            base.lines().enumerate().filter(|(i, _)| *i != skip).map(|(_, l)| l).collect();
        let _ = parse(&src.join("\n"));
    }
}

#[test]
fn deep_but_legal_nesting_is_fine() {
    // 100 nested loops: well under the limit, parses and round-trips.
    let mut src = String::from("HAI 1.2\n");
    for d in 0..100 {
        src.push_str(&format!("IM IN YR l{d}\n"));
    }
    src.push_str("GTFO\n");
    for d in (0..100).rev() {
        src.push_str(&format!("IM OUTTA YR l{d}\n"));
    }
    src.push_str("KTHXBYE");
    let out = parse(&src);
    assert!(!out.diags.has_errors());
    let printed = lol_ast::pretty::print_program(&out.program.unwrap());
    assert!(!parse(&printed).diags.has_errors());
}

#[test]
fn pathological_nesting_is_diagnosed_not_crashed() {
    // 400 nested loops: beyond the recursion limit — a PAR0030 error,
    // never a stack overflow.
    let mut src = String::from("HAI 1.2\n");
    for d in 0..400 {
        src.push_str(&format!("IM IN YR l{d}\n"));
    }
    src.push_str("GTFO\n");
    for d in (0..400).rev() {
        src.push_str(&format!("IM OUTTA YR l{d}\n"));
    }
    src.push_str("KTHXBYE");
    let out = parse(&src);
    assert!(out.diags.has_errors());
    assert!(out.diags.iter().any(|d| d.code == "PAR0030"));
}

#[test]
fn deep_expression_nesting_is_diagnosed() {
    // 400-deep prefix expression.
    let mut e = String::from("1");
    for _ in 0..400 {
        e = format!("SUM OF {e} AN 1");
    }
    let out = parse(&format!("HAI 1.2\nVISIBLE {e}\nKTHXBYE"));
    assert!(out.diags.has_errors());
    assert!(out.diags.iter().any(|d| d.code == "PAR0030"));
}

#[test]
fn enormous_flat_program_is_fine() {
    let mut src = String::from("HAI 1.2\n");
    for i in 0..5000 {
        src.push_str(&format!("I HAS A v{i} ITZ {i}\n"));
    }
    src.push_str("KTHXBYE");
    let out = parse(&src);
    assert!(!out.diags.has_errors());
    assert_eq!(out.program.unwrap().body.len(), 5000);
}
