//! Property-based round-trip: for a random well-formed AST,
//! `parse(print(ast))` must succeed and print identically.
//!
//! This exercises the parser and pretty-printer against each other over
//! the whole grammar — every expression form, every statement form, and
//! nested combinations no hand-written test would think of.

use lol_ast::pretty::print_program;
use lol_ast::*;
use lol_parser::parse;
use proptest::prelude::*;

const NAMES: &[&str] =
    &["x", "y", "z", "kitteh", "cheezburger", "bff_1", "pos_x", "vel_y", "n_pes", "ceiling_cat"];

fn ident() -> impl Strategy<Value = Ident> {
    prop::sample::select(NAMES).prop_map(Ident::synthetic)
}

fn locality() -> impl Strategy<Value = Locality> {
    prop_oneof![Just(Locality::Unqualified), Just(Locality::Mah), Just(Locality::Ur),]
}

fn lol_type() -> impl Strategy<Value = LolType> {
    prop_oneof![
        Just(LolType::Troof),
        Just(LolType::Numbr),
        Just(LolType::Numbar),
        Just(LolType::Yarn),
    ]
}

fn yarn_text() -> impl Strategy<Value = String> {
    // Printable ASCII plus the characters with dedicated escapes.
    proptest::collection::vec(
        prop_oneof![proptest::char::range(' ', '~'), Just(':'), Just('"'), Just('\n'), Just('\t'),],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        any::<i64>().prop_map(Lit::Numbr),
        // Finite floats only: the printer/lexer pair round-trips those.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Lit::Numbar),
        any::<bool>().prop_map(Lit::Troof),
        Just(Lit::Noob),
        yarn_text().prop_map(Lit::yarn),
        (yarn_text(), ident(), yarn_text()).prop_map(|(a, v, b)| {
            Lit::Yarn(vec![YarnPart::Text(a), YarnPart::Var(v), YarnPart::Text(b)])
        }),
    ]
}

fn varref() -> impl Strategy<Value = VarRef> {
    (ident(), locality()).prop_map(|(id, locality)| VarRef {
        name: VarName::Named(id),
        locality,
        span: Span::DUMMY,
    })
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Sum,
        BinOp::Diff,
        BinOp::Produkt,
        BinOp::Quoshunt,
        BinOp::Mod,
        BinOp::BiggrOf,
        BinOp::SmallrOf,
        BinOp::BothSaem,
        BinOp::Diffrint,
        BinOp::Bigger,
        BinOp::Smallr,
        BinOp::BothOf,
        BinOp::EitherOf,
        BinOp::WonOf,
    ])
}

fn unop() -> impl Strategy<Value = UnOp> {
    prop::sample::select(vec![UnOp::Not, UnOp::Squar, UnOp::Unsquar, UnOp::Flip])
}

fn naryop() -> impl Strategy<Value = NaryOp> {
    prop::sample::select(vec![NaryOp::AllOf, NaryOp::AnyOf, NaryOp::Smoosh])
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        lit().prop_map(|l| Expr::new(ExprKind::Lit(l), Span::DUMMY)),
        varref().prop_map(|v| Expr::new(ExprKind::Var(v), Span::DUMMY)),
        Just(Expr::new(ExprKind::Me, Span::DUMMY)),
        Just(Expr::new(ExprKind::MahFrenz, Span::DUMMY)),
        Just(Expr::new(ExprKind::Whatevr, Span::DUMMY)),
        Just(Expr::new(ExprKind::Whatevar, Span::DUMMY)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::new(
                ExprKind::Bin { op, lhs: Box::new(l), rhs: Box::new(r) },
                Span::DUMMY
            )),
            (unop(), inner.clone())
                .prop_map(|(op, e)| Expr::new(ExprKind::Un { op, expr: Box::new(e) }, Span::DUMMY)),
            (naryop(), proptest::collection::vec(inner.clone(), 1..4))
                .prop_map(|(op, args)| Expr::new(ExprKind::Nary { op, args }, Span::DUMMY)),
            (inner.clone(), lol_type()).prop_map(|(e, ty)| Expr::new(
                ExprKind::Cast { expr: Box::new(e), ty },
                Span::DUMMY
            )),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::new(ExprKind::Call { name, args }, Span::DUMMY)),
            (varref(), inner.clone()).prop_map(|(arr, idx)| Expr::new(
                ExprKind::Index { arr, idx: Box::new(idx) },
                Span::DUMMY
            )),
            (inner, locality()).prop_map(|(e, locality)| Expr::new(
                ExprKind::Var(VarRef {
                    name: VarName::Srs(Box::new(e)),
                    locality,
                    span: Span::DUMMY
                }),
                Span::DUMMY
            )),
        ]
    })
}

fn lvalue() -> impl Strategy<Value = LValue> {
    prop_oneof![
        varref().prop_map(LValue::Var),
        (varref(), expr()).prop_map(|(arr, idx)| LValue::Index {
            arr,
            idx: Box::new(idx),
            span: Span::DUMMY
        }),
    ]
}

fn decl() -> impl Strategy<Value = Decl> {
    (
        any::<bool>(),
        ident(),
        prop::option::of(lol_type()),
        any::<bool>(),
        prop::option::of(expr()),
        any::<bool>(),
    )
        .prop_map(|(we, name, ty, srsly, init, sharin)| {
            // Keep combinations printable-canonical: arrays are generated
            // separately below; init without type is fine.
            Decl {
                scope: if we { DeclScope::We } else { DeclScope::I },
                name,
                ty,
                srsly: srsly && ty.is_some(),
                array_size: None,
                init,
                sharin,
                span: Span::DUMMY,
            }
        })
}

fn array_decl() -> impl Strategy<Value = Decl> {
    (any::<bool>(), ident(), lol_type(), any::<bool>(), expr(), any::<bool>()).prop_map(
        |(we, name, ty, srsly, size, sharin)| Decl {
            scope: if we { DeclScope::We } else { DeclScope::I },
            name,
            ty: Some(ty),
            srsly,
            array_size: Some(size),
            init: None,
            sharin,
            span: Span::DUMMY,
        },
    )
}

/// Statements allowed after `TXT MAH BFF expr,`.
fn simple_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (lvalue(), expr())
            .prop_map(|(t, v)| Stmt::new(StmtKind::Assign { target: t, value: v }, Span::DUMMY)),
        expr().prop_map(|e| Stmt::new(StmtKind::ExprStmt(e), Span::DUMMY)),
        (proptest::collection::vec(expr(), 0..3), any::<bool>())
            .prop_map(|(args, nl)| Stmt::new(StmtKind::Visible { args, newline: nl }, Span::DUMMY)),
        lvalue().prop_map(|lv| Stmt::new(StmtKind::Gimmeh(lv), Span::DUMMY)),
        varref().prop_map(|v| Stmt::new(StmtKind::LockAcquire(v), Span::DUMMY)),
        varref().prop_map(|v| Stmt::new(StmtKind::LockTry(v), Span::DUMMY)),
        varref().prop_map(|v| Stmt::new(StmtKind::LockRelease(v), Span::DUMMY)),
        (lvalue(), lol_type())
            .prop_map(|(t, ty)| Stmt::new(StmtKind::IsNowA { target: t, ty }, Span::DUMMY)),
        decl().prop_map(|d| Stmt::new(StmtKind::Declare(d), Span::DUMMY)),
        array_decl().prop_map(|d| Stmt::new(StmtKind::Declare(d), Span::DUMMY)),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        simple_stmt(),
        Just(Stmt::new(StmtKind::Hugz, Span::DUMMY)),
        Just(Stmt::new(StmtKind::Gtfo, Span::DUMMY)),
        expr().prop_map(|e| Stmt::new(StmtKind::FoundYr(e), Span::DUMMY)),
        (expr(), simple_stmt()).prop_map(|(pe, s)| Stmt::new(
            StmtKind::TxtStmt { pe, stmt: Box::new(s) },
            Span::DUMMY
        )),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        let block = proptest::collection::vec(inner.clone(), 0..3);
        prop_oneof![
            (
                block.clone(),
                proptest::collection::vec((expr(), block.clone()), 0..2),
                prop::option::of(block.clone())
            )
                .prop_map(|(then_block, mebbe_raw, else_block)| {
                    let mebbes =
                        mebbe_raw.into_iter().map(|(cond, body)| MebbeArm { cond, body }).collect();
                    Stmt::new(StmtKind::If(IfStmt { then_block, mebbes, else_block }), Span::DUMMY)
                }),
            (
                proptest::collection::vec((lit(), block.clone()), 1..3),
                prop::option::of(block.clone())
            )
                .prop_map(|(arms_raw, default)| {
                    let arms =
                        arms_raw.into_iter().map(|(value, body)| OmgArm { value, body }).collect();
                    Stmt::new(StmtKind::Switch(SwitchStmt { arms, default }), Span::DUMMY)
                }),
            (
                ident(),
                prop::option::of((
                    prop_oneof![Just(LoopDir::Uppin), Just(LoopDir::Nerfin)],
                    ident()
                )),
                prop::option::of((
                    prop_oneof![Just(GuardKind::Til), Just(GuardKind::Wile)],
                    expr()
                )),
                block.clone()
            )
                .prop_map(|(label, update, guard, body)| Stmt::new(
                    StmtKind::Loop(LoopStmt { label, update, guard, body }),
                    Span::DUMMY
                )),
            (expr(), block)
                .prop_map(|(pe, body)| Stmt::new(StmtKind::TxtBlock { pe, body }, Span::DUMMY)),
        ]
    })
}

fn func() -> impl Strategy<Value = FuncDef> {
    (ident(), proptest::collection::vec(ident(), 0..3), proptest::collection::vec(stmt(), 0..4))
        .prop_map(|(name, params, body)| FuncDef { name, params, body, span: Span::DUMMY })
}

fn program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(ident(), 0..2),
        proptest::collection::vec(stmt(), 0..8),
        proptest::collection::vec(func(), 0..2),
    )
        .prop_map(|(incs, body, funcs)| Program {
            version: Some("1.2".into()),
            includes: incs.into_iter().map(|lib| Include { lib, span: Span::DUMMY }).collect(),
            body,
            funcs,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The core invariant: print → parse → print is a fixed point.
    #[test]
    fn print_parse_print_is_identity(p in program()) {
        let printed = print_program(&p);
        let out = parse(&printed);
        prop_assert!(
            !out.diags.has_errors(),
            "printed program failed to parse:\n{printed}\n{:?}",
            out.diags.into_vec()
        );
        let reparsed = out.program.unwrap();
        let reprinted = print_program(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    /// Expressions alone round-trip too (as expression statements).
    #[test]
    fn expression_roundtrip(e in expr()) {
        let p = Program {
            version: Some("1.2".into()),
            includes: vec![],
            body: vec![Stmt::new(StmtKind::ExprStmt(e), Span::DUMMY)],
            funcs: vec![],
        };
        let printed = print_program(&p);
        let out = parse(&printed);
        prop_assert!(!out.diags.has_errors(), "failed:\n{printed}");
        prop_assert_eq!(printed, print_program(&out.program.unwrap()));
    }
}
