//! Expression parsing.
//!
//! LOLCODE expressions are fully prefix (`SUM OF x AN y`), so no
//! precedence climbing is needed: each operator knows its arity and the
//! optional `AN` separators are pure decoration. The extensions add
//! `ME`, `MAH FRENZ`, `WHATEVR`, `WHATEVAR`, `SQUAR/UNSQUAR/FLIP OF`,
//! the `UR`/`MAH` locality qualifiers and `'Z` indexing.

use crate::Parser;
use lol_ast::diag::Diagnostic;
use lol_ast::*;
use lol_lexer::{describe, TokenKind};

impl Parser {
    /// Parse one expression.
    pub(crate) fn parse_expr(&mut self) -> Option<Expr> {
        if !self.enter() {
            return None;
        }
        let out = self.parse_expr_inner();
        self.leave();
        out
    }

    fn parse_expr_inner(&mut self) -> Option<Expr> {
        let start = self.peek().span;
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Numbr(n) => {
                self.bump();
                Some(Expr::new(ExprKind::Lit(Lit::Numbr(*n)), t.span))
            }
            TokenKind::Numbar(f) => {
                self.bump();
                Some(Expr::new(ExprKind::Lit(Lit::Numbar(*f)), t.span))
            }
            TokenKind::Yarn(parts) => {
                self.bump();
                Some(Expr::new(ExprKind::Lit(Lit::Yarn(parts.clone())), t.span))
            }
            TokenKind::Word(_) => self.parse_word_expr(start),
            _ => {
                let got = describe(&t.kind);
                self.diags.push(Diagnostic::error(
                    "PAR0020",
                    format!("I EXPECTED AN EXPRESSION BUT I GOTZ {got}"),
                    t.span,
                ));
                None
            }
        }
    }

    fn parse_word_expr(&mut self, start: Span) -> Option<Expr> {
        // Binary arithmetic / comparison operators.
        let bin_table: &[(&[&str], BinOp)] = &[
            (&["SUM", "OF"], BinOp::Sum),
            (&["DIFF", "OF"], BinOp::Diff),
            (&["PRODUKT", "OF"], BinOp::Produkt),
            (&["QUOSHUNT", "OF"], BinOp::Quoshunt),
            (&["MOD", "OF"], BinOp::Mod),
            (&["BIGGR", "OF"], BinOp::BiggrOf),
            (&["SMALLR", "OF"], BinOp::SmallrOf),
            (&["BOTH", "SAEM"], BinOp::BothSaem),
            (&["BOTH", "OF"], BinOp::BothOf),
            (&["EITHER", "OF"], BinOp::EitherOf),
            (&["WON", "OF"], BinOp::WonOf),
            (&["DIFFRINT"], BinOp::Diffrint),
            // The paper's Table I comparison spellings (after the OF
            // variants so `SMALLR OF` wins the longest match).
            (&["BIGGER"], BinOp::Bigger),
            (&["SMALLR"], BinOp::Smallr),
        ];
        for (phrase, op) in bin_table {
            if self.at_phrase(phrase) {
                for _ in 0..phrase.len() {
                    self.bump();
                }
                let lhs = Box::new(self.parse_expr()?);
                self.eat_phrase(&["AN"]); // optional separator
                let rhs = Box::new(self.parse_expr()?);
                let span = start.to(rhs.span);
                return Some(Expr::new(ExprKind::Bin { op: *op, lhs, rhs }, span));
            }
        }

        // Unary operators (NOT + the paper's Table III math helpers).
        let un_table: &[(&[&str], UnOp)] = &[
            (&["NOT"], UnOp::Not),
            (&["SQUAR", "OF"], UnOp::Squar),
            (&["UNSQUAR", "OF"], UnOp::Unsquar),
            (&["FLIP", "OF"], UnOp::Flip),
        ];
        for (phrase, op) in un_table {
            if self.at_phrase(phrase) {
                for _ in 0..phrase.len() {
                    self.bump();
                }
                let inner = Box::new(self.parse_expr()?);
                let span = start.to(inner.span);
                return Some(Expr::new(ExprKind::Un { op: *op, expr: inner }, span));
            }
        }

        // Variadic operators (terminated by MKAY or end of statement).
        let nary_table: &[(&[&str], NaryOp)] = &[
            (&["ALL", "OF"], NaryOp::AllOf),
            (&["ANY", "OF"], NaryOp::AnyOf),
            (&["SMOOSH"], NaryOp::Smoosh),
        ];
        for (phrase, op) in nary_table {
            if self.at_phrase(phrase) {
                for _ in 0..phrase.len() {
                    self.bump();
                }
                let mut args = Vec::new();
                loop {
                    args.push(self.parse_expr()?);
                    if self.eat_phrase(&["MKAY"]) || self.at_separator() {
                        break;
                    }
                    // Optional AN between args.
                    self.eat_phrase(&["AN"]);
                    if self.eat_phrase(&["MKAY"]) || self.at_separator() {
                        break;
                    }
                }
                let span = start.to(self.peek().span);
                return Some(Expr::new(ExprKind::Nary { op: *op, args }, span));
            }
        }

        // MAEK expr A type.
        if self.at_phrase(&["MAEK"]) {
            self.bump();
            let inner = Box::new(self.parse_expr()?);
            self.eat_phrase(&["A"]); // `A` is optional per lci
            let ty = self.parse_type()?;
            let span = start.to(self.peek().span);
            return Some(Expr::new(ExprKind::Cast { expr: inner, ty }, span));
        }

        // Function call: I IZ name [YR a [AN YR b ...]] MKAY.
        if self.at_phrase(&["I", "IZ"]) {
            self.bump();
            self.bump();
            let name = self.expect_ident("FOR DA FUNKSHUN CALL")?;
            let mut args = Vec::new();
            if self.eat_phrase(&["YR"]) {
                args.push(self.parse_expr()?);
                while self.at_phrase(&["AN", "YR"]) {
                    self.bump();
                    self.bump();
                    args.push(self.parse_expr()?);
                }
            }
            self.expect_phrase(&["MKAY"], "TO END DA FUNKSHUN CALL");
            let span = start.to(self.peek().span);
            return Some(Expr::new(ExprKind::Call { name, args }, span));
        }

        // Parallel environment queries (Table II) and randomness
        // (Table III).
        if self.at_phrase(&["ME"]) {
            self.bump();
            return Some(Expr::new(ExprKind::Me, start));
        }
        if self.at_phrase(&["MAH", "FRENZ"]) {
            self.bump();
            self.bump();
            return Some(Expr::new(ExprKind::MahFrenz, start.to(self.peek().span)));
        }
        if self.at_phrase(&["WHATEVR"]) {
            self.bump();
            return Some(Expr::new(ExprKind::Whatevr, start));
        }
        if self.at_phrase(&["WHATEVAR"]) {
            self.bump();
            return Some(Expr::new(ExprKind::Whatevar, start));
        }

        // TROOF / NOOB literals.
        if self.at_phrase(&["WIN"]) {
            self.bump();
            return Some(Expr::new(ExprKind::Lit(Lit::Troof(true)), start));
        }
        if self.at_phrase(&["FAIL"]) {
            self.bump();
            return Some(Expr::new(ExprKind::Lit(Lit::Troof(false)), start));
        }
        if self.at_phrase(&["NOOB"]) {
            self.bump();
            return Some(Expr::new(ExprKind::Lit(Lit::Noob), start));
        }

        // Variable reference (with optional UR/MAH qualifier, SRS
        // dynamic naming, and 'Z indexing).
        let vr = self.parse_varref()?;
        self.finish_varref_expr(vr, start)
    }

    /// After a var ref, check for `'Z idx`.
    fn finish_varref_expr(&mut self, vr: VarRef, start: Span) -> Option<Expr> {
        if matches!(self.peek().kind, TokenKind::TickZ) {
            self.bump();
            let idx = Box::new(self.parse_expr()?);
            let span = start.to(idx.span);
            return Some(Expr::new(ExprKind::Index { arr: vr, idx }, span));
        }
        let span = vr.span;
        Some(Expr::new(ExprKind::Var(vr), span))
    }

    /// Parse `[UR|MAH] (name | SRS expr)`.
    pub(crate) fn parse_varref(&mut self) -> Option<VarRef> {
        let start = self.peek().span;
        let locality = if self.at_phrase(&["UR"]) {
            self.bump();
            Locality::Ur
        } else if self.at_phrase(&["MAH"]) && !self.at_phrase(&["MAH", "FRENZ"]) {
            self.bump();
            Locality::Mah
        } else {
            Locality::Unqualified
        };
        if self.at_phrase(&["SRS"]) {
            self.bump();
            let e = self.parse_expr()?;
            let span = start.to(e.span);
            return Some(VarRef { name: VarName::Srs(Box::new(e)), locality, span });
        }
        let id = self.expect_ident("FOR DA VARIABLE")?;
        let span = start.to(id.span);
        Some(VarRef { name: VarName::Named(id), locality, span })
    }

    /// Parse an assignment / GIMMEH target.
    pub(crate) fn parse_lvalue(&mut self) -> Option<LValue> {
        let start = self.peek().span;
        let vr = self.parse_varref()?;
        if matches!(self.peek().kind, TokenKind::TickZ) {
            self.bump();
            let idx = Box::new(self.parse_expr()?);
            let span = start.to(idx.span);
            return Some(LValue::Index { arr: vr, idx, span });
        }
        Some(LValue::Var(vr))
    }
}
