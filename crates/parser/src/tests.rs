//! Parser unit tests: every construct of Tables I, II and III, the
//! paper's worked examples (Section VI), and error handling.

use crate::parse;
use lol_ast::pretty::print_program;
use lol_ast::*;

fn ok(src: &str) -> Program {
    parse(src).expect_program(src)
}

fn body(src: &str) -> Vec<Stmt> {
    ok(&format!("HAI 1.2\n{src}\nKTHXBYE")).body
}

fn one_stmt(src: &str) -> Stmt {
    let mut b = body(src);
    assert_eq!(b.len(), 1, "expected exactly one statement from {src:?}, got {b:#?}");
    b.remove(0)
}

fn expr_of(src: &str) -> Expr {
    match one_stmt(src).kind {
        StmtKind::ExprStmt(e) => e,
        other => panic!("expected expression statement, got {other:?}"),
    }
}

fn fails(src: &str) -> bool {
    parse(src).diags.has_errors()
}

// ---------------------------------------------------------------------
// Program frame (Table I rows 1-4)
// ---------------------------------------------------------------------

#[test]
fn hai_version_kthxbye() {
    let p = ok("HAI 1.2\nKTHXBYE");
    assert_eq!(p.version.as_deref(), Some("1.2"));
    assert!(p.body.is_empty());
}

#[test]
fn hai_without_version() {
    assert_eq!(ok("HAI\nKTHXBYE").version, None);
}

#[test]
fn missing_kthxbye_is_error() {
    assert!(fails("HAI 1.2\nVISIBLE 1"));
}

#[test]
fn stuff_after_kthxbye_is_error() {
    assert!(fails("HAI 1.2\nKTHXBYE\nVISIBLE 1"));
}

#[test]
fn comments_are_invisible() {
    let p = ok("HAI 1.2 BTW dis is mah program\nOBTW\nlots of wisdom\nTLDR\nVISIBLE 1\nKTHXBYE");
    assert_eq!(p.body.len(), 1);
}

#[test]
fn can_has_includes() {
    let p = ok("HAI 1.2\nCAN HAS STDIO?\nCAN HAS STDLIB?\nKTHXBYE");
    assert_eq!(p.includes.len(), 2);
    assert_eq!(p.includes[0].lib.sym.as_str(), "STDIO");
    assert_eq!(p.includes[1].lib.sym.as_str(), "STDLIB");
}

#[test]
fn can_has_needs_question_mark() {
    assert!(fails("HAI 1.2\nCAN HAS STDIO\nKTHXBYE"));
}

// ---------------------------------------------------------------------
// Declarations (Table I + paper extensions)
// ---------------------------------------------------------------------

fn decl_of(src: &str) -> Decl {
    match one_stmt(src).kind {
        StmtKind::Declare(d) => d,
        other => panic!("expected declaration, got {other:?}"),
    }
}

#[test]
fn plain_declaration() {
    let d = decl_of("I HAS A x");
    assert_eq!(d.name.sym.as_str(), "x");
    assert_eq!(d.scope, DeclScope::I);
    assert!(d.ty.is_none() && d.init.is_none() && !d.sharin && !d.srsly);
}

#[test]
fn declaration_with_init() {
    let d = decl_of("I HAS A x ITZ 42");
    assert!(matches!(d.init, Some(Expr { kind: ExprKind::Lit(Lit::Numbr(42)), .. })));
}

#[test]
fn declaration_with_type() {
    let d = decl_of("I HAS A x ITZ A NUMBR");
    assert_eq!(d.ty, Some(LolType::Numbr));
    assert!(!d.srsly);
}

#[test]
fn static_typed_declaration() {
    // Table II: I HAS A [var] ITZ SRSLY A [type].
    let d = decl_of("I HAS A x ITZ SRSLY A NUMBAR");
    assert_eq!(d.ty, Some(LolType::Numbar));
    assert!(d.srsly);
}

#[test]
fn multi_clause_declaration() {
    // The paper: "allowing multiple clauses in declarations".
    let d = decl_of("I HAS A pe ITZ A NUMBR AN ITZ ME");
    assert_eq!(d.ty, Some(LolType::Numbr));
    assert!(matches!(d.init, Some(Expr { kind: ExprKind::Me, .. })));
}

#[test]
fn shared_declaration() {
    // Table II: WE HAS A [var] ITZ SRSLY A [type] AN IM SHARIN IT.
    let d = decl_of("WE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT");
    assert_eq!(d.scope, DeclScope::We);
    assert!(d.sharin && d.srsly);
}

#[test]
fn shared_array_declaration() {
    // Table II: WE HAS A [var] ITZ SRSLY LOTZ A [type]S AN THAR IZ [size].
    let d = decl_of("WE HAS A arr ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32");
    assert_eq!(d.scope, DeclScope::We);
    assert_eq!(d.ty, Some(LolType::Numbar));
    assert!(matches!(d.array_size, Some(Expr { kind: ExprKind::Lit(Lit::Numbr(32)), .. })));
}

#[test]
fn shared_array_with_lock() {
    let d = decl_of("WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS ...\n  AN THAR IZ 32 AN IM SHARIN IT");
    assert!(d.sharin);
    assert!(d.array_size.is_some());
}

#[test]
fn local_array() {
    let d = decl_of("I HAS A vel_x ITZ SRSLY LOTZ A NUMBARS AN THAR IZ 32");
    assert_eq!(d.scope, DeclScope::I);
    assert_eq!(d.ty, Some(LolType::Numbar));
}

#[test]
fn bad_array_type_is_error() {
    assert!(fails("HAI 1.2\nI HAS A x ITZ SRSLY LOTZ A CHEEZBURGERS AN THAR IZ 3\nKTHXBYE"));
}

// ---------------------------------------------------------------------
// Assignment, IS NOW A, SRS
// ---------------------------------------------------------------------

#[test]
fn simple_assignment() {
    match one_stmt("x R 5").kind {
        StmtKind::Assign { target: LValue::Var(v), .. } => {
            assert_eq!(v.name.as_named().unwrap().sym.as_str(), "x");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn indexed_assignment() {
    match one_stmt("arr'Z 3 R 5").kind {
        StmtKind::Assign { target: LValue::Index { arr, idx, .. }, .. } => {
            assert_eq!(arr.name.as_named().unwrap().sym.as_str(), "arr");
            assert!(matches!(idx.kind, ExprKind::Lit(Lit::Numbr(3))));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn assignment_to_literal_is_error() {
    assert!(fails("HAI 1.2\n5 R 6\nKTHXBYE"));
}

#[test]
fn is_now_a() {
    match one_stmt("x IS NOW A YARN").kind {
        StmtKind::IsNowA { ty, .. } => assert_eq!(ty, LolType::Yarn),
        other => panic!("{other:?}"),
    }
}

#[test]
fn srs_lvalue_and_expr() {
    match one_stmt("SRS \"x\" R SRS \"y\"").kind {
        StmtKind::Assign { target: LValue::Var(v), value } => {
            assert!(matches!(v.name, VarName::Srs(_)));
            assert!(matches!(value.kind, ExprKind::Var(VarRef { name: VarName::Srs(_), .. })));
        }
        other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------
// Expressions (Table I ops + Table III extensions)
// ---------------------------------------------------------------------

#[test]
fn all_binary_ops_parse() {
    let cases = [
        ("SUM OF 1 AN 2", BinOp::Sum),
        ("DIFF OF 1 AN 2", BinOp::Diff),
        ("PRODUKT OF 1 AN 2", BinOp::Produkt),
        ("QUOSHUNT OF 1 AN 2", BinOp::Quoshunt),
        ("MOD OF 1 AN 2", BinOp::Mod),
        ("BIGGR OF 1 AN 2", BinOp::BiggrOf),
        ("SMALLR OF 1 AN 2", BinOp::SmallrOf),
        ("BOTH SAEM 1 AN 2", BinOp::BothSaem),
        ("DIFFRINT 1 AN 2", BinOp::Diffrint),
        ("BIGGER 1 AN 2", BinOp::Bigger),
        ("SMALLR 1 AN 2", BinOp::Smallr),
        ("BOTH OF WIN AN FAIL", BinOp::BothOf),
        ("EITHER OF WIN AN FAIL", BinOp::EitherOf),
        ("WON OF WIN AN FAIL", BinOp::WonOf),
    ];
    for (src, want) in cases {
        match expr_of(src).kind {
            ExprKind::Bin { op, .. } => assert_eq!(op, want, "{src}"),
            other => panic!("{src}: {other:?}"),
        }
    }
}

#[test]
fn an_separator_is_optional() {
    // LOLCODE 1.2: `AN` between operands may be omitted.
    match expr_of("SUM OF 1 2").kind {
        ExprKind::Bin { op: BinOp::Sum, .. } => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn nested_prefix_expression() {
    // QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000 — from the n-body listing.
    match expr_of("QUOSHUNT OF SUM OF ME AN WHATEVAR AN 1000").kind {
        ExprKind::Bin { op: BinOp::Quoshunt, lhs, rhs } => {
            assert!(matches!(lhs.kind, ExprKind::Bin { op: BinOp::Sum, .. }));
            assert!(matches!(rhs.kind, ExprKind::Lit(Lit::Numbr(1000))));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn unary_ops_parse() {
    assert!(matches!(expr_of("NOT WIN").kind, ExprKind::Un { op: UnOp::Not, .. }));
    assert!(matches!(expr_of("SQUAR OF 3").kind, ExprKind::Un { op: UnOp::Squar, .. }));
    assert!(matches!(expr_of("UNSQUAR OF 9").kind, ExprKind::Un { op: UnOp::Unsquar, .. }));
    assert!(matches!(expr_of("FLIP OF 4").kind, ExprKind::Un { op: UnOp::Flip, .. }));
}

#[test]
fn table3_nested_idiom() {
    // FLIP OF UNSQUAR OF SUM OF dx AN dy — the n-body inverse distance.
    match expr_of("FLIP OF UNSQUAR OF SUM OF dx AN dy").kind {
        ExprKind::Un { op: UnOp::Flip, expr } => {
            assert!(matches!(expr.kind, ExprKind::Un { op: UnOp::Unsquar, .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn nary_ops_parse() {
    match expr_of("ALL OF WIN AN WIN AN FAIL MKAY").kind {
        ExprKind::Nary { op: NaryOp::AllOf, args } => assert_eq!(args.len(), 3),
        other => panic!("{other:?}"),
    }
    match expr_of("ANY OF FAIL AN WIN MKAY").kind {
        ExprKind::Nary { op: NaryOp::AnyOf, args } => assert_eq!(args.len(), 2),
        other => panic!("{other:?}"),
    }
    match expr_of("SMOOSH \"a\" AN \"b\" AN \"c\" MKAY").kind {
        ExprKind::Nary { op: NaryOp::Smoosh, args } => assert_eq!(args.len(), 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn nary_without_mkay_at_eol() {
    match expr_of("SMOOSH \"a\" AN \"b\"").kind {
        ExprKind::Nary { op: NaryOp::Smoosh, args } => assert_eq!(args.len(), 2),
        other => panic!("{other:?}"),
    }
}

#[test]
fn maek_cast() {
    match expr_of("MAEK \"3\" A NUMBR").kind {
        ExprKind::Cast { ty, .. } => assert_eq!(ty, LolType::Numbr),
        other => panic!("{other:?}"),
    }
}

#[test]
fn me_mah_frenz_whatevr_whatevar() {
    assert!(matches!(expr_of("ME").kind, ExprKind::Me));
    assert!(matches!(expr_of("MAH FRENZ").kind, ExprKind::MahFrenz));
    assert!(matches!(expr_of("WHATEVR").kind, ExprKind::Whatevr));
    assert!(matches!(expr_of("WHATEVAR").kind, ExprKind::Whatevar));
}

#[test]
fn literals() {
    assert!(matches!(expr_of("42").kind, ExprKind::Lit(Lit::Numbr(42))));
    assert!(matches!(expr_of("WIN").kind, ExprKind::Lit(Lit::Troof(true))));
    assert!(matches!(expr_of("FAIL").kind, ExprKind::Lit(Lit::Troof(false))));
    assert!(matches!(expr_of("NOOB").kind, ExprKind::Lit(Lit::Noob)));
    match expr_of("3.25").kind {
        ExprKind::Lit(Lit::Numbar(f)) => assert_eq!(f, 3.25),
        other => panic!("{other:?}"),
    }
}

#[test]
fn ur_and_mah_qualifiers() {
    match expr_of("UR x").kind {
        ExprKind::Var(v) => assert_eq!(v.locality, Locality::Ur),
        other => panic!("{other:?}"),
    }
    match expr_of("MAH x").kind {
        ExprKind::Var(v) => assert_eq!(v.locality, Locality::Mah),
        other => panic!("{other:?}"),
    }
}

#[test]
fn remote_indexed_read() {
    // UR pos_x'Z j — from the n-body inner loop.
    match expr_of("UR pos_x'Z j").kind {
        ExprKind::Index { arr, .. } => {
            assert_eq!(arr.locality, Locality::Ur);
            assert_eq!(arr.name.as_named().unwrap().sym.as_str(), "pos_x");
        }
        other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------
// Control flow (Table I)
// ---------------------------------------------------------------------

#[test]
fn o_rly_full_form() {
    let stmts = body("BOTH SAEM x AN 1, O RLY?\nYA RLY\nVISIBLE \"yes\"\nMEBBE BOTH SAEM x AN 2\nVISIBLE \"two\"\nNO WAI\nVISIBLE \"no\"\nOIC");
    assert_eq!(stmts.len(), 2); // expr stmt + if
    match &stmts[1].kind {
        StmtKind::If(i) => {
            assert_eq!(i.then_block.len(), 1);
            assert_eq!(i.mebbes.len(), 1);
            assert!(i.else_block.is_some());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn o_rly_minimal() {
    let stmts = body("WIN, O RLY?\nYA RLY\nVISIBLE 1\nOIC");
    match &stmts[1].kind {
        StmtKind::If(i) => {
            assert!(i.mebbes.is_empty());
            assert!(i.else_block.is_none());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn wtf_switch() {
    let s = one_stmt("WTF?\nOMG 1\nVISIBLE \"one\"\nGTFO\nOMG 2\nVISIBLE \"two\"\nOMGWTF\nVISIBLE \"other\"\nOIC");
    match s.kind {
        StmtKind::Switch(sw) => {
            assert_eq!(sw.arms.len(), 2);
            assert_eq!(sw.arms[0].value, Lit::Numbr(1));
            // GTFO inside the arm is a statement.
            assert_eq!(sw.arms[0].body.len(), 2);
            assert!(sw.default.is_some());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn omg_requires_literal() {
    assert!(fails("HAI 1.2\nWTF?\nOMG SUM OF 1 AN 2\nVISIBLE 1\nOIC\nKTHXBYE"));
}

#[test]
fn loop_with_uppin_til() {
    let s = one_stmt("IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32\nVISIBLE i\nIM OUTTA YR loop");
    match s.kind {
        StmtKind::Loop(lp) => {
            assert_eq!(lp.label.sym.as_str(), "loop");
            assert_eq!(lp.update, Some((LoopDir::Uppin, Ident::synthetic("i"))));
            assert!(matches!(lp.guard, Some((GuardKind::Til, _))));
            assert_eq!(lp.body.len(), 1);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn loop_with_nerfin_wile() {
    let s = one_stmt("IM IN YR down NERFIN YR n WILE BIGGER n AN 0\nVISIBLE n\nIM OUTTA YR down");
    match s.kind {
        StmtKind::Loop(lp) => {
            assert_eq!(lp.update.unwrap().0, LoopDir::Nerfin);
            assert!(matches!(lp.guard, Some((GuardKind::Wile, _))));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn infinite_loop_with_gtfo() {
    let s = one_stmt("IM IN YR forever\nGTFO\nIM OUTTA YR forever");
    match s.kind {
        StmtKind::Loop(lp) => {
            assert!(lp.update.is_none() && lp.guard.is_none());
            assert!(matches!(lp.body[0].kind, StmtKind::Gtfo));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn nested_loops_with_same_label() {
    // The paper's n-body listing nests three loops all labelled `loop`.
    let src = "IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 2\nIM IN YR loop UPPIN YR j TIL BOTH SAEM j AN 2\nVISIBLE j\nIM OUTTA YR loop\nIM OUTTA YR loop";
    let s = one_stmt(src);
    match s.kind {
        StmtKind::Loop(outer) => {
            assert!(matches!(&outer.body[0].kind, StmtKind::Loop(_)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn loop_label_mismatch_is_error() {
    assert!(fails("HAI 1.2\nIM IN YR a\nGTFO\nIM OUTTA YR b\nKTHXBYE"));
}

// ---------------------------------------------------------------------
// Functions (Table I)
// ---------------------------------------------------------------------

#[test]
fn function_definition_and_call() {
    let p = ok("HAI 1.2\nHOW IZ I add YR a AN YR b\nFOUND YR SUM OF a AN b\nIF U SAY SO\nI IZ add YR 1 AN YR 2 MKAY\nKTHXBYE");
    assert_eq!(p.funcs.len(), 1);
    assert_eq!(p.funcs[0].name.sym.as_str(), "add");
    assert_eq!(p.funcs[0].params.len(), 2);
    match &p.body[0].kind {
        StmtKind::ExprStmt(Expr { kind: ExprKind::Call { name, args }, .. }) => {
            assert_eq!(name.sym.as_str(), "add");
            assert_eq!(args.len(), 2);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn function_without_params() {
    let p = ok("HAI 1.2\nHOW IZ I greet\nVISIBLE \"HAI\"\nIF U SAY SO\nI IZ greet MKAY\nKTHXBYE");
    assert!(p.funcs[0].params.is_empty());
}

#[test]
fn nested_function_is_error() {
    assert!(fails("HAI 1.2\nIM IN YR l\nHOW IZ I f\nIF U SAY SO\nIM OUTTA YR l\nKTHXBYE"));
}

// ---------------------------------------------------------------------
// Parallel extensions (Table II)
// ---------------------------------------------------------------------

#[test]
fn hugz_barrier() {
    assert!(matches!(one_stmt("HUGZ").kind, StmtKind::Hugz));
}

#[test]
fn lock_statements() {
    assert!(matches!(one_stmt("IM SRSLY MESIN WIF x").kind, StmtKind::LockAcquire(_)));
    assert!(matches!(one_stmt("IM MESIN WIF x").kind, StmtKind::LockTry(_)));
    assert!(matches!(one_stmt("DUN MESIN WIF x").kind, StmtKind::LockRelease(_)));
}

#[test]
fn lock_on_remote_var() {
    // Section VI.B: IM MESIN WIF UR x inside a TXT block.
    match one_stmt("IM MESIN WIF UR x").kind {
        StmtKind::LockTry(v) => assert_eq!(v.locality, Locality::Ur),
        other => panic!("{other:?}"),
    }
}

#[test]
fn txt_single_statement() {
    // Section VI.A: TXT MAH BFF next_pe, MAH array R UR array.
    match one_stmt("TXT MAH BFF next_pe, MAH array R UR array").kind {
        StmtKind::TxtStmt { pe, stmt } => {
            assert!(matches!(pe.kind, ExprKind::Var(_)));
            match stmt.kind {
                StmtKind::Assign { target: LValue::Var(t), value } => {
                    assert_eq!(t.locality, Locality::Mah);
                    assert!(matches!(
                        value.kind,
                        ExprKind::Var(VarRef { locality: Locality::Ur, .. })
                    ));
                }
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn txt_multi_remote_refs() {
    // Section V: TXT MAH BFF k, MAH x R SUM OF UR y AN UR z.
    match one_stmt("TXT MAH BFF k, MAH x R SUM OF UR y AN UR z").kind {
        StmtKind::TxtStmt { stmt, .. } => {
            assert!(matches!(stmt.kind, StmtKind::Assign { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn txt_block_form() {
    let s = one_stmt(
        "TXT MAH BFF k AN STUFF\nIM MESIN WIF UR x\nx R SUM OF x AN 1\nDUN MESIN WIF UR x\nTTYL",
    );
    match s.kind {
        StmtKind::TxtBlock { body, .. } => assert_eq!(body.len(), 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn txt_block_with_trailing_comma() {
    // The n-body listing writes `TXT MAH BFF k AN STUFF,`.
    let s = one_stmt("TXT MAH BFF k AN STUFF,\ndx R UR pos_x'Z j\nTTYL");
    assert!(matches!(s.kind, StmtKind::TxtBlock { .. }));
}

#[test]
fn txt_rejects_block_statement_without_an_stuff() {
    assert!(fails("HAI 1.2\nTXT MAH BFF k, IM IN YR l\nGTFO\nIM OUTTA YR l\nKTHXBYE"));
}

#[test]
fn txt_pe_can_be_expression() {
    match one_stmt("TXT MAH BFF MOD OF SUM OF ME AN 1 AN MAH FRENZ, MAH a R UR a").kind {
        StmtKind::TxtStmt { pe, .. } => {
            assert!(matches!(pe.kind, ExprKind::Bin { op: BinOp::Mod, .. }));
        }
        other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------
// Paper worked examples end-to-end (Section VI)
// ---------------------------------------------------------------------

#[test]
fn paper_example_a_initialization() {
    let src = "HAI 1.2\n\
I HAS A pe ITZ A NUMBR AN ITZ ME\n\
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ\n\
WE HAS A array ITZ SRSLY LOTZ A NUMBRS ...\n  AN THAR IZ 32\n\
I HAS A next_pe ITZ A NUMBR ...\n  AN ITZ SUM OF pe AN 1\n\
next_pe R MOD OF next_pe AN n_pes\n\
TXT MAH BFF next_pe, MAH array R UR array\n\
KTHXBYE";
    let p = ok(src);
    assert_eq!(p.body.len(), 6);
}

#[test]
fn paper_example_b_locks() {
    let src = "HAI 1.2\n\
WE HAS A x ITZ A NUMBR AN IM SHARIN IT\n\
TXT MAH BFF k AN STUFF\n\
  IM MESIN WIF UR x\n\
  x R SUM OF x AN 1\n\
  DUN MESIN WIF UR x\n\
TTYL\n\
KTHXBYE";
    let p = ok(src);
    assert_eq!(p.body.len(), 2);
}

#[test]
fn paper_example_c_barrier() {
    let src = "HAI 1.2\nTXT MAH BFF k, UR b R MAH a\nHUGZ\nc R SUM OF a AN b\nKTHXBYE";
    let p = ok(src);
    assert_eq!(p.body.len(), 3);
    assert!(matches!(p.body[1].kind, StmtKind::Hugz));
}

#[test]
fn paper_section5_trylock_pattern() {
    let src = "HAI 1.2\n\
IM SRSLY MESIN WIF x, O RLY?\n\
NO WAI,\n\
  IM MESIN WIF x\n\
OIC\n\
x R new_value\n\
DUN MESIN WIF x\n\
KTHXBYE";
    let p = ok(src);
    assert!(matches!(p.body[0].kind, StmtKind::LockAcquire(_)));
    assert!(matches!(p.body[1].kind, StmtKind::If(_)));
}

// ---------------------------------------------------------------------
// VISIBLE / GIMMEH
// ---------------------------------------------------------------------

#[test]
fn visible_multiple_args() {
    // From the n-body listing: VISIBLE pos_x'Z i " " pos_y'Z i.
    match one_stmt("VISIBLE pos_x'Z i \" \" pos_y'Z i").kind {
        StmtKind::Visible { args, newline } => {
            assert_eq!(args.len(), 3);
            assert!(newline);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn visible_bang_suppresses_newline() {
    match one_stmt("VISIBLE \"no newline\"!").kind {
        StmtKind::Visible { newline, .. } => assert!(!newline),
        other => panic!("{other:?}"),
    }
}

#[test]
fn visible_with_an_separators() {
    match one_stmt("VISIBLE \"a\" AN \"b\" AN \"c\"").kind {
        StmtKind::Visible { args, .. } => assert_eq!(args.len(), 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn gimmeh() {
    assert!(matches!(one_stmt("GIMMEH x").kind, StmtKind::Gimmeh(LValue::Var(_))));
    assert!(matches!(one_stmt("GIMMEH arr'Z 2").kind, StmtKind::Gimmeh(LValue::Index { .. })));
}

// ---------------------------------------------------------------------
// Round-trip through the pretty printer
// ---------------------------------------------------------------------

#[test]
fn roundtrip_paper_examples() {
    let sources = [
        "HAI 1.2\nVISIBLE \"HAI WORLD\"\nKTHXBYE",
        "HAI 1.2\nWE HAS A x ITZ SRSLY A NUMBR AN IM SHARIN IT\nHUGZ\nKTHXBYE",
        "HAI 1.2\nTXT MAH BFF k, UR b R MAH a\nHUGZ\nc R SUM OF a AN b\nKTHXBYE",
        "HAI 1.2\nIM IN YR loop UPPIN YR i TIL BOTH SAEM i AN 32\narr'Z i R SUM OF ME AN WHATEVAR\nIM OUTTA YR loop\nKTHXBYE",
        "HAI 1.2\nHOW IZ I add YR a AN YR b\nFOUND YR SUM OF a AN b\nIF U SAY SO\nKTHXBYE",
    ];
    for src in sources {
        let p1 = ok(src);
        let printed = print_program(&p1);
        let p2 = parse(&printed).expect_program(&printed);
        let reprinted = print_program(&p2);
        assert_eq!(printed, reprinted, "round-trip failed for {src:?}");
    }
}

// ---------------------------------------------------------------------
// Error quality
// ---------------------------------------------------------------------

#[test]
fn errors_carry_codes_and_spans() {
    let out = parse("HAI 1.2\nI HAS A\nKTHXBYE");
    assert!(out.diags.has_errors());
    let d = out.diags.iter().next().unwrap();
    assert!(d.code.starts_with("PAR"));
    assert!(d.span.lo > 0);
}

#[test]
fn recovers_and_reports_multiple_errors() {
    let out = parse("HAI 1.2\n5 R 6\n7 R 8\nKTHXBYE");
    let errors = out.diags.iter().filter(|d| d.severity == Severity::Error).count();
    assert!(errors >= 2, "expected two assignment errors, got {errors}");
}

#[test]
fn empty_source_is_error() {
    assert!(fails(""));
}

#[test]
fn garbage_does_not_hang() {
    // Progress guard: worst-case inputs must terminate.
    assert!(fails("HAI 1.2\n? ? ? ! ! 'Z 'Z MKAY OIC TTYL\nKTHXBYE"));
}
