//! # lol-parser — recursive-descent parser for parallel LOLCODE
//!
//! The paper built its grammar with `yacc`; we use a hand-written
//! recursive-descent parser over the word tokens produced by
//! [`lol_lexer`]. LOLCODE keywords are multi-word phrases, so the parser
//! matches phrases contextually (`SUM OF`, `IM SRSLY MESIN WIF`,
//! `TXT MAH BFF ... AN STUFF`), which also keeps keywords usable as
//! identifiers wherever the grammar is unambiguous — exactly the
//! behaviour of the original `lci` interpreter.
//!
//! The full surface parsed here is Tables I, II and III of the paper;
//! see `lol-ast` for the tree it produces and DESIGN.md §3 for the
//! handful of places where the paper's prose and listings disagree and
//! which reading we implement.

mod expr;

use lol_ast::diag::{Diagnostic, Diagnostics};
use lol_ast::*;
use lol_lexer::{describe, lex, Token, TokenKind};

/// Result of a parse: a program (present even when recoverable errors
/// occurred — missing pieces are dropped) plus diagnostics.
pub struct ParseOutput {
    pub program: Option<Program>,
    pub diags: Diagnostics,
}

impl ParseOutput {
    /// The program, or a rendered diagnostic panic. Test convenience.
    pub fn expect_program(self, src: &str) -> Program {
        if self.diags.has_errors() {
            let sm = SourceMap::new(src);
            panic!("parse failed:\n{}", self.diags.render_all(&sm));
        }
        self.program.expect("no program despite no errors")
    }
}

/// Parse LOLCODE source text into a [`Program`].
pub fn parse(src: &str) -> ParseOutput {
    parse_tokens(lex(src))
}

/// Parse an already-lexed token stream — the [`parse`] pipeline minus
/// lexing, for callers that time (or cache) the two phases separately.
/// Lex diagnostics short-circuit exactly as in [`parse`].
pub fn parse_tokens(lexed: lol_lexer::LexOutput) -> ParseOutput {
    let mut diags = lexed.diags;
    if diags.has_errors() {
        return ParseOutput { program: None, diags };
    }
    let mut p = Parser::new(lexed.tokens);
    let program = p.parse_program();
    for d in p.diags.into_vec() {
        diags.push(d);
    }
    ParseOutput { program: if diags.has_errors() { None } else { program }, diags }
}

/// A multi-word stop phrase (e.g. `["IM", "OUTTA", "YR"]`).
type Phrase = &'static [&'static str];

/// Maximum statement/expression nesting. Recursive descent uses the
/// call stack; beyond this we emit PAR0030 instead of overflowing.
const MAX_DEPTH: usize = 150;

pub(crate) struct Parser {
    toks: Vec<Token>,
    pos: usize,
    pub(crate) diags: Diagnostics,
    pub(crate) depth: usize,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Self {
        Parser { toks, pos: 0, diags: Diagnostics::new(), depth: 0 }
    }

    /// Guard recursive entry points against pathological nesting.
    pub(crate) fn enter(&mut self) -> bool {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.error_here(
                "PAR0030",
                format!("UR PROGRAM IZ NESTED 2 DEEP (MOAR THAN {MAX_DEPTH} LEVELS)"),
            );
            false
        } else {
            true
        }
    }

    pub(crate) fn leave(&mut self) {
        self.depth -= 1;
    }

    // ------------------------------------------------------------------
    // Token-level helpers
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    #[inline]
    pub(crate) fn peek_at(&self, ahead: usize) -> &Token {
        &self.toks[(self.pos + ahead).min(self.toks.len() - 1)]
    }

    #[inline]
    pub(crate) fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Does the upcoming token stream spell out `phrase`?
    pub(crate) fn at_phrase(&self, phrase: Phrase) -> bool {
        phrase.iter().enumerate().all(|(i, w)| self.peek_at(i).is_word(w))
    }

    /// Consume `phrase` if present.
    pub(crate) fn eat_phrase(&mut self, phrase: Phrase) -> bool {
        if self.at_phrase(phrase) {
            for _ in 0..phrase.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Consume `phrase` or record an error.
    pub(crate) fn expect_phrase(&mut self, phrase: Phrase, ctx: &str) {
        if !self.eat_phrase(phrase) {
            let got = describe(&self.peek().kind);
            let span = self.peek().span;
            self.diags.push(Diagnostic::error(
                "PAR0001",
                format!("I EXPECTED \"{}\" {ctx} BUT I GOTZ {got}", phrase.join(" ")),
                span,
            ));
        }
    }

    pub(crate) fn at_separator(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Separator | TokenKind::Eof)
    }

    /// Skip any separators.
    pub(crate) fn skip_separators(&mut self) {
        while matches!(self.peek().kind, TokenKind::Separator) {
            self.bump();
        }
    }

    /// Expect end-of-statement (separator or EOF); recover by syncing.
    fn expect_separator(&mut self, ctx: &str) {
        if matches!(self.peek().kind, TokenKind::Separator) {
            self.bump();
        } else if !matches!(self.peek().kind, TokenKind::Eof) {
            let got = describe(&self.peek().kind);
            let span = self.peek().span;
            self.diags.push(Diagnostic::error(
                "PAR0002",
                format!("I EXPECTED DA END OF DA STATEMENT {ctx} BUT I GOTZ {got}"),
                span,
            ));
            self.sync_to_separator();
        }
    }

    /// Error recovery: drop tokens until after the next separator.
    fn sync_to_separator(&mut self) {
        while !matches!(self.peek().kind, TokenKind::Separator | TokenKind::Eof) {
            self.bump();
        }
        if matches!(self.peek().kind, TokenKind::Separator) {
            self.bump();
        }
    }

    /// Expect an identifier word.
    pub(crate) fn expect_ident(&mut self, ctx: &str) -> Option<Ident> {
        match self.peek().kind {
            TokenKind::Word(sym) => {
                let span = self.peek().span;
                self.bump();
                Some(Ident::new(sym, span))
            }
            _ => {
                let got = describe(&self.peek().kind);
                let span = self.peek().span;
                self.diags.push(Diagnostic::error(
                    "PAR0003",
                    format!("I EXPECTED A NAME {ctx} BUT I GOTZ {got}"),
                    span,
                ));
                None
            }
        }
    }

    pub(crate) fn error_here(&mut self, code: &'static str, msg: String) {
        let span = self.peek().span;
        self.diags.push(Diagnostic::error(code, msg, span));
    }

    // ------------------------------------------------------------------
    // Program structure
    // ------------------------------------------------------------------

    fn parse_program(&mut self) -> Option<Program> {
        self.skip_separators();
        self.expect_phrase(&["HAI"], "AT DA START OF DA PROGRAM");
        let version = match self.peek().kind {
            TokenKind::Numbar(f) => {
                self.bump();
                Some(format!("{f:?}"))
            }
            TokenKind::Numbr(n) => {
                self.bump();
                Some(n.to_string())
            }
            _ => None,
        };
        self.expect_separator("AFTER HAI");

        let mut includes = Vec::new();
        let mut body = Vec::new();
        let mut funcs = Vec::new();
        let mut saw_end = false;

        self.skip_separators();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            if self.at_phrase(&["KTHXBYE"]) {
                self.bump();
                saw_end = true;
                self.skip_separators();
                if !matches!(self.peek().kind, TokenKind::Eof) {
                    self.error_here(
                        "PAR0004",
                        "STUFF AFTER KTHXBYE? DATS NOT HOW DIS WORKS".into(),
                    );
                }
                break;
            }
            if self.at_phrase(&["CAN", "HAS"]) {
                let start = self.peek().span;
                self.bump();
                self.bump();
                if let Some(lib) = self.expect_ident("AFTER CAN HAS") {
                    if !matches!(self.peek().kind, TokenKind::Question) {
                        self.error_here("PAR0005", "CAN HAS NEEDS A ? AT DA END".into());
                    } else {
                        self.bump();
                    }
                    includes.push(Include { lib, span: start.to(self.peek().span) });
                }
                self.expect_separator("AFTER CAN HAS");
                self.skip_separators();
                continue;
            }
            if self.at_phrase(&["HOW", "IZ", "I"]) {
                if let Some(f) = self.parse_func() {
                    funcs.push(f);
                }
                self.skip_separators();
                continue;
            }
            let before = self.pos;
            if let Some(s) = self.parse_stmt() {
                body.push(s);
            } else if self.pos == before {
                self.bump();
                self.sync_to_separator();
            }
            self.skip_separators();
        }
        if !saw_end {
            self.error_here("PAR0006", "WHERES MAH KTHXBYE? PROGRAM MUST END WIF IT".into());
        }
        Some(Program { version, includes, body, funcs })
    }

    fn parse_func(&mut self) -> Option<FuncDef> {
        let start = self.peek().span;
        self.expect_phrase(&["HOW", "IZ", "I"], "");
        let name = self.expect_ident("FOR DA FUNKSHUN NAME")?;
        let mut params = Vec::new();
        if self.eat_phrase(&["YR"]) {
            if let Some(p) = self.expect_ident("FOR DA FIRST PARAMETER") {
                params.push(p);
            }
            while self.at_phrase(&["AN", "YR"]) {
                self.bump();
                self.bump();
                if let Some(p) = self.expect_ident("FOR A PARAMETER") {
                    params.push(p);
                }
            }
        }
        self.expect_separator("AFTER DA FUNKSHUN HEADER");
        let body = self.parse_block(&[&["IF", "U", "SAY", "SO"]]);
        self.expect_phrase(&["IF", "U", "SAY", "SO"], "TO END DA FUNKSHUN");
        let span = start.to(self.peek().span);
        self.expect_separator("AFTER IF U SAY SO");
        Some(FuncDef { name, params, body, span })
    }

    /// Parse statements until one of the stop phrases (not consumed) or
    /// EOF (reported as an error).
    fn parse_block(&mut self, stops: &[Phrase]) -> Block {
        let mut out = Vec::new();
        loop {
            self.skip_separators();
            if matches!(self.peek().kind, TokenKind::Eof) {
                self.error_here(
                    "PAR0007",
                    format!(
                        "I RAN OUT OF PROGRAM LOOKIN FOR {}",
                        stops.iter().map(|p| p.join(" ")).collect::<Vec<_>>().join(" OR ")
                    ),
                );
                return out;
            }
            if stops.iter().any(|p| self.at_phrase(p)) {
                return out;
            }
            let before = self.pos;
            if let Some(s) = self.parse_stmt() {
                out.push(s);
            } else if self.pos == before {
                // Error without progress: skip the offending token so we
                // cannot loop forever.
                self.bump();
                self.sync_to_separator();
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_stmt(&mut self) -> Option<Stmt> {
        if !self.enter() {
            return None;
        }
        let out = self.parse_stmt_inner();
        self.leave();
        out
    }

    fn parse_stmt_inner(&mut self) -> Option<Stmt> {
        let start = self.peek().span;

        // Declarations: I HAS A / WE HAS A.
        if self.at_phrase(&["I", "HAS", "A"]) || self.at_phrase(&["WE", "HAS", "A"]) {
            return self.parse_decl();
        }
        // VISIBLE.
        if self.at_phrase(&["VISIBLE"]) {
            self.bump();
            let mut args = Vec::new();
            while !self.at_separator() && !matches!(self.peek().kind, TokenKind::Bang) {
                // Optional AN between printed args.
                if self.at_phrase(&["AN"]) && !args.is_empty() {
                    self.bump();
                    continue;
                }
                args.push(self.parse_expr()?);
            }
            let newline = if matches!(self.peek().kind, TokenKind::Bang) {
                self.bump();
                false
            } else {
                true
            };
            let stmt = Stmt::new(StmtKind::Visible { args, newline }, start.to(self.peek().span));
            self.expect_separator("AFTER VISIBLE");
            return Some(stmt);
        }
        // GIMMEH.
        if self.at_phrase(&["GIMMEH"]) {
            self.bump();
            let lv = self.parse_lvalue()?;
            let stmt = Stmt::new(StmtKind::Gimmeh(lv), start.to(self.peek().span));
            self.expect_separator("AFTER GIMMEH");
            return Some(stmt);
        }
        // HUGZ — the collective barrier.
        if self.at_phrase(&["HUGZ"]) {
            self.bump();
            let stmt = Stmt::new(StmtKind::Hugz, start);
            self.expect_separator("AFTER HUGZ");
            return Some(stmt);
        }
        // Locks (Table II). Order matters: SRSLY variant first.
        if self.at_phrase(&["IM", "SRSLY", "MESIN", "WIF"]) {
            self.bump();
            self.bump();
            self.bump();
            self.bump();
            let v = self.parse_varref()?;
            let stmt = Stmt::new(StmtKind::LockAcquire(v), start.to(self.peek().span));
            self.expect_separator("AFTER IM SRSLY MESIN WIF");
            return Some(stmt);
        }
        if self.at_phrase(&["IM", "MESIN", "WIF"]) {
            self.bump();
            self.bump();
            self.bump();
            let v = self.parse_varref()?;
            let stmt = Stmt::new(StmtKind::LockTry(v), start.to(self.peek().span));
            self.expect_separator("AFTER IM MESIN WIF");
            return Some(stmt);
        }
        if self.at_phrase(&["DUN", "MESIN", "WIF"]) {
            self.bump();
            self.bump();
            self.bump();
            let v = self.parse_varref()?;
            let stmt = Stmt::new(StmtKind::LockRelease(v), start.to(self.peek().span));
            self.expect_separator("AFTER DUN MESIN WIF");
            return Some(stmt);
        }
        // TXT MAH BFF — thread predication.
        if self.at_phrase(&["TXT", "MAH", "BFF"]) {
            self.bump();
            self.bump();
            self.bump();
            let pe = self.parse_expr()?;
            if self.at_phrase(&["AN", "STUFF"]) {
                self.bump();
                self.bump();
                self.expect_separator("AFTER AN STUFF");
                let body = self.parse_block(&[&["TTYL"]]);
                self.expect_phrase(&["TTYL"], "TO END DA TXT BLOCK");
                let span = start.to(self.peek().span);
                self.expect_separator("AFTER TTYL");
                return Some(Stmt::new(StmtKind::TxtBlock { pe, body }, span));
            }
            // Single-statement form: `TXT MAH BFF k, stmt`.
            self.skip_separators();
            let inner = self.parse_stmt()?;
            if !is_simple_stmt(&inner.kind) {
                self.diags.push(Diagnostic::error(
                    "PAR0008",
                    "ONLY SIMPLE STATEMENTS CAN FOLLOW TXT MAH BFF — USE AN STUFF ... TTYL FOR BLOCKS".to_string(),
                    inner.span,
                ));
                return None;
            }
            let span = start.to(inner.span);
            return Some(Stmt::new(StmtKind::TxtStmt { pe, stmt: Box::new(inner) }, span));
        }
        // Loops.
        if self.at_phrase(&["IM", "IN", "YR"]) {
            return self.parse_loop();
        }
        // O RLY? conditional (on IT).
        if self.at_phrase(&["O", "RLY"]) {
            return self.parse_if();
        }
        // WTF? switch (on IT).
        if self.at_phrase(&["WTF"]) && matches!(self.peek_at(1).kind, TokenKind::Question) {
            return self.parse_switch();
        }
        // GTFO.
        if self.at_phrase(&["GTFO"]) {
            self.bump();
            let stmt = Stmt::new(StmtKind::Gtfo, start);
            self.expect_separator("AFTER GTFO");
            return Some(stmt);
        }
        // FOUND YR.
        if self.at_phrase(&["FOUND", "YR"]) {
            self.bump();
            self.bump();
            let e = self.parse_expr()?;
            let stmt = Stmt::new(StmtKind::FoundYr(e), start.to(self.peek().span));
            self.expect_separator("AFTER FOUND YR");
            return Some(stmt);
        }
        // Nested function definitions are top-level only.
        if self.at_phrase(&["HOW", "IZ", "I"]) {
            self.error_here("PAR0009", "FUNKSHUNS GO AT DA TOP LEVEL ONLY".into());
            self.sync_to_separator();
            return None;
        }

        // Everything else starts with an expression / lvalue:
        //   lv R expr            assignment
        //   lv IS NOW A type     re-cast
        //   expr                 expression statement (sets IT)
        let e = self.parse_expr()?;
        if self.at_phrase(&["R"]) {
            self.bump();
            let target = self.expr_to_lvalue(e)?;
            let value = self.parse_expr()?;
            let span = start.to(value.span);
            self.expect_separator("AFTER DA ASSIGNMENT");
            return Some(Stmt::new(StmtKind::Assign { target, value }, span));
        }
        if self.at_phrase(&["IS", "NOW", "A"]) {
            self.bump();
            self.bump();
            self.bump();
            let target = self.expr_to_lvalue(e)?;
            let ty = self.parse_type()?;
            let span = start.to(self.peek().span);
            self.expect_separator("AFTER IS NOW A");
            return Some(Stmt::new(StmtKind::IsNowA { target, ty }, span));
        }
        let span = e.span;
        self.expect_separator("AFTER DA EXPRESSION");
        Some(Stmt::new(StmtKind::ExprStmt(e), span))
    }

    fn parse_decl(&mut self) -> Option<Stmt> {
        let start = self.peek().span;
        let scope = if self.peek().is_word("WE") { DeclScope::We } else { DeclScope::I };
        self.bump(); // I | WE
        self.bump(); // HAS
        self.bump(); // A
        let name = self.expect_ident("FOR DA VARIABLE NAME")?;

        let mut ty: Option<LolType> = None;
        let mut srsly = false;
        let mut array_size: Option<Expr> = None;
        let mut init: Option<Expr> = None;
        let mut sharin = false;

        // Clause list: `ITZ ...` first, then `AN ...` separated clauses.
        // A leading `AN` is also tolerated (`I HAS A x AN IM SHARIN IT`).
        let mut first = true;
        loop {
            let has_clause = self.eat_phrase(&["AN"]) || (first && self.at_phrase(&["ITZ"]));
            if !has_clause {
                break;
            }
            first = false;
            if self.at_phrase(&["IM", "SHARIN", "IT"]) {
                self.bump();
                self.bump();
                self.bump();
                sharin = true;
                continue;
            }
            // All other clauses start with ITZ.
            if !self.eat_phrase(&["ITZ"]) {
                self.error_here(
                    "PAR0010",
                    "I EXPECTED ITZ ... OR IM SHARIN IT IN DIS DECLARASHUN".into(),
                );
                self.sync_to_separator();
                return None;
            }
            let clause_srsly = self.eat_phrase(&["SRSLY"]);
            srsly |= clause_srsly;
            if self.eat_phrase(&["LOTZ", "A"]) {
                // Array: LOTZ A <TYPE>S AN THAR IZ <size>.
                let ty_word = self.expect_ident("FOR DA ARRAY TYPE")?;
                match LolType::from_plural_keyword(ty_word.sym.as_str()) {
                    Some(t) => ty = Some(t),
                    None => {
                        self.diags.push(Diagnostic::error(
                            "PAR0011",
                            format!(
                                "\"{}\" IZ NOT A TYPE I KNOW (TRY NUMBRS, NUMBARS, YARNS, TROOFS)",
                                ty_word.sym
                            ),
                            ty_word.span,
                        ));
                        return None;
                    }
                }
                self.expect_phrase(&["AN", "THAR", "IZ"], "FOR DA ARRAY SIZE");
                array_size = Some(self.parse_expr()?);
            } else if self.eat_phrase(&["A"]) {
                ty = Some(self.parse_type()?);
            } else {
                // Plain initializer: ITZ <expr>.
                init = Some(self.parse_expr()?);
            }
        }

        let span = start.to(self.peek().span);
        let decl = Decl { scope, name, ty, srsly, array_size, init, sharin, span };
        self.expect_separator("AFTER DA DECLARASHUN");
        Some(Stmt::new(StmtKind::Declare(decl), span))
    }

    fn parse_loop(&mut self) -> Option<Stmt> {
        let start = self.peek().span;
        self.expect_phrase(&["IM", "IN", "YR"], "");
        let label = self.expect_ident("FOR DA LOOP LABEL")?;
        let mut update = None;
        if self.at_phrase(&["UPPIN", "YR"]) || self.at_phrase(&["NERFIN", "YR"]) {
            let dir = if self.peek().is_word("UPPIN") { LoopDir::Uppin } else { LoopDir::Nerfin };
            self.bump();
            self.bump();
            let var = self.expect_ident("FOR DA LOOP VARIABLE")?;
            update = Some((dir, var));
        }
        let mut guard = None;
        if self.at_phrase(&["TIL"]) || self.at_phrase(&["WILE"]) {
            let kind = if self.peek().is_word("TIL") { GuardKind::Til } else { GuardKind::Wile };
            self.bump();
            let e = self.parse_expr()?;
            guard = Some((kind, e));
        }
        self.expect_separator("AFTER DA LOOP HEADER");
        let body = self.parse_block(&[&["IM", "OUTTA", "YR"]]);
        self.expect_phrase(&["IM", "OUTTA", "YR"], "TO END DA LOOP");
        if let Some(end_label) = self.expect_ident("FOR DA CLOSIN LOOP LABEL") {
            if end_label.sym != label.sym {
                self.diags.push(
                    Diagnostic::error(
                        "PAR0012",
                        format!(
                            "LOOP LABEL MISMATCH: OPENED {} BUT CLOSED {}",
                            label.sym, end_label.sym
                        ),
                        end_label.span,
                    )
                    .with_note("IM OUTTA YR must name the innermost open loop"),
                );
            }
        }
        let span = start.to(self.peek().span);
        self.expect_separator("AFTER IM OUTTA YR");
        Some(Stmt::new(StmtKind::Loop(LoopStmt { label, update, guard, body }), span))
    }

    fn parse_if(&mut self) -> Option<Stmt> {
        let start = self.peek().span;
        self.expect_phrase(&["O", "RLY"], "");
        if matches!(self.peek().kind, TokenKind::Question) {
            self.bump();
        } else {
            self.error_here("PAR0013", "O RLY NEEDS ITS ? BACK".into());
        }
        self.expect_separator("AFTER O RLY?");
        self.skip_separators();
        // `YA RLY` is optional: the paper's own trylock listing
        // (Section V) jumps straight to `NO WAI`.
        let then_block = if self.eat_phrase(&["YA", "RLY"]) {
            self.expect_separator("AFTER YA RLY");
            self.parse_block(&[&["MEBBE"], &["NO", "WAI"], &["OIC"]])
        } else {
            Vec::new()
        };
        let mut mebbes = Vec::new();
        while self.at_phrase(&["MEBBE"]) {
            self.bump();
            let cond = self.parse_expr()?;
            self.expect_separator("AFTER MEBBE");
            let body = self.parse_block(&[&["MEBBE"], &["NO", "WAI"], &["OIC"]]);
            mebbes.push(MebbeArm { cond, body });
        }
        let else_block = if self.at_phrase(&["NO", "WAI"]) {
            self.bump();
            self.bump();
            self.expect_separator("AFTER NO WAI");
            Some(self.parse_block(&[&["OIC"]]))
        } else {
            None
        };
        self.expect_phrase(&["OIC"], "TO END DA O RLY?");
        let span = start.to(self.peek().span);
        self.expect_separator("AFTER OIC");
        Some(Stmt::new(StmtKind::If(IfStmt { then_block, mebbes, else_block }), span))
    }

    fn parse_switch(&mut self) -> Option<Stmt> {
        let start = self.peek().span;
        self.bump(); // WTF
        self.bump(); // ?
        self.expect_separator("AFTER WTF?");
        self.skip_separators();
        let mut arms = Vec::new();
        while self.at_phrase(&["OMG"]) && !self.at_phrase(&["OMGWTF"]) {
            self.bump();
            let value = self.parse_lit_token()?;
            self.expect_separator("AFTER OMG");
            let body = self.parse_block(&[&["OMG"], &["OMGWTF"], &["OIC"]]);
            arms.push(OmgArm { value, body });
        }
        let default = if self.at_phrase(&["OMGWTF"]) {
            self.bump();
            self.expect_separator("AFTER OMGWTF");
            Some(self.parse_block(&[&["OIC"]]))
        } else {
            None
        };
        self.expect_phrase(&["OIC"], "TO END DA WTF?");
        let span = start.to(self.peek().span);
        self.expect_separator("AFTER OIC");
        Some(Stmt::new(StmtKind::Switch(SwitchStmt { arms, default }), span))
    }

    /// A literal token for `OMG` arms (no general expressions per spec).
    fn parse_lit_token(&mut self) -> Option<Lit> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Numbr(n) => {
                self.bump();
                Some(Lit::Numbr(n))
            }
            TokenKind::Numbar(f) => {
                self.bump();
                Some(Lit::Numbar(f))
            }
            TokenKind::Yarn(parts) => {
                self.bump();
                Some(Lit::Yarn(parts))
            }
            TokenKind::Word(w) if w.as_str() == "WIN" => {
                self.bump();
                Some(Lit::Troof(true))
            }
            TokenKind::Word(w) if w.as_str() == "FAIL" => {
                self.bump();
                Some(Lit::Troof(false))
            }
            TokenKind::Word(w) if w.as_str() == "NOOB" => {
                self.bump();
                Some(Lit::Noob)
            }
            _ => {
                self.error_here("PAR0014", "OMG NEEDS A LITERAL VALUE".into());
                None
            }
        }
    }

    pub(crate) fn parse_type(&mut self) -> Option<LolType> {
        let id = self.expect_ident("FOR DA TYPE")?;
        match LolType::from_keyword(id.sym.as_str()) {
            Some(t) => Some(t),
            None => {
                self.diags.push(Diagnostic::error(
                    "PAR0015",
                    format!(
                        "\"{}\" IZ NOT A TYPE I KNOW (TRY NUMBR, NUMBAR, YARN, TROOF, NOOB)",
                        id.sym
                    ),
                    id.span,
                ));
                None
            }
        }
    }

    /// Reinterpret a parsed expression as an assignment target.
    fn expr_to_lvalue(&mut self, e: Expr) -> Option<LValue> {
        match e.kind {
            ExprKind::Var(v) => Some(LValue::Var(v)),
            ExprKind::Index { arr, idx } => Some(LValue::Index { arr, idx, span: e.span }),
            _ => {
                self.diags.push(Diagnostic::error(
                    "PAR0016",
                    "DIS IZ NOT SOMETHIN U CAN ASSIGN TO".to_string(),
                    e.span,
                ));
                None
            }
        }
    }
}

/// Statements allowed after single-statement `TXT MAH BFF expr,`.
fn is_simple_stmt(k: &StmtKind) -> bool {
    matches!(
        k,
        StmtKind::Assign { .. }
            | StmtKind::ExprStmt(_)
            | StmtKind::Visible { .. }
            | StmtKind::Gimmeh(_)
            | StmtKind::Declare(_)
            | StmtKind::LockAcquire(_)
            | StmtKind::LockTry(_)
            | StmtKind::LockRelease(_)
            | StmtKind::IsNowA { .. }
    )
}

#[cfg(test)]
mod tests;
