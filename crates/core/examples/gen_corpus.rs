//! Emit a parameterized corpus workload to stdout.
//!
//! Used by the CI bench-smoke job (and handy locally) to materialize
//! the generated corpus programs as `.lol` files:
//!
//! ```text
//! cargo run -p lol-core --example gen_corpus -- nbody 32 10 > corpus/nbody_32x10.lol
//! cargo run -p lol-core --example gen_corpus -- heat2d 24 48 150 > corpus/heat2d_bench.lol
//! ```

use lolcode::corpus;

fn usage() -> ! {
    eprintln!(
        "usage: gen_corpus nbody <particles> <steps>\n\
         \x20      gen_corpus heat2d <rows> <cols> <steps>\n\
         \x20      gen_corpus histogram <bins> <samples_per_pe>"
    );
    std::process::exit(2);
}

fn arg(args: &[String], i: usize) -> usize {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let src = match args.get(1).map(String::as_str) {
        Some("nbody") => corpus::nbody_source(arg(&args, 2), arg(&args, 3)),
        Some("heat2d") => corpus::heat2d_source(arg(&args, 2), arg(&args, 3), arg(&args, 4)),
        Some("histogram") => corpus::histogram_source(arg(&args, 2), arg(&args, 3)),
        _ => usage(),
    };
    print!("{src}");
}
