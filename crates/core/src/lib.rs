//! # lolcode — the parallel LOLCODE driver
//!
//! One-stop facade over the whole toolchain:
//!
//! ```text
//! source ──lex──▶ tokens ──parse──▶ AST ──sema──▶ Compiled artifact
//!      ├── InterpEngine (tree-walking interpreter, SPMD over lol-shmem)
//!      ├── VmEngine     (bytecode VM, SPMD over lol-shmem)
//!      ├── CEngine      (emit C + OpenSHMEM — the paper's lcc — then
//!      │                 cc + multi-PE SHMEM stub, run as a binary)
//!      └── SimEngine    (discrete-event simulation via lol-sim — no
//!                        threads, PE counts to ~1M)
//! ```
//!
//! Engines dispatch through the [`EngineRegistry`] ([`engine_for`]
//! consults the process-wide standard one), so every execution path —
//! including future backends — sits behind the same [`Engine`] trait.
//!
//! ## Compile once, run many
//!
//! The front end runs **once** per program ([`compile`] → [`Compiled`]);
//! executions are then cheap to repeat across PE counts, seeds, latency
//! models and backends via an [`Engine`], and each run returns a
//! structured [`RunReport`] — per-PE output, per-PE communication
//! statistics, wall-clock time and the effective config:
//!
//! ```
//! use lolcode::{compile, engine_for, Backend, RunConfig};
//!
//! let artifact = compile(
//!     "HAI 1.2\nVISIBLE \"HAI FROM PE \" ME\nKTHXBYE",
//! ).unwrap();
//!
//! // One artifact, many runs: sweep the PE count on the VM backend.
//! let engine = engine_for(Backend::Vm);
//! let sweep: Vec<RunConfig> = [1, 2, 4].into_iter().map(RunConfig::new).collect();
//! for report in engine.run_many(&artifact, &sweep) {
//!     let report = report.unwrap();
//!     assert_eq!(report.outputs.len(), report.config.n_pes);
//!     assert_eq!(report.stats.len(), report.config.n_pes); // per-PE CommStats
//! }
//!
//! // Same artifact, other backend — no re-parsing, no re-analysis.
//! let report = engine_for(Backend::Interp)
//!     .run(&artifact, &RunConfig::new(4))
//!     .unwrap();
//! assert_eq!(report.outputs[3], "HAI FROM PE 3\n");
//! ```
//!
//! ## Sweeps
//!
//! [`SweepSpec`] turns the run-many pattern into an orchestrated config
//! matrix: cartesian products over PE counts × seeds × latency models ×
//! backends, dispatched onto a bounded worker pool, aggregated into a
//! [`SweepReport`] with speedup/efficiency columns and dependency-free
//! JSON output:
//!
//! ```
//! use lolcode::{compile, SweepSpec};
//!
//! let artifact = compile("HAI 1.2\nVISIBLE ME\nKTHXBYE").unwrap();
//! let report = SweepSpec::new().pes([1, 2, 4]).run(&artifact);
//! assert!(report.all_ok());
//! println!("{}", report.speedup_table());
//! ```
//!
//! ## One-shot convenience
//!
//! [`run_source`] and [`compile_to_c`] remain as thin shims over the
//! artifact API for scripts and tests that run a program once:
//!
//! ```
//! use lolcode::{run_source, RunConfig};
//!
//! let outs = run_source(
//!     "HAI 1.2\nVISIBLE \"HAI FROM PE \" ME\nKTHXBYE",
//!     RunConfig::new(4),
//! ).unwrap();
//! assert_eq!(outs[3], "HAI FROM PE 3\n");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
mod engine;
pub mod service;
pub mod sweep;

pub use engine::{
    engine_for, registry, CEngine, Compiled, Engine, EngineRegistry, HotSpot, InterpEngine,
    PhaseTimings, ProfileReport, RunReport, SimEngine, SimStats, VmEngine,
};
pub use service::{QuotaViolation, Quotas};
pub use sweep::{
    config_key, config_weight, jsonl_record, parse_jsonl_done, SweepEntry, SweepReport, SweepSpec,
};

use lol_ast::{Program, SourceMap};
use lol_sema::Analysis;
pub use lol_shmem::{BarrierKind, CommStats, LatencyModel, LockKind, ShmemConfig, SpmdError};
pub use lol_trace::{ClockMode, CommMatrix, EventKind, PeTrace, Trace, TraceEvent, TraceSpec};
use std::time::Duration;

/// Which execution engine runs the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Tree-walking interpreter (full language, including `SRS`).
    #[default]
    Interp,
    /// Bytecode VM (compiled path; rejects `SRS`).
    Vm,
    /// Translate to C + OpenSHMEM (the paper's `lcc`), compile with the
    /// system C compiler against the bundled multi-PE stub, and run
    /// the binary. Unsupported (cleanly) on machines without a C
    /// compiler; ignores latency models.
    C,
    /// Discrete-event simulation of the whole SPMD job (`lol-sim`):
    /// no thread per PE — a bounded shard-worker pool
    /// ([`RunConfig::sim_jobs`]) — so PE counts scale to ~1M.
    /// Deterministic at every worker count; reports the simulated
    /// makespan as its wall time and always carries a virtual wall
    /// under [`ClockMode::Virtual`].
    Sim,
}

impl Backend {
    /// Every backend the standard registry ships, in display order.
    pub const ALL: [Backend; 4] = [Backend::Interp, Backend::Vm, Backend::C, Backend::Sim];
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Interp => "interp",
            Backend::Vm => "vm",
            Backend::C => "c",
            Backend::Sim => "sim",
        })
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "interp" => Ok(Backend::Interp),
            "vm" => Ok(Backend::Vm),
            "c" | "cc" | "lcc" => Ok(Backend::C),
            "sim" | "des" => Ok(Backend::Sim),
            other => Err(format!("O NOES! backend IZ interp, vm, c OR sim, NOT {other}")),
        }
    }
}

/// Everything needed to launch a program.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of processing elements (`MAH FRENZ`).
    pub n_pes: usize,
    /// Which execution engine runs the program.
    pub backend: Backend,
    /// Remote-access latency model (all three backends honor it).
    pub latency: LatencyModel,
    /// Barrier algorithm for `HUGZ` (ablation axis).
    pub barrier: BarrierKind,
    /// Lock algorithm for `IM MESIN WIF` (ablation axis).
    pub lock: LockKind,
    /// Base seed for the per-PE `WHATEVR` streams.
    pub seed: u64,
    /// Deadlock watchdog: how long the job may run before being
    /// declared wedged.
    pub timeout: Duration,
    /// `GIMMEH` input lines (every PE sees the same stream).
    pub input: Vec<String>,
    /// Words of symmetric heap per PE (in-process engines only; the C
    /// stub's segment is statically sized).
    pub heap_words: usize,
    /// Which clock the latency model charges against: busy-waited real
    /// time (default) or the deterministic virtual clock — see
    /// [`ClockMode`]. Under [`ClockMode::Virtual`] the report carries
    /// [`RunReport::virtual_wall`].
    pub clock: ClockMode,
    /// Record communication events; the report carries
    /// [`RunReport::trace`] when set.
    pub trace: bool,
    /// Optional *global* tracing budget (`<cap>@<stride>`): caps total
    /// buffered events across the job and samples every `stride`-th
    /// PE, so tracing survives mega-scale PE counts. `None` keeps the
    /// substrate's fixed per-PE capacity. Implies nothing unless
    /// [`RunConfig::trace`] is set.
    pub trace_spec: Option<TraceSpec>,
    /// Worker threads for the [`Backend::Sim`] scheduler: `0` (the
    /// default) picks the host's parallelism for big jobs, `1` forces
    /// the exact sequential scheduler, `N` forces `N` shards. Outputs
    /// are byte-identical at every setting; other backends ignore it.
    /// Deliberately *not* part of the serialized config identity
    /// ([`config_key`]/JSON) — it changes how fast a sim runs, never
    /// what it computes.
    pub sim_jobs: usize,
    /// Collect a bytecode execution profile ([`RunReport::profile`])
    /// on the VM backend: per-opcode counts and hot bytecode ranges.
    /// Like [`RunConfig::sim_jobs`], *not* part of the serialized
    /// config identity — profiling observes a run, it never changes
    /// what the run computes.
    pub profile: bool,
}

impl RunConfig {
    /// Defaults for `n_pes` processing elements.
    pub fn new(n_pes: usize) -> Self {
        RunConfig {
            n_pes,
            backend: Backend::Interp,
            latency: LatencyModel::Off,
            barrier: BarrierKind::Centralized,
            lock: LockKind::SpinCas,
            seed: 0xC47_F00D,
            timeout: Duration::from_secs(30),
            input: Vec::new(),
            heap_words: 1 << 16,
            clock: ClockMode::Wall,
            trace: false,
            trace_spec: None,
            sim_jobs: 0,
            profile: false,
        }
    }

    /// Change the PE count (handy when building sweeps from a base
    /// config: `(1..=8).map(|n| base.clone().pes(n))`).
    pub fn pes(mut self, n_pes: usize) -> Self {
        self.n_pes = n_pes;
        self
    }

    /// Select the execution backend.
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Set the RNG seed (per-PE streams derive from it).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Set the latency model.
    pub fn latency(mut self, m: LatencyModel) -> Self {
        self.latency = m;
        self
    }

    /// Set the barrier algorithm for `HUGZ`.
    pub fn barrier(mut self, b: BarrierKind) -> Self {
        self.barrier = b;
        self
    }

    /// Set the lock algorithm for `IM MESIN WIF`.
    pub fn lock(mut self, l: LockKind) -> Self {
        self.lock = l;
        self
    }

    /// Set the deadlock watchdog.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Provide `GIMMEH` input lines.
    pub fn input(mut self, lines: &[&str]) -> Self {
        self.input = lines.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Set the symmetric heap size (in 8-byte words).
    pub fn heap_words(mut self, words: usize) -> Self {
        self.heap_words = words;
        self
    }

    /// Select the clock the latency model charges against.
    pub fn clock(mut self, c: ClockMode) -> Self {
        self.clock = c;
        self
    }

    /// Enable (or disable) communication-event tracing.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Bound tracing with a global budget + PE sampling stride (see
    /// [`TraceSpec`]); also enables tracing.
    pub fn trace_spec(mut self, spec: TraceSpec) -> Self {
        self.trace = true;
        self.trace_spec = Some(spec);
        self
    }

    /// Set the simulator's worker-thread count (see
    /// [`RunConfig::sim_jobs`]).
    pub fn sim_jobs(mut self, jobs: usize) -> Self {
        self.sim_jobs = jobs;
        self
    }

    /// Enable (or disable) bytecode profiling (see
    /// [`RunConfig::profile`]).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Check the configuration before launching: PE count, heap size,
    /// latency-model parameters. Engines call this up front, so a bad
    /// config (e.g. a zero-width mesh) is a [`LolError::Config`]
    /// instead of a mid-run panic.
    pub fn validate(&self) -> Result<(), LolError> {
        self.shmem().validate().map_err(LolError::Config)
    }

    /// The substrate configuration this run config implies.
    pub fn shmem(&self) -> ShmemConfig {
        let mut cfg = ShmemConfig::new(self.n_pes)
            .heap_words(self.heap_words)
            .latency(self.latency)
            .barrier(self.barrier)
            .lock(self.lock)
            .seed(self.seed)
            .timeout(self.timeout)
            .clock(self.clock)
            .trace(self.trace)
            .sim_jobs(self.sim_jobs);
        if let Some(spec) = self.trace_spec {
            cfg = cfg.trace_capacity(spec.per_pe_cap(self.n_pes)).trace_stride(spec.stride);
        }
        cfg
    }
}

/// Anything that can go wrong in the pipeline, with rendered
/// LOLCODE-flavoured messages.
#[derive(Debug, Clone)]
pub enum LolError {
    /// Lex/parse errors (rendered with source excerpts).
    Parse(String),
    /// Semantic errors (rendered with source excerpts).
    Sema(String),
    /// Backend compilation errors (e.g. `SRS` under the VM).
    Compile(String),
    /// Invalid run configuration (e.g. a zero-width mesh latency
    /// model), rejected before any PE launches.
    Config(String),
    /// The selected engine cannot run this config on this machine at
    /// all (e.g. the C backend without a C compiler, or with a latency
    /// model it has no way to simulate). Distinct from a failure: sweep
    /// reports render it as skipped-with-reason, and equivalence tests
    /// skip instead of failing.
    Unsupported(String),
    /// The config was deliberately not run — e.g. a resumed sweep
    /// (`lolrun --sweep --resume prev.jsonl`) found it already
    /// completed in a previous run. Never a failure.
    Skipped(String),
    /// A PE failed at runtime.
    Runtime(SpmdError),
}

impl std::fmt::Display for LolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LolError::Parse(s) => write!(f, "{s}"),
            LolError::Sema(s) => write!(f, "{s}"),
            LolError::Compile(s) => write!(f, "{s}"),
            LolError::Config(s) => write!(f, "{s}"),
            LolError::Unsupported(s) => write!(f, "{s}"),
            LolError::Skipped(s) => write!(f, "{s}"),
            LolError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl LolError {
    /// Is this "this engine can't run that here" rather than a real
    /// failure? Sweeps and tests use this to degrade instead of die.
    pub fn is_unsupported(&self) -> bool {
        matches!(self, LolError::Unsupported(_))
    }

    /// Was this config deliberately skipped (resume) rather than run?
    pub fn is_skipped(&self) -> bool {
        matches!(self, LolError::Skipped(_))
    }
}

impl std::error::Error for LolError {}

/// Parse source into an AST (rendered diagnostics on failure).
pub fn parse_program(src: &str) -> Result<Program, LolError> {
    let out = lol_parser::parse(src);
    if out.diags.has_errors() {
        let sm = SourceMap::new(src);
        return Err(LolError::Parse(out.diags.render_all(&sm)));
    }
    Ok(out.program.expect("program present when no errors"))
}

/// Parse + semantic analysis. Warnings are returned alongside.
pub fn check(src: &str) -> Result<(Program, Analysis, Vec<String>), LolError> {
    let program = parse_program(src)?;
    let analysis = lol_sema::analyze(&program);
    let sm = SourceMap::new(src);
    if analysis.diags.has_errors() {
        return Err(LolError::Sema(analysis.diags.render_all(&sm)));
    }
    let warnings = analysis.diags.iter().map(|d| d.render(&sm)).collect();
    Ok((program, analysis, warnings))
}

/// Run the front end once, producing a reusable [`Compiled`] artifact.
///
/// Equivalent to [`Compiled::new`]; this free function reads better at
/// call sites: `compile(src)?`.
pub fn compile(src: &str) -> Result<Compiled, LolError> {
    Compiled::new(src)
}

/// Parse, analyze and execute `src` SPMD; returns per-PE `VISIBLE`
/// output in PE order.
///
/// One-shot shim over the artifact API: compiles, runs once on the
/// engine `cfg.backend` selects, and discards everything but the
/// outputs. Use [`compile`] + [`Engine::run`] to keep the artifact
/// (for repeated runs) and the full [`RunReport`] (for stats/timing).
pub fn run_source(src: &str, cfg: RunConfig) -> Result<Vec<String>, LolError> {
    let artifact = compile(src)?;
    let report = engine_for(cfg.backend).run(&artifact, &cfg)?;
    Ok(report.outputs)
}

/// Parse, analyze and translate `src` to C + OpenSHMEM (the paper's
/// `lcc` output). Shim over [`compile`] + [`Compiled::emit_c`].
pub fn compile_to_c(src: &str) -> Result<String, LolError> {
    compile(src)?.emit_c()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_hello() {
        let outs = run_source("HAI 1.2\nVISIBLE \"HAI\"\nKTHXBYE", RunConfig::new(2)).unwrap();
        assert_eq!(outs, vec!["HAI\n", "HAI\n"]);
    }

    #[test]
    fn pipeline_vm_backend() {
        let outs = run_source(
            "HAI 1.2\nVISIBLE SUM OF ME AN 1\nKTHXBYE",
            RunConfig::new(3).backend(Backend::Vm),
        )
        .unwrap();
        assert_eq!(outs, vec!["1\n", "2\n", "3\n"]);
    }

    #[test]
    fn parse_error_is_rendered() {
        let e = run_source("HAI 1.2\nVISIBLE", RunConfig::new(1)).unwrap_err();
        match e {
            LolError::Parse(msg) => assert!(msg.contains("O NOES!")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sema_error_is_rendered() {
        let e = run_source("HAI 1.2\nghost R 1\nKTHXBYE", RunConfig::new(1)).unwrap_err();
        match e {
            LolError::Sema(msg) => assert!(msg.contains("SEM0001"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn vm_rejects_srs_with_compile_error() {
        let e = run_source(
            "HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE",
            RunConfig::new(1).backend(Backend::Vm),
        )
        .unwrap_err();
        match e {
            LolError::Compile(msg) => assert!(msg.contains("VMC0001"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn runtime_error_carries_pe() {
        let e = run_source(
            "HAI 1.2\nBOTH SAEM ME AN 1, O RLY?\nYA RLY\nVISIBLE QUOSHUNT OF 1 AN 0\nOIC\nKTHXBYE",
            RunConfig::new(2).timeout(Duration::from_secs(5)),
        )
        .unwrap_err();
        match e {
            LolError::Runtime(se) => {
                assert_eq!(se.pe, 1);
                assert!(se.message.contains("RUN0001"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warnings_are_surfaced() {
        let (_, _, warnings) = check("HAI 1.2\nWIN, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE").unwrap();
        assert!(warnings.iter().any(|w| w.contains("SEM0012")), "{warnings:?}");
    }

    #[test]
    fn compiled_artifact_surfaces_warnings_too() {
        let artifact = compile("HAI 1.2\nWIN, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE").unwrap();
        assert!(artifact.warnings().iter().any(|w| w.contains("SEM0012")));
    }

    #[test]
    fn compile_to_c_produces_shmem_code() {
        let c = compile_to_c("HAI 1.2\nHUGZ\nVISIBLE ME\nKTHXBYE").unwrap();
        assert!(c.contains("shmem_barrier_all();"));
        assert!(c.contains("shmem_my_pe()"));
    }

    #[test]
    fn gimmeh_input_plumbs_through() {
        let outs = run_source(
            "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE",
            RunConfig::new(2).input(&["CHEEZ"]),
        )
        .unwrap();
        assert_eq!(outs, vec!["CHEEZ\n", "CHEEZ\n"]);
    }

    #[test]
    fn both_backends_agree_on_corpus_hello() {
        for prog in [corpus::HELLO_PARALLEL, corpus::RING_EXAMPLE, corpus::BARRIER_EXAMPLE] {
            let a = run_source(prog, RunConfig::new(4).seed(3)).unwrap();
            let b = run_source(prog, RunConfig::new(4).seed(3).backend(Backend::Vm)).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn run_config_sweep_builder() {
        let base = RunConfig::new(1).seed(42).timeout(Duration::from_secs(5));
        let sweep: Vec<RunConfig> = (1..=3).map(|n| base.clone().pes(n)).collect();
        assert_eq!(sweep.iter().map(|c| c.n_pes).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(sweep.iter().all(|c| c.seed == 42));
    }
}
