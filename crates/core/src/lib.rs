//! # lolcode — the parallel LOLCODE driver
//!
//! One-stop facade over the whole toolchain:
//!
//! ```text
//! source ──lex──▶ tokens ──parse──▶ AST ──sema──▶ analysis
//!      ├── run (tree-walking interpreter, SPMD over lol-shmem)
//!      ├── run (bytecode VM, SPMD over lol-shmem)
//!      └── emit C + OpenSHMEM (the paper's lcc output)
//! ```
//!
//! ```
//! use lolcode::{run_source, RunConfig, Backend};
//!
//! let outs = run_source(
//!     "HAI 1.2\nVISIBLE \"HAI FROM PE \" ME\nKTHXBYE",
//!     RunConfig::new(4),
//! ).unwrap();
//! assert_eq!(outs[3], "HAI FROM PE 3\n");
//! ```

#![forbid(unsafe_code)]

pub mod corpus;

use lol_ast::{Program, SourceMap};
use lol_sema::Analysis;
pub use lol_shmem::{BarrierKind, LatencyModel, LockKind, ShmemConfig, SpmdError};
use std::time::Duration;

/// Which execution engine runs the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// Tree-walking interpreter (full language, including `SRS`).
    #[default]
    Interp,
    /// Bytecode VM (compiled path; rejects `SRS`).
    Vm,
}

/// Everything needed to launch a program.
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub n_pes: usize,
    pub backend: Backend,
    pub latency: LatencyModel,
    pub barrier: BarrierKind,
    pub lock: LockKind,
    pub seed: u64,
    pub timeout: Duration,
    /// `GIMMEH` input lines (every PE sees the same stream).
    pub input: Vec<String>,
    pub heap_words: usize,
}

impl RunConfig {
    /// Defaults for `n_pes` processing elements.
    pub fn new(n_pes: usize) -> Self {
        RunConfig {
            n_pes,
            backend: Backend::Interp,
            latency: LatencyModel::Off,
            barrier: BarrierKind::Centralized,
            lock: LockKind::SpinCas,
            seed: 0xC47_F00D,
            timeout: Duration::from_secs(30),
            input: Vec::new(),
            heap_words: 1 << 16,
        }
    }

    /// Select the execution backend.
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Set the RNG seed (per-PE streams derive from it).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Set the latency model.
    pub fn latency(mut self, m: LatencyModel) -> Self {
        self.latency = m;
        self
    }

    /// Set the deadlock watchdog.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Provide `GIMMEH` input lines.
    pub fn input(mut self, lines: &[&str]) -> Self {
        self.input = lines.iter().map(|s| s.to_string()).collect();
        self
    }

    fn shmem(&self) -> ShmemConfig {
        ShmemConfig::new(self.n_pes)
            .heap_words(self.heap_words)
            .latency(self.latency)
            .barrier(self.barrier)
            .lock(self.lock)
            .seed(self.seed)
            .timeout(self.timeout)
    }
}

/// Anything that can go wrong in the pipeline, with rendered
/// LOLCODE-flavoured messages.
#[derive(Debug, Clone)]
pub enum LolError {
    /// Lex/parse errors (rendered with source excerpts).
    Parse(String),
    /// Semantic errors (rendered with source excerpts).
    Sema(String),
    /// Backend compilation errors (e.g. `SRS` under the VM).
    Compile(String),
    /// A PE failed at runtime.
    Runtime(SpmdError),
}

impl std::fmt::Display for LolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LolError::Parse(s) => write!(f, "{s}"),
            LolError::Sema(s) => write!(f, "{s}"),
            LolError::Compile(s) => write!(f, "{s}"),
            LolError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LolError {}

/// Parse source into an AST (rendered diagnostics on failure).
pub fn parse_program(src: &str) -> Result<Program, LolError> {
    let out = lol_parser::parse(src);
    if out.diags.has_errors() {
        let sm = SourceMap::new(src);
        return Err(LolError::Parse(out.diags.render_all(&sm)));
    }
    Ok(out.program.expect("program present when no errors"))
}

/// Parse + semantic analysis. Warnings are returned alongside.
pub fn check(src: &str) -> Result<(Program, Analysis, Vec<String>), LolError> {
    let program = parse_program(src)?;
    let analysis = lol_sema::analyze(&program);
    let sm = SourceMap::new(src);
    if analysis.diags.has_errors() {
        return Err(LolError::Sema(analysis.diags.render_all(&sm)));
    }
    let warnings = analysis.diags.iter().map(|d| d.render(&sm)).collect();
    Ok((program, analysis, warnings))
}

/// Parse, analyze and execute `src` SPMD; returns per-PE `VISIBLE`
/// output in PE order.
pub fn run_source(src: &str, cfg: RunConfig) -> Result<Vec<String>, LolError> {
    let (program, analysis, _warnings) = check(src)?;
    match cfg.backend {
        Backend::Interp => {
            lol_interp::run_parallel_with_input(&program, &analysis, cfg.shmem(), &cfg.input)
                .map_err(LolError::Runtime)
        }
        Backend::Vm => {
            let module = lol_vm::compile(&program, &analysis)
                .map_err(|d| LolError::Compile(d.render(&SourceMap::new(src))))?;
            lol_vm::run_parallel_with_input(&module, cfg.shmem(), &cfg.input)
                .map_err(LolError::Runtime)
        }
    }
}

/// Parse, analyze and translate `src` to C + OpenSHMEM (the paper's
/// `lcc` output).
pub fn compile_to_c(src: &str) -> Result<String, LolError> {
    let (program, analysis, _warnings) = check(src)?;
    lol_c_codegen::emit_c(&program, &analysis)
        .map_err(|d| LolError::Compile(d.render(&SourceMap::new(src))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_hello() {
        let outs =
            run_source("HAI 1.2\nVISIBLE \"HAI\"\nKTHXBYE", RunConfig::new(2)).unwrap();
        assert_eq!(outs, vec!["HAI\n", "HAI\n"]);
    }

    #[test]
    fn pipeline_vm_backend() {
        let outs = run_source(
            "HAI 1.2\nVISIBLE SUM OF ME AN 1\nKTHXBYE",
            RunConfig::new(3).backend(Backend::Vm),
        )
        .unwrap();
        assert_eq!(outs, vec!["1\n", "2\n", "3\n"]);
    }

    #[test]
    fn parse_error_is_rendered() {
        let e = run_source("HAI 1.2\nVISIBLE", RunConfig::new(1)).unwrap_err();
        match e {
            LolError::Parse(msg) => assert!(msg.contains("O NOES!")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sema_error_is_rendered() {
        let e = run_source("HAI 1.2\nghost R 1\nKTHXBYE", RunConfig::new(1)).unwrap_err();
        match e {
            LolError::Sema(msg) => assert!(msg.contains("SEM0001"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn vm_rejects_srs_with_compile_error() {
        let e = run_source(
            "HAI 1.2\nI HAS A x ITZ 1\nVISIBLE SRS \"x\"\nKTHXBYE",
            RunConfig::new(1).backend(Backend::Vm),
        )
        .unwrap_err();
        match e {
            LolError::Compile(msg) => assert!(msg.contains("VMC0001"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn runtime_error_carries_pe() {
        let e = run_source(
            "HAI 1.2\nBOTH SAEM ME AN 1, O RLY?\nYA RLY\nVISIBLE QUOSHUNT OF 1 AN 0\nOIC\nKTHXBYE",
            RunConfig::new(2).timeout(Duration::from_secs(5)),
        )
        .unwrap_err();
        match e {
            LolError::Runtime(se) => {
                assert_eq!(se.pe, 1);
                assert!(se.message.contains("RUN0001"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warnings_are_surfaced() {
        let (_, _, warnings) =
            check("HAI 1.2\nWIN, O RLY?\nYA RLY\nHUGZ\nOIC\nKTHXBYE").unwrap();
        assert!(warnings.iter().any(|w| w.contains("SEM0012")), "{warnings:?}");
    }

    #[test]
    fn compile_to_c_produces_shmem_code() {
        let c = compile_to_c("HAI 1.2\nHUGZ\nVISIBLE ME\nKTHXBYE").unwrap();
        assert!(c.contains("shmem_barrier_all();"));
        assert!(c.contains("shmem_my_pe()"));
    }

    #[test]
    fn gimmeh_input_plumbs_through() {
        let outs = run_source(
            "HAI 1.2\nI HAS A x\nGIMMEH x\nVISIBLE x\nKTHXBYE",
            RunConfig::new(2).input(&["CHEEZ"]),
        )
        .unwrap();
        assert_eq!(outs, vec!["CHEEZ\n", "CHEEZ\n"]);
    }

    #[test]
    fn both_backends_agree_on_corpus_hello() {
        for prog in [corpus::HELLO_PARALLEL, corpus::RING_EXAMPLE, corpus::BARRIER_EXAMPLE] {
            let a = run_source(prog, RunConfig::new(4).seed(3)).unwrap();
            let b = run_source(prog, RunConfig::new(4).seed(3).backend(Backend::Vm)).unwrap();
            assert_eq!(a, b);
        }
    }
}
