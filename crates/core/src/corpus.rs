//! The paper's example programs, embedded as a corpus.
//!
//! Sources are transcribed from the paper (Sections V and VI) with the
//! `...` continuations resolved; where the paper's prose and listings
//! disagree, DESIGN.md §3 records which reading is encoded here.

/// A minimal parallel hello world (not in the paper, but the obvious
/// first program: Section VI.D opens with exactly this `VISIBLE`).
pub const HELLO_PARALLEL: &str = "\
HAI 1.2
VISIBLE \"HAI ITZ \" ME \" OF \" MAH FRENZ
KTHXBYE
";

/// Section VI.A — initialization, symmetric allocation, and the
/// circular whole-array transfer.
pub const RING_EXAMPLE: &str = "\
HAI 1.2
BTW Section VI.A: identify PEs, allocate symmetric array, circular copy
I HAS A pe ITZ A NUMBR AN ITZ ME
I HAS A n_pes ITZ A NUMBR AN ITZ MAH FRENZ
WE HAS A array ITZ SRSLY LOTZ A NUMBRS ...
  AN THAR IZ 32
I HAS A next_pe ITZ A NUMBR ...
  AN ITZ SUM OF pe AN 1
next_pe R MOD OF next_pe AN n_pes
IM IN YR fill UPPIN YR i TIL BOTH SAEM i AN 32
  array'Z i R SUM OF PRODUKT OF pe AN 1000 AN i
IM OUTTA YR fill
HUGZ
I HAS A mine ITZ SRSLY LOTZ A NUMBRS AN THAR IZ 32
TXT MAH BFF next_pe, MAH mine R UR array
VISIBLE \"PE \" pe \" GOT \" mine'Z 0 \" .. \" mine'Z 31
KTHXBYE
";

/// Section VI.B — locks on shared data (the faithful remote-increment
/// reading; see DESIGN.md §3.1).
pub const LOCKS_EXAMPLE: &str = "\
HAI 1.2
BTW Section VI.B: protect shared data wif da implicit lock
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
HUGZ
I HAS A k ITZ 0
TXT MAH BFF k AN STUFF
  IM SRSLY MESIN WIF UR x
  UR x R SUM OF UR x AN 1
  DUN MESIN WIF UR x
TTYL
HUGZ
VISIBLE \"PE \" ME \" SEES X = \" x
KTHXBYE
";

/// Section VI.C / Figure 2 — barriers and symmetric data movement.
pub const BARRIER_EXAMPLE: &str = "\
HAI 1.2
BTW Section VI.C: UR b R MAH a, HUGZ, c R SUM OF a AN b
WE HAS A a ITZ SRSLY A NUMBR
WE HAS A b ITZ SRSLY A NUMBR
WE HAS A c ITZ SRSLY A NUMBR
a R SUM OF ME AN 1
HUGZ
I HAS A k ITZ MOD OF SUM OF ME AN 1 AN MAH FRENZ
TXT MAH BFF k, UR b R MAH a
HUGZ
c R SUM OF a AN b
VISIBLE \"PE \" ME \":: C = \" c
KTHXBYE
";

/// Section V — the trylock-then-lock pattern (with the Table II
/// reading of SRSLY vs non-SRSLY; DESIGN.md §3).
pub const TRYLOCK_EXAMPLE: &str = "\
HAI 1.2
WE HAS A x ITZ A NUMBR AN IM SHARIN IT
I HAS A new_value ITZ 42
IM MESIN WIF x, O RLY?
NO WAI,
  IM SRSLY MESIN WIF x
OIC
x R new_value
DUN MESIN WIF x
VISIBLE \"PE \" ME \" WROTE \" x
KTHXBYE
";

/// Build the Section VI.D 2D n-body program for `particles` particles
/// per PE and `steps` timesteps. `nbody_source(32, 10)` is the paper's
/// configuration.
pub fn nbody_source(particles: usize, steps: usize) -> String {
    format!(
        "\
HAI 1.2
OBTW
* 2D N-Body algorithm: propagate particles
* subject to Newtonian dynamics written in
* LOLCODE with parallel and other extensions.
TLDR

I HAS A little_time ITZ SRSLY A NUMBAR ...
  AN ITZ 0.001

I HAS A x ITZ SRSLY A NUMBAR
I HAS A y ITZ SRSLY A NUMBAR
I HAS A vx ITZ SRSLY A NUMBAR
I HAS A vy ITZ SRSLY A NUMBAR
I HAS A ax ITZ SRSLY A NUMBAR
I HAS A ay ITZ SRSLY A NUMBAR
I HAS A dx ITZ SRSLY A NUMBAR
I HAS A dy ITZ SRSLY A NUMBAR
I HAS A inv_d ITZ SRSLY A NUMBAR
I HAS A f ITZ SRSLY A NUMBAR

I HAS A vel_x ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ {n}
I HAS A vel_y ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ {n}
I HAS A tmppos_x ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ {n}
I HAS A tmppos_y ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ {n}

WE HAS A pos_x ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ {n} AN IM SHARIN IT
WE HAS A pos_y ITZ SRSLY LOTZ A NUMBARS ...
  AN THAR IZ {n} AN IM SHARIN IT

VISIBLE \"HAI ITZ \" ME \" I HAS PARTICLZ 2 MUV\"

HUGZ

IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN {n}
  pos_x'Z i R SUM OF ME AN WHATEVAR
  pos_y'Z i R SUM OF ME AN WHATEVAR
  vel_x'Z i R QUOSHUNT OF SUM OF ME ...
    AN WHATEVAR AN 1000
  vel_y'Z i R QUOSHUNT OF SUM OF ME ...
    AN WHATEVAR AN 1000
IM OUTTA YR loop

BTW DEVIATION FROM DA PAPER (DESIGN.md section 3): da original listing
BTW has no barrier here, so a fast PE can read a slow PE's pos_x/pos_y
BTW before dey iz initialized — a real data race in da published code.
HUGZ

IM IN YR loop UPPIN YR time TIL BOTH SAEM ...
  time AN {steps}

  IM IN YR loop UPPIN YR i TIL BOTH SAEM ...
    i AN {n}
    x R pos_x'Z i
    y R pos_y'Z i
    vx R vel_x'Z i
    vy R vel_y'Z i
    ax R 0
    ay R 0
    IM IN YR loop UPPIN YR j TIL ...
      BOTH SAEM j AN {n}
      DIFFRINT i AN j, O RLY?
      YA RLY,
        dx R DIFF OF pos_x'Z i AN pos_x'Z j
        dy R DIFF OF pos_y'Z i AN pos_y'Z j
        dx R PRODUKT OF dx AN dx
        dy R PRODUKT OF dy AN dy
        inv_d R FLIP OF UNSQUAR OF ...
          SUM OF dx AN dy
        f R PRODUKT OF inv_d AN ...
          SQUAR OF inv_d
        ax R SUM OF ax AN PRODUKT OF dx AN f
        ay R SUM OF ay AN PRODUKT OF dy AN f
      OIC
    IM OUTTA YR loop

    IM IN YR loop UPPIN YR k TIL ...
      BOTH SAEM k AN MAH FRENZ
      DIFFRINT k AN ME, O RLY?
        YA RLY,
          IM IN YR loop UPPIN YR j TIL ...
            BOTH SAEM j AN {n}
            TXT MAH BFF k AN STUFF,
              dx R DIFF OF pos_x'Z i AN ...
                UR pos_x'Z j
              dy R DIFF OF pos_y'Z i AN ...
                UR pos_y'Z j
            TTYL
            dx R PRODUKT OF dx AN dx
            dy R PRODUKT OF dy AN dy
            inv_d R FLIP OF UNSQUAR OF ...
              SUM OF dx AN dy
            f R PRODUKT OF inv_d AN ...
              SQUAR OF inv_d
            ax R SUM OF ax AN PRODUKT OF ...
              dx AN f
            ay R SUM OF ay AN PRODUKT OF ...
              dy AN f
          IM OUTTA YR loop
      OIC
    IM OUTTA YR loop

    x R SUM OF x AN SUM OF PRODUKT OF vx ...
      AN little_time AN PRODUKT OF 0.5 ...
      AN PRODUKT OF ax AN SQUAR OF ...
      little_time
    y R SUM OF y AN SUM OF PRODUKT OF vy ...
      AN little_time AN PRODUKT OF 0.5 ...
      AN PRODUKT OF ay AN SQUAR OF ...
      little_time

    vx R SUM OF vx AN PRODUKT OF ax AN ...
      little_time
    vy R SUM OF vy AN PRODUKT OF ay AN ...
      little_time

    tmppos_x'Z i R x
    tmppos_y'Z i R y
    vel_x'Z i R vx
    vel_y'Z i R vy
  IM OUTTA YR loop

  HUGZ

  IM IN YR loop UPPIN YR i TIL BOTH SAEM ...
    i AN {n}
    pos_x'Z i R tmppos_x'Z i
    pos_y'Z i R tmppos_y'Z i
  IM OUTTA YR loop

  HUGZ

IM OUTTA YR loop
VISIBLE \"O HAI ITZ \" ME \", MAH PARTICLZ IZ::\"
IM IN YR loop UPPIN YR i TIL BOTH SAEM i AN {n}
  VISIBLE pos_x'Z i \" \" pos_y'Z i
IM OUTTA YR loop

KTHXBYE
",
        n = particles,
        steps = steps
    )
}

/// The paper's exact Section VI.D configuration: 32 particles per PE,
/// 10 timesteps.
pub fn nbody_paper() -> String {
    nbody_source(32, 10)
}

/// Build a 2-D heat-diffusion stencil (not in the paper; the canonical
/// locality-sensitive PDC workload). The plate is distributed by row
/// blocks: each PE owns `rows` rows of `cols` cells, exchanges one halo
/// row with each neighbouring PE per step (nearest-neighbour traffic —
/// exactly what the mesh/torus latency models reward), applies the
/// insulated 5-point stencil, and reports its block's total heat.
///
/// PE 0 injects 100.0 units of heat into one cell before the first
/// step, so total heat across all PEs is conserved at 100 (mod YARN
/// print rounding).
pub fn heat2d_source(rows: usize, cols: usize, steps: usize) -> String {
    assert!(rows >= 1 && cols >= 2, "heat2d needs at least a 1x2 block per PE");
    format!(
        "\
HAI 1.2
BTW 2-D heat: row-block distribution, halo rows, 5-point stencil
WE HAS A u ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {cells}
I HAS A unew ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {cells}
I HAS A hup ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {cols}
I HAS A hdn ITZ SRSLY LOTZ A NUMBARS AN THAR IZ {cols}
I HAS A here ITZ SRSLY A NUMBAR
I HAS A nn ITZ SRSLY A NUMBAR
I HAS A ss ITZ SRSLY A NUMBAR
I HAS A ww ITZ SRSLY A NUMBAR
I HAS A ee ITZ SRSLY A NUMBAR
I HAS A idx ITZ SRSLY A NUMBR
I HAS A last ITZ A NUMBR AN ITZ DIFF OF MAH FRENZ AN 1

BTW PE 0 injects da heat in da middle of its block
BOTH SAEM ME AN 0, O RLY?
YA RLY
  u'Z {hot} R 100.0
OIC
HUGZ

IM IN YR time UPPIN YR t TIL BOTH SAEM t AN {steps}
  BTW phase 1: halo rows (insulated plate: default to own edge row)
  IM IN YR halo UPPIN YR j TIL BOTH SAEM j AN {cols}
    hup'Z j R u'Z j
    hdn'Z j R u'Z SUM OF {lastrow} AN j
  IM OUTTA YR halo
  BIGGER ME AN 0, O RLY?
  YA RLY
    IM IN YR getup UPPIN YR j TIL BOTH SAEM j AN {cols}
      TXT MAH BFF DIFF OF ME AN 1, hup'Z j R UR u'Z SUM OF {lastrow} AN j
    IM OUTTA YR getup
  OIC
  SMALLR ME AN last, O RLY?
  YA RLY
    IM IN YR getdn UPPIN YR j TIL BOTH SAEM j AN {cols}
      TXT MAH BFF SUM OF ME AN 1, hdn'Z j R UR u'Z j
    IM OUTTA YR getdn
  OIC
  HUGZ

  BTW phase 2: insulated 5-point stencil into unew
  IM IN YR rows UPPIN YR r TIL BOTH SAEM r AN {rows}
    IM IN YR colz UPPIN YR cc TIL BOTH SAEM cc AN {cols}
      idx R SUM OF PRODUKT OF r AN {cols} AN cc
      here R u'Z idx
      BOTH SAEM r AN 0, O RLY?
      YA RLY
        nn R hup'Z cc
      NO WAI
        nn R u'Z DIFF OF idx AN {cols}
      OIC
      BOTH SAEM r AN {lastr}, O RLY?
      YA RLY
        ss R hdn'Z cc
      NO WAI
        ss R u'Z SUM OF idx AN {cols}
      OIC
      BOTH SAEM cc AN 0, O RLY?
      YA RLY
        ww R here
      NO WAI
        ww R u'Z DIFF OF idx AN 1
      OIC
      BOTH SAEM cc AN {lastc}, O RLY?
      YA RLY
        ee R here
      NO WAI
        ee R u'Z SUM OF idx AN 1
      OIC
      unew'Z idx R SUM OF here AN PRODUKT OF 0.125 ...
        AN SUM OF SUM OF DIFF OF nn AN here AN DIFF OF ss AN here ...
        AN SUM OF DIFF OF ww AN here AN DIFF OF ee AN here
    IM OUTTA YR colz
  IM OUTTA YR rows

  BTW phase 3: publish unew, den hug
  IM IN YR copy UPPIN YR i TIL BOTH SAEM i AN {cells}
    u'Z i R unew'Z i
  IM OUTTA YR copy
  HUGZ
IM OUTTA YR time

I HAS A heat ITZ SRSLY A NUMBAR AN ITZ 0.0
IM IN YR tally UPPIN YR i TIL BOTH SAEM i AN {cells}
  heat R SUM OF heat AN u'Z i
IM OUTTA YR tally
VISIBLE \"PE \" ME \" HEAT \" heat
KTHXBYE
",
        cells = rows * cols,
        cols = cols,
        rows = rows,
        lastrow = (rows - 1) * cols,
        lastr = rows - 1,
        lastc = cols - 1,
        hot = (rows / 2) * cols + cols / 2,
        steps = steps,
    )
}

/// Build a parallel histogram (not in the paper; the canonical
/// irregular-communication PDC workload). Each PE draws
/// `samples_per_pe` seeded `WHATEVR` values, bins them into its own
/// instance of a shared `LOTZ`, hugs, then all-gathers every PE's bins
/// with remote reads to form the global histogram — so the gather phase
/// does `(P-1) * bins` remote gets per PE, a sweep-visible all-to-all.
///
/// Every PE prints the same global bin counts plus the total
/// (`P * samples_per_pe`), making the output an easy determinism and
/// backend-equivalence oracle.
pub fn histogram_source(bins: usize, samples_per_pe: usize) -> String {
    assert!(bins >= 2, "histogram needs at least 2 bins");
    format!(
        "\
HAI 1.2
BTW parallel histogram: local binning, HUGZ, all-gather reduction
WE HAS A bins ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {bins} AN IM SHARIN IT
I HAS A total ITZ SRSLY LOTZ A NUMBRS AN THAR IZ {bins}
I HAS A b ITZ SRSLY A NUMBR

IM IN YR draw UPPIN YR i TIL BOTH SAEM i AN {samples}
  b R MOD OF WHATEVR AN {bins}
  bins'Z b R SUM OF bins'Z b AN 1
IM OUTTA YR draw
HUGZ

IM IN YR gather UPPIN YR k TIL BOTH SAEM k AN MAH FRENZ
  IM IN YR acc UPPIN YR j TIL BOTH SAEM j AN {bins}
    TXT MAH BFF k, total'Z j R SUM OF total'Z j AN UR bins'Z j
  IM OUTTA YR acc
IM OUTTA YR gather

I HAS A grand ITZ 0
VISIBLE \"PE \" ME \" BINZ\"!
IM IN YR show UPPIN YR j TIL BOTH SAEM j AN {bins}
  VISIBLE \" \" total'Z j!
  grand R SUM OF grand AN total'Z j
IM OUTTA YR show
VISIBLE \"\"
VISIBLE \"PE \" ME \" TOTAL \" grand
KTHXBYE
",
        bins = bins,
        samples = samples_per_pe,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_source, Backend, RunConfig};
    use std::time::Duration;

    fn cfg(n: usize) -> RunConfig {
        RunConfig::new(n).timeout(Duration::from_secs(60))
    }

    #[test]
    fn hello_runs() {
        let outs = run_source(HELLO_PARALLEL, cfg(4)).unwrap();
        assert_eq!(outs[2], "HAI ITZ 2 OF 4\n");
    }

    #[test]
    fn ring_example_runs() {
        let n = 4;
        let outs = run_source(RING_EXAMPLE, cfg(n)).unwrap();
        for (me, o) in outs.iter().enumerate() {
            let next = (me + 1) % n;
            assert_eq!(o, &format!("PE {me} GOT {} .. {}\n", next * 1000, next * 1000 + 31));
        }
    }

    #[test]
    fn locks_example_counts_all_pes() {
        let n = 6;
        let outs = run_source(LOCKS_EXAMPLE, cfg(n)).unwrap();
        assert_eq!(outs[0], format!("PE 0 SEES X = {n}\n"));
    }

    #[test]
    fn barrier_example_is_deterministic() {
        let n = 5;
        for _ in 0..5 {
            let outs = run_source(BARRIER_EXAMPLE, cfg(n)).unwrap();
            for (me, o) in outs.iter().enumerate() {
                let left = (me + n - 1) % n;
                assert_eq!(o, &format!("PE {me}: C = {}\n", me + 1 + left + 1));
            }
        }
    }

    #[test]
    fn trylock_example_runs() {
        let outs = run_source(TRYLOCK_EXAMPLE, cfg(2)).unwrap();
        for (me, o) in outs.iter().enumerate() {
            assert_eq!(o, &format!("PE {me} WROTE 42\n"));
        }
    }

    #[test]
    fn nbody_small_runs_and_prints_positions() {
        let src = nbody_source(4, 2);
        let n = 2;
        let outs = run_source(&src, cfg(n)).unwrap();
        for (me, o) in outs.iter().enumerate() {
            assert!(o.starts_with(&format!("HAI ITZ {me} I HAS PARTICLZ 2 MUV\n")), "{o}");
            assert!(o.contains(&format!("O HAI ITZ {me}, MAH PARTICLZ IZ:\n")));
            // 4 particle lines with two finite floats each.
            let lines: Vec<&str> = o.lines().skip(2).collect();
            assert_eq!(lines.len(), 4);
            for l in lines {
                let parts: Vec<&str> = l.split_whitespace().collect();
                assert_eq!(parts.len(), 2, "{l}");
                for p in parts {
                    let f: f64 = p.parse().expect("position is a number");
                    assert!(f.is_finite());
                }
            }
        }
    }

    #[test]
    fn nbody_interp_and_vm_agree() {
        let src = nbody_source(3, 2);
        let a = run_source(&src, cfg(3).seed(11)).unwrap();
        let b = run_source(&src, cfg(3).seed(11).backend(Backend::Vm)).unwrap();
        assert_eq!(a, b, "n-body must be backend-independent");
    }

    #[test]
    fn nbody_is_seed_deterministic() {
        let src = nbody_source(3, 2);
        let a = run_source(&src, cfg(2).seed(5)).unwrap();
        let b = run_source(&src, cfg(2).seed(5)).unwrap();
        let c = run_source(&src, cfg(2).seed(6)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn heat2d_conserves_heat_and_diffuses() {
        let src = heat2d_source(3, 6, 12);
        let n = 4;
        let outs = run_source(&src, cfg(n)).unwrap();
        let mut total = 0.0f64;
        for (me, o) in outs.iter().enumerate() {
            assert!(o.starts_with(&format!("PE {me} HEAT ")), "{o}");
            let heat: f64 = o.trim().rsplit(' ').next().unwrap().parse().unwrap();
            assert!(heat.is_finite());
            total += heat;
        }
        // Insulated plate: heat conserved mod 2-decimal print rounding.
        assert!((total - 100.0).abs() < 0.005 * n as f64 + 1e-9, "leaked: {total}");
        // Diffusion reality check: heat has crossed the PE-0 boundary.
        let pe0: f64 = outs[0].trim().rsplit(' ').next().unwrap().parse().unwrap();
        assert!(pe0 < 100.0, "no diffusion happened");
    }

    #[test]
    fn heat2d_interp_and_vm_agree() {
        let src = heat2d_source(2, 4, 5);
        let a = run_source(&src, cfg(3)).unwrap();
        let b = run_source(&src, cfg(3).backend(Backend::Vm)).unwrap();
        assert_eq!(a, b, "heat2d must be backend-independent");
    }

    #[test]
    fn histogram_counts_every_sample() {
        let (bins, samples, n) = (8, 50, 4);
        let src = histogram_source(bins, samples);
        let outs = run_source(&src, cfg(n).seed(21)).unwrap();
        // Every PE agrees on the same global histogram.
        let strip = |o: &str| o.replace(|c: char| c.is_ascii_digit(), "#");
        for o in &outs[1..] {
            assert_eq!(strip(o), strip(&outs[0]), "PEs disagree on shape");
        }
        let total_line = outs[0].lines().last().unwrap();
        assert_eq!(total_line, format!("PE 0 TOTAL {}", n * samples));
        // Global bin counts identical across PEs.
        let global: Vec<String> = outs
            .iter()
            .map(|o| o.lines().next().unwrap().split_once(" BINZ ").unwrap().1.to_string())
            .collect();
        assert!(global.iter().all(|g| g == &global[0]), "{global:?}");
    }

    #[test]
    fn histogram_is_seed_deterministic_and_backend_equal() {
        let src = histogram_source(4, 20);
        let a = run_source(&src, cfg(3).seed(5)).unwrap();
        let b = run_source(&src, cfg(3).seed(5).backend(Backend::Vm)).unwrap();
        let c = run_source(&src, cfg(3).seed(6)).unwrap();
        assert_eq!(a, b, "backends must agree");
        assert_ne!(a, c, "different seed must redistribute samples");
    }

    #[test]
    fn corpus_compiles_to_c() {
        for src in [HELLO_PARALLEL, RING_EXAMPLE, LOCKS_EXAMPLE, BARRIER_EXAMPLE, TRYLOCK_EXAMPLE] {
            let c = crate::compile_to_c(src).unwrap();
            assert!(c.contains("shmem_init();"));
        }
        let c = crate::compile_to_c(&nbody_paper()).unwrap();
        assert!(c.contains("static LOL_SYMMETRIC double g_pos_x[32];"));
        assert!(c.contains("static LOL_SYMMETRIC long g_pos_x__lock[3];"));
    }
}
